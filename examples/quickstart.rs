//! Quickstart: send a message through the chunk transport and receive it
//! with immediate (arrival-order) processing.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chunks::transport::{ConnectionParams, DeliveryMode, Receiver, RxEvent, Sender, SenderConfig};
use chunks::wsc::InvariantLayout;

fn main() {
    // Connection parameters would normally travel in an Establish signal.
    let params = ConnectionParams {
        conn_id: 1,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 32,
    };
    let layout = InvariantLayout::default();

    let mut tx = Sender::new(SenderConfig {
        params,
        layout,
        mtu: 128, // tiny MTU so the message fragments visibly
        min_tpdu_elements: 8,
        max_tpdu_elements: 1024,
    });
    let mut rx = Receiver::new(DeliveryMode::Immediate, params, layout, 4096);

    let message = b"chunks are completely self-describing pieces of PDUs";
    tx.submit_simple(message, 0xA1F, false);

    let packets = tx.packets_for_pending().expect("packable");
    println!(
        "sent {} bytes as {} packets ({} TPDUs)",
        message.len(),
        packets.len(),
        tx.pending_tpdus()
    );

    // Deliver the packets in reverse order: chunks do not care.
    for (i, p) in packets.iter().enumerate().rev() {
        for event in rx.handle_packet(p, i as u64) {
            match event {
                RxEvent::TpduDelivered { start, elements } => {
                    println!("  TPDU @ element {start}: {elements} elements verified")
                }
                RxEvent::TpduFailed { start, reason } => {
                    println!("  TPDU @ element {start}: rejected ({reason:?})")
                }
                other => println!("  {other:?}"),
            }
        }
    }

    let received = &rx.app_data()[..message.len()];
    assert_eq!(received, message);
    println!(
        "received (despite reversed packet order): {:?}",
        String::from_utf8_lossy(received)
    );
    println!(
        "data touches per byte: {:.2} (immediate mode never buffers)",
        rx.stats.data_touches as f64 / message.len() as f64
    );

    // Acknowledge and clear the sender window.
    tx.handle_ack(&rx.make_ack());
    assert_eq!(tx.pending_tpdus(), 0);
    println!("all TPDUs acknowledged");
}
