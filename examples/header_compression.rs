//! Header compression — the invertible syntax transforms of Appendix A.
//!
//! A burst of related chunks is encoded under every header form; the
//! example prints the byte cost of each and shows that the implicit-`T.ID`
//! form survives fragmentation (because `C.SN − T.SN` is a fragmentation
//! invariant, Figure 7).
//!
//! ```sh
//! cargo run --example header_compression
//! ```

use chunks::core::compress::{
    decode_header_form, decode_packet_delta, encode_header_form, encode_packet_delta, implicit_tid,
    HeaderForm, SignalledContext,
};
use chunks::core::frag::split;
use chunks::core::label::ChunkType;
use chunks::core::wire::WIRE_HEADER_LEN;
use chunks::core::{Chunk, ChunkHeader, FramingTuple};

fn conforming_chunk(c_sn: u32, t_sn: u32, len: u32) -> Chunk {
    let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
    Chunk::new(
        ChunkHeader::data(
            1,
            len,
            FramingTuple::new(0xA, c_sn, false),
            // A conforming sender labels T.ID = C.SN - T.SN so the implicit
            // form applies.
            FramingTuple::new(implicit_tid(c_sn, t_sn), t_sn, true),
            FramingTuple::new(0xC, 24, false),
        ),
        payload.into(),
    )
    .unwrap()
}

fn main() {
    // The Figure 7 derivation.
    println!("Figure 7 — implicit T.ID = C.SN - T.SN:");
    let c_sn = [35u32, 36, 37, 38, 39, 40, 41, 42];
    let t_sn = [5u32, 0, 1, 2, 3, 4, 5, 0];
    for (c, t) in c_sn.iter().zip(&t_sn) {
        print!("  {}", implicit_tid(*c, *t));
    }
    println!("\n");

    let chunk = conforming_chunk(36, 0, 7);
    let mut ctx = SignalledContext::new();
    ctx.signal_size(ChunkType::Data, 1); // SIZE signalled at establishment

    println!(
        "header forms for one chunk (payload {} B):",
        chunk.payload.len()
    );
    for (name, form) in [
        ("full fixed-field ", HeaderForm::Full),
        ("implicit T.ID    ", HeaderForm::ImplicitTid),
        ("signalled SIZE   ", HeaderForm::SizeElided),
        ("compact (both)   ", HeaderForm::Compact),
    ] {
        let mut buf = Vec::new();
        encode_header_form(&chunk.header, form, &ctx, &mut buf).unwrap();
        let (decoded, _) = decode_header_form(&buf, form, &ctx).unwrap();
        assert_eq!(decoded, chunk.header, "transform must be invertible");
        println!(
            "  {name} {:>2} B  (saves {} B, round-trips)",
            buf.len(),
            WIRE_HEADER_LEN - buf.len(),
        );
    }

    // The implicit form survives fragmentation: split the chunk and decode
    // both pieces without any explicit T.ID on the wire.
    let (a, b) = split(&chunk, 3).unwrap();
    for (label, piece) in [("head", &a), ("tail", &b)] {
        let mut buf = Vec::new();
        encode_header_form(&piece.header, HeaderForm::ImplicitTid, &ctx, &mut buf).unwrap();
        let (decoded, _) = decode_header_form(&buf, HeaderForm::ImplicitTid, &ctx).unwrap();
        assert_eq!(decoded.tpdu.id, chunk.header.tpdu.id);
        println!(
            "  fragment {label}: derived T.ID = {} (C.SN {} - T.SN {})",
            decoded.tpdu.id, decoded.conn.sn, decoded.tpdu.sn
        );
    }

    // Intra-packet delta: a fragmented pair continues, so the second header
    // is nearly free.
    let full: usize = [&a, &b].iter().map(|c| c.wire_len()).sum();
    let delta = encode_packet_delta(&[a.clone(), b.clone()]);
    assert_eq!(decode_packet_delta(&delta).unwrap(), vec![a, b]);
    println!(
        "\nintra-packet delta: pair costs {} B vs {} B full ({} B saved)",
        delta.len(),
        full,
        full - delta.len()
    );
}
