//! Integrated Layer Processing over chunks — the §1 performance argument,
//! assembled end to end.
//!
//! The receiver makes **one pass** over each arriving chunk, however
//! disordered: decrypt (position-keyed, no CBC chaining), absorb into the
//! incremental WSC-2 checksum, and place into the application address
//! space. No layer buffers, no second pass; the chunk labels carry
//! everything each operation needs.
//!
//! ```sh
//! cargo run --example ilp_pipeline
//! ```

use chunks::cipher::{decrypt_chunk, encrypt_chunk, PositionCipher, BLOCK_BYTES};
use chunks::core::frag::split_to_fit;
use chunks::core::wire::WIRE_HEADER_LEN;
use chunks::core::{Chunk, ChunkHeader, FramingTuple};
use chunks::vreasm::PduTracker;
use chunks::wsc::{InvariantLayout, TpduInvariant};

fn main() {
    let cipher = PositionCipher::new([0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210]);
    let layout = InvariantLayout::default();

    // --- sender side ------------------------------------------------------
    let plaintext: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let blocks = (plaintext.len() / BLOCK_BYTES) as u32;
    let whole = Chunk::new(
        ChunkHeader::data(
            BLOCK_BYTES as u16, // SIZE = cipher block: fragmentation can never split a block
            blocks,
            FramingTuple::new(0xC1, 0, false),
            FramingTuple::new(0x71, 0, true),
            FramingTuple::new(0xA1, 0, true),
        ),
        plaintext.clone().into(),
    )
    .unwrap();

    // Encrypt, then compute the end-to-end code over the *ciphertext* (the
    // invariant is fragmentation-proof either way; covering ciphertext lets
    // the receiver verify before decrypt if it prefers — here we do
    // decrypt-and-verify in one pass).
    let encrypted = encrypt_chunk(&cipher, &whole).unwrap();
    let mut tx_inv = TpduInvariant::new(layout).unwrap();
    tx_inv
        .absorb_chunk(&encrypted.header, &encrypted.payload)
        .unwrap();
    let ed_digest = tx_inv.digest();

    // The network fragments the TPDU and reorders the pieces.
    let mut fragments = split_to_fit(encrypted, WIRE_HEADER_LEN + 512).unwrap();
    fragments.reverse();
    println!(
        "{} ciphertext fragments arriving in reverse order",
        fragments.len()
    );

    // --- receiver side: ONE loop, one touch per byte -----------------------
    let mut app = vec![0u8; plaintext.len()];
    let mut rx_inv = TpduInvariant::new(layout).unwrap();
    let mut tracker = PduTracker::new();
    let mut touches = 0u64;

    for frag in &fragments {
        // (1) duplicate rejection via virtual reassembly,
        assert_eq!(
            tracker.offer(
                frag.header.tpdu.sn as u64,
                frag.header.len as u64,
                frag.header.tpdu.st
            ),
            chunks::vreasm::TrackEvent::Accepted
        );
        // (2) incremental end-to-end error detection on the ciphertext,
        rx_inv.absorb_chunk(&frag.header, &frag.payload).unwrap();
        // (3) position-keyed decryption — needs nothing but this fragment,
        let clear = decrypt_chunk(&cipher, frag).unwrap();
        // (4) placement straight into the application address space.
        let at = clear.header.conn.sn as usize * BLOCK_BYTES;
        app[at..at + clear.payload.len()].copy_from_slice(&clear.payload);
        touches += clear.payload.len() as u64;
        println!(
            "  fragment T.SN {:>3}..{:>3}: decrypted, checksummed, placed",
            frag.header.tpdu.sn,
            frag.header.tpdu.sn + frag.header.len - 1
        );
    }

    assert!(tracker.is_complete(), "virtual reassembly complete");
    assert_eq!(rx_inv.digest(), ed_digest, "end-to-end code verifies");
    assert_eq!(app, plaintext, "plaintext recovered");
    println!(
        "verified and delivered: {} bytes, {:.2} touches/byte, zero staging buffers",
        app.len(),
        touches as f64 / app.len() as f64
    );
}
