//! Bulk data transfer — the paper's supercomputer scenario (§3): large
//! 64 KiB transport blocks crossing a lossy, reordering multipath network,
//! recovered by retransmission with identical labels.
//!
//! "Regardless of the order in which data arrive, they can be correctly
//! placed in the application address space" — spatial, not temporal,
//! reordering.
//!
//! ```sh
//! cargo run --example bulk_transfer
//! ```

use chunks::core::packet::Packet;
use chunks::netsim::{LinkConfig, PathBuilder};
use chunks::transport::{ConnectionParams, DeliveryMode, Receiver, Sender, SenderConfig};
use chunks::wsc::InvariantLayout;

fn main() {
    let total_bytes = 256 * 1024;
    let message: Vec<u8> = (0..total_bytes).map(|i| (i % 251) as u8).collect();

    let params = ConnectionParams {
        conn_id: 7,
        elem_size: 1,
        initial_csn: 123_456,
        tpdu_elements: 65_536 / 4, // 16 Ki-element TPDUs (64 KiB / SIZE=1 -> capped by layout)
    };
    let layout = InvariantLayout::default(); // 16 Ki data symbols per TPDU
    let mtu = 1500;

    let mut tx = Sender::new(SenderConfig {
        params,
        layout,
        mtu,
        min_tpdu_elements: 1024,
        max_tpdu_elements: 16_384,
    });
    let mut rx = Receiver::new(DeliveryMode::Immediate, params, layout, total_bytes as u64);
    tx.submit_simple(&message, 0xB1, false);
    println!(
        "submitting {} KiB as {} TPDUs of {} elements",
        total_bytes / 1024,
        tx.pending_tpdus(),
        tx.tpdu_elements()
    );

    // Eight parallel 155 Mbps SONET-ish paths with skew (the paper's §1
    // gigabit-over-OC-3 configuration), plus 2% loss.
    let base = LinkConfig::clean(mtu, 250_000, 155_000_000).with_loss(0.02);
    let mut round = 0;
    let mut clock = 0u64;
    loop {
        round += 1;
        let packets = if round == 1 {
            tx.packets_for_pending().unwrap()
        } else {
            let missing = tx.unacked_starts();
            if missing.is_empty() {
                break;
            }
            println!(
                "round {round}: retransmitting {} TPDUs (identical labels)",
                missing.len()
            );
            tx.retransmit(&missing).unwrap()
        };
        let mut path = PathBuilder::new(0xB0B + round)
            .multipath(8, base, 30_000)
            .build();
        let inputs = packets
            .into_iter()
            .enumerate()
            .map(|(i, p)| (clock + i as u64 * 800, p.bytes.to_vec()))
            .collect();
        let deliveries = path.run(inputs);
        let stats = path.hops()[0].link.stats();
        println!(
            "round {round}: offered {} frames, delivered {}, lost {}",
            stats.offered, stats.delivered, stats.lost
        );
        for d in &deliveries {
            rx.handle_packet(
                &Packet {
                    bytes: d.frame.clone().into(),
                },
                d.time,
            );
        }
        clock = deliveries.last().map(|d| d.time).unwrap_or(clock) + 1_000_000;
        tx.handle_ack(&rx.make_ack());
        if tx.pending_tpdus() == 0 {
            break;
        }
        tx.on_loss(); // adapt the TPDU size to the observed error rate
        if round > 24 {
            panic!("transfer did not converge");
        }
    }

    assert_eq!(rx.verified_prefix(), total_bytes as u64);
    assert_eq!(&rx.app_data()[..total_bytes], &message[..]);
    println!(
        "complete in {round} rounds: {} KiB verified, {:.2} touches/byte, \
         peak staging buffer {} bytes, {} duplicate chunks rejected",
        total_bytes / 1024,
        rx.stats.data_touches as f64 / total_bytes as f64,
        rx.stats.peak_buffered_bytes,
        rx.stats.duplicate_chunks,
    );
}
