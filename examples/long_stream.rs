//! An unbounded stream through a small sliding window — §2's "SNs of
//! connections are reused over time", live.
//!
//! One megabyte flows through a 4 KiB receive window over a lossy,
//! reordering multipath; the connection sequence number wraps the 32-bit
//! space mid-run (we start near the top) and the receiver keeps sliding.
//!
//! ```sh
//! cargo run --release --example long_stream
//! ```

use chunks::core::packet::Packet;
use chunks::netsim::{LinkConfig, PathBuilder};
use chunks::transport::{ConnectionParams, Framer, StreamReceiver};
use chunks::wsc::InvariantLayout;

fn main() {
    let params = ConnectionParams {
        conn_id: 0x10,
        elem_size: 1,
        initial_csn: u32::MAX - 5000, // wrap the sequence space mid-stream
        tpdu_elements: 1024,
    };
    let layout = InvariantLayout::default();
    let window = 4096u64;
    let mut framer = Framer::new(params, layout);
    let mut rx = StreamReceiver::new(params, layout, window);

    let total = 1 << 20; // 1 MiB
    let mut sent_hash = 0u64;
    let mut recv_hash = 0u64;
    let mut sent = 0usize;
    let mut seed = 1u64;

    while sent < total {
        // Produce one window's worth of TPDUs (stay inside flow control).
        let burst = (window as usize).min(total - sent);
        let block: Vec<u8> = (0..burst).map(|i| ((sent + i) % 251) as u8).collect();
        for &b in &block {
            sent_hash = sent_hash.wrapping_mul(1099511628211).wrapping_add(b as u64);
        }
        sent += burst;
        let tpdus = framer.frame_simple(&block, 0xF, false);
        let chunks: Vec<_> = tpdus.iter().flat_map(|t| t.all_chunks()).collect();
        let packets = chunks::core::packet::pack(chunks, 1500).unwrap();

        // A jittery 4-way multipath with 1% loss; lost TPDUs are
        // retransmitted with identical labels until the burst is delivered.
        let expected = rx.delivered() + burst as u64;
        let pending: Vec<Packet> = packets;
        let mut rounds = 0;
        while rx.delivered() < expected {
            rounds += 1;
            assert!(rounds < 20, "burst did not converge");
            seed = seed.wrapping_add(1);
            let mut path = PathBuilder::new(seed)
                .multipath(
                    4,
                    LinkConfig::clean(1500, 50_000, 622_000_000).with_loss(0.01),
                    40_000,
                )
                .build();
            let inputs = pending
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u64 * 700, p.bytes.to_vec()))
                .collect();
            for d in path.run(inputs) {
                rx.handle_packet(
                    &Packet {
                        bytes: d.frame.into(),
                    },
                    d.time,
                );
            }
            for b in rx.poll_delivered() {
                recv_hash = recv_hash.wrapping_mul(1099511628211).wrapping_add(b as u64);
            }
            // Retransmit everything unacknowledged (duplicates are trimmed
            // at the receiver); a real sender would use the gap nacks.
            if rx.delivered() < expected {
                for s in rx.failed_starts() {
                    rx.reset_group(s);
                }
            }
        }
    }
    for b in rx.poll_delivered() {
        recv_hash = recv_hash.wrapping_mul(1099511628211).wrapping_add(b as u64);
    }

    assert_eq!(rx.delivered(), total as u64);
    assert_eq!(recv_hash, sent_hash, "stream content verified");
    println!(
        "streamed {} KiB through a {} KiB window: {} TPDUs verified, \
         {} window advances, {} stale and {} duplicate chunks rejected, C.SN wrapped",
        total / 1024,
        window / 1024,
        rx.stats.tpdus_delivered,
        rx.stats.window_advances,
        rx.stats.stale_chunks,
        rx.stats.duplicate_chunks,
    );
}
