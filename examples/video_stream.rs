//! Video over chunks — the paper's second motivating application (§1):
//! "Although the video frames themselves must be presented in the correct
//! order, data of an individual frame can be placed in the frame buffer as
//! they arrive without reordering."
//!
//! Each video frame is an external (ALF) PDU; the X-level stop bits tell
//! the receiver when a frame buffer is complete and presentable, no matter
//! how its cells arrived.
//!
//! ```sh
//! cargo run --example video_stream
//! ```

use chunks::core::packet::Packet;
use chunks::netsim::{LinkConfig, PathBuilder};
use chunks::transport::{
    AlfFrame, ConnectionParams, DeliveryMode, Receiver, RxEvent, Sender, SenderConfig,
};
use chunks::wsc::InvariantLayout;

const FRAME_W: usize = 64;
const FRAME_H: usize = 48;
const FRAME_BYTES: usize = FRAME_W * FRAME_H; // one byte per pixel
const FRAMES: usize = 12;

fn main() {
    let params = ConnectionParams {
        conn_id: 3,
        elem_size: 16, // a 16-byte pixel block is the atomic unit
        initial_csn: 0,
        tpdu_elements: 512,
    };
    let layout = InvariantLayout::default();
    let mtu = 1500;
    let mut tx = Sender::new(SenderConfig {
        params,
        layout,
        mtu,
        min_tpdu_elements: 64,
        max_tpdu_elements: 4096,
    });
    let mut rx = Receiver::new(
        DeliveryMode::Immediate,
        params,
        layout,
        (FRAMES * FRAME_BYTES / 16) as u64,
    );

    // The video source: FRAMES frames, each an external PDU.
    let mut stream = Vec::with_capacity(FRAMES * FRAME_BYTES);
    for f in 0..FRAMES {
        for p in 0..FRAME_BYTES {
            stream.push(((f * 7 + p) % 256) as u8);
        }
    }
    let alf: Vec<AlfFrame> = (0..FRAMES as u32)
        .map(|f| AlfFrame {
            id: 0x700 + f,
            len_elements: (FRAME_BYTES / 16) as u32,
        })
        .collect();
    tx.submit(&stream, &alf, false);

    // A jittery path that reorders aggressively.
    let mut path = PathBuilder::new(0x71DE0)
        .multipath(4, LinkConfig::clean(mtu, 80_000, 622_000_000), 55_000)
        .build();
    let packets = tx.packets_for_pending().unwrap();
    println!(
        "{} video frames ({} B each) in {} packets",
        FRAMES,
        FRAME_BYTES,
        packets.len()
    );
    let inputs = packets
        .into_iter()
        .enumerate()
        .map(|(i, p)| (i as u64 * 500, p.bytes.to_vec()))
        .collect();

    // Frame completion is tracked with the X-level labels: a frame is
    // presentable when all its elements are placed. We watch TPDU
    // verification events and per-frame element counts.
    let mut frame_fill = [0usize; FRAMES];
    let mut presented = Vec::new();
    for d in path.run(inputs) {
        let packet = Packet {
            bytes: d.frame.clone().into(),
        };
        // Peek at the chunks to observe per-frame placement (the receiver
        // itself places them into the connection address space).
        for c in chunks::core::packet::unpack(&packet).unwrap() {
            if c.header.ty == chunks::core::label::ChunkType::Data {
                let frame = (c.header.ext.id - 0x700) as usize;
                frame_fill[frame] += c.payload.len();
                if frame_fill[frame] == FRAME_BYTES {
                    presented.push(frame);
                }
            }
        }
        for e in rx.handle_packet(&packet, d.time) {
            if let RxEvent::TpduFailed { start, reason } = e {
                println!("  TPDU @ {start} failed: {reason:?}");
            }
        }
    }

    println!("frame-buffer completion order (arrival-driven): {presented:?}");
    assert_eq!(presented.len(), FRAMES, "every frame buffer filled");

    // Presentation order is decided by the application, not the network:
    // the frame buffers are correct regardless of completion order.
    for f in 0..FRAMES {
        let at = f * FRAME_BYTES;
        assert_eq!(
            &rx.app_data()[at..at + FRAME_BYTES],
            &stream[at..at + FRAME_BYTES],
            "frame {f} pixel-exact"
        );
    }
    println!(
        "all {FRAMES} frames pixel-exact; zero reordering buffer \
         (peak staging = {} bytes)",
        rx.stats.peak_buffered_bytes
    );
}
