//! Internetworking — Figure 4 live: a TPDU crosses networks whose MTUs
//! shrink and grow; routers empty chunks from one envelope size into
//! another (split, repack, or reassemble) and the receiver sees ordinary
//! chunks either way.
//!
//! ```sh
//! cargo run --example internetwork
//! ```

use chunks::core::frag::ReassemblyPool;
use chunks::core::packet::{pack, unpack, Packet};
use chunks::core::wire::WIRE_HEADER_LEN;
use chunks::core::{Chunk, ChunkHeader, FramingTuple};
use chunks::netsim::{ChunkRouter, PacketTransform, RefragPolicy};

fn tpdu(bytes: usize) -> Chunk {
    let payload: Vec<u8> = (0..bytes).map(|i| (i * 11 + 5) as u8).collect();
    Chunk::new(
        ChunkHeader::data(
            1,
            bytes as u32,
            FramingTuple::new(0xC0, 0, false),
            FramingTuple::new(0x42, 0, true),
            FramingTuple::new(0xA, 0, true),
        ),
        payload.into(),
    )
    .unwrap()
}

fn main() {
    let whole = tpdu(6_000);
    // Hop MTUs: a 9180-byte ATM network, a 576-byte X.25-era network, and a
    // 4352-byte FDDI network.
    let hops = [9180usize, 576, 4352];
    println!(
        "TPDU of {} bytes crossing networks with MTUs {:?}",
        whole.payload.len(),
        hops
    );

    for (name, regrow_policy) in [
        (
            "method 1 (one chunk per packet)",
            RefragPolicy::OnePerPacket,
        ),
        ("method 2 (combine chunks)", RefragPolicy::Repack),
        (
            "method 3 (reassemble in network)",
            RefragPolicy::Reassemble { window: 12 },
        ),
    ] {
        // First hop: sender packs for the ATM network.
        let mut frames: Vec<Vec<u8>> = pack(vec![whole.clone()], hops[0])
            .unwrap()
            .into_iter()
            .map(|p| p.bytes.to_vec())
            .collect();
        print!("{name}: {} ATM frames", frames.len());

        // Router into the small network always splits/repacks.
        let mut shrink = ChunkRouter::new(hops[1], RefragPolicy::Repack);
        frames = frames.drain(..).flat_map(|f| shrink.ingest(f)).collect();
        print!(
            " -> {} small frames (router split {} chunks)",
            frames.len(),
            shrink.splits
        );

        // Router back into the large network applies the chosen method.
        let mut grow = ChunkRouter::new(hops[2], regrow_policy);
        let mut out: Vec<Vec<u8>> = frames.drain(..).flat_map(|f| grow.ingest(f)).collect();
        out.extend(grow.flush());
        let bytes: usize = out.iter().map(Vec::len).sum();
        println!(
            " -> {} FDDI frames, {} wire bytes (header overhead {} B, merges {})",
            out.len(),
            bytes,
            bytes - whole.payload.len(),
            grow.merges
        );

        // The receiver's job is identical in all three cases: one-step
        // reassembly of self-describing chunks.
        let mut pool = ReassemblyPool::new();
        for f in out {
            for c in unpack(&Packet { bytes: f.into() }).unwrap() {
                pool.insert(c);
            }
        }
        let recovered = pool.take_complete().expect("single-step reassembly");
        assert_eq!(recovered, whole);
    }

    println!(
        "\nall three methods delivered byte-identical TPDUs; \
         chunk header = {WIRE_HEADER_LEN} B regardless of fragmentation history"
    );
}
