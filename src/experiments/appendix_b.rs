//! Appendix B: the protocol-syntax comparison, rendered as the paper's
//! prose describes it — which framing information each protocol carries
//! explicitly, implicitly, or not at all.

use std::fmt;

use chunks_baseline::comparison::{FieldSupport, COMPARISON};

/// Rendered comparison with a couple of machine checks.
pub struct AppendixB {
    /// Rendered table.
    pub text: String,
    /// Chunks carry strictly the most explicit framing.
    pub chunks_dominate: bool,
    /// Count of rows backed by executable models in `chunks-baseline`.
    pub modeled_rows: usize,
}

impl fmt::Display for AppendixB {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== Appendix B — protocol syntax comparison ===")?;
        write!(f, "{}", self.text)?;
        writeln!(
            f,
            "  [{}] chunks carry strictly the most explicit framing",
            if self.chunks_dominate { "ok" } else { "FAIL" }
        )?;
        writeln!(
            f,
            "  {} of {} rows have executable models in chunks-baseline",
            self.modeled_rows,
            COMPARISON.len()
        )
    }
}

fn cell(s: FieldSupport) -> &'static str {
    match s {
        FieldSupport::Explicit => "E",
        FieldSupport::Implicit => "i",
        FieldSupport::Absent => "-",
    }
}

/// Builds the rendered table.
pub fn run() -> AppendixB {
    let mut text =
        String::from("  protocol  TYPE  C(id,sn,st)  T(id,sn,st)  X(id,sn,st)  LEN  misorder?\n");
    for row in COMPARISON {
        text.push_str(&format!(
            "  {:<9} {:>4}  {:>3} {} {} {:>6} {} {} {:>6} {} {} {:>6}  {}\n",
            row.name,
            cell(row.ty),
            cell(row.c[0]),
            cell(row.c[1]),
            cell(row.c[2]),
            cell(row.t[0]),
            cell(row.t[1]),
            cell(row.t[2]),
            cell(row.x[0]),
            cell(row.x[1]),
            cell(row.x[2]),
            cell(row.len),
            if row.tolerates_misorder { "yes" } else { "no" },
        ));
    }
    let chunks = chunks_baseline::comparison::lookup("Chunks")
        .expect("chunks row present")
        .explicit_count();
    let chunks_dominate = COMPARISON
        .iter()
        .filter(|r| r.name != "Chunks")
        .all(|r| r.explicit_count() < chunks);
    // Rows with executable models: Chunks (the whole workspace), AAL5,
    // AAL4, HDLC, URP, IP, VMTP, Delta-t, XTP — all but Axon.
    let modeled_rows = COMPARISON.len() - 1;
    AppendixB {
        text,
        chunks_dominate,
        modeled_rows,
    }
}
