//! Reliability soak: full transfers across an adversarial fault matrix.
//!
//! Every cell of the matrix runs one complete transfer through a faulted
//! medium — targeted ack deletion, on-the-wire label flips, ED
//! duplication, a stalled multipath stripe, or a total ack blackout — on a
//! deterministic virtual clock, and must terminate in bounded virtual time
//! with one of three outcomes:
//!
//! * **delivered** — every byte verified at the receiver;
//! * **aborted** — the typed [`chunks_transport::TransportError`]
//!   dead-peer verdict (`DegradePolicy::Abort`);
//! * **shed** — the retry budget emptied and the window kept moving
//!   without the abandoned TPDUs (`DegradePolicy::Shed`).
//!
//! A run that reaches the tick bound without any of those is a **hang** —
//! the exact livelock the RTO layer exists to make impossible. The same
//! seed must reproduce the same rows bit-for-bit.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use chunks_core::packet::Packet;
use chunks_netsim::{ByzantineConfig, ByzantineRouter, LinkConfig, MultipathLink, PacketTransform};
use chunks_obs::{ObsSink, RecordingSink};
use chunks_transport::{
    ConnectionParams, DegradePolicy, DeliveryMode, RtoConfig, SenderConfig, Session,
};
use chunks_wsc::InvariantLayout;

/// Virtual time between pump calls.
pub const TICK_NS: u64 = 200_000; // 0.2 ms
/// Livelock bound: no run may need more pumps than this.
pub const MAX_TICKS: u64 = 3_000; // 600 ms of virtual time
/// Bytes transferred per run.
pub const PAYLOAD_BYTES: usize = 2_048;

/// One cell of the fault matrix.
#[derive(Clone, Copy, Debug)]
pub struct SoakScenario {
    /// Scenario label.
    pub name: &'static str,
    /// Byzantine faults on the data direction.
    pub fwd: ByzantineConfig,
    /// Byzantine faults on the ack direction.
    pub rev: ByzantineConfig,
    /// Oblivious random loss on the data direction.
    pub fwd_loss: f64,
    /// Stalled stripe of the forward bundle: `(path, from_ns, until_ns)`.
    pub stall: Option<(usize, u64, u64)>,
    /// What the sender does when a retry budget empties.
    pub policy: DegradePolicy,
}

/// The full matrix: the ack-loss sweep the acceptance criteria name, the
/// Byzantine mutations, a stalled stripe, and both budget-exhaustion
/// policies under a total ack blackout.
pub fn fault_matrix() -> Vec<SoakScenario> {
    let clean = ByzantineConfig::default();
    let base = SoakScenario {
        name: "",
        fwd: clean,
        rev: clean,
        fwd_loss: 0.0,
        stall: None,
        policy: DegradePolicy::Abort,
    };
    let ack = |name, p| SoakScenario {
        name,
        rev: ByzantineConfig::ack_dropper(p),
        ..base
    };
    vec![
        ack("ack-loss-0", 0.0),
        ack("ack-loss-10", 0.10),
        ack("ack-loss-20", 0.20),
        ack("ack-loss-35", 0.35),
        ack("ack-loss-50", 0.50),
        SoakScenario {
            name: "ack-loss-20+data-loss-10",
            rev: ByzantineConfig::ack_dropper(0.20),
            fwd_loss: 0.10,
            ..base
        },
        SoakScenario {
            name: "label-flips",
            fwd: ByzantineConfig {
                flip_tsn: 0.03,
                flip_cid: 0.03,
                flip_len: 0.03,
                ..Default::default()
            },
            rev: ByzantineConfig::ack_dropper(0.10),
            ..base
        },
        SoakScenario {
            name: "ed-duplication",
            fwd: ByzantineConfig {
                ed_duplicate: 0.5,
                ..Default::default()
            },
            ..base
        },
        SoakScenario {
            name: "path-stall",
            stall: Some((1, 0, 50_000_000)),
            ..base
        },
        SoakScenario {
            name: "ack-blackout-abort",
            rev: ByzantineConfig::ack_dropper(1.0),
            ..base
        },
        SoakScenario {
            name: "ack-blackout-shed",
            rev: ByzantineConfig::ack_dropper(1.0),
            policy: DegradePolicy::Shed,
            ..base
        },
    ]
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Every byte verified at the receiver.
    Delivered,
    /// Typed dead-peer error surfaced.
    Aborted,
    /// Budget-exhausted TPDUs were shed; the window drained.
    Shed,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Outcome::Delivered => "delivered",
            Outcome::Aborted => "aborted",
            Outcome::Shed => "shed",
        })
    }
}

/// Result of one run.
#[derive(Clone, PartialEq, Debug)]
pub struct SoakRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// RNG seed of the run.
    pub seed: u64,
    /// How the run ended.
    pub outcome: Outcome,
    /// True when the run hit [`MAX_TICKS`] without terminating — a
    /// livelock, which no scenario may produce.
    pub hang: bool,
    /// Bytes verified and delivered at the receiver.
    pub delivered_bytes: u64,
    /// Bytes submitted at the sender.
    pub total_bytes: u64,
    /// Virtual nanoseconds until termination.
    pub elapsed_ns: u64,
    /// Timer-fired retransmissions.
    pub timer_retransmits: u64,
    /// TPDUs shed.
    pub shed_tpdus: u64,
    /// Ack chunks the adversary deleted.
    pub acks_dropped: u64,
    /// Label fields the adversary flipped.
    pub label_flips: u64,
    /// Goodput over the run, MiB per virtual second.
    pub goodput_mibps: f64,
    /// Nonzero observability counters recorded during the run (sorted by
    /// name — the registry snapshot order). Empty when the run was not
    /// observed. Deterministic: the virtual clock drives everything, so the
    /// same seed reproduces the same counters bit-for-bit.
    pub metrics: Vec<(String, u64)>,
}

impl SoakRow {
    /// Delivered fraction in `[0, 1]`.
    pub fn delivered_frac(&self) -> f64 {
        self.delivered_bytes as f64 / self.total_bytes.max(1) as f64
    }

    /// A run is clean when it terminated (no hang) and ended either fully
    /// delivered or with the typed degradation its policy prescribes.
    pub fn terminated_cleanly(&self) -> bool {
        !self.hang
            && match self.outcome {
                Outcome::Delivered => self.delivered_bytes == self.total_bytes,
                Outcome::Aborted | Outcome::Shed => true,
            }
    }
}

/// All rows of one seed's sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct SoakResult {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// One row per scenario.
    pub rows: Vec<SoakRow>,
}

impl SoakResult {
    /// Acceptance: every run terminated cleanly; every pure-ack-loss run at
    /// ≤ 20% still delivered 100%; and the timer provably drove recovery
    /// somewhere in the matrix (the blackout rows guarantee it must).
    pub fn passes(&self) -> bool {
        self.rows.iter().all(SoakRow::terminated_cleanly)
            && self
                .rows
                .iter()
                .filter(|r| matches!(r.scenario, "ack-loss-0" | "ack-loss-10" | "ack-loss-20"))
                .all(|r| r.outcome == Outcome::Delivered)
            && self.rows.iter().map(|r| r.timer_retransmits).sum::<u64>() > 0
    }
}

impl fmt::Display for SoakResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== soak — reliability under adversarial faults (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {:<26} {:>10} {:>6} {:>9} {:>8} {:>6} {:>8} {:>9}",
            "scenario", "outcome", "deliv%", "virt ms", "rto-rtx", "shed", "ack-del", "MiB/s"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<26} {:>10} {:>5.0}% {:>9.1} {:>8} {:>6} {:>8} {:>9.2}{}",
                r.scenario,
                r.outcome.to_string(),
                r.delivered_frac() * 100.0,
                r.elapsed_ns as f64 / 1e6,
                r.timer_retransmits,
                r.shed_tpdus,
                r.acks_dropped,
                r.goodput_mibps,
                if r.hang { "  HANG" } else { "" },
            )?;
        }
        Ok(())
    }
}

fn endpoint(local: u32, remote: u32, policy: DegradePolicy) -> Session {
    let params = |conn_id| ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 64,
    };
    let layout = InvariantLayout::with_data_symbols(2048);
    Session::new(
        SenderConfig {
            params: params(local),
            layout,
            mtu: 512,
            min_tpdu_elements: 4,
            max_tpdu_elements: 256,
        },
        params(remote),
        layout,
        DeliveryMode::Immediate,
        1 << 14,
    )
    .with_rto(RtoConfig {
        policy,
        ..RtoConfig::default()
    })
    .with_burst_limits(4, 8)
}

fn take_due(q: &mut BTreeMap<u64, Vec<Vec<u8>>>, t: u64) -> Vec<Vec<u8>> {
    let mut later = q.split_off(&(t + 1));
    std::mem::swap(q, &mut later);
    later.into_values().flatten().collect()
}

/// True when the packet carries anything beyond acknowledgment chunks. The
/// transfer is one-way, so the sender's own piggyback acks say nothing —
/// forwarding them would let the receiver re-ack every tick and trivialise
/// ack loss.
pub fn carries_payload(p: &Packet) -> bool {
    chunks_core::packet::unpack(p)
        .map(|chunks| {
            chunks
                .iter()
                .any(|c| c.header.ty != chunks_core::label::ChunkType::Ack)
        })
        .unwrap_or(false)
}

/// Runs one scenario under one seed.
pub fn run_scenario(sc: &SoakScenario, seed: u64) -> SoakRow {
    run_scenario_observed(sc, seed, chunks_obs::null())
}

/// Runs one scenario under one seed with an observability sink attached to
/// both endpoints. The sink sees every counter and event the transfer
/// produces; pass [`chunks_obs::null()`] for the unobserved baseline.
pub fn run_scenario_observed(sc: &SoakScenario, seed: u64, sink: Arc<dyn ObsSink>) -> SoakRow {
    // Mix the scenario name into the seed so rows of one sweep do not all
    // draw the same fault stream (a shared first draw would make every
    // `p <= x` row succeed or fail together).
    let mix = sc.name.bytes().fold(seed, |h, b| {
        h.wrapping_mul(0x100000001B3).wrapping_add(b as u64)
    });
    let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|i| (i * 7 + 3) as u8).collect();
    let mut a = endpoint(1, 2, sc.policy).with_obs(sink.clone());
    let mut b = endpoint(2, 1, sc.policy).with_obs(sink.clone());
    a.send(&payload, 0xA, false);

    // Forward: Byzantine middlebox, then a 4-stripe multipath bundle. The
    // sink rides along (mutation events, hop spans, path choices); with the
    // NullSink it costs one cached branch per element.
    let mut byz_fwd = ByzantineRouter::new(sc.fwd, mix);
    byz_fwd.set_obs(sink.clone());
    let fwd_cfg = LinkConfig::clean(512, 100_000, 0).with_loss(sc.fwd_loss);
    let mut fwd = MultipathLink::skewed(4, fwd_cfg, 20_000, mix ^ 0xF0F0);
    fwd.set_obs(sink.clone());
    if let Some((path, from, until)) = sc.stall {
        fwd.stall_path(path, from, until);
    }
    // Reverse: Byzantine middlebox (the ack assassin), then a clean link.
    let mut byz_rev = ByzantineRouter::new(sc.rev, mix ^ 0x5EED);
    byz_rev.set_obs(sink.clone());
    let mut rev = chunks_netsim::Link::new(LinkConfig::clean(512, 100_000, 0), mix ^ 0x0FF);
    rev.set_obs(sink);

    let mut to_b: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();
    let mut to_a: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();

    let mut outcome = None;
    let mut elapsed = MAX_TICKS * TICK_NS;
    for tick in 0..MAX_TICKS {
        let t = tick * TICK_NS;
        let mut b_heard = false;
        for f in take_due(&mut to_b, t) {
            b.handle_packet(&Packet { bytes: f.into() }, t);
            b_heard = true;
        }
        for f in take_due(&mut to_a, t) {
            a.handle_packet(&Packet { bytes: f.into() }, t);
        }
        match a.pump(t) {
            Ok(packets) => {
                // Pure-ack packets from the sender carry no information on a
                // one-way transfer; see `carries_payload`.
                for p in packets.iter().filter(|p| carries_payload(p)) {
                    for f in byz_fwd.ingest_at(t, p.bytes.to_vec()) {
                        for (at, frame) in fwd.transmit(t, f) {
                            to_b.entry(at).or_default().push(frame);
                        }
                    }
                }
            }
            Err(_) => {
                outcome = Some(Outcome::Aborted);
                elapsed = t;
                break;
            }
        }
        // The receiver acks when data arrives — not on an idle tick. (It
        // cannot die: it sends no data, so it arms no timers.)
        if b_heard {
            for p in b.pump(t).expect("pure-ack endpoint has no retry budget") {
                for f in byz_rev.ingest_at(t, p.bytes.to_vec()) {
                    for (at, frame) in rev.transmit(t, f) {
                        to_a.entry(at).or_default().push(frame);
                    }
                }
            }
        }
        if a.outbound_done() {
            outcome = Some(if a.reliability().shed_tpdus > 0 {
                Outcome::Shed
            } else {
                Outcome::Delivered
            });
            elapsed = t;
            break;
        }
    }

    let stats = a.reliability();
    let delivered = b.received_elements();
    let secs = (elapsed.max(1)) as f64 / 1e9;
    SoakRow {
        scenario: sc.name,
        seed,
        outcome: outcome.unwrap_or(Outcome::Delivered),
        hang: outcome.is_none(),
        delivered_bytes: delivered,
        total_bytes: PAYLOAD_BYTES as u64,
        elapsed_ns: elapsed,
        timer_retransmits: stats.timer_retransmits,
        shed_tpdus: stats.shed_tpdus,
        acks_dropped: byz_rev.stats.acks_dropped,
        label_flips: byz_fwd.stats.tsn_flips + byz_fwd.stats.cid_flips + byz_fwd.stats.len_flips,
        goodput_mibps: delivered as f64 / (1024.0 * 1024.0) / secs,
        metrics: Vec::new(),
    }
}

/// Runs the full fault matrix under one seed. Each cell runs with its own
/// recording sink, and the row carries the nonzero counters — everything
/// stays on the virtual clock, so the rows (metrics included) are
/// reproducible bit-for-bit from the seed.
pub fn run(seed: u64) -> SoakResult {
    SoakResult {
        seed,
        rows: fault_matrix()
            .iter()
            .map(|sc| {
                let sink = RecordingSink::shared();
                let mut row = run_scenario_observed(sc, seed, sink.clone());
                row.metrics = sink.snapshot().nonzero_counters();
                row
            })
            .collect(),
    }
}

/// Renders the soak sweeps as the `BENCH_soak.json` goodput-under-loss
/// record. Every field rides the virtual clock, so the file is exact and
/// the `bench-check` gate diffs a regeneration byte for byte.
pub fn bench_json(results: &[&SoakResult], describe: &str) -> String {
    use super::benchjson::{meta_json, metrics_json};
    let mut out = String::from("{\n");
    out.push_str(&meta_json(
        "soak-reliability-under-faults",
        "cargo run --release --bin experiments soak (or: just soak)",
        describe,
    ));
    out.push_str(&format!(
        "  \"workload\": \"{} bytes over a 4-path bundle through a Byzantine middlebox, virtual clock, tick {} ns\",\n",
        PAYLOAD_BYTES, TICK_NS
    ));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = results
        .iter()
        .flat_map(|r| r.rows.iter())
        .map(|row| {
            format!(
                "    {{\"scenario\": \"{}\", \"seed\": \"{:#x}\", \"outcome\": \"{}\", \"delivered_frac\": {:.3}, \"virtual_ms\": {:.1}, \"timer_retransmits\": {}, \"shed_tpdus\": {}, \"acks_dropped\": {}, \"goodput_mib_s\": {:.2}, \"metrics\": {}}}",
                row.scenario,
                row.seed,
                row.outcome,
                row.delivered_frac(),
                row.elapsed_ns as f64 / 1e6,
                row.timer_retransmits,
                row.shed_tpdus,
                row.acks_dropped,
                row.goodput_mibps,
                metrics_json(&row.metrics),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}
