//! Label-keyed lifecycle lineage: one closed-loop transfer per netsim
//! profile, every chunk's life recorded as spans keyed by the paper's
//! `(C.ID, T.SN, X.SN)` labels.
//!
//! The paper's labels are self-describing on the wire (§2), which makes
//! them a ready-made *trace key*: the sender, every simulated hop, the
//! Byzantine middlebox, the receiver's reorder/verify machinery and the
//! retransmission timer all stamp spans against the same tuple with no
//! side-channel correlation state. This experiment drives one complete
//! transfer through each [`Profile`] — forward path observed, clean ack
//! return — and exports, per profile:
//!
//! * the **lineage**: per-chunk stage timelines plus parent→child split
//!   links (the Appendix C/D closure, visible as recorded edges on the
//!   `fragmenting` profile);
//! * the **delay budget**: total virtual time attributed to network /
//!   holding / verify / merge-queue / repair, with p50/p90/p99 from the
//!   `span.delay.*` histograms;
//! * **visible drops**: unclosed hop spans are exactly the frames the
//!   lossy profiles destroyed.
//!
//! Everything rides the virtual clock, so each profile is replayed twice
//! and the JSON exports must be byte-identical — `experiments lineage`
//! fails otherwise, and `BENCH_lineage.json` is exact enough for the
//! `bench-check` gate to diff against a fresh regeneration with zero
//! tolerance.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use chunks_core::packet::Packet;
use chunks_netsim::{Link, LinkConfig, Profile};
use chunks_obs::{ObsSink, RecordingSink};
use chunks_transport::{
    ConnectionParams, DegradePolicy, DeliveryMode, RtoConfig, SenderConfig, Session,
};
use chunks_wsc::InvariantLayout;

use super::soak;

/// Virtual time between pump calls.
pub const TICK_NS: u64 = 200_000; // 0.2 ms
/// Livelock bound for one transfer.
pub const MAX_TICKS: u64 = 3_000;
/// Bytes transferred per profile.
pub const PAYLOAD_BYTES: usize = 2_048;
/// Sender MTU. Large TPDU chunks against this MTU guarantee the
/// `fragmenting` profile's narrow router actually splits them.
pub const MTU: usize = 512;

/// The stages whose `span.delay.*` histograms the export quantifies, in
/// lifecycle order.
pub const DELAY_METRICS: [&str; 5] = [
    "span.delay.network_ns",
    "span.delay.holding_ns",
    "span.delay.merge_queue_ns",
    "span.delay.verify_ns",
    "span.delay.repair_ns",
];

/// What one observed transfer did, independent of the recording sink —
/// used by the differential-transparency test (NullSink run must match).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TransferSummary {
    /// Bytes verified and delivered at the receiver.
    pub delivered_bytes: u64,
    /// Bytes submitted at the sender.
    pub total_bytes: u64,
    /// Virtual nanoseconds until the sender's window drained (or the
    /// livelock bound, on a hang).
    pub elapsed_ns: u64,
    /// True when the sender drained its window inside the tick bound.
    pub completed: bool,
    /// Timer-fired retransmissions.
    pub timer_retransmits: u64,
}

/// One profile's row of the lineage sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct LineageRow {
    /// Profile name.
    pub profile: &'static str,
    /// What the transfer did.
    pub summary: TransferSummary,
    /// Distinct label tuples that opened at least one span.
    pub chunks: usize,
    /// Spans recorded.
    pub spans: usize,
    /// Parent→child fragmentation links recorded.
    pub links: usize,
    /// Spans never closed — chunks dropped in flight (or repairs still
    /// outstanding when the run ended).
    pub unclosed: usize,
    /// Closes that matched no open span (must stay zero).
    pub orphan_closes: u64,
    /// True when two replays exported byte-identical lineage JSON and
    /// identical metric snapshots.
    pub deterministic: bool,
    /// `(delay metric, total ns, closed spans)` in lifecycle order.
    pub budget: Vec<(&'static str, u64, u64)>,
    /// `(delay metric, p50, p90, p99)` bucket-bound quantiles in ns.
    pub quantiles: Vec<(&'static str, u64, u64, u64)>,
    /// The per-chunk lineage export (byte-stable JSON).
    pub json: String,
    /// The human-readable span tree.
    pub text: String,
}

/// All rows of one seed's sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct LineageResult {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// One row per profile, in [`Profile::ALL`] order.
    pub rows: Vec<LineageRow>,
}

fn endpoint(local: u32, remote: u32) -> Session {
    let params = |conn_id| ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        // 256-element TPDUs produce data chunks wider than the fragmenting
        // profile's narrow MTU, forcing mid-path splits.
        tpdu_elements: 256,
    };
    let layout = InvariantLayout::with_data_symbols(2048);
    Session::new(
        SenderConfig {
            params: params(local),
            layout,
            mtu: MTU,
            min_tpdu_elements: 4,
            max_tpdu_elements: 256,
        },
        params(remote),
        layout,
        DeliveryMode::Immediate,
        1 << 14,
    )
    .with_rto(RtoConfig {
        policy: DegradePolicy::Abort,
        ..RtoConfig::default()
    })
    .with_burst_limits(4, 8)
}

fn take_due(q: &mut BTreeMap<u64, Vec<Vec<u8>>>, t: u64) -> Vec<Vec<u8>> {
    let mut later = q.split_off(&(t + 1));
    std::mem::swap(q, &mut later);
    later.into_values().flatten().collect()
}

/// Drives one complete transfer through `profile` under `seed` with `sink`
/// attached to both endpoints and every forward hop. The fault stream
/// never depends on the sink — a NullSink run returns the identical
/// summary (pinned by `tests/obs_determinism.rs`).
pub fn drive(profile: Profile, seed: u64, sink: Arc<dyn ObsSink>) -> TransferSummary {
    let payload: Vec<u8> = (0..PAYLOAD_BYTES).map(|i| (i * 7 + 3) as u8).collect();
    let mut a = endpoint(1, 2).with_obs(sink.clone());
    let mut b = endpoint(2, 1).with_obs(sink.clone());
    a.send(&payload, 0xA, false);

    // Forward: the profile's path, observed. Reverse: a clean ack link
    // (also observed; ack chunks carry no data labels, so it stays quiet).
    let mut fwd = profile.build_observed(MTU, seed, sink.clone());
    let mut rev = Link::new(LinkConfig::clean(MTU, 100_000, 0), seed ^ 0x0FF);
    rev.set_obs(sink);

    let mut to_b: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();
    let mut to_a: BTreeMap<u64, Vec<Vec<u8>>> = BTreeMap::new();
    let mut completed = false;
    let mut elapsed = MAX_TICKS * TICK_NS;
    for tick in 0..MAX_TICKS {
        let t = tick * TICK_NS;
        let mut b_heard = false;
        for f in take_due(&mut to_b, t) {
            b.handle_packet(&Packet { bytes: f.into() }, t);
            b_heard = true;
        }
        for f in take_due(&mut to_a, t) {
            a.handle_packet(&Packet { bytes: f.into() }, t);
        }
        match a.pump(t) {
            Ok(packets) => {
                for p in packets.iter().filter(|p| soak::carries_payload(p)) {
                    for d in fwd.transmit(t, p.bytes.to_vec()) {
                        to_b.entry(d.time).or_default().push(d.frame);
                    }
                }
            }
            Err(_) => {
                elapsed = t;
                break;
            }
        }
        // Flush router batching windows every tick so a held tail chunk
        // cannot stall the transfer.
        for d in fwd.flush(t) {
            to_b.entry(d.time).or_default().push(d.frame);
        }
        if b_heard {
            for p in b.pump(t).expect("pure-ack endpoint has no retry budget") {
                for (at, frame) in rev.transmit(t, p.bytes.to_vec()) {
                    to_a.entry(at).or_default().push(frame);
                }
            }
        }
        if a.outbound_done() {
            completed = true;
            elapsed = t;
            break;
        }
    }
    TransferSummary {
        delivered_bytes: b.received_elements(),
        total_bytes: PAYLOAD_BYTES as u64,
        elapsed_ns: elapsed,
        completed,
        timer_retransmits: a.reliability().timer_retransmits,
    }
}

fn observed(profile: Profile, seed: u64) -> (TransferSummary, Arc<RecordingSink>) {
    let sink = RecordingSink::with_capacity(1 << 16);
    let summary = drive(profile, seed, sink.clone());
    (summary, sink)
}

fn row(profile: Profile, seed: u64) -> LineageRow {
    let (summary, sink) = observed(profile, seed);
    let (_, sink2) = observed(profile, seed);
    let lineage = sink.lineage();
    let json = lineage.to_json();
    let deterministic = json == sink2.lineage().to_json()
        && sink.span_json_lines() == sink2.span_json_lines()
        && sink.snapshot() == sink2.snapshot();
    let snap = sink.snapshot();
    let quantiles = DELAY_METRICS
        .iter()
        .map(|&m| match snap.histogram(m) {
            Some(h) => (m, h.p50(), h.p90(), h.p99()),
            None => (m, 0, 0, 0),
        })
        .collect();
    let records = sink.span_records();
    LineageRow {
        profile: profile.name(),
        summary,
        chunks: lineage.chunks.len(),
        spans: records.len(),
        links: sink.span_links().len(),
        unclosed: records.iter().filter(|r| r.close_ns.is_none()).count(),
        orphan_closes: sink.span_orphan_closes(),
        deterministic,
        budget: lineage.delay_budget(),
        quantiles,
        json,
        text: lineage.render_text(),
    }
}

/// Runs the whole profile sweep under one seed, each profile replayed
/// twice for the byte-identity check.
pub fn run(seed: u64) -> LineageResult {
    LineageResult {
        seed,
        rows: Profile::ALL.iter().map(|&p| row(p, seed)).collect(),
    }
}

impl LineageRow {
    /// The row's total attributed delay, ns.
    pub fn attributed_ns(&self) -> u64 {
        self.budget.iter().map(|(_, total, _)| total).sum()
    }
}

impl LineageResult {
    /// Acceptance: every profile replayed byte-identically with no orphan
    /// closes and delivered every byte; every profile recorded spans; the
    /// clean profile dropped nothing; the fragmenting profile recorded
    /// parent→child split links; and at least one lossy profile shows
    /// dropped chunks as unclosed spans.
    pub fn passes(&self) -> bool {
        self.rows.iter().all(|r| {
            r.deterministic
                && r.orphan_closes == 0
                && r.spans > 0
                && r.summary.completed
                && r.summary.delivered_bytes == r.summary.total_bytes
        }) && self
            .rows
            .iter()
            .any(|r| r.profile == "clean" && r.unclosed == 0)
            && self
                .rows
                .iter()
                .any(|r| r.profile == "fragmenting" && r.links > 0)
            && self.rows.iter().any(|r| r.unclosed > 0)
    }
}

impl fmt::Display for LineageResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== lineage — label-keyed lifecycle spans per profile (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {:<16} {:>7} {:>7} {:>6} {:>9} {:>8} {:>12} {:>9}",
            "profile", "chunks", "spans", "links", "unclosed", "rto-rtx", "attrib ms", "replay"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<16} {:>7} {:>7} {:>6} {:>9} {:>8} {:>12.3} {:>9}",
                r.profile,
                r.chunks,
                r.spans,
                r.links,
                r.unclosed,
                r.summary.timer_retransmits,
                r.attributed_ns() as f64 / 1e6,
                if r.deterministic {
                    "identical"
                } else {
                    "DIVERGED"
                },
            )?;
        }
        writeln!(f, "--- delay budget (clean profile) ---")?;
        if let Some(r) = self.rows.iter().find(|r| r.profile == "clean") {
            for (metric, total, count) in &r.budget {
                writeln!(f, "  {metric:<28} {total:>12} ns over {count} spans")?;
            }
        }
        writeln!(f, "--- lineage excerpt (fragmenting profile) ---")?;
        if let Some(r) = self.rows.iter().find(|r| r.profile == "fragmenting") {
            let lines: Vec<&str> = r.text.lines().collect();
            for l in lines.iter().take(24) {
                writeln!(f, "{l}")?;
            }
            if lines.len() > 24 {
                writeln!(f, "  ... {} lineage lines elided ...", lines.len() - 24)?;
            }
        }
        Ok(())
    }
}

/// Renders the sweep as the `BENCH_lineage.json` latency-attribution
/// record. Every value is a virtual-clock integer, so the file is exact:
/// the `bench-check` gate diffs a regeneration against the committed copy
/// byte for byte (zero tolerance).
pub fn bench_json(r: &LineageResult, describe: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    out.push_str(&super::benchjson::meta_json(
        "label-keyed-lifecycle-spans",
        "cargo run --release --bin experiments lineage (or: just lineage)",
        describe,
    ));
    let _ = writeln!(
        out,
        "  \"workload\": \"{} bytes per profile, mtu {}, virtual clock, tick {} ns; each profile replayed twice and byte-compared\",",
        PAYLOAD_BYTES, MTU, TICK_NS
    );
    let _ = writeln!(out, "  \"seed\": \"{:#x}\",", r.seed);
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            let mut s = format!(
                "    {{\"profile\": \"{}\", \"delivered_bytes\": {}, \"elapsed_ns\": {}, \"chunks\": {}, \"spans\": {}, \"links\": {}, \"unclosed\": {}, \"orphan_closes\": {}, \"timer_retransmits\": {}, \"deterministic\": {}, \"budget\": {{",
                row.profile,
                row.summary.delivered_bytes,
                row.summary.elapsed_ns,
                row.chunks,
                row.spans,
                row.links,
                row.unclosed,
                row.orphan_closes,
                row.summary.timer_retransmits,
                row.deterministic,
            );
            for (i, (metric, total, count)) in row.budget.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{metric}\": {{\"total_ns\": {total}, \"spans\": {count}}}");
            }
            s.push_str("}, \"quantiles\": {");
            for (i, (metric, p50, p90, p99)) in row.quantiles.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{metric}\": {{\"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99}}}");
            }
            s.push_str("}}");
            s
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_profile_lineage_is_deterministic_and_fully_attributed() {
        let r = row(Profile::Clean, 0xC0451);
        assert!(r.deterministic, "clean profile replay diverged");
        assert_eq!(r.orphan_closes, 0);
        assert_eq!(r.unclosed, 0, "clean profile cannot drop chunks");
        assert_eq!(r.summary.delivered_bytes, PAYLOAD_BYTES as u64);
        // Every data chunk crossed the one link: network time was recorded.
        let network = r
            .budget
            .iter()
            .find(|(m, _, _)| *m == "span.delay.network_ns")
            .unwrap();
        assert!(network.1 > 0 && network.2 > 0);
    }

    #[test]
    fn fragmenting_profile_records_split_links() {
        let r = row(Profile::Fragmenting, 0xC0451);
        assert!(r.links > 0, "narrow router must split and link chunks");
        assert!(r.json.contains("\"children\": [["));
        assert!(r.text.contains("split child"));
    }
}
