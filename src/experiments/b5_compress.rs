//! B5: header-compression ablation (Appendix A).
//!
//! The same framed workload is encoded under each invertible header form —
//! full fixed-field, implicit `T.ID`, signalled `SIZE`, both, and the
//! intra-packet delta codec — and the per-chunk header cost compared. All
//! transforms are verified to round-trip (invertibility is the Appendix A
//! requirement).

use std::fmt;

use chunks_core::chunk::Chunk;
use chunks_core::compress::{
    decode_header_form, decode_packet_delta, encode_header_form, encode_packet_delta, implicit_tid,
    HeaderForm, SignalledContext, SnRegenDecoder, SnRegenEncoder,
};
use chunks_core::label::ChunkType;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_transport::{AlfFrame, ConnectionParams, Framer};
use chunks_wsc::InvariantLayout;

/// Result row for one header form.
#[derive(Clone, Debug)]
pub struct B5Row {
    /// Form name.
    pub form: &'static str,
    /// Total header bytes for the workload.
    pub header_bytes: usize,
    /// Average header bytes per chunk.
    pub per_chunk: f64,
    /// Savings versus the full form.
    pub savings_pct: f64,
    /// Round-trip verified.
    pub invertible: bool,
}

/// Full B5 result.
pub struct B5Result {
    /// Number of chunks in the workload.
    pub chunks: usize,
    /// Payload bytes in the workload.
    pub payload_bytes: usize,
    /// Rows per form.
    pub rows: Vec<B5Row>,
}

impl fmt::Display for B5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B5 — header compression (Appendix A): {} chunks, {} payload bytes ===",
            self.chunks, self.payload_bytes
        )?;
        writeln!(
            f,
            "  {:<22} {:>13} {:>11} {:>9} {:>11}",
            "form", "header bytes", "per chunk", "savings", "invertible"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>13} {:>11.1} {:>8.1}% {:>11}",
                r.form,
                r.header_bytes,
                r.per_chunk,
                r.savings_pct,
                if r.invertible { "yes" } else { "NO" }
            )?;
        }
        Ok(())
    }
}

/// Builds a realistic workload: a stream framed into TPDUs and ALF frames,
/// with conforming labels (`T.ID = C.SN − T.SN`) so the implicit form
/// applies.
fn workload() -> Vec<Chunk> {
    let params = ConnectionParams {
        conn_id: 9,
        elem_size: 4,
        initial_csn: 1_000,
        tpdu_elements: 256,
    };
    let mut framer = Framer::new(params, InvariantLayout::default());
    let data = vec![0xA5u8; 16 * 1024];
    let elements = (data.len() / 4) as u32;
    // 64-element application frames: four chunks per 256-element TPDU, the
    // shape a real mixed framing produces.
    let alf: Vec<AlfFrame> = (0..64)
        .map(|i| AlfFrame {
            id: 0x100 + i,
            len_elements: elements / 64,
        })
        .collect();
    let tpdus = framer.frame_stream(&data, &alf, false);
    let mut chunks: Vec<Chunk> = tpdus.iter().flat_map(|t| t.all_chunks()).collect();
    for c in &mut chunks {
        c.header.tpdu.id = implicit_tid(c.header.conn.sn, c.header.tpdu.sn);
    }
    chunks
}

/// Runs B5.
pub fn run() -> B5Result {
    let chunks = workload();
    let payload_bytes: usize = chunks.iter().map(|c| c.payload.len()).sum();
    let mut ctx = SignalledContext::new();
    ctx.signal_size(ChunkType::Data, 4);
    ctx.signal_size(ChunkType::ErrorDetection, 8);
    ctx.signal_size(ChunkType::Signal, 16);
    ctx.signal_size(ChunkType::Ack, 16);

    let full_total = chunks.len() * WIRE_HEADER_LEN;
    let mut rows = Vec::new();
    for (name, form) in [
        ("full fixed-field", HeaderForm::Full),
        ("implicit T.ID", HeaderForm::ImplicitTid),
        ("signalled SIZE", HeaderForm::SizeElided),
        ("compact (both)", HeaderForm::Compact),
    ] {
        let mut bytes = 0usize;
        let mut invertible = true;
        for c in &chunks {
            let mut buf = Vec::new();
            encode_header_form(&c.header, form, &ctx, &mut buf).expect("conforming labels");
            bytes += buf.len();
            let (h, _) = decode_header_form(&buf, form, &ctx).expect("decodable");
            invertible &= h == c.header;
        }
        rows.push(B5Row {
            form: name,
            header_bytes: bytes,
            per_chunk: bytes as f64 / chunks.len() as f64,
            savings_pct: (full_total - bytes) as f64 * 100.0 / full_total as f64,
            invertible,
        });
    }

    // Intra-packet delta: group chunks in packet-sized runs of 8 and encode
    // each run; header cost = encoded − payload.
    let mut delta_header = 0usize;
    let mut invertible = true;
    for group in chunks.chunks(8) {
        let buf = encode_packet_delta(group);
        let payload: usize = group.iter().map(|c| c.payload.len()).sum();
        delta_header += buf.len() - payload;
        invertible &= decode_packet_delta(&buf).as_deref() == Ok(group);
    }
    rows.push(B5Row {
        form: "intra-packet delta",
        header_bytes: delta_header,
        per_chunk: delta_header as f64 / chunks.len() as f64,
        savings_pct: (full_total - delta_header) as f64 * 100.0 / full_total as f64,
        invertible,
    });

    // SN regeneration (in-order channels only): SNs elided except at
    // resynchronization points.
    let mut enc = SnRegenEncoder::new(64);
    let mut dec = SnRegenDecoder::new();
    let mut regen_bytes = 0usize;
    let mut invertible = true;
    for c in &chunks {
        let mut buf = Vec::new();
        enc.encode(&c.header, &mut buf);
        regen_bytes += buf.len();
        let (h, _) = dec.decode(&buf).expect("in-order stream decodes");
        invertible &= h == c.header;
    }
    rows.push(B5Row {
        form: "SN regeneration",
        header_bytes: regen_bytes,
        per_chunk: regen_bytes as f64 / chunks.len() as f64,
        savings_pct: (full_total - regen_bytes) as f64 * 100.0 / full_total as f64,
        invertible,
    });

    B5Result {
        chunks: chunks.len(),
        payload_bytes,
        rows,
    }
}
