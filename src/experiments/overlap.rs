//! Adversarial overlap sweep: overlap policy × reassembly attack × budget.
//!
//! Every cell sends one labelled transfer through a [`ByzantineRouter`]
//! running one of the three overlap-injection attacks (a duplicate at a
//! shifted offset, an overlapping rewrite with flipped payload bytes, a
//! tiny-fragment flood), receives it under one of the three
//! [`OverlapPolicy`] settings, with and without a [`ResourceBudget`], and
//! proves three things per cell:
//!
//! * **equivalence** — the serial [`Receiver`] and the
//!   [`ParallelReceiver`] (1 and 4 workers, virtual engine) end
//!   byte-identical: same application bytes, same event sequence, same
//!   statistics;
//! * **integrity** — no TPDU is ever delivered with bytes that differ from
//!   what the sender submitted, under *any* policy: WSC-2 verification, not
//!   the overlap policy, is the integrity authority;
//! * **bounded memory** — with the budget on, the held-bytes high-water
//!   stays at or under the configured cap even while the flood attack runs
//!   (and without the budget, the flood provably exceeds that cap).
//!
//! Everything rides the virtual clock and seeded RNGs, so the sweep is
//! reproducible bit-for-bit and `BENCH_overlap.json` is an exact-class
//! regression gate.

use std::fmt;

use chunks_core::packet::Packet;
use chunks_netsim::{ByzantineConfig, ByzantineRouter, PacketTransform};
use chunks_transport::{
    ConnSpec, ConnectionParams, DeliveryMode, Engine, GlobalBudget, ParallelReceiver, Receiver,
    ResourceBudget, RxEvent, RxStats, Schedule, Sender, SenderConfig,
};
use chunks_vreasm::OverlapPolicy;
use chunks_wsc::InvariantLayout;

/// Bytes transferred per cell.
pub const PAYLOAD_BYTES: usize = 2_048;
/// Elements per TPDU (element size is 1 byte).
const TPDU_ELEMENTS: u32 = 32;
/// Receiver address-space capacity, in elements.
const CAPACITY: u64 = 1 << 12;
/// The one connection of the sweep.
const CONN: u32 = 1;

/// Held-bytes cap of the capped-budget column. The flood attack must
/// provably exceed this without the budget and stay at or under it with.
pub const BUDGET_BYTES: u64 = 256;
/// Open-group cap of the capped-budget column.
pub const BUDGET_GROUPS: usize = 32;
/// Tracked-fragment cap of the capped-budget column.
pub const BUDGET_FRAGS: usize = 96;

/// The three overlap-injection attacks (see
/// [`chunks_netsim::ByzantineConfig`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Attack {
    /// Data chunks duplicated at a shifted offset inside their own group.
    ShiftedDup,
    /// Data chunks re-sent with identical labels and flipped payload bytes.
    Rewrite,
    /// Bursts of single-element fragments opening never-completing groups.
    TinyFlood,
}

impl Attack {
    /// All attacks, sweep order.
    pub const ALL: [Attack; 3] = [Attack::ShiftedDup, Attack::Rewrite, Attack::TinyFlood];

    /// Row label.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::ShiftedDup => "shifted-duplicate",
            Attack::Rewrite => "conflicting-rewrite",
            Attack::TinyFlood => "tiny-fragment-flood",
        }
    }

    fn config(&self) -> ByzantineConfig {
        match self {
            Attack::ShiftedDup => ByzantineConfig::shifted_duplicator(0.25),
            Attack::Rewrite => ByzantineConfig::rewriter(0.25),
            // Base 2200 keeps every flood group inside CAPACITY while
            // sitting far beyond the 2048 payload elements, so no flood
            // fragment can ever complete a legitimate group.
            Attack::TinyFlood => ByzantineConfig::tiny_flooder(1.0, 8, 2_200),
        }
    }
}

/// One cell's outcome.
#[derive(Clone, PartialEq, Debug)]
pub struct OverlapRow {
    /// Overlap policy in force at the receiver.
    pub policy: &'static str,
    /// Attack the middlebox ran.
    pub attack: &'static str,
    /// Budget column: `"unlimited"` or `"capped"`.
    pub budget: &'static str,
    /// Attack chunks the middlebox injected.
    pub injected: u64,
    /// Fraction of payload bytes verified and delivered (no retransmission
    /// loop runs, so condemned TPDUs stay undelivered).
    pub delivered_frac: f64,
    /// TPDUs condemned by any detection channel.
    pub failed_tpdus: u64,
    /// Overlaps with differing bytes the receiver diagnosed.
    pub overlap_conflicts: u64,
    /// Groups the budget evicted (LRU by virtual clock).
    pub evictions: u64,
    /// Payload bytes the budget shed at admission.
    pub shed_bytes: u64,
    /// Highest held+staged byte count observed after any packet.
    pub held_high_water: u64,
    /// The receiver's final acknowledgment carried the back-pressure bit.
    pub pressure: bool,
    /// Serial receiver and 1-/4-worker parallel pipelines ended
    /// byte-identical (bytes, events, statistics).
    pub parallel_identical: bool,
    /// Delivered TPDUs whose bytes differ from the sender's submission —
    /// must be zero under every policy.
    pub corrupted_deliveries: u64,
}

/// All rows of one seed's sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct OverlapResult {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// policy-major × attack × budget rows.
    pub rows: Vec<OverlapRow>,
}

impl OverlapResult {
    /// Acceptance for the whole sweep (see the module docs' three proofs).
    pub fn passes(&self) -> bool {
        let all = |f: fn(&OverlapRow) -> bool| self.rows.iter().all(f);
        let cell = |attack: &'static str, budget: &'static str| {
            self.rows
                .iter()
                .filter(move |r| r.attack == attack && r.budget == budget)
        };
        // Equivalence and integrity hold in every cell.
        all(|r| r.parallel_identical)
            && all(|r| r.corrupted_deliveries == 0)
            // Every capped cell respects the byte cap...
            && self
                .rows
                .iter()
                .filter(|r| r.budget == "capped")
                .all(|r| r.held_high_water <= BUDGET_BYTES)
            // ...which the unbudgeted flood provably exceeds,
            && cell("tiny-fragment-flood", "unlimited").all(|r| r.held_high_water > BUDGET_BYTES)
            // and the budgeted flood visibly degrades (evicts or sheds) and
            // signals back-pressure instead of failing silently.
            && cell("tiny-fragment-flood", "capped")
                .all(|r| r.evictions + r.shed_bytes > 0 && r.pressure)
            // The rewrite attack is diagnosed under every policy, and
            // first-wins (which keeps the original bytes) still delivers
            // the whole transfer — WSC-2 confirms the held copy.
            && cell("conflicting-rewrite", "unlimited").all(|r| r.overlap_conflicts > 0)
            && self
                .rows
                .iter()
                .filter(|r| r.attack == "conflicting-rewrite" && r.policy == "first-wins")
                .all(|r| r.delivered_frac == 1.0)
    }
}

impl fmt::Display for OverlapResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== overlap — reassembly hardening under attack (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {:<11} {:<20} {:<9} {:>6} {:>7} {:>6} {:>9} {:>6} {:>6} {:>8} {:>5} {:>5}",
            "policy",
            "attack",
            "budget",
            "inject",
            "deliv%",
            "fail",
            "conflicts",
            "evict",
            "shed",
            "held-max",
            "press",
            "par=="
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<11} {:<20} {:<9} {:>6} {:>6.0}% {:>6} {:>9} {:>6} {:>6} {:>8} {:>5} {:>5}",
                r.policy,
                r.attack,
                r.budget,
                r.injected,
                r.delivered_frac * 100.0,
                r.failed_tpdus,
                r.overlap_conflicts,
                r.evictions,
                r.shed_bytes,
                r.held_high_water,
                if r.pressure { "yes" } else { "no" },
                if r.parallel_identical { "ok" } else { "DIFF" },
            )?;
        }
        Ok(())
    }
}

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: CONN,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: TPDU_ELEMENTS,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(2048)
}

fn payload() -> Vec<u8> {
    (0..PAYLOAD_BYTES).map(|i| (i * 7 + 3) as u8).collect()
}

fn budget_for(capped: bool) -> ResourceBudget {
    if capped {
        ResourceBudget::with_caps(BUDGET_BYTES, BUDGET_GROUPS, BUDGET_FRAGS)
            .with_global(GlobalBudget::new(2 * BUDGET_BYTES))
    } else {
        ResourceBudget::unlimited()
    }
}

/// The post-attack frame stream of one attack under one seed. The budget
/// column never perturbs this: capped and unlimited cells of one attack see
/// the identical byte stream.
fn attacked_frames(attack: Attack, seed: u64) -> (Vec<Vec<u8>>, u64) {
    let mix = attack.name().bytes().fold(seed, |h, b| {
        h.wrapping_mul(0x100000001B3).wrapping_add(b as u64)
    });
    let mut tx = Sender::new(SenderConfig {
        params: params(),
        layout: layout(),
        mtu: 256,
        min_tpdu_elements: 4,
        max_tpdu_elements: 64,
    });
    tx.submit_simple(&payload(), 0xA, false);
    let mut byz = ByzantineRouter::new(attack.config(), mix);
    let frames: Vec<Vec<u8>> = tx
        .packets_for_pending()
        .expect("payload fits the window")
        .iter()
        .enumerate()
        .flat_map(|(i, p)| byz.ingest_at(i as u64, p.bytes.to_vec()))
        .collect();
    let injected = byz.stats.shifted_dups + byz.stats.rewrites + byz.stats.tiny_fragments;
    (frames, injected)
}

/// Everything observable about one receive pass, for the equivalence check.
type Trace = (Vec<u8>, Vec<RxEvent>, RxStats);

fn serial_pass(frames: &[Vec<u8>], policy: OverlapPolicy, capped: bool) -> (Trace, bool) {
    let mut rx = Receiver::new(DeliveryMode::Reassemble, params(), layout(), CAPACITY)
        .with_policy(policy)
        .with_budget(budget_for(capped));
    let mut events = Vec::new();
    for (i, f) in frames.iter().enumerate() {
        events.extend(rx.handle_packet(
            &Packet {
                bytes: f.clone().into(),
            },
            i as u64,
        ));
    }
    let pressure = rx.make_ack().pressure;
    ((rx.app_data().to_vec(), events, rx.stats), pressure)
}

fn parallel_pass(frames: &[Vec<u8>], policy: OverlapPolicy, capped: bool, workers: usize) -> Trace {
    let spec = ConnSpec::new(params(), layout(), DeliveryMode::Reassemble, CAPACITY)
        .with_policy(policy)
        .with_budget(budget_for(capped));
    let mut pr = ParallelReceiver::new(workers, Engine::Virtual(Schedule::Fair), vec![spec]);
    for (i, f) in frames.iter().enumerate() {
        pr.ingest(
            &Packet {
                bytes: f.clone().into(),
            },
            i as u64,
        );
    }
    let mut out = pr.finish();
    let report = out
        .conns
        .remove(&CONN)
        .expect("the connection is registered");
    (
        report.receiver.app_data().to_vec(),
        report.events,
        report.receiver.stats,
    )
}

/// Runs one cell.
fn run_cell(policy: OverlapPolicy, attack: Attack, capped: bool, seed: u64) -> OverlapRow {
    let (frames, injected) = attacked_frames(attack, seed);
    let (serial, pressure) = serial_pass(&frames, policy, capped);
    let parallel_identical = [1usize, 4]
        .iter()
        .all(|&w| parallel_pass(&frames, policy, capped, w) == serial);

    let want = payload();
    let (app, events, stats) = &serial;
    let mut delivered_elems = 0u64;
    let mut failed = 0u64;
    let mut corrupted = 0u64;
    for e in events {
        match e {
            RxEvent::TpduDelivered { start, elements } => {
                let (lo, hi) = (*start as usize, (*start + *elements) as usize);
                // Delivered groups must sit inside the submitted payload and
                // carry exactly the sender's bytes — under every policy.
                if hi > want.len() || app[lo..hi] != want[lo..hi] {
                    corrupted += 1;
                } else {
                    delivered_elems += elements;
                }
            }
            RxEvent::TpduFailed { .. } => failed += 1,
            _ => {}
        }
    }
    OverlapRow {
        policy: policy.as_str(),
        attack: attack.name(),
        budget: if capped { "capped" } else { "unlimited" },
        injected,
        delivered_frac: delivered_elems as f64 / PAYLOAD_BYTES as f64,
        failed_tpdus: failed,
        overlap_conflicts: stats.overlap_conflicts,
        evictions: stats.evictions,
        shed_bytes: stats.shed_bytes,
        held_high_water: stats.peak_buffered_bytes,
        pressure,
        parallel_identical,
        corrupted_deliveries: corrupted,
    }
}

/// Runs the full policy × attack × budget sweep under one seed.
pub fn run(seed: u64) -> OverlapResult {
    let mut rows = Vec::new();
    for policy in OverlapPolicy::ALL {
        for attack in Attack::ALL {
            for capped in [false, true] {
                rows.push(run_cell(policy, attack, capped, seed));
            }
        }
    }
    OverlapResult { seed, rows }
}

/// Renders the sweep as the exact-class `BENCH_overlap.json` record.
pub fn bench_json(r: &OverlapResult, describe: &str) -> String {
    use super::benchjson::meta_json;
    let mut out = String::from("{\n");
    out.push_str(&meta_json(
        "overlap-hardening-under-attack",
        "cargo run --release --bin experiments overlap (or: just soak-overlap)",
        describe,
    ));
    out.push_str(&format!(
        "  \"workload\": \"{} bytes, {}-element TPDUs, overlap attacks injected on the wire; capped budget = {} bytes / {} groups / {} fragments\",\n",
        PAYLOAD_BYTES, TPDU_ELEMENTS, BUDGET_BYTES, BUDGET_GROUPS, BUDGET_FRAGS
    ));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"policy\": \"{}\", \"attack\": \"{}\", \"budget\": \"{}\", \"injected\": {}, \"delivered_frac\": {:.3}, \"failed_tpdus\": {}, \"overlap_conflicts\": {}, \"evictions\": {}, \"shed_bytes\": {}, \"held_high_water\": {}, \"pressure\": {}, \"parallel_identical\": {}, \"corrupted_deliveries\": {}}}",
                row.policy,
                row.attack,
                row.budget,
                row.injected,
                row.delivered_frac,
                row.failed_tpdus,
                row.overlap_conflicts,
                row.evictions,
                row.shed_bytes,
                row.held_high_water,
                row.pressure,
                row.parallel_identical,
                row.corrupted_deliveries,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SEED;

    #[test]
    fn sweep_passes_and_is_deterministic() {
        let r = run(SEED);
        assert!(r.passes(), "sweep acceptance failed:\n{r}");
        assert_eq!(r, run(SEED), "sweep must reproduce bit-for-bit");
        assert_eq!(r.rows.len(), 18, "3 policies × 3 attacks × 2 budgets");
    }

    #[test]
    fn flood_cell_held_bytes_stay_under_the_configured_budget() {
        let r = run(SEED);
        for row in r
            .rows
            .iter()
            .filter(|r| r.attack == "tiny-fragment-flood" && r.budget == "capped")
        {
            assert!(
                row.held_high_water <= BUDGET_BYTES,
                "{}/{}: high-water {} exceeds cap {}",
                row.policy,
                row.attack,
                row.held_high_water,
                BUDGET_BYTES
            );
            assert!(row.pressure, "budgeted flood must signal back-pressure");
        }
    }

    #[test]
    fn corrupting_overlaps_never_deliver_under_any_policy() {
        let r = run(SEED);
        for row in &r.rows {
            assert_eq!(
                row.corrupted_deliveries, 0,
                "{}/{}/{}: corrupted bytes reached the application",
                row.policy, row.attack, row.budget
            );
        }
    }
}
