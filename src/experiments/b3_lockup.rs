//! B3: reassembly-buffer lock-up (§3.3, citing Kent–Mogul).
//!
//! Many 4 KiB datagrams are fragmented to a 576-byte MTU and their
//! fragments interleaved (multipath mixing) with loss, so datagrams tend to
//! be simultaneously incomplete. An IP receiver must hold fragments in a
//! finite reassembly buffer; when it fills with incomplete datagrams, new
//! fragments are dropped — lock-up. The chunk receiver places data on
//! arrival and needs no such buffer, so the same workload produces zero
//! buffer occupancy and zero lock-up drops.

use std::fmt;

use bytes::Bytes;
use chunks_baseline::ip::{fragment, IpPacket, IpReassembler};
use chunks_core::chunk::byte_chunk;
use chunks_core::frag::split_to_fit;
use chunks_core::label::FramingTuple;
use chunks_core::wire::WIRE_HEADER_LEN;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Result row for one buffer capacity.
#[derive(Clone, Copy, Debug)]
pub struct B3Row {
    /// IP reassembly buffer capacity in bytes.
    pub capacity: u64,
    /// Fragments dropped by the full buffer (lock-up symptom).
    pub ip_lockup_drops: u64,
    /// Datagrams the IP receiver completed.
    pub ip_completed: u64,
    /// Peak bytes the IP receiver buffered.
    pub ip_peak: u64,
    /// Chunk receiver staging bytes (always zero: immediate placement).
    pub chunk_buffer: u64,
    /// Chunk fragments dropped for lack of buffer (always zero).
    pub chunk_drops: u64,
    /// PDUs the chunk receiver completed virtually.
    pub chunk_completed: u64,
}

/// Full B3 result.
pub struct B3Result {
    /// Number of PDUs in the workload.
    pub pdus: usize,
    /// PDU size in bytes.
    pub pdu_bytes: usize,
    /// Loss rate applied to fragments.
    pub loss: f64,
    /// Rows per capacity.
    pub rows: Vec<B3Row>,
}

impl fmt::Display for B3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B3 — reassembly-buffer lock-up: {} x {} B PDUs, {}% fragment loss ===",
            self.pdus,
            self.pdu_bytes,
            self.loss * 100.0
        )?;
        writeln!(
            f,
            "  {:>10} | {:>12} {:>12} {:>10} | {:>12} {:>12}",
            "buffer", "IP lockups", "IP complete", "IP peak", "chunk drops", "chunk complete"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>8} B | {:>12} {:>12} {:>8} B | {:>12} {:>12}",
                r.capacity,
                r.ip_lockup_drops,
                r.ip_completed,
                r.ip_peak,
                r.chunk_drops,
                r.chunk_completed
            )?;
        }
        Ok(())
    }
}

/// Runs B3.
pub fn run(pdus: usize, pdu_bytes: usize, loss: f64, seed: u64) -> B3Result {
    let mtu = 576;
    // Build the interleaved, lossy fragment arrival order once per system.
    // IP side: fragments of `pdus` datagrams.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ip_frags: Vec<IpPacket> = Vec::new();
    for id in 0..pdus as u32 {
        let payload: Vec<u8> = (0..pdu_bytes).map(|i| (i + id as usize) as u8).collect();
        ip_frags.extend(fragment(&IpPacket::datagram(id, Bytes::from(payload)), mtu).unwrap());
    }
    ip_frags.shuffle(&mut rng);
    let ip_arrivals: Vec<IpPacket> = ip_frags
        .into_iter()
        .filter(|_| rng.random::<f64>() >= loss)
        .collect();

    // Chunk side: the same PDUs as chunk TPDUs, identically fragmented,
    // shuffled with the same seed discipline.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chunk_frags = Vec::new();
    for id in 0..pdus as u32 {
        let payload: Vec<u8> = (0..pdu_bytes).map(|i| (i + id as usize) as u8).collect();
        let whole = byte_chunk(
            FramingTuple::new(1, id.wrapping_mul(pdu_bytes as u32), false),
            FramingTuple::new(id, 0, true),
            FramingTuple::new(id, 0, true),
            &payload,
        );
        chunk_frags.extend(split_to_fit(whole, mtu + WIRE_HEADER_LEN).unwrap());
    }
    chunk_frags.shuffle(&mut rng);
    let chunk_arrivals: Vec<_> = chunk_frags
        .into_iter()
        .filter(|_| rng.random::<f64>() >= loss)
        .collect();

    let mut rows = Vec::new();
    for capacity in [8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10] {
        // IP receiver with a finite buffer.
        let mut reasm = IpReassembler::new(capacity);
        let mut peak = 0;
        for p in &ip_arrivals {
            reasm.offer(p.clone());
            peak = peak.max(reasm.used());
        }

        // Chunk receiver: immediate placement into the application space;
        // per-PDU virtual reassembly only (a tracker, no payload buffer).
        let mut trackers: std::collections::HashMap<u32, chunks_vreasm::PduTracker> =
            std::collections::HashMap::new();
        let mut app = vec![0u8; pdus * pdu_bytes + 256];
        let mut completed = 0u64;
        for c in &chunk_arrivals {
            let t = trackers.entry(c.header.tpdu.id).or_default();
            let was_complete = t.is_complete();
            if t.offer(
                c.header.tpdu.sn as u64,
                c.header.len as u64,
                c.header.tpdu.st,
            ) == chunks_vreasm::TrackEvent::Accepted
            {
                let base = c.header.tpdu.id as usize * pdu_bytes + c.header.tpdu.sn as usize;
                app[base..base + c.payload.len()].copy_from_slice(&c.payload);
            }
            if !was_complete && t.is_complete() {
                completed += 1;
            }
        }

        rows.push(B3Row {
            capacity,
            ip_lockup_drops: reasm.lockup_drops,
            ip_completed: reasm.completed,
            ip_peak: peak,
            chunk_buffer: 0,
            chunk_drops: 0,
            chunk_completed: completed,
        });
    }
    B3Result {
        pdus,
        pdu_bytes,
        loss,
        rows,
    }
}
