//! Always-on observability overhead: the cost of leaving telemetry armed
//! at line rate — the numbers behind `BENCH_obs.json`.
//!
//! Three sink modes over the PR 8 hotpath workload:
//!
//! * **obs-off** — the [`NullSink`](chunks_obs::NullSink) baseline: every
//!   instrumentation site reduces to one branch on a cached bool.
//! * **on-null** — an [`AlwaysOnSink`]: sharded counter blocks
//!   (owner-writes, no lock-prefix RMW on the hot path), the flight
//!   recorder armed, per-chunk trace events declined (`verbose() = false`).
//!   This is the production configuration the ≤5% gate reads.
//! * **on-recording** — a [`RecordingSink`]: full per-chunk events, spans
//!   and the observed decode path (which materialises payload copies).
//!   Reported for contrast; this is the debug configuration.
//!
//! Three legs per mode: the **serial** zero-copy receiver, the **parallel**
//! virtual-engine dispatcher, and the **demux** connection-table path (the
//! million-connection soak's serial twin, at bench scale). Modes are
//! interleaved within each repetition round and the minimum wall time per
//! mode is compared, so host noise hits all modes alike. Steady-state
//! allocations ride the binary's counting global allocator exactly as in
//! the hotpath sweep.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use chunks_core::packet::Packet;
use chunks_obs::{AlwaysOnSink, ObsSink, RecordingSink};
use chunks_transport::{ConnectionDemux, DeliveryMode, Receiver};

use super::hotpath::{
    self, alloc_count, BATCH, MESSAGE_BYTES, PAR_CONNS, PAR_WORKERS, TPDU_ELEMENTS,
};

/// Interleaved repetition rounds (minimum wall time per mode is reported;
/// the overhead ratio is the median of per-round paired ratios).
pub const REPEATS: usize = 11;
/// The sink modes, in sweep order.
pub const MODES: [&str; 3] = ["obs-off", "on-null", "on-recording"];
/// The legs, in sweep order.
pub const LEGS: [&str; 3] = ["serial", "parallel", "demux"];

/// One (leg, mode) cell.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// serial / parallel / demux.
    pub leg: &'static str,
    /// obs-off / on-null / on-recording.
    pub mode: &'static str,
    /// Minimum wall time over the interleaved rounds, ns.
    pub wall_ns: u64,
    /// Wire MiB per second over that wall time.
    pub mib_s: f64,
    /// Wall-time delta vs the same leg's obs-off cell, percent: the median
    /// of per-round *paired* ratios (each mode is timed back-to-back with
    /// its baseline inside one round, so slow drift in host load cancels).
    /// Negative means faster than the baseline — residual noise.
    pub overhead_pct: f64,
    /// Worst steady-state allocation count over the rounds; -1 when the
    /// counting allocator is not installed.
    pub steady_allocs: i64,
    /// Verified application bytes after the replay.
    pub delivered_bytes: u64,
}

/// The whole sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ObsOverheadResult {
    /// Seed the streams were drawn from.
    pub seed: u64,
    /// Whether allocation counting was active.
    pub alloc_counting: bool,
    /// True when every on-null run's sink actually accumulated hot-path
    /// counters (the overhead being compared is real, not a disabled sink).
    pub recorded: bool,
    /// One row per (leg, mode).
    pub rows: Vec<Row>,
}

impl ObsOverheadResult {
    /// The (leg, mode) cell.
    pub fn row(&self, leg: &str, mode: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.leg == leg && r.mode == mode)
    }

    /// Acceptance: full delivery everywhere, the on-null sinks really
    /// recorded, and — on the serial and parallel hotpath legs — always-on
    /// telemetry costs ≤ 5% throughput and (when the counting allocator is
    /// installed) zero steady-state allocations.
    pub fn passes(&self) -> bool {
        let full = self.rows.iter().all(|r| {
            let want = if r.leg == "serial" {
                MESSAGE_BYTES as u64
            } else {
                MESSAGE_BYTES as u64 * PAR_CONNS as u64
            };
            r.delivered_bytes == want
        });
        let cheap = ["serial", "parallel"].iter().all(|leg| {
            self.row(leg, "on-null")
                .map(|r| r.overhead_pct <= 5.0)
                .unwrap_or(false)
        });
        let lean = !self.alloc_counting
            || ["serial", "parallel"].iter().all(|leg| {
                self.row(leg, "on-null")
                    .map(|r| r.steady_allocs == 0)
                    .unwrap_or(false)
            });
        full && self.recorded && cheap && lean
    }
}

impl fmt::Display for ObsOverheadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== obs-overhead — always-on telemetry cost at line rate (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {} KiB messages, {} KiB TPDUs, batches of {}; parallel {} conns x {} workers; min of {} interleaved rounds; alloc counting {}; on-null sinks recorded: {}",
            MESSAGE_BYTES / 1024,
            TPDU_ELEMENTS / 1024,
            BATCH,
            PAR_CONNS,
            PAR_WORKERS,
            REPEATS,
            if self.alloc_counting { "on" } else { "off" },
            self.recorded,
        )?;
        writeln!(
            f,
            "  {:<9} {:<13} {:>10} {:>9} {:>10} {:>12}",
            "leg", "mode", "wall", "MiB/s", "overhead", "steady-alloc"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<9} {:<13} {:>8.2}ms {:>9.1} {:>+9.2}% {:>12}",
                r.leg,
                r.mode,
                r.wall_ns as f64 / 1e6,
                r.mib_s,
                r.overhead_pct,
                r.steady_allocs,
            )?;
        }
        Ok(())
    }
}

/// A fresh sink for `mode`, plus (for on-null) the concrete handle used to
/// verify afterwards that counters actually accumulated.
fn mode_sink(mode: &str) -> (Option<Arc<dyn ObsSink>>, Option<Arc<AlwaysOnSink>>) {
    match mode {
        "obs-off" => (None, None),
        "on-null" => {
            let s = AlwaysOnSink::shared();
            (Some(s.clone()), Some(s))
        }
        "on-recording" => (Some(RecordingSink::with_capacity(1 << 14)), None),
        other => unreachable!("unknown mode {other}"),
    }
}

/// Demux-leg replay: the round-robin interleave of every connection's
/// stream through [`ConnectionDemux::ingest`] — the connection-table path
/// the million-connection soak scales up, at bench scale.
fn run_demux(
    streams: &[Vec<Packet>],
    warm_batches: usize,
    sink: Option<Arc<dyn ObsSink>>,
) -> hotpath::RunOutcome {
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut packets: Vec<Packet> = Vec::new();
    for i in 0..longest {
        for s in streams {
            if let Some(p) = s.get(i) {
                packets.push(p.clone());
            }
        }
    }
    let mut demux = ConnectionDemux::new();
    let tpdus = MESSAGE_BYTES / TPDU_ELEMENTS as usize + 2;
    for id in 1..=PAR_CONNS {
        demux.register(
            id,
            Receiver::new(
                DeliveryMode::Immediate,
                hotpath::params(id),
                hotpath::layout(),
                hotpath::capacity_elements(),
            ),
        );
    }
    if let Some(sink) = sink {
        demux.set_obs(sink);
    }
    for id in 1..=PAR_CONNS {
        demux
            .receiver_mut(id)
            .expect("registered")
            .reserve(tpdus + 8, tpdus * 4 + 64);
    }
    let mut events = Vec::with_capacity(BATCH * 8);
    let mut steady_from = 0u64;
    let begin = Instant::now();
    for (i, batch) in packets.chunks(BATCH).enumerate() {
        if i == warm_batches {
            steady_from = alloc_count::allocs();
        }
        for p in batch {
            demux.ingest(p, i as u64, &mut events);
        }
        events.clear();
    }
    let steady_allocs = alloc_count::allocs() - steady_from;
    let wall_ns = begin.elapsed().as_nanos() as u64;
    let delivered_bytes = (1..=PAR_CONNS)
        .map(|id| demux.receiver(id).expect("registered").verified_prefix())
        .sum();
    hotpath::RunOutcome {
        wall_ns,
        steady_allocs,
        delivered_bytes,
        digests: Vec::new(),
    }
}

/// Runs the sweep under one seed.
pub fn run(seed: u64) -> ObsOverheadResult {
    let counting = alloc_count::active();
    let serial_stream = hotpath::stream(1, seed);
    let serial_wire: u64 = serial_stream.iter().map(|p| p.bytes.len() as u64).sum();
    let serial_batches = serial_stream.len().div_ceil(BATCH);
    let serial_warm = (serial_batches / 4).max(1);

    let streams: Vec<Vec<Packet>> = (1..=PAR_CONNS)
        .map(|id| hotpath::stream(id, seed))
        .collect();
    let par_packets: usize = streams.iter().map(Vec::len).sum();
    let par_wire: u64 = streams
        .iter()
        .flat_map(|s| s.iter())
        .map(|p| p.bytes.len() as u64)
        .sum();
    let par_warm = (par_packets.div_ceil(BATCH) / 4).max(1);

    let mut recorded = true;
    // outcomes[leg][mode] accumulates one RunOutcome per round.
    let mut outcomes: Vec<Vec<Vec<hotpath::RunOutcome>>> = LEGS
        .iter()
        .map(|_| MODES.iter().map(|_| Vec::new()).collect())
        .collect();
    for _round in 0..REPEATS {
        for (li, leg) in LEGS.iter().enumerate() {
            for (mi, mode) in MODES.iter().enumerate() {
                let (sink, on_null) = mode_sink(mode);
                let outcome = match *leg {
                    "serial" => hotpath::run_serial_with(&serial_stream, serial_warm, false, sink),
                    "parallel" => hotpath::run_parallel_with(&streams, par_warm, sink),
                    "demux" => run_demux(&streams, par_warm, sink),
                    other => unreachable!("unknown leg {other}"),
                };
                if let Some(s) = on_null {
                    recorded &= s.snapshot().counter("transport.rx.chunks_accepted") > 0;
                }
                outcomes[li][mi].push(outcome);
            }
        }
    }

    let mut rows = Vec::new();
    for (li, leg) in LEGS.iter().enumerate() {
        let wire = if *leg == "serial" {
            serial_wire
        } else {
            par_wire
        };
        for (mi, mode) in MODES.iter().enumerate() {
            let runs = &outcomes[li][mi];
            let wall_ns = runs.iter().map(|o| o.wall_ns).min().unwrap_or(1);
            let steady = runs.iter().map(|o| o.steady_allocs).max().unwrap_or(0);
            // Median of per-round paired ratios: round r's mode wall over
            // round r's obs-off wall, both measured back to back.
            let mut ratios: Vec<f64> = runs
                .iter()
                .zip(outcomes[li][0].iter())
                .map(|(m, off)| m.wall_ns.max(1) as f64 / off.wall_ns.max(1) as f64)
                .collect();
            ratios.sort_by(|a, b| a.total_cmp(b));
            let median = ratios.get(ratios.len() / 2).copied().unwrap_or(1.0);
            let secs = wall_ns.max(1) as f64 / 1e9;
            rows.push(Row {
                leg,
                mode,
                wall_ns,
                mib_s: wire as f64 / (1024.0 * 1024.0) / secs,
                overhead_pct: (median - 1.0) * 100.0,
                steady_allocs: if counting { steady as i64 } else { -1 },
                delivered_bytes: runs.last().map(|o| o.delivered_bytes).unwrap_or(0),
            });
        }
    }

    ObsOverheadResult {
        seed,
        alloc_counting: counting,
        recorded,
        rows,
    }
}

/// Renders the sweep as the `BENCH_obs.json` record. Wall-clock numbers are
/// host-dependent, so `bench-check` validates this file structurally; the
/// committed on-null rows are additionally gated (≤5% overhead, 0 steady
/// allocations) by `tests/bench_schema.rs`.
pub fn bench_json(r: &ObsOverheadResult, describe: &str) -> String {
    use super::benchjson::meta_json;
    let mut out = String::from("{\n");
    out.push_str(&meta_json(
        "always-on-observability-overhead",
        "cargo run --release --bin experiments obs-overhead (or: just obs-overhead)",
        describe,
    ));
    out.push_str(&format!(
        "  \"workload\": \"{} KiB messages, {} KiB TPDUs, mtu {}, ingest batches of {}; serial receiver, parallel dispatcher ({} conns x {} workers, virtual engine), and connection-table demux legs\",\n",
        MESSAGE_BYTES / 1024,
        TPDU_ELEMENTS / 1024,
        hotpath::MTU,
        BATCH,
        PAR_CONNS,
        PAR_WORKERS,
    ));
    out.push_str(&format!(
        "  \"method\": \"{REPEATS} rounds with modes interleaved per round; wall_ms is the minimum round, overhead_pct the median of per-round ratios paired against the same round's obs-off run; steady-state allocations counted by the binary's counting global allocator after a quarter-stream warm-up (worst round; -1 = counting not installed)\",\n",
    ));
    out.push_str(&format!("  \"alloc_counting\": {},\n", r.alloc_counting));
    out.push_str(&format!("  \"recorded\": {},\n", r.recorded));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            format!(
                "    {{\"leg\": \"{}\", \"mode\": \"{}\", \"wall_ms\": {:.3}, \"mib_s\": {:.1}, \"overhead_pct\": {:.2}, \"steady_allocs\": {}, \"delivered_bytes\": {}}}",
                row.leg,
                row.mode,
                row.wall_ns as f64 / 1e6,
                row.mib_s,
                row.overhead_pct,
                row.steady_allocs,
                row.delivered_bytes,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(leg: &'static str, mode: &'static str, overhead: f64, allocs: i64) -> Row {
        Row {
            leg,
            mode,
            wall_ns: 1_000_000,
            mib_s: 100.0,
            overhead_pct: overhead,
            steady_allocs: allocs,
            delivered_bytes: if leg == "serial" {
                MESSAGE_BYTES as u64
            } else {
                MESSAGE_BYTES as u64 * PAR_CONNS as u64
            },
        }
    }

    fn result(rows: Vec<Row>) -> ObsOverheadResult {
        ObsOverheadResult {
            seed: 1,
            alloc_counting: true,
            recorded: true,
            rows,
        }
    }

    #[test]
    fn gate_reads_the_on_null_hotpath_cells() {
        let ok = result(vec![
            row("serial", "obs-off", 0.0, 0),
            row("serial", "on-null", 3.0, 0),
            row("serial", "on-recording", 40.0, 900),
            row("parallel", "obs-off", 0.0, 0),
            row("parallel", "on-null", 1.0, 0),
            row("demux", "obs-off", 0.0, 0),
            row("demux", "on-null", 2.0, 0),
        ]);
        assert!(ok.passes());
        let slow = result(vec![
            row("serial", "obs-off", 0.0, 0),
            row("serial", "on-null", 7.5, 0),
            row("parallel", "obs-off", 0.0, 0),
            row("parallel", "on-null", 1.0, 0),
        ]);
        assert!(!slow.passes(), "on-null above 5% must fail");
        let fat = result(vec![
            row("serial", "obs-off", 0.0, 0),
            row("serial", "on-null", 1.0, 3),
            row("parallel", "obs-off", 0.0, 0),
            row("parallel", "on-null", 1.0, 0),
        ]);
        assert!(!fat.passes(), "on-null allocations must fail");
    }

    #[test]
    fn bench_json_is_parseable_and_row_complete() {
        let r = result(vec![
            row("serial", "obs-off", 0.0, 0),
            row("serial", "on-null", 3.0, 0),
        ]);
        let json = bench_json(&r, "test");
        let v = crate::experiments::benchjson::parse(&json).expect("parses");
        let rows = v
            .get("results")
            .and_then(crate::experiments::benchjson::Value::as_arr)
            .expect("results array");
        assert_eq!(rows.len(), 2);
        for key in [
            "leg",
            "mode",
            "wall_ms",
            "mib_s",
            "overhead_pct",
            "steady_allocs",
            "delivered_bytes",
        ] {
            assert!(rows[0].get(key).is_some(), "row key {key}");
        }
    }
}
