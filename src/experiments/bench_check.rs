//! The bench regression gate: committed `BENCH_*.json` summaries must
//! match what the code regenerates.
//!
//! Two classes of file, two checks:
//!
//! * **Exact** (`BENCH_lineage.json`, `BENCH_soak.json`,
//!   `BENCH_overlap.json`) — every value rides the virtual clock, so the
//!   check regenerates the file with the
//!   committed `meta.describe` and diffs byte for byte. Tolerance is zero:
//!   any drift means either the code's behaviour changed (commit the
//!   regenerated file deliberately) or determinism broke (fix it).
//! * **Structural** (`BENCH_parallel.json`, `BENCH_hotpath.json`,
//!   `BENCH_scale.json`, `BENCH_wsc.json`, `BENCH_obs.json`) — the
//!   numbers are host wall-clock, so the gate only validates shape: the
//!   file parses, opens with a complete `meta` block, and carries a
//!   non-empty `results` array. (`BENCH_obs.json` additionally has its
//!   committed on-null rows value-gated — ≤ 5% overhead, zero steady
//!   allocations — by `tests/bench_schema.rs`.)
//!
//! `just bench-check` runs this inside `just lint`, so a PR that changes
//! observable behaviour without regenerating the summaries fails CI.

use std::fmt;

use super::benchjson::{parse, Value};
use super::{lineage, overlap, soak, SEED, SEED2};

/// How one file fared.
#[derive(Clone, PartialEq, Debug)]
pub enum Status {
    /// The file matched (exactly, or structurally for wall-clock files).
    Ok,
    /// The file is missing or unreadable.
    Unreadable(String),
    /// The file did not parse as JSON.
    Malformed(String),
    /// The `meta` block is missing or incomplete.
    BadMeta(String),
    /// An exact file drifted from its regeneration.
    Drift {
        /// First differing line (1-based).
        line: usize,
        /// That line as committed.
        committed: String,
        /// That line as regenerated.
        regenerated: String,
    },
}

/// One file's verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct FileCheck {
    /// The file checked.
    pub file: &'static str,
    /// Exact regeneration diff, or structural validation only.
    pub exact: bool,
    /// The verdict.
    pub status: Status,
}

/// The whole gate's result.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchCheckResult {
    /// One verdict per committed summary.
    pub checks: Vec<FileCheck>,
}

impl BenchCheckResult {
    /// True when every file passed.
    pub fn passes(&self) -> bool {
        self.checks.iter().all(|c| c.status == Status::Ok)
    }
}

impl fmt::Display for BenchCheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== bench-check — committed summaries vs regeneration ==="
        )?;
        for c in &self.checks {
            let mode = if c.exact { "exact" } else { "structural" };
            match &c.status {
                Status::Ok => writeln!(f, "  {:<22} {:<10} ok", c.file, mode)?,
                Status::Unreadable(e) => {
                    writeln!(f, "  {:<22} {:<10} UNREADABLE: {e}", c.file, mode)?
                }
                Status::Malformed(e) => {
                    writeln!(f, "  {:<22} {:<10} MALFORMED: {e}", c.file, mode)?
                }
                Status::BadMeta(e) => writeln!(f, "  {:<22} {:<10} BAD META: {e}", c.file, mode)?,
                Status::Drift {
                    line,
                    committed,
                    regenerated,
                } => {
                    writeln!(f, "  {:<22} {:<10} DRIFT at line {line}:", c.file, mode)?;
                    writeln!(f, "    committed:   {committed}")?;
                    writeln!(f, "    regenerated: {regenerated}")?;
                    writeln!(
                        f,
                        "    (intentional change? re-run the regenerate command in the file's meta block and commit the result)"
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Validates the `meta` block and returns its `describe` string.
fn check_meta(v: &Value) -> Result<String, String> {
    let meta = v.get("meta").ok_or("no `meta` object")?;
    let field = |key: &str| -> Result<String, String> {
        let s = meta
            .get(key)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("meta.{key} missing or not a string"))?;
        if s.is_empty() {
            return Err(format!("meta.{key} is empty"));
        }
        Ok(s.to_owned())
    };
    field("bench")?;
    field("regenerate")?;
    field("describe")
}

/// First line where the two strings differ, as
/// `(1-based line, committed line, regenerated line)`.
fn first_diff(committed: &str, regenerated: &str) -> Option<(usize, String, String)> {
    let (mut a, mut b) = (committed.lines(), regenerated.lines());
    let mut n = 0;
    loop {
        n += 1;
        match (a.next(), b.next()) {
            (None, None) => {
                return if committed == regenerated {
                    None
                } else {
                    Some((n, "<end of file>".into(), "<end of file>".into()))
                }
            }
            (la, lb) if la == lb => continue,
            (la, lb) => {
                return Some((
                    n,
                    la.unwrap_or("<end of file>").to_owned(),
                    lb.unwrap_or("<end of file>").to_owned(),
                ))
            }
        }
    }
}

fn check_file(file: &'static str, exact: bool, regen: impl FnOnce(&str) -> String) -> FileCheck {
    let status = (|| {
        let committed =
            std::fs::read_to_string(file).map_err(|e| Status::Unreadable(e.to_string()))?;
        let parsed = parse(&committed).map_err(Status::Malformed)?;
        let describe = check_meta(&parsed).map_err(Status::BadMeta)?;
        if exact {
            let regenerated = regen(&describe);
            if let Some((line, c, r)) = first_diff(&committed, &regenerated) {
                return Err(Status::Drift {
                    line,
                    committed: c,
                    regenerated: r,
                });
            }
        } else if parsed
            .get("results")
            .and_then(Value::as_arr)
            .map(<[Value]>::is_empty)
            .unwrap_or(true)
        {
            return Err(Status::BadMeta("`results` missing or empty".into()));
        }
        Ok(())
    })();
    FileCheck {
        file,
        exact,
        status: match status {
            Ok(()) => Status::Ok,
            Err(s) => s,
        },
    }
}

/// Runs the gate against the committed `BENCH_*.json` files in the current
/// directory. Exact files are regenerated with the committed
/// `meta.describe`, so a clean tree round-trips byte for byte.
pub fn run() -> BenchCheckResult {
    BenchCheckResult {
        checks: vec![
            check_file("BENCH_lineage.json", true, |describe| {
                lineage::bench_json(&lineage::run(SEED), describe)
            }),
            check_file("BENCH_soak.json", true, |describe| {
                let (r1, r2) = (soak::run(SEED), soak::run(SEED2));
                soak::bench_json(&[&r1, &r2], describe)
            }),
            check_file("BENCH_overlap.json", true, |describe| {
                overlap::bench_json(&overlap::run(SEED), describe)
            }),
            check_file("BENCH_parallel.json", false, |_| String::new()),
            check_file("BENCH_hotpath.json", false, |_| String::new()),
            check_file("BENCH_scale.json", false, |_| String::new()),
            check_file("BENCH_wsc.json", false, |_| String::new()),
            check_file("BENCH_obs.json", false, |_| String::new()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_diff_reports_the_first_differing_line() {
        assert_eq!(first_diff("a\nb\n", "a\nb\n"), None);
        let (line, c, r) = first_diff("a\nb\n", "a\nc\n").unwrap();
        assert_eq!((line, c.as_str(), r.as_str()), (2, "b", "c"));
        let (line, _, r) = first_diff("a\n", "a\nb\n").unwrap();
        assert_eq!((line, r.as_str()), (2, "b"));
    }

    #[test]
    fn meta_validation_requires_all_three_fields() {
        let ok =
            parse("{\"meta\": {\"bench\": \"x\", \"regenerate\": \"cmd\", \"describe\": \"v1\"}}")
                .unwrap();
        assert_eq!(check_meta(&ok).unwrap(), "v1");
        let missing = parse("{\"meta\": {\"bench\": \"x\", \"describe\": \"v1\"}}").unwrap();
        assert!(check_meta(&missing).is_err());
        let empty =
            parse("{\"meta\": {\"bench\": \"\", \"regenerate\": \"cmd\", \"describe\": \"v1\"}}")
                .unwrap();
        assert!(check_meta(&empty).is_err());
    }
}
