//! Parallel receive-pipeline sweep: throughput scaling and serial
//! equivalence across worker counts and network profiles.
//!
//! The paper's §3.3 order-free processing argument implies the receive path
//! parallelises by connection label with no coordination between workers.
//! This sweep quantifies that: 16 connections of 8 KiB TPDUs stream through
//! a seeded [`Profile`] once, and the recorded arrival trace replays into
//! the [`ParallelReceiver`] at 1/2/4/8 workers.
//!
//! Two measurements per cell:
//!
//! * **Critical-path throughput** — the deterministic virtual engine runs
//!   every worker's work on one OS thread but attributes busy time to the
//!   worker that did it. The modelled parallel makespan is
//!   `dispatch + max(worker busy) + merge`: what a machine with one core
//!   per worker would take, from *measured* per-stage times rather than a
//!   cost model. This is the number the speedup acceptance gate reads —
//!   wall-clock scaling on a CI container with fewer cores than workers
//!   would measure the container, not the pipeline.
//! * **Threads wall time** — the real `std::thread` engine end to end, for
//!   honesty about what the current host does with the same work.
//!
//! Every cell also replays through the serial [`ConnectionDemux`] and
//! fingerprints both ends (delivered bytes, per-TPDU WSC-2 digests, verdict
//! lists, routing counters, folded transcript). `divergences` must be zero:
//! the sweep refuses to report throughput for a pipeline that is not
//! observably the serial path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use chunks_core::packet::Packet;
use chunks_netsim::Profile;
use chunks_obs::{ObsSink, RecordingSink};
use chunks_transport::{
    shard_of, ConnSpec, ConnectionDemux, ConnectionParams, DeliveryMode, Engine, ParallelReceiver,
    Receiver, Schedule, Sender, SenderConfig, StageTimings,
};
use chunks_wsc::{InvariantLayout, Wsc2Stream};

/// Elements (= bytes) per TPDU — the acceptance criterion's 8 KiB TPDU.
pub const TPDU_ELEMENTS: u32 = 8192;
/// Concurrent connections; chosen so every worker count in the sweep gets
/// an equal shard of them.
pub const CONNS: usize = 16;
/// Application bytes per connection.
pub const MESSAGE_BYTES: usize = 512 * 1024;
/// Path MTU: jumbo frames, so one 8 KiB TPDU chunk rides one packet.
pub const MTU: usize = 9000;
/// Worker counts swept.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timing repetitions per cell (medians are reported).
const REPEATS: usize = 3;

/// Profiles swept: the no-disorder baseline, the gigabit-striping reorder
/// case the speedup gate reads, and the two lossy shapes.
pub fn profiles() -> [Profile; 4] {
    [
        Profile::Clean,
        Profile::Reorder,
        Profile::Loss,
        Profile::MultipathLossy,
    ]
}

/// Connection ids chosen so [`shard_of`] deals exactly two onto each of 8
/// shards — and therefore evenly onto 4, 2, and 1 (a balanced residue mod 8
/// stays balanced mod every divisor of 8).
fn conn_ids() -> Vec<u32> {
    let mut per_shard = [0usize; 8];
    let mut ids = Vec::with_capacity(CONNS);
    let mut candidate = 1u32;
    while ids.len() < CONNS {
        let s = shard_of(candidate, 8);
        if per_shard[s] < CONNS / 8 {
            per_shard[s] += 1;
            ids.push(candidate);
        }
        candidate += 1;
    }
    ids
}

fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: TPDU_ELEMENTS,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(1 << 15)
}

fn specs() -> Vec<ConnSpec> {
    conn_ids()
        .iter()
        .map(|&id| {
            ConnSpec::new(
                params(id),
                layout(),
                DeliveryMode::Immediate,
                MESSAGE_BYTES as u64 + 4 * TPDU_ELEMENTS as u64,
            )
        })
        .collect()
}

fn message(conn_id: u32) -> Vec<u8> {
    let mut state = 0x8B1D_0000_u64 ^ (conn_id as u64) << 17;
    (0..MESSAGE_BYTES)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Streams every connection's initial transmission through `profile` once
/// and returns the arrival trace, ready to replay.
fn build_trace(profile: Profile, seed: u64) -> Vec<(u64, Packet)> {
    let mut inputs: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut per_conn: Vec<Vec<Vec<u8>>> = conn_ids()
        .iter()
        .map(|&id| {
            let mut tx = Sender::new(SenderConfig {
                params: params(id),
                layout: layout(),
                mtu: MTU,
                min_tpdu_elements: 64,
                max_tpdu_elements: TPDU_ELEMENTS,
            });
            tx.submit_simple(&message(id), 0x10 + id, false);
            tx.packets_for_pending()
                .expect("pending packets pack")
                .into_iter()
                .map(|p| p.bytes.to_vec())
                .collect()
        })
        .collect();
    // Interleave round-robin across connections so the wire mixes them the
    // way concurrent streams would.
    let mut clock = 0u64;
    loop {
        let mut any = false;
        for frames in per_conn.iter_mut() {
            if frames.is_empty() {
                continue;
            }
            inputs.push((clock, frames.remove(0)));
            clock += 2_000;
            any = true;
        }
        if !any {
            break;
        }
    }
    profile
        .build(MTU, seed)
        .run(inputs)
        .into_iter()
        .map(|d| {
            (
                d.time,
                Packet {
                    bytes: d.frame.into(),
                },
            )
        })
        .collect()
}

/// Per-connection observables: verified prefix, delivered `(start, digest)`
/// pairs, failed starts.
type ConnPrint = (u64, Vec<(u64, [u8; 8])>, Vec<u64>);

/// Everything observable about one replay — the serial/parallel comparison
/// key: per-connection observables, routed-chunk counters, folded session
/// transcript.
type Fingerprint = (BTreeMap<u32, ConnPrint>, [u64; 5], [u8; 8]);

fn receiver_entry(rx: &Receiver, transcript: &mut Wsc2Stream) -> ConnPrint {
    for (start, _) in rx.delivered_digests() {
        if let Some(code) = rx.delivered_code(start) {
            transcript.fold_code(&code);
        }
    }
    (
        rx.verified_prefix(),
        rx.delivered_digests(),
        rx.failed_starts(),
    )
}

fn run_serial(trace: &[(u64, Packet)]) -> (Fingerprint, u64) {
    let mut demux = ConnectionDemux::new();
    for spec in specs() {
        let id = spec.params.conn_id;
        demux.register(
            id,
            Receiver::new(spec.mode, spec.params, spec.layout, spec.capacity_elements),
        );
    }
    let begin = Instant::now();
    for (now, packet) in trace {
        demux.handle_packet(packet, *now);
    }
    let wall_ns = begin.elapsed().as_nanos() as u64;
    let mut transcript = Wsc2Stream::new();
    let mut conns = BTreeMap::new();
    for &id in &conn_ids() {
        let rx = demux.receiver(id).expect("registered");
        conns.insert(id, receiver_entry(rx, &mut transcript));
    }
    ((conns, demux.routed, transcript.digest()), wall_ns)
}

fn run_parallel(
    trace: &[(u64, Packet)],
    workers: usize,
    engine: Engine,
) -> (Fingerprint, StageTimings, u64) {
    run_parallel_observed(trace, workers, engine, chunks_obs::null())
}

fn run_parallel_observed(
    trace: &[(u64, Packet)],
    workers: usize,
    engine: Engine,
    sink: Arc<dyn ObsSink>,
) -> (Fingerprint, StageTimings, u64) {
    let mut pr = ParallelReceiver::new_with_obs(workers, engine, specs(), sink);
    let begin = Instant::now();
    for (now, packet) in trace {
        pr.ingest(packet, *now);
    }
    let outcome = pr.finish();
    let wall_ns = begin.elapsed().as_nanos() as u64;
    let mut transcript = Wsc2Stream::new();
    let mut conns = BTreeMap::new();
    for (id, report) in &outcome.conns {
        conns.insert(*id, receiver_entry(&report.receiver, &mut transcript));
    }
    (
        (conns, outcome.dispatch.routed, transcript.digest()),
        outcome.timings,
        wall_ns,
    )
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One (profile, workers) cell of the sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ParallelCell {
    /// Profile name.
    pub profile: &'static str,
    /// Worker count.
    pub workers: usize,
    /// Median label-decode/dispatch stage time, ns.
    pub dispatch_ns: u64,
    /// Median summed worker busy time, ns.
    pub process_total_ns: u64,
    /// Median busiest-worker time, ns — the parallel section's makespan.
    pub process_max_ns: u64,
    /// Median merge-stage time, ns.
    pub merge_ns: u64,
    /// Modelled one-core-per-worker makespan: dispatch + max busy + merge.
    pub critical_path_ns: u64,
    /// Wire throughput over the modelled makespan, MiB/s.
    pub modeled_mib_s: f64,
    /// `critical_path(1 worker) / critical_path(this cell)`.
    pub speedup_vs_1: f64,
    /// Real `std::thread` engine end-to-end wall time, ns (host-dependent).
    pub threads_wall_ns: u64,
    /// Verified application bytes summed over connections.
    pub delivered_bytes: u64,
    /// Fingerprint mismatches against the serial path — must be zero.
    pub divergences: u32,
    /// Nonzero observability counters from one extra *untimed* virtual
    /// replay with a recording sink attached (the timed repetitions keep the
    /// no-op sink, so the makespan numbers are unperturbed). The observed
    /// replay's fingerprint is compared against the serial path too — a
    /// divergence here counts like any other.
    pub metrics: Vec<(String, u64)>,
}

/// One profile's sweep over [`WORKER_COUNTS`].
#[derive(Clone, PartialEq, Debug)]
pub struct ProfileSweep {
    /// Profile name.
    pub profile: &'static str,
    /// Frames that arrived (post-loss).
    pub frames: usize,
    /// Wire bytes that arrived.
    pub wire_bytes: u64,
    /// Serial [`ConnectionDemux`] wall time over the same trace, ns.
    pub serial_wall_ns: u64,
    /// One cell per worker count.
    pub cells: Vec<ParallelCell>,
}

/// The full sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ParallelResult {
    /// Seed the traces were drawn from.
    pub seed: u64,
    /// One sweep per profile.
    pub sweeps: Vec<ProfileSweep>,
}

impl ParallelResult {
    /// The cell the acceptance gate reads.
    pub fn reorder_speedup_at_4(&self) -> f64 {
        self.sweeps
            .iter()
            .find(|s| s.profile == "reorder")
            .and_then(|s| s.cells.iter().find(|c| c.workers == 4))
            .map(|c| c.speedup_vs_1)
            .unwrap_or(0.0)
    }

    /// Acceptance: zero serial/parallel divergence anywhere, full delivery
    /// on the lossless profiles, and ≥ 1.5× modelled throughput at 4
    /// workers on the reorder profile.
    pub fn passes(&self) -> bool {
        let expected = (CONNS * MESSAGE_BYTES) as u64;
        self.sweeps.iter().all(|s| {
            let lossless_ok = !matches!(s.profile, "clean" | "reorder")
                || s.cells.iter().all(|c| c.delivered_bytes == expected);
            s.cells.iter().all(|c| c.divergences == 0) && lossless_ok
        }) && self.reorder_speedup_at_4() >= 1.5
    }
}

impl fmt::Display for ParallelResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== parallel — order-free receive pipeline scaling (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {} conns x {} KiB, {} KiB TPDUs; modelled makespan = dispatch + busiest worker + merge",
            CONNS,
            MESSAGE_BYTES / 1024,
            TPDU_ELEMENTS / 1024,
        )?;
        for sweep in &self.sweeps {
            writeln!(
                f,
                "  {:<16} {} frames, {:.1} MiB arrived, serial demux {:.2} ms",
                sweep.profile,
                sweep.frames,
                sweep.wire_bytes as f64 / (1024.0 * 1024.0),
                sweep.serial_wall_ns as f64 / 1e6,
            )?;
            writeln!(
                f,
                "    {:>3} {:>10} {:>10} {:>10} {:>10} {:>9} {:>8} {:>10} {:>5}",
                "W",
                "dispatch",
                "busy-max",
                "merge",
                "makespan",
                "MiB/s",
                "speedup",
                "thr-wall",
                "div"
            )?;
            for c in &sweep.cells {
                writeln!(
                    f,
                    "    {:>3} {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>8.2}ms {:>9.1} {:>7.2}x {:>8.2}ms {:>5}",
                    c.workers,
                    c.dispatch_ns as f64 / 1e6,
                    c.process_max_ns as f64 / 1e6,
                    c.merge_ns as f64 / 1e6,
                    c.critical_path_ns as f64 / 1e6,
                    c.modeled_mib_s,
                    c.speedup_vs_1,
                    c.threads_wall_ns as f64 / 1e6,
                    c.divergences,
                )?;
            }
        }
        Ok(())
    }
}

/// Runs the full sweep under one seed.
pub fn run(seed: u64) -> ParallelResult {
    let mut sweeps = Vec::new();
    for profile in profiles() {
        let trace = build_trace(profile, seed ^ profile.name().len() as u64);
        let wire_bytes: u64 = trace.iter().map(|(_, p)| p.bytes.len() as u64).sum();
        let (serial_print, serial_wall_ns) = run_serial(&trace);

        let mut cells: Vec<ParallelCell> = Vec::new();
        for &workers in &WORKER_COUNTS {
            let mut divergences = 0u32;
            let mut timings: Vec<StageTimings> = Vec::new();
            let mut delivered_bytes = 0u64;
            for _ in 0..REPEATS {
                let (print, t, _) = run_parallel(&trace, workers, Engine::Virtual(Schedule::Fair));
                if print != serial_print {
                    divergences += 1;
                }
                delivered_bytes = print.0.values().map(|(v, _, _)| *v).sum();
                timings.push(t);
            }
            let (threads_print, _, threads_wall_ns) =
                run_parallel(&trace, workers, Engine::Threads);
            if threads_print != serial_print {
                divergences += 1;
            }

            // One extra untimed replay with a recording sink: the metric
            // snapshot for the BENCH row, plus a differential guard that
            // observing the pipeline does not change what it delivers.
            let obs_sink = RecordingSink::shared();
            let (observed_print, _, _) = run_parallel_observed(
                &trace,
                workers,
                Engine::Virtual(Schedule::Fair),
                obs_sink.clone(),
            );
            if observed_print != serial_print {
                divergences += 1;
            }
            let metrics = obs_sink.snapshot().nonzero_counters();

            let dispatch_ns = median(timings.iter().map(|t| t.dispatch_ns).collect());
            let process_total_ns = median(timings.iter().map(|t| t.process_total_ns).collect());
            let process_max_ns = median(timings.iter().map(|t| t.process_max_ns).collect());
            let merge_ns = median(timings.iter().map(|t| t.merge_ns).collect());
            let critical_path_ns = dispatch_ns + process_max_ns + merge_ns;
            cells.push(ParallelCell {
                profile: profile.name(),
                workers,
                dispatch_ns,
                process_total_ns,
                process_max_ns,
                merge_ns,
                critical_path_ns,
                modeled_mib_s: wire_bytes as f64
                    / (1024.0 * 1024.0)
                    / (critical_path_ns.max(1) as f64 / 1e9),
                speedup_vs_1: 0.0,
                threads_wall_ns,
                delivered_bytes,
                divergences,
                metrics,
            });
        }
        let base = cells[0].critical_path_ns.max(1) as f64;
        for c in &mut cells {
            c.speedup_vs_1 = base / c.critical_path_ns.max(1) as f64;
        }
        sweeps.push(ProfileSweep {
            profile: profile.name(),
            frames: trace.len(),
            wire_bytes,
            serial_wall_ns,
            cells,
        });
    }
    ParallelResult { seed, sweeps }
}

/// Renders the sweep as the `BENCH_parallel.json` scaling record. Timing
/// fields are wall-clock (host-dependent), so the `bench-check` gate only
/// validates this file structurally — it never diffs the numbers.
pub fn bench_json(r: &ParallelResult, describe: &str) -> String {
    use super::benchjson::{meta_json, metrics_json};
    let mut out = String::from("{\n");
    out.push_str(&meta_json(
        "parallel-receive-pipeline-scaling",
        "cargo run --release --bin experiments parallel (or: just bench-parallel)",
        describe,
    ));
    out.push_str(&format!(
        "  \"workload\": \"{} connections x {} KiB, {} KiB TPDUs, mtu {}; arrival trace replayed per worker count\",\n",
        CONNS,
        MESSAGE_BYTES / 1024,
        TPDU_ELEMENTS / 1024,
        MTU,
    ));
    out.push_str(
        "  \"method\": \"throughput is wire bytes over the modelled makespan dispatch + busiest-worker busy time + merge, from per-stage times measured on the deterministic virtual engine (medians of 3); threads_wall_ms is the real std::thread engine on this host; every cell is fingerprint-compared against the serial demux\",\n",
    );
    out.push_str(&format!(
        "  \"reorder_speedup_at_4_workers\": {:.2},\n",
        r.reorder_speedup_at_4()
    ));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .sweeps
        .iter()
        .flat_map(|s| {
            let serial_ms = s.serial_wall_ns as f64 / 1e6;
            s.cells.iter().map(move |c| {
                format!(
                    "    {{\"profile\": \"{}\", \"workers\": {}, \"dispatch_ms\": {:.3}, \"process_total_ms\": {:.3}, \"process_max_ms\": {:.3}, \"merge_ms\": {:.3}, \"makespan_ms\": {:.3}, \"modeled_mib_s\": {:.1}, \"speedup_vs_1\": {:.2}, \"threads_wall_ms\": {:.3}, \"serial_wall_ms\": {:.3}, \"delivered_bytes\": {}, \"divergences\": {}, \"metrics\": {}}}",
                    c.profile,
                    c.workers,
                    c.dispatch_ns as f64 / 1e6,
                    c.process_total_ns as f64 / 1e6,
                    c.process_max_ns as f64 / 1e6,
                    c.merge_ns as f64 / 1e6,
                    c.critical_path_ns as f64 / 1e6,
                    c.modeled_mib_s,
                    c.speedup_vs_1,
                    c.threads_wall_ns as f64 / 1e6,
                    serial_ms,
                    c.delivered_bytes,
                    c.divergences,
                    metrics_json(&c.metrics),
                )
            })
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_ids_balance_every_swept_worker_count() {
        let ids = conn_ids();
        assert_eq!(ids.len(), CONNS);
        for &workers in &WORKER_COUNTS {
            let mut load = vec![0usize; workers];
            for &id in &ids {
                load[shard_of(id, workers)] += 1;
            }
            assert!(
                load.iter().all(|&l| l == CONNS / workers),
                "{workers} workers: {load:?}"
            );
        }
    }
}
