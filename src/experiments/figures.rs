//! Reproductions of Figures 1–7.

use std::fmt;

use bytes::Bytes;
use chunks_core::chunk::{byte_chunk, Chunk, ChunkHeader};
use chunks_core::compress::implicit_tid;
use chunks_core::frag::{split, split_to_fit, ReassemblyPool};
use chunks_core::label::{ChunkType, FramingTuple};
use chunks_core::packet::{pack, unpack};
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_netsim::{ChunkRouter, PacketTransform, RefragPolicy};
use chunks_transport::{AlfFrame, ConnectionParams, Framer};
use chunks_wsc::{InvariantLayout, TpduInvariant};

/// A rendered text reproduction plus machine-checkable facts.
pub struct FigureResult {
    /// Which figure this reproduces.
    pub figure: &'static str,
    /// Human-readable rendering.
    pub text: String,
    /// Checks performed, as `(description, passed)`.
    pub checks: Vec<(String, bool)>,
}

impl FigureResult {
    /// True when every check passed.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(|(_, p)| *p)
    }
}

impl fmt::Display for FigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.figure)?;
        writeln!(f, "{}", self.text)?;
        for (desc, passed) in &self.checks {
            writeln!(f, "  [{}] {desc}", if *passed { "ok" } else { "FAIL" })?;
        }
        Ok(())
    }
}

fn header_line(h: &ChunkHeader) -> String {
    format!(
        "TYPE={} SIZE={} LEN={}  C=({:#x},{},{})  T=({:#x},{},{})  X=({:#x},{},{})",
        h.ty,
        h.size,
        h.len,
        h.conn.id,
        h.conn.sn,
        h.conn.st as u8,
        h.tpdu.id,
        h.tpdu.sn,
        h.tpdu.st as u8,
        h.ext.id,
        h.ext.sn,
        h.ext.st as u8,
    )
}

/// Figure 1: dividing one data stream into multiple PDU structures at once.
///
/// PDU type 1 (TPDUs) frames the stream as A, B, C; PDU type 2 (an external
/// frame W) spans the same data. The framer emits chunks cut at *every*
/// boundary, each labelled with both structures.
pub fn figure1() -> FigureResult {
    let params = ConnectionParams {
        conn_id: 0x1,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 16, // PDU type 1: frames A, B, C of 16 elements
    };
    let mut framer = Framer::new(params, InvariantLayout::with_data_symbols(256));
    let data = vec![0u8; 48];
    // PDU type 2: a single frame W covering everything.
    let tpdus = framer.frame_stream(
        &data,
        &[AlfFrame {
            id: 0x57, // 'W'
            len_elements: 48,
        }],
        false,
    );
    let mut text = String::from("one 48-element stream, framed two ways at once:\n");
    for t in &tpdus {
        for c in &t.chunks {
            text.push_str(&format!("  {}\n", header_line(&c.header)));
        }
    }
    let mut checks = Vec::new();
    checks.push(("three TPDUs (PDU type 1: A, B, C)".into(), tpdus.len() == 3));
    let all: Vec<&Chunk> = tpdus.iter().flat_map(|t| t.chunks.iter()).collect();
    checks.push((
        "every chunk also carries PDU type 2 frame W".into(),
        all.iter().all(|c| c.header.ext.id == 0x57),
    ));
    checks.push((
        "X.SN runs continuously across TPDU boundaries".into(),
        all.windows(2)
            .all(|w| w[1].header.ext.sn == w[0].header.ext.sn + w[0].header.len),
    ));
    checks.push((
        "frame W ends exactly once, at the last chunk".into(),
        all.iter().filter(|c| c.header.ext.st).count() == 1 && all.last().unwrap().header.ext.st,
    ));
    FigureResult {
        figure: "Figure 1 — dividing a data stream into multiple PDUs",
        text,
        checks,
    }
}

/// The nine labelled data elements of Figure 2. Element `i` carries
/// `(C.SN, T.ID, T.SN, T.ST, X.SN)` exactly as printed in the paper.
fn figure2_elements() -> Vec<(u32, u32, u32, bool, u32)> {
    vec![
        (35, 0x50, 6, true, 23), // end of TPDU P
        (36, 0x51, 0, false, 24),
        (37, 0x51, 1, false, 25),
        (38, 0x51, 2, false, 26),
        (39, 0x51, 3, false, 27),
        (40, 0x51, 4, false, 28),
        (41, 0x51, 5, false, 29),
        (42, 0x51, 6, true, 30), // end of TPDU Q
        (43, 0x52, 0, false, 31),
    ]
}

/// The chunk Figure 2 forms from the TPDU-Q run: `TYPE=D SIZE=1 LEN=7`,
/// IDs `(A, Q, C)`, SNs `(36, 0, 24)`, STs `(0, 1, 0)`.
pub fn figure2_chunk() -> Chunk {
    byte_chunk(
        FramingTuple::new(0xA, 36, false),
        FramingTuple::new(0x51, 0, true),
        FramingTuple::new(0xC, 24, false),
        b"0123456",
    )
}

/// Figure 2: formation of a TPDU data chunk — a run of contiguous elements
/// with identical `TYPE` and `ID`s shares one header.
pub fn figure2() -> FigureResult {
    let elements = figure2_elements();
    let mut text =
        String::from("element table (C.ID=A, X.ID=C throughout):\n  C.SN  T.ID T.SN T.ST  X.SN\n");
    for (c_sn, t_id, t_sn, t_st, x_sn) in &elements {
        text.push_str(&format!(
            "  {c_sn:>4}  {:>4} {t_sn:>4} {:>4}  {x_sn:>4}\n",
            char::from(*t_id as u8),
            *t_st as u8
        ));
    }
    let chunk = figure2_chunk();
    text.push_str(&format!("formed chunk: {}\n", header_line(&chunk.header)));

    let h = &chunk.header;
    let checks = vec![
        (
            "the 7 TPDU-Q elements share TYPE and IDs".into(),
            elements[1..8].iter().all(|&(_, t_id, ..)| t_id == 0x51),
        ),
        (
            "chunk SNs are the first element's (36, 0, 24)".into(),
            (h.conn.sn, h.tpdu.sn, h.ext.sn) == (36, 0, 24),
        ),
        (
            "chunk STs are the last element's (0, 1, 0)".into(),
            (h.conn.st, h.tpdu.st, h.ext.st) == (false, true, false),
        ),
        ("LEN = 7, SIZE = 1".into(), h.len == 7 && h.size == 1),
        (
            "per-element labels reconstruct the table".into(),
            chunk
                .elements()
                .zip(&elements[1..8])
                .all(|((c_sn, _), &(want, ..))| c_sn == want),
        ),
    ];
    FigureResult {
        figure: "Figure 2 — formation of a TPDU data chunk",
        text,
        checks,
    }
}

/// Figure 3: splitting the Figure 2 chunk into two (LEN 4 + LEN 3) and
/// packing chunks into packets, the ED chunk sharing packet 2.
pub fn figure3() -> FigureResult {
    let chunk = figure2_chunk();
    let (a, b) = split(&chunk, 4).expect("split at 4");
    let mut inv = TpduInvariant::with_default_layout();
    inv.absorb_chunk(&chunk.header, &chunk.payload).unwrap();
    let ed = Chunk::new(
        ChunkHeader::control(
            ChunkType::ErrorDetection,
            8,
            FramingTuple::new(0xA, 36, false),
            FramingTuple::new(0x51, 0, false),
            FramingTuple::new(0, 0, false),
        ),
        Bytes::copy_from_slice(&inv.digest()),
    )
    .unwrap();

    // Figure 3's layout: packet 1 carries the leading data chunk; packet 2
    // carries the trailing data chunk together with the ED chunk.
    let mtu = WIRE_HEADER_LEN * 2 + 11;
    let packets = {
        let mut p1 = chunks_core::packet::PacketBuilder::new(mtu);
        p1.push(a.clone()).unwrap();
        let mut p2 = chunks_core::packet::PacketBuilder::new(mtu);
        p2.push(b.clone()).unwrap();
        p2.push(ed.clone()).unwrap();
        vec![p1.finish(), p2.finish()]
    };
    let mut text = format!(
        "split chunk:\n  a: {}\n  b: {}\n  ED payload (WSC-2): {:02x?}\n",
        header_line(&a.header),
        header_line(&b.header),
        &ed.payload[..]
    );
    text.push_str(&format!(
        "packed into {} packets (MTU {mtu}):\n",
        packets.len()
    ));
    for (i, p) in packets.iter().enumerate() {
        let inside = unpack(p).unwrap();
        text.push_str(&format!(
            "  packet {}: {} bytes, chunks: {}\n",
            i + 1,
            p.len(),
            inside
                .iter()
                .map(|c| format!("{}x{}", c.header.ty, c.header.len))
                .collect::<Vec<_>>()
                .join(" + ")
        ));
    }

    let p2 = unpack(&packets[1]).unwrap();
    let checks = vec![
        (
            "a: SNs (36,0,24), STs cleared".into(),
            (a.header.conn.sn, a.header.tpdu.sn, a.header.ext.sn) == (36, 0, 24)
                && !a.header.tpdu.st,
        ),
        (
            "b: SNs (40,4,28), STs (0,1,0) as in the figure".into(),
            (b.header.conn.sn, b.header.tpdu.sn, b.header.ext.sn) == (40, 4, 28)
                && b.header.tpdu.st
                && !b.header.conn.st
                && !b.header.ext.st,
        ),
        (
            "packet 2 carries the data chunk and the ED chunk together".into(),
            p2.len() == 2 && p2[1].header.ty == ChunkType::ErrorDetection,
        ),
        ("receiver reassembles the original in one step".into(), {
            let mut pool = ReassemblyPool::new();
            for p in &packets {
                for c in unpack(p).unwrap() {
                    if c.header.ty == ChunkType::Data {
                        pool.insert(c);
                    }
                }
            }
            pool.take_complete() == Some(chunk)
        }),
    ];
    FigureResult {
        figure: "Figure 3 — TPDU chunks and their mapping onto packets",
        text,
        checks,
    }
}

/// Figure 4: internetworking — the three ways to move chunks from small
/// packets back into large packets, side by side.
pub fn figure4() -> FigureResult {
    // A 360-element TPDU (SIZE=1), first carried in large packets, squeezed
    // through a small-MTU network, then re-expanded three ways.
    let payload: Vec<u8> = (0..360u32).map(|i| i as u8).collect();
    let whole = byte_chunk(
        FramingTuple::new(1, 0, false),
        FramingTuple::new(2, 0, true),
        FramingTuple::new(3, 0, false),
        &payload,
    );
    let small_mtu = WIRE_HEADER_LEN + 60;
    let big_mtu = 4 * (WIRE_HEADER_LEN + 60);
    // Fragmented: squeeze through the small network.
    let small_frames: Vec<Vec<u8>> =
        pack(split_to_fit(whole.clone(), small_mtu).unwrap(), small_mtu)
            .unwrap()
            .into_iter()
            .map(|p| p.bytes.to_vec())
            .collect();

    let mut text = format!(
        "TPDU of 360 elements; small network MTU {small_mtu} -> {} packets\n",
        small_frames.len()
    );
    let mut rows = Vec::new();
    for (name, policy) in [
        (
            "method 1: one chunk per large packet",
            RefragPolicy::OnePerPacket,
        ),
        (
            "method 2: combine chunks into large packets",
            RefragPolicy::Repack,
        ),
        (
            "method 3: chunk reassembly in the network",
            RefragPolicy::Reassemble { window: 16 },
        ),
    ] {
        let mut router = ChunkRouter::new(big_mtu, policy);
        let mut out: Vec<Vec<u8>> = small_frames
            .iter()
            .flat_map(|f| router.ingest(f.clone()))
            .collect();
        out.extend(router.flush());
        let bytes: usize = out.iter().map(Vec::len).sum();
        let headers = bytes - payload.len();
        // Receiver: always the same single-step reassembly.
        let mut pool = ReassemblyPool::new();
        for f in &out {
            for c in unpack(&chunks_core::packet::Packet {
                bytes: f.clone().into(),
            })
            .unwrap()
            {
                pool.insert(c);
            }
        }
        let recovered = pool.take_complete() == Some(whole.clone());
        text.push_str(&format!(
            "  {name}: {} packets, {} wire bytes ({} header), merges={}\n",
            out.len(),
            bytes,
            headers,
            router.merges
        ));
        rows.push((out.len(), headers, recovered));
    }

    let checks = vec![
        (
            "all three methods deliver the identical TPDU".into(),
            rows.iter().all(|&(_, _, ok)| ok),
        ),
        (
            "method 2 uses fewer envelopes than method 1".into(),
            rows[1].0 < rows[0].0,
        ),
        (
            "method 3 spends the fewest header bytes".into(),
            rows[2].1 < rows[1].1 && rows[2].1 < rows[0].1,
        ),
        (
            "method 2 is no worse than method 1 on header bytes".into(),
            rows[1].1 <= rows[0].1,
        ),
    ];
    FigureResult {
        figure: "Figure 4 — using chunks for internetworking",
        text,
        checks,
    }
}

/// Figure 5: the TPDU invariant layout, and its invariance under
/// fragmentation.
pub fn figure5() -> FigureResult {
    let layout = InvariantLayout::default();
    let text = format!(
        "error-detection code space (positions in 32-bit symbols):\n\
         \x20 [0 .. {})            TPDU data, element T.SN = e at position e\n\
         \x20 {}                T.ID\n\
         \x20 {}                C.ID\n\
         \x20 {}                C.ST\n\
         \x20 2*T.SN + {}  (X.ID, X.ST) pair for boundary elements\n",
        layout.data_symbols,
        layout.tid_pos(),
        layout.cid_pos(),
        layout.cst_pos(),
        layout.data_symbols + 3,
    );

    // Invariance check over many random fragmentations.
    let payload: Vec<u8> = (0..200u32).map(|i| (i * 13) as u8).collect();
    let whole = byte_chunk(
        FramingTuple::new(0xA, 500, true),
        FramingTuple::new(0x51, 0, true),
        FramingTuple::new(0xC, 90, true),
        &payload,
    );
    let digest_of = |chunks: &[Chunk]| {
        let mut inv = TpduInvariant::with_default_layout();
        for c in chunks {
            inv.absorb_chunk(&c.header, &c.payload).unwrap();
        }
        inv.digest()
    };
    let base = digest_of(std::slice::from_ref(&whole));
    let mut all_equal = true;
    let mut seed = 0x12345u64;
    for _ in 0..50 {
        let mut pieces = vec![whole.clone()];
        for _ in 0..6 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let idx = (seed >> 33) as usize % pieces.len();
            if pieces[idx].header.len < 2 {
                continue;
            }
            let at = 1 + ((seed >> 13) as u32 % (pieces[idx].header.len - 1));
            let target = pieces.remove(idx);
            let (a, b) = split(&target, at).unwrap();
            pieces.push(a);
            pieces.push(b);
        }
        pieces.reverse();
        if digest_of(&pieces) != base {
            all_equal = false;
        }
    }

    let checks = vec![
        (
            "positions stay inside the WSC-2 code space (2^29 - 2)".into(),
            layout.max_pos() < chunks_wsc::MAX_SYMBOLS,
        ),
        (
            "digest identical across 50 random fragmentations".into(),
            all_equal,
        ),
    ];
    FigureResult {
        figure: "Figure 5 — the TPDU invariant",
        text,
        checks,
    }
}

/// Figure 6: encoding of the X.ID and X.ST fields — each external PDU's
/// X.ID enters the code space exactly once, triggered by the boundary that
/// ends it (X.ST) or by the TPDU end (T.ST).
pub fn figure6() -> FigureResult {
    // A TPDU containing pieces of three external PDUs A, B, C.
    let layout = InvariantLayout::default();
    let a = byte_chunk(
        FramingTuple::new(1, 0, false),
        FramingTuple::new(9, 0, false),
        FramingTuple::new(0xAA, 5, true), // A ends inside the TPDU
        b"aa",
    );
    let b = byte_chunk(
        FramingTuple::new(1, 2, false),
        FramingTuple::new(9, 2, false),
        FramingTuple::new(0xBB, 0, true), // B ends inside the TPDU
        b"bbb",
    );
    let c = byte_chunk(
        FramingTuple::new(1, 5, false),
        FramingTuple::new(9, 5, true), // TPDU ends inside C
        FramingTuple::new(0xCC, 0, false),
        b"cc",
    );
    let triggers = [
        ("A", 0xAAu32, 1u32, true),
        ("B", 0xBB, 4, true),
        ("C", 0xCC, 6, false),
    ];
    let mut text = String::from("boundary-triggered X encodings:\n");
    for (name, x_id, t_sn, x_st) in &triggers {
        text.push_str(&format!(
            "  external PDU {name}: (X.ID={x_id:#x}, X.ST={}) at positions {} and {}\n",
            *x_st as u8,
            layout.x_pair_pos(*t_sn),
            layout.x_pair_pos(*t_sn) + 1
        ));
    }

    let mut inv = TpduInvariant::new(layout).unwrap();
    for chunk in [&a, &b, &c] {
        inv.absorb_chunk(&chunk.header, &chunk.payload).unwrap();
    }
    // Manual encoding of exactly the expectation above.
    let mut manual = chunks_wsc::Wsc2::new();
    manual.add_symbol(layout.tid_pos(), 9);
    manual.add_symbol(layout.cid_pos(), 1);
    for (e, byte) in [
        (0u64, b'a'),
        (1, b'a'),
        (2, b'b'),
        (3, b'b'),
        (4, b'b'),
        (5, b'c'),
        (6, b'c'),
    ] {
        manual.add_symbol(e, (byte as u32) << 24);
    }
    for (_, x_id, t_sn, x_st) in &triggers {
        manual.add_symbol(layout.x_pair_pos(*t_sn), *x_id);
        manual.add_symbol(layout.x_pair_pos(*t_sn) + 1, *x_st as u32);
    }

    // Pair positions never collide: strides of 2 starting at distinct T.SNs.
    let mut positions: Vec<u64> = triggers.iter().map(|t| layout.x_pair_pos(t.2)).collect();
    positions.sort_unstable();
    let disjoint = positions.windows(2).all(|w| w[1] - w[0] >= 2);

    let checks = vec![
        (
            "incremental invariant equals the manual Figure 6 encoding".into(),
            inv.digest() == manual.digest(),
        ),
        ("X pairs occupy disjoint positions".into(), disjoint),
        (
            "exactly one encoding per external PDU".into(),
            triggers.len() == 3,
        ),
    ];
    FigureResult {
        figure: "Figure 6 — encoding of the X.ID and X.ST fields",
        text,
        checks,
    }
}

/// Figure 7: deriving an implicit T.ID from `C.SN − T.SN`.
pub fn figure7() -> FigureResult {
    let c_sn = [35u32, 36, 37, 38, 39, 40, 41, 42];
    let t_sn = [5u32, 0, 1, 2, 3, 4, 5, 0];
    let expect = [30u32, 36, 36, 36, 36, 36, 36, 42];
    let derived: Vec<u32> = c_sn
        .iter()
        .zip(&t_sn)
        .map(|(&c, &t)| implicit_tid(c, t))
        .collect();
    let mut text = String::from("  C.SN  T.SN  T.ID = C.SN - T.SN\n");
    for i in 0..8 {
        text.push_str(&format!(
            "  {:>4}  {:>4}  {:>4}\n",
            c_sn[i], t_sn[i], derived[i]
        ));
    }
    let checks = vec![(
        "derived T.IDs are 30, 36 x6, 42 as printed in the paper".into(),
        derived == expect,
    )];
    FigureResult {
        figure: "Figure 7 — how an implicit T.ID is derived (Appendix A)",
        text,
        checks,
    }
}

/// Runs all seven figure reproductions.
pub fn all_figures() -> Vec<FigureResult> {
    vec![
        figure1(),
        figure2(),
        figure3(),
        figure4(),
        figure5(),
        figure6(),
        figure7(),
    ]
}
