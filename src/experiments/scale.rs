//! Million-connection scale soak: the open-addressed connection table
//! (`ConnTable`) under heavy traffic, churn, and adversarial faults — the
//! numbers behind `BENCH_scale.json` and the quantitative half of
//! `docs/SCALE.md`.
//!
//! Six cells, each deterministic under its seed (every cell runs twice and
//! must reproduce its non-timing columns byte for byte):
//!
//! * **capacity-lru** — 4× more admissions than `max_live`: the sampled-LRU
//!   clock hand must keep occupancy exactly at the bound, refuse nothing,
//!   and every eviction must surface as a `ConnEvicted` event and a
//!   `transport.table.evictions` count.
//! * **churn-equiv** — one explicit admit/send/retire schedule replayed on
//!   the serial demux and the 8-worker parallel pipeline; surviving
//!   connections must agree byte for byte (delivered digests compared).
//! * **budget-bound** — data-only traffic (EDs withheld) into `Reassemble`
//!   receivers sharing one [`GlobalBudget`]: held bytes may never pass the
//!   cap, overflow must shed as typed `ChunkShed` events, and retiring
//!   every connection must return the global ledger to zero.
//! * **zipf-faults** — 64 Ki connections under a Zipf(1) traffic mix with
//!   the Byzantine fault matrix (label flips, shifted duplicates,
//!   overlapping rewrites, tiny-fragment floods) spliced into the stream;
//!   the table must stay consistent and p99 verify delay is read off the
//!   `span.delay.verify_ns` histogram.
//! * **million-serial** — 2^20 concurrent connections admitted and fed
//!   through the serial demux, then a 64 Ki-connection churn phase that
//!   must run allocation-free (pooled shells only) under the counting
//!   allocator. Memory per connection is the counting allocator's
//!   live-byte delta across the ramp.
//! * **million-parallel** — the same 2^20-connection soak through the
//!   8-worker virtual-engine pipeline with a churn tail, merged and
//!   byte-verified at `finish`.
//!
//! Traffic is generated from *template packets*: one tiny message is packed
//! once per template slot, and each per-connection packet is the template
//! with the `C.ID` field patched at its fixed wire offsets. The WSC-2
//! invariant deliberately *binds* the connection label (a symbol at
//! `cid_pos` — that is how misdelivered chunks are caught end-to-end), so
//! the patch must also retarget the ED code: the code is GF(2)-linear in
//! every absorbed symbol, so flipping `C.ID` from `a` to `c` shifts the
//! digest by the contribution of `a ⊕ c` at `cid_pos`. A 32-entry basis
//! (one digest delta per `C.ID` bit) turns that into a few XORs per
//! packet; a unit test pins patched packets bit-identical to packets a
//! real per-connection sender would emit.

use std::fmt;
use std::time::Instant;

use chunks_core::packet::{pack, spans, unpack, validate, Packet};
use chunks_core::{ChunkHeader, ChunkType, FramingTuple, WIRE_HEADER_LEN};
use chunks_netsim::{ByzantineConfig, ByzantineRouter, PacketTransform};
use chunks_obs::RecordingSink;
use chunks_transport::{
    ConnSpec, ConnectionDemux, ConnectionParams, DeliveryMode, DemuxEvent, Engine, GlobalBudget,
    ParallelReceiver, Receiver, ResourceBudget, RxEvent, Schedule, Sender, SenderConfig,
    TableConfig,
};
use chunks_wsc::{InvariantLayout, TpduInvariant};

use super::hotpath::alloc_count;

/// Elements (= bytes) per tiny-message TPDU.
pub const TPDU_ELEMENTS: u32 = 32;
/// Application bytes per message (one TPDU).
pub const MSG_BYTES: usize = TPDU_ELEMENTS as usize;
/// Path MTU for the tiny-message streams.
pub const MTU: usize = 512;
/// Receiver connection-space capacity, in elements.
pub const CAPACITY_ELEMENTS: u64 = 160;
/// Concurrent connections in the million-connection cells.
pub const MILLION_CONNS: u32 = 1 << 20;
/// Connections retired-and-replaced in the steady churn phases.
pub const CHURN_CONNS: u32 = 1 << 16;
/// Connections in the Zipf/fault cell.
pub const ZIPF_CONNS: u32 = 1 << 16;
/// Traffic events in the Zipf/fault cell.
pub const ZIPF_EVENTS: usize = 1 << 18;
/// Workers on the parallel cells.
pub const WORKERS: usize = 8;
/// Template messages (sequential TPDUs) per connection in the Zipf cell.
const MSGS_PER_CONN: usize = 4;
/// Virtual nanoseconds between traffic events.
const TICK_NS: u64 = 1_000;
/// C.ID byte offset inside a chunk header (see `chunks_core::wire`).
const CID_WIRE_OFFSET: usize = 8;

/// The C.ID the templates are packed under (patched per connection).
const TEMPLATE_CONN: u32 = 1;

fn params_for(conn_id: u32, initial_csn: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn,
        tpdu_elements: TPDU_ELEMENTS,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(256)
}

fn fresh_rx(conn_id: u32, mode: DeliveryMode) -> Receiver {
    let mut rx = Receiver::new(mode, params_for(conn_id, 0), layout(), CAPACITY_ELEMENTS);
    rx.reserve(MSGS_PER_CONN + 2, 4 * MSGS_PER_CONN + 8);
    rx
}

fn spec_for(conn_id: u32) -> ConnSpec {
    ConnSpec::new(
        params_for(conn_id, 0),
        layout(),
        DeliveryMode::Immediate,
        CAPACITY_ELEMENTS,
    )
}

fn msg_bytes(seed: u64, m: usize) -> Vec<u8> {
    let mut state = seed ^ ((m as u64 + 1) << 17);
    (0..MSG_BYTES)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// The WSC-2 digest delta caused by flipping one `C.ID` bit.
///
/// The invariant binds the connection label by absorbing `C.ID` as a
/// symbol at `cid_pos` exactly once per TPDU, and the accumulator is a
/// pair of GF(2^32) sums — linear in every absorbed symbol. So the digest
/// of an invariant holding *only* the `C.ID = 1 << b` contribution (a
/// one-element data chunk with zero payload, zero T.ID, no `st` flags —
/// every other symbol is zero and contributes nothing) is precisely the
/// delta a real sender's digest moves by when that `C.ID` bit flips.
fn cid_basis() -> [[u8; 8]; 32] {
    std::array::from_fn(|b| {
        let mut inv = TpduInvariant::new(layout()).expect("layout fits the code space");
        let header = ChunkHeader::data(
            1,
            1,
            FramingTuple::new(1u32 << b, 0, false),
            FramingTuple::new(0, 0, false),
            FramingTuple::new(0, 0, false),
        );
        inv.absorb_chunk(&header, &[0u8]).expect("basis chunk fits");
        inv.digest()
    })
}

/// One packed tiny-message packet plus the wire offsets of every chunk's
/// `C.ID` field and every ED chunk's digest payload, so per-connection
/// packets are a memcpy, four patched bytes per chunk, and one XORed
/// digest delta per ED chunk — no sender in the hot loop.
struct Template {
    bytes: Vec<u8>,
    cid_at: Vec<usize>,
    ed_at: Vec<usize>,
    cid_basis: [[u8; 8]; 32],
    chunks: u64,
}

impl Template {
    fn from_packet(p: &Packet) -> Template {
        assert!(validate(p).is_ok(), "template packet must be well-formed");
        let bytes = p.bytes.to_vec();
        let ed_ty = ChunkType::ErrorDetection.to_u8();
        Template {
            cid_at: spans(p).map(|(at, _)| at + CID_WIRE_OFFSET).collect(),
            ed_at: spans(p)
                .filter(|&(at, _)| bytes[at] == ed_ty)
                .map(|(at, _)| at + WIRE_HEADER_LEN)
                .collect(),
            cid_basis: cid_basis(),
            chunks: spans(p).count() as u64,
            bytes,
        }
    }

    fn packet_for(&self, conn_id: u32) -> Packet {
        let mut b = self.bytes.clone();
        for &at in &self.cid_at {
            b[at..at + 4].copy_from_slice(&conn_id.to_be_bytes());
        }
        // Retarget the ED digests through the code's GF(2)-linearity: the
        // label flip shifts each digest by the XOR of the per-bit deltas.
        let flip = TEMPLATE_CONN ^ conn_id;
        if flip != 0 && !self.ed_at.is_empty() {
            let mut delta = [0u8; 8];
            for (bit, d) in self.cid_basis.iter().enumerate() {
                if flip & (1u32 << bit) != 0 {
                    for (acc, x) in delta.iter_mut().zip(d) {
                        *acc ^= x;
                    }
                }
            }
            for &at in &self.ed_at {
                for (i, x) in delta.iter().enumerate() {
                    b[at + i] ^= x;
                }
            }
        }
        Packet { bytes: b.into() }
    }

    fn wire(&self) -> u64 {
        self.bytes.len() as u64
    }
}

/// Template for message slot `m`: one TPDU starting at `C.SN = m * 32`.
fn template(m: usize, seed: u64) -> Template {
    let mut tx = Sender::new(SenderConfig {
        params: params_for(TEMPLATE_CONN, m as u32 * TPDU_ELEMENTS),
        layout: layout(),
        mtu: MTU,
        min_tpdu_elements: 8,
        max_tpdu_elements: TPDU_ELEMENTS,
    });
    tx.submit_simple(&msg_bytes(seed, m), 0x10 + m as u32, false);
    let pkts = tx.packets_for_pending().expect("tiny message packs");
    assert_eq!(pkts.len(), 1, "one tiny message must pack into one packet");
    Template::from_packet(&pkts[0])
}

/// Message-0 template with the ED chunk stripped: traffic that stages bytes
/// forever (nothing can verify), for the budget cell.
fn data_only_template(seed: u64) -> Template {
    let full = template(0, seed);
    let packet = Packet {
        bytes: full.bytes.clone().into(),
    };
    let data: Vec<_> = unpack(&packet)
        .expect("template unpacks")
        .into_iter()
        .filter(|c| c.header.ty == ChunkType::Data)
        .collect();
    let pkts = pack(data, MTU).expect("data-only packet packs");
    Template::from_packet(&pkts[0])
}

/// Demux-event tallies a cell accumulates while draining its event buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct Tally {
    delivered_elements: u64,
    failed: u64,
    shed: u64,
    unknown: u64,
}

impl Tally {
    fn absorb(&mut self, events: &mut Vec<DemuxEvent>) {
        for e in events.drain(..) {
            match e {
                DemuxEvent::Connection { event, .. } => match event {
                    RxEvent::TpduDelivered { elements, .. } => self.delivered_elements += elements,
                    RxEvent::TpduFailed { .. } => self.failed += 1,
                    RxEvent::ChunkShed { .. } => self.shed += 1,
                    _ => {}
                },
                DemuxEvent::UnknownConnection { .. } => self.unknown += 1,
                _ => {}
            }
        }
    }
}

/// One cell's measurements. Timing columns (`wall_ns` and the rates) are
/// host-dependent; everything else is deterministic under the seed and is
/// what the double-run compares.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// Cell name.
    pub cell: &'static str,
    /// Peak concurrent connections the cell held.
    pub conns: u64,
    /// Packets ingested.
    pub packets: u64,
    /// Chunks ingested.
    pub chunks: u64,
    /// Wire bytes ingested.
    pub wire_bytes: u64,
    /// Wall time over the timed ingest loops, ns.
    pub wall_ns: u64,
    /// Admissions per second over the timed loops.
    pub conns_per_s: f64,
    /// Chunks per second over the timed loops.
    pub chunks_per_s: f64,
    /// Wire MiB per second over the timed loops.
    pub mib_s: f64,
    /// Application bytes delivered and WSC-2-verified.
    pub delivered_bytes: u64,
    /// TPDUs that failed verification (fault cells).
    pub failed_tpdus: u64,
    /// Chunks shed under budget pressure.
    pub shed_chunks: u64,
    /// Chunks dropped for an unknown `C.ID` (label-flip faults).
    pub unknown_conns: u64,
    /// Table admissions.
    pub admissions: u64,
    /// Admissions served by re-arming a pooled shell (no allocation).
    pub pooled: u64,
    /// Table evictions (capacity LRU + explicit retires).
    pub evictions: u64,
    /// Admissions refused.
    pub refusals: u64,
    /// High-water mark of live connections.
    pub peak_live: u64,
    /// Longest robin-hood probe sequence any insert walked.
    pub max_probe: u64,
    /// Heap bytes per connection across the ramp (counting allocator);
    /// -1 when counting is not installed or the cell does not measure it.
    pub mem_per_conn: i64,
    /// Heap allocations across the steady churn phase; -1 when not measured.
    pub steady_allocs: i64,
    /// p99 of `span.delay.verify_ns` (virtual ns); -1 when the cell runs
    /// without an observability sink.
    pub p99_verify_ns: i64,
    /// Serial and parallel replays of the same schedule delivered identical
    /// digests (true for cells with nothing to compare).
    pub digests_match: bool,
    /// The replay reproduced every deterministic column byte for byte.
    pub deterministic: bool,
    /// The cell's own acceptance gate.
    pub ok: bool,
}

impl Row {
    fn base(cell: &'static str) -> Row {
        Row {
            cell,
            conns: 0,
            packets: 0,
            chunks: 0,
            wire_bytes: 0,
            wall_ns: 0,
            conns_per_s: 0.0,
            chunks_per_s: 0.0,
            mib_s: 0.0,
            delivered_bytes: 0,
            failed_tpdus: 0,
            shed_chunks: 0,
            unknown_conns: 0,
            admissions: 0,
            pooled: 0,
            evictions: 0,
            refusals: 0,
            peak_live: 0,
            max_probe: 0,
            mem_per_conn: -1,
            steady_allocs: -1,
            p99_verify_ns: -1,
            digests_match: true,
            deterministic: false,
            ok: false,
        }
    }

    fn finish_rates(&mut self) {
        let secs = self.wall_ns.max(1) as f64 / 1e9;
        self.conns_per_s = self.admissions as f64 / secs;
        self.chunks_per_s = self.chunks as f64 / secs;
        self.mib_s = self.wire_bytes as f64 / (1024.0 * 1024.0) / secs;
    }

    /// The deterministic columns the double-run must reproduce exactly.
    fn fingerprint(&self) -> ([u64; 14], i64, bool, bool) {
        (
            [
                self.conns,
                self.packets,
                self.chunks,
                self.wire_bytes,
                self.delivered_bytes,
                self.failed_tpdus,
                self.shed_chunks,
                self.unknown_conns,
                self.admissions,
                self.pooled,
                self.evictions,
                self.refusals,
                self.peak_live,
                self.max_probe,
            ],
            self.p99_verify_ns,
            self.digests_match,
            self.ok,
        )
    }

    fn take_table_stats(&mut self, stats: &chunks_transport::TableStats) {
        self.admissions = stats.admissions;
        self.pooled = stats.pooled_admissions;
        self.evictions = stats.evictions;
        self.refusals = stats.refusals;
        self.peak_live = stats.peak_live as u64;
        self.max_probe = stats.max_probe;
    }
}

/// The whole sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ScaleResult {
    /// Seed the traffic was drawn from.
    pub seed: u64,
    /// Concurrent connections the big cells were asked to hold
    /// ([`MILLION_CONNS`] on the full run, smaller under [`run_quick`]).
    pub target_conns: u64,
    /// Whether the counting allocator was active.
    pub alloc_counting: bool,
    /// One row per cell.
    pub rows: Vec<Row>,
    /// Every cell reproduced its deterministic columns on replay.
    pub deterministic: bool,
}

impl ScaleResult {
    /// Acceptance: every cell's own gate holds, every cell replays byte for
    /// byte, both big cells actually held the targeted concurrent
    /// connections (2^20 on the full run), and — when the counting
    /// allocator is installed — the serial churn phase ran allocation-free.
    pub fn passes(&self) -> bool {
        let cells_ok = self.rows.iter().all(|r| r.ok && r.deterministic);
        let million = ["million-serial", "million-parallel"].iter().all(|name| {
            self.rows
                .iter()
                .any(|r| r.cell == *name && r.conns >= self.target_conns)
        });
        let lean = !self.alloc_counting
            || self
                .rows
                .iter()
                .find(|r| r.cell == "million-serial")
                .is_some_and(|r| r.steady_allocs == 0);
        cells_ok && million && lean && self.deterministic
    }
}

/// capacity-lru: 4 Ki admissions through a 1 Ki-live table.
fn cell_capacity_lru(seed: u64) -> Row {
    const MAX_LIVE: usize = 1024;
    const TOTAL: u32 = 4096;
    let mut row = Row::base("capacity-lru");
    let tpl = template(0, seed);
    let sink = RecordingSink::with_capacity(1 << 15);
    let mut demux =
        ConnectionDemux::with_table(TableConfig::for_capacity(MAX_LIVE).with_max_live(MAX_LIVE));
    demux.table_mut().set_obs(sink.clone());
    let mut tally = Tally::default();
    let mut events = Vec::with_capacity(8);
    let mut now = 0u64;
    let begin = Instant::now();
    for id in 0..TOTAL {
        now += TICK_NS;
        demux.table_mut().admit(
            params_for(id, 0),
            now,
            || fresh_rx(id, DeliveryMode::Immediate),
            |_| {},
        );
        demux.ingest(&tpl.packet_for(id), now, &mut events);
        tally.absorb(&mut events);
    }
    row.wall_ns = begin.elapsed().as_nanos() as u64;
    row.conns = MAX_LIVE as u64;
    row.packets = TOTAL as u64;
    row.chunks = TOTAL as u64 * tpl.chunks;
    row.wire_bytes = TOTAL as u64 * tpl.wire();
    row.delivered_bytes = tally.delivered_elements;
    row.failed_tpdus = tally.failed;
    row.take_table_stats(&demux.table().stats);
    let snap = sink.snapshot();
    row.ok = row.evictions == TOTAL as u64 - MAX_LIVE as u64
        && row.refusals == 0
        && row.peak_live == MAX_LIVE as u64
        && demux.table().len() == MAX_LIVE
        && demux.table().under_pressure()
        && row.delivered_bytes == TOTAL as u64 * MSG_BYTES as u64
        && snap.counter("transport.table.evictions") == row.evictions
        && snap.counter("transport.table.admissions") == row.admissions;
    row.finish_rates();
    row
}

/// Per-connection outcome fingerprint compared across the two demux paths:
/// `(C.ID, verified prefix, delivered (offset, digest) records)`.
type ConnFingerprint = (u32, u64, Vec<(u64, [u8; 8])>);

/// The explicit churn schedule both demux paths replay in churn-equiv.
enum Op {
    Admit(u32),
    Send(u32),
    Retire(u32),
}

fn churn_schedule() -> Vec<Op> {
    const WINDOW: u32 = 2048;
    const WAVE: u32 = 256;
    const WAVES: u32 = 24;
    let mut ops = Vec::new();
    for id in 0..WINDOW {
        ops.push(Op::Admit(id));
        ops.push(Op::Send(id));
    }
    for w in 0..WAVES {
        for i in 0..WAVE {
            ops.push(Op::Retire(w * WAVE + i));
        }
        for i in 0..WAVE {
            let id = WINDOW + w * WAVE + i;
            ops.push(Op::Admit(id));
            ops.push(Op::Send(id));
        }
    }
    ops
}

/// churn-equiv: the same admit/send/retire schedule on the serial table and
/// the parallel pipeline; survivors must agree byte for byte.
fn cell_churn_equiv(seed: u64) -> Row {
    let mut row = Row::base("churn-equiv");
    let tpl = template(0, seed);
    let ops = churn_schedule();
    let total_msgs = ops.iter().filter(|o| matches!(o, Op::Send(_))).count() as u64;

    // Serial replay.
    let mut demux = ConnectionDemux::with_table(TableConfig::for_capacity(2048));
    let mut tally = Tally::default();
    let mut events = Vec::with_capacity(8);
    let mut now = 0u64;
    let begin = Instant::now();
    for op in &ops {
        now += TICK_NS;
        match *op {
            Op::Admit(id) => {
                demux.table_mut().admit(
                    params_for(id, 0),
                    now,
                    || fresh_rx(id, DeliveryMode::Immediate),
                    |_| {},
                );
            }
            Op::Send(id) => {
                demux.ingest(&tpl.packet_for(id), now, &mut events);
                tally.absorb(&mut events);
            }
            Op::Retire(id) => {
                demux.table_mut().retire(id, now);
            }
        }
    }
    let serial_wall = begin.elapsed().as_nanos() as u64;
    let mut serial: Vec<ConnFingerprint> = demux
        .table()
        .iter()
        .map(|(id, rx)| (id, rx.verified_prefix(), rx.delivered_digests()))
        .collect();
    serial.sort_unstable_by_key(|&(id, _, _)| id);
    row.take_table_stats(&demux.table().stats);

    // Parallel replay of the identical schedule.
    let mut pr = ParallelReceiver::new(WORKERS, Engine::Virtual(Schedule::Fair), Vec::new());
    let mut now = 0u64;
    let begin = Instant::now();
    for op in &ops {
        now += TICK_NS;
        match *op {
            Op::Admit(id) => pr.admit(spec_for(id), now),
            Op::Send(id) => pr.ingest(&tpl.packet_for(id), now),
            Op::Retire(id) => pr.retire(id, now),
        }
    }
    pr.drain();
    let outcome = pr.finish();
    let par_wall = begin.elapsed().as_nanos() as u64;
    let parallel: Vec<ConnFingerprint> = outcome
        .conns
        .iter()
        .map(|(&id, report)| {
            (
                id,
                report.receiver.verified_prefix(),
                report.receiver.delivered_digests(),
            )
        })
        .collect();

    row.digests_match = serial == parallel;
    row.wall_ns = serial_wall + par_wall;
    row.conns = 2048;
    row.packets = total_msgs;
    row.chunks = total_msgs * tpl.chunks;
    row.wire_bytes = total_msgs * tpl.wire();
    row.delivered_bytes = tally.delivered_elements;
    let survivor_bytes: u64 = serial.iter().map(|&(_, v, _)| v).sum();
    row.ok = row.digests_match
        && row.delivered_bytes == total_msgs * MSG_BYTES as u64
        && serial.len() == 2048
        && parallel.len() == 2048
        && survivor_bytes == 2048 * MSG_BYTES as u64
        && row.pooled == row.admissions - 2048
        && row.refusals == 0;
    row.finish_rates();
    row
}

/// budget-bound: ED-less traffic against one shared global budget.
fn cell_budget_bound(seed: u64) -> Row {
    const CONNS: u32 = 1024;
    const GLOBAL_CAP: u64 = 8 * 1024;
    let mut row = Row::base("budget-bound");
    let tpl = data_only_template(seed);
    let global = GlobalBudget::new(GLOBAL_CAP);
    let mut demux = ConnectionDemux::with_table(TableConfig::for_capacity(CONNS as usize));
    let mut tally = Tally::default();
    let mut events = Vec::with_capacity(8);
    let mut now = 0u64;
    let mut max_held = 0u64;
    let begin = Instant::now();
    for id in 0..CONNS {
        now += TICK_NS;
        let budget = ResourceBudget::with_caps(4096, 8, 32).with_global(global.clone());
        demux.table_mut().admit(
            params_for(id, 0),
            now,
            || {
                let mut rx = fresh_rx(id, DeliveryMode::Reassemble);
                rx.set_budget(budget.clone());
                rx
            },
            |rx| rx.set_budget(budget.clone()),
        );
        demux.ingest(&tpl.packet_for(id), now, &mut events);
        tally.absorb(&mut events);
        max_held = max_held.max(global.held_bytes());
    }
    let bounded = max_held <= GLOBAL_CAP;
    for id in 0..CONNS {
        now += TICK_NS;
        demux.table_mut().retire(id, now);
    }
    row.wall_ns = begin.elapsed().as_nanos() as u64;
    row.conns = CONNS as u64;
    row.packets = CONNS as u64;
    row.chunks = CONNS as u64 * tpl.chunks;
    row.wire_bytes = CONNS as u64 * tpl.wire();
    row.delivered_bytes = tally.delivered_elements;
    row.shed_chunks = tally.shed;
    row.take_table_stats(&demux.table().stats);
    row.ok = bounded
        && tally.shed > 0
        && global.held_bytes() == 0
        && row.delivered_bytes == 0
        && row.evictions == CONNS as u64;
    row.finish_rates();
    row
}

/// zipf-faults: a Zipf(1) traffic mix over `conns` connections with the
/// Byzantine fault matrix spliced into every eighth event.
fn cell_zipf_faults(seed: u64, conns: u32, events_n: usize) -> Row {
    let mut row = Row::base("zipf-faults");
    let tpls: Vec<Template> = (0..MSGS_PER_CONN).map(|m| template(m, seed)).collect();
    let sink = RecordingSink::with_capacity(1 << 15);
    let mut demux = ConnectionDemux::with_table(TableConfig::for_capacity(conns as usize));
    for id in 0..conns {
        demux.table_mut().admit(
            params_for(id, 0),
            0,
            || {
                let mut rx = fresh_rx(id, DeliveryMode::Immediate);
                rx.set_obs(sink.clone());
                rx
            },
            |_| {},
        );
    }
    // The full fault matrix, one adversary per attack family.
    let mut routers = [
        ByzantineRouter::new(
            ByzantineConfig {
                flip_cid: 0.2,
                flip_tsn: 0.1,
                flip_len: 0.05,
                ..Default::default()
            },
            seed ^ 0xB1,
        ),
        ByzantineRouter::new(ByzantineConfig::shifted_duplicator(0.3), seed ^ 0xB2),
        ByzantineRouter::new(ByzantineConfig::rewriter(0.3), seed ^ 0xB3),
        ByzantineRouter::new(ByzantineConfig::tiny_flooder(0.2, 3, 64), seed ^ 0xB4),
    ];
    let mut cursors = vec![0u8; conns as usize];
    let mut tally = Tally::default();
    let mut events = Vec::with_capacity(8);
    let mut rng = seed | 1;
    let mut now = 0u64;
    let begin = Instant::now();
    for ev in 0..events_n {
        now += TICK_NS;
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Zipf(1) by inverse CDF: n^u is log-uniform on [1, n), so the rank
        // r is drawn with probability ∝ 1/r.
        let u = (rng >> 11) as f64 / (1u64 << 53) as f64;
        let id = ((conns as f64).powf(u) as u32).min(conns - 1) - 1;
        let cur = cursors[id as usize] as usize;
        let m = cur.min(MSGS_PER_CONN - 1);
        if cur < MSGS_PER_CONN {
            cursors[id as usize] += 1;
        }
        let pkt = tpls[m].packet_for(id);
        row.packets += 1;
        row.chunks += tpls[m].chunks;
        row.wire_bytes += tpls[m].wire();
        if ev % 8 == 7 {
            let router = &mut routers[(ev / 8) % 4];
            for frame in router.ingest_at(now, pkt.bytes.to_vec()) {
                let mutated = Packet {
                    bytes: frame.into(),
                };
                demux.ingest(&mutated, now, &mut events);
                tally.absorb(&mut events);
            }
        } else {
            demux.ingest(&pkt, now, &mut events);
            tally.absorb(&mut events);
        }
    }
    row.wall_ns = begin.elapsed().as_nanos() as u64;
    row.conns = conns as u64;
    row.delivered_bytes = tally.delivered_elements;
    row.failed_tpdus = tally.failed;
    row.unknown_conns = tally.unknown;
    row.take_table_stats(&demux.table().stats);
    row.p99_verify_ns = sink
        .snapshot()
        .histogram("span.delay.verify_ns")
        .map(|h| h.p99() as i64)
        .unwrap_or(-1);
    row.ok = row.delivered_bytes > 0
        && row.unknown_conns > 0
        && row.refusals == 0
        && demux.table().len() == conns as usize
        && row.p99_verify_ns >= 0;
    row.finish_rates();
    row
}

/// million-serial: ramp to `conns` live connections, then an
/// allocation-free churn phase over pooled shells.
fn cell_million_serial(seed: u64, conns: u32, churn: u32, counting: bool) -> Row {
    const WAVE: usize = 1 << 14;
    const WARMUP: u32 = 64;
    let mut row = Row::base("million-serial");
    let tpl = template(0, seed);
    let mut demux = ConnectionDemux::with_table(TableConfig::for_capacity(conns as usize));
    let mut tally = Tally::default();
    let mut events = Vec::with_capacity(8);
    let mut now = 0u64;
    let mut wall = 0u64;
    let mem_before = alloc_count::live_bytes();

    // Ramp: waves of pre-generated packets; only admission + ingest timed.
    let mut wave_pkts: Vec<Packet> = Vec::with_capacity(WAVE);
    let mut wave_start = 0u32;
    while wave_start < conns {
        let wave_end = (wave_start + WAVE as u32).min(conns);
        wave_pkts.clear();
        for id in wave_start..wave_end {
            wave_pkts.push(tpl.packet_for(id));
        }
        let t = Instant::now();
        for (i, pkt) in wave_pkts.iter().enumerate() {
            let id = wave_start + i as u32;
            now += TICK_NS;
            demux.table_mut().admit(
                params_for(id, 0),
                now,
                || fresh_rx(id, DeliveryMode::Immediate),
                |_| {},
            );
            demux.ingest(pkt, now, &mut events);
            tally.absorb(&mut events);
        }
        wall += t.elapsed().as_nanos() as u64;
        wave_start = wave_end;
    }
    let mem_after = alloc_count::live_bytes();

    // Warm the shell pool and the free-list capacity outside the window.
    let warm_pkts: Vec<Packet> = (0..WARMUP)
        .map(|w| tpl.packet_for(conns + churn + w))
        .collect();
    for (w, pkt) in warm_pkts.iter().enumerate() {
        now += TICK_NS;
        demux.table_mut().retire(conns - WARMUP + w as u32, now);
        let id = conns + churn + w as u32;
        demux.table_mut().admit(
            params_for(id, 0),
            now,
            || fresh_rx(id, DeliveryMode::Immediate),
            |_| {},
        );
        demux.ingest(pkt, now, &mut events);
        tally.absorb(&mut events);
    }

    // Steady churn: retire + pooled re-admission + delivery, zero
    // allocations expected.
    let churn_pkts: Vec<Packet> = (0..churn).map(|i| tpl.packet_for(conns + i)).collect();
    let allocs_before = alloc_count::allocs();
    let t = Instant::now();
    for (i, pkt) in churn_pkts.iter().enumerate() {
        now += TICK_NS;
        demux.table_mut().retire(i as u32, now);
        let id = conns + i as u32;
        demux.table_mut().admit(
            params_for(id, 0),
            now,
            || fresh_rx(id, DeliveryMode::Immediate),
            |_| {},
        );
        demux.ingest(pkt, now, &mut events);
        tally.absorb(&mut events);
    }
    wall += t.elapsed().as_nanos() as u64;
    let churn_allocs = alloc_count::allocs() - allocs_before;

    let total_msgs = conns as u64 + WARMUP as u64 + churn as u64;
    row.wall_ns = wall;
    row.conns = conns as u64;
    row.packets = total_msgs;
    row.chunks = total_msgs * tpl.chunks;
    row.wire_bytes = total_msgs * tpl.wire();
    row.delivered_bytes = tally.delivered_elements;
    row.take_table_stats(&demux.table().stats);
    row.mem_per_conn = if counting {
        (mem_after.saturating_sub(mem_before) / conns as u64) as i64
    } else {
        -1
    };
    row.steady_allocs = if counting { churn_allocs as i64 } else { -1 };
    row.ok = row.delivered_bytes == total_msgs * MSG_BYTES as u64
        && row.peak_live == conns as u64
        && demux.table().len() == conns as usize
        && row.pooled == WARMUP as u64 + churn as u64
        && row.evictions == WARMUP as u64 + churn as u64
        && row.refusals == 0
        && (!counting || churn_allocs == 0);
    row.finish_rates();
    row
}

/// million-parallel: the same soak through the 8-worker virtual-engine
/// pipeline, with a churn tail, merged and verified at `finish`.
fn cell_million_parallel(seed: u64, conns: u32, churn: u32) -> Row {
    const WAVE: usize = 1 << 14;
    let mut row = Row::base("million-parallel");
    let tpl = template(0, seed);
    let mut pr = ParallelReceiver::new(WORKERS, Engine::Virtual(Schedule::Fair), Vec::new());
    let mut now = 0u64;
    let mut wall = 0u64;

    let mut wave_pkts: Vec<Packet> = Vec::with_capacity(WAVE);
    let mut wave_start = 0u32;
    while wave_start < conns {
        let wave_end = (wave_start + WAVE as u32).min(conns);
        wave_pkts.clear();
        for id in wave_start..wave_end {
            wave_pkts.push(tpl.packet_for(id));
        }
        let t = Instant::now();
        for (i, pkt) in wave_pkts.iter().enumerate() {
            let id = wave_start + i as u32;
            now += TICK_NS;
            pr.admit(spec_for(id), now);
            pr.ingest(pkt, now);
        }
        pr.drain();
        wall += t.elapsed().as_nanos() as u64;
        wave_start = wave_end;
    }

    // Churn tail: retire the first `churn` connections, admit replacements
    // through the same per-worker FIFOs, and deliver to them.
    let churn_pkts: Vec<Packet> = (0..churn).map(|i| tpl.packet_for(conns + i)).collect();
    let t = Instant::now();
    for (i, pkt) in churn_pkts.iter().enumerate() {
        now += TICK_NS;
        pr.retire(i as u32, now);
        pr.admit(spec_for(conns + i as u32), now);
        pr.ingest(pkt, now);
    }
    pr.drain();
    wall += t.elapsed().as_nanos() as u64;

    let outcome = pr.finish();
    let live = outcome.conns.len() as u64;
    let delivered: u64 = outcome
        .conns
        .values()
        .map(|r| r.receiver.verified_prefix())
        .sum();
    let total_msgs = conns as u64 + churn as u64;
    row.wall_ns = wall;
    row.conns = conns as u64;
    row.packets = total_msgs;
    row.chunks = total_msgs * tpl.chunks;
    row.wire_bytes = total_msgs * tpl.wire();
    row.delivered_bytes = delivered;
    row.admissions = total_msgs;
    row.evictions = churn as u64;
    row.peak_live = conns as u64;
    // Retired connections take their verified bytes with them; the
    // replacements contribute the same amount back, so the survivors'
    // total equals one message per concurrent connection.
    row.ok = live == conns as u64
        && delivered == conns as u64 * MSG_BYTES as u64
        && outcome.dispatch.bad_packets == 0
        && outcome.dispatch.decode_errors == 0;
    row.finish_rates();
    row
}

fn run_cells(seed: u64, conns: u32, churn: u32, zipf_conns: u32, zipf_events: usize) -> Vec<Row> {
    let counting = alloc_count::active();
    vec![
        cell_capacity_lru(seed),
        cell_churn_equiv(seed),
        cell_budget_bound(seed),
        cell_zipf_faults(seed, zipf_conns, zipf_events),
        cell_million_serial(seed, conns, churn, counting),
        cell_million_parallel(seed, conns, churn),
    ]
}

fn run_sized(
    seed: u64,
    conns: u32,
    churn: u32,
    zipf_conns: u32,
    zipf_events: usize,
) -> ScaleResult {
    let first = run_cells(seed, conns, churn, zipf_conns, zipf_events);
    let second = run_cells(seed, conns, churn, zipf_conns, zipf_events);
    let mut rows = first;
    let mut deterministic = true;
    for (a, b) in rows.iter_mut().zip(&second) {
        a.deterministic = a.fingerprint() == b.fingerprint();
        deterministic &= a.deterministic;
    }
    ScaleResult {
        seed,
        target_conns: conns as u64,
        alloc_counting: alloc_count::active(),
        rows,
        deterministic,
    }
}

/// Runs the full sweep: every cell twice (the replay is the determinism
/// proof), million cells at 2^20 concurrent connections.
pub fn run(seed: u64) -> ScaleResult {
    run_sized(seed, MILLION_CONNS, CHURN_CONNS, ZIPF_CONNS, ZIPF_EVENTS)
}

/// The same sweep shrunk for test suites: identical cells and gates, with
/// the big cells at 2^14 connections. `tests/scale_determinism.rs` runs
/// this in tier-1 time; set `SCALE_FULL=1` there to run [`run`] instead.
pub fn run_quick(seed: u64) -> ScaleResult {
    run_sized(seed, 1 << 14, 1 << 10, 1 << 10, 1 << 12)
}

impl fmt::Display for ScaleResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== scale — million-connection demux soak (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {} B messages, {} B MTU; alloc counting {}; replay deterministic: {}",
            MSG_BYTES,
            MTU,
            if self.alloc_counting { "on" } else { "off" },
            self.deterministic,
        )?;
        writeln!(
            f,
            "  {:<17} {:>9} {:>9} {:>10} {:>11} {:>8} {:>8} {:>7} {:>8} {:>9} {:>8} {:>4} {:>3}",
            "cell",
            "conns",
            "packets",
            "wall",
            "conns/s",
            "MiB/s",
            "evict",
            "pooled",
            "mem/conn",
            "allocs",
            "p99-vfy",
            "det",
            "ok",
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<17} {:>9} {:>9} {:>8.1}ms {:>11.0} {:>8.1} {:>8} {:>7} {:>8} {:>9} {:>8} {:>4} {:>3}",
                r.cell,
                r.conns,
                r.packets,
                r.wall_ns as f64 / 1e6,
                r.conns_per_s,
                r.mib_s,
                r.evictions,
                r.pooled,
                r.mem_per_conn,
                r.steady_allocs,
                r.p99_verify_ns,
                if r.deterministic { "yes" } else { "NO" },
                if r.ok { "yes" } else { "NO" },
            )?;
        }
        Ok(())
    }
}

/// Renders the sweep as the `BENCH_scale.json` record. Wall-clock rates are
/// host-dependent, so `bench-check` validates this file structurally.
pub fn bench_json(r: &ScaleResult, describe: &str) -> String {
    use super::benchjson::meta_json;
    let mut out = String::from("{\n");
    out.push_str(&meta_json(
        "million-connection-scale-soak",
        "cargo run --release --bin experiments scale (or: just scale)",
        describe,
    ));
    out.push_str(&format!(
        "  \"workload\": \"{} B tiny messages; capacity-LRU, churn-equivalence, global-budget, Zipf+Byzantine, and 2^20-connection serial/parallel cells; {} workers on parallel cells\",\n",
        MSG_BYTES, WORKERS,
    ));
    out.push_str(
        "  \"method\": \"every cell runs twice and must reproduce its deterministic columns byte for byte; churn allocations counted by the binary's counting global allocator; memory per connection is the live-byte delta across the ramp; p99 verify delay from the span.delay.verify_ns histogram (virtual clock)\",\n",
    );
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str(&format!("  \"target_conns\": {},\n", r.target_conns));
    out.push_str(&format!("  \"alloc_counting\": {},\n", r.alloc_counting));
    out.push_str(&format!("  \"deterministic\": {},\n", r.deterministic));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|l| {
            format!(
                "    {{\"cell\": \"{}\", \"conns\": {}, \"packets\": {}, \"chunks\": {}, \"wire_bytes\": {}, \"wall_ms\": {:.3}, \"conns_per_s\": {:.0}, \"chunks_per_s\": {:.0}, \"mib_s\": {:.2}, \"delivered_bytes\": {}, \"failed_tpdus\": {}, \"shed_chunks\": {}, \"unknown_conns\": {}, \"admissions\": {}, \"pooled\": {}, \"evictions\": {}, \"refusals\": {}, \"peak_live\": {}, \"max_probe\": {}, \"mem_per_conn\": {}, \"steady_allocs\": {}, \"p99_verify_ns\": {}, \"digests_match\": {}, \"deterministic\": {}, \"ok\": {}}}",
                l.cell,
                l.conns,
                l.packets,
                l.chunks,
                l.wire_bytes,
                l.wall_ns as f64 / 1e6,
                l.conns_per_s,
                l.chunks_per_s,
                l.mib_s,
                l.delivered_bytes,
                l.failed_tpdus,
                l.shed_chunks,
                l.unknown_conns,
                l.admissions,
                l.pooled,
                l.evictions,
                l.refusals,
                l.peak_live,
                l.max_probe,
                l.mem_per_conn,
                l.steady_allocs,
                l.p99_verify_ns,
                l.digests_match,
                l.deterministic,
                l.ok,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_patched_template_matches_a_real_sender_bit_for_bit() {
        // The whole harness rests on this: a template packet with its
        // C.ID fields patched and its ED digest shifted by the linear
        // basis must be indistinguishable from what a sender constructed
        // for that connection would emit.
        let seed = 0x5CA1E;
        for m in 0..MSGS_PER_CONN {
            let tpl = template(m, seed);
            for &cid in &[0u32, 2, 7, 0x0001_0000, 0xDEAD_BEEF, u32::MAX] {
                let mut tx = Sender::new(SenderConfig {
                    params: params_for(cid, m as u32 * TPDU_ELEMENTS),
                    layout: layout(),
                    mtu: MTU,
                    min_tpdu_elements: 8,
                    max_tpdu_elements: TPDU_ELEMENTS,
                });
                tx.submit_simple(&msg_bytes(seed, m), 0x10 + m as u32, false);
                let direct = tx.packets_for_pending().expect("tiny message packs");
                assert_eq!(direct.len(), 1);
                assert_eq!(
                    tpl.packet_for(cid).bytes,
                    direct[0].bytes,
                    "slot {m}, C.ID {cid:#x}"
                );
            }
        }
    }

    #[test]
    fn capacity_lru_cell_holds_its_gates() {
        let r = cell_capacity_lru(0x5CA1E);
        assert!(r.ok, "{r:?}");
    }

    #[test]
    fn churn_schedule_agrees_across_paths() {
        let r = cell_churn_equiv(0x5CA1E);
        assert!(r.digests_match, "{r:?}");
        assert!(r.ok, "{r:?}");
    }

    #[test]
    fn global_budget_bounds_and_releases() {
        let r = cell_budget_bound(0x5CA1E);
        assert!(r.ok, "{r:?}");
    }

    #[test]
    fn zipf_fault_mix_survives_and_replays() {
        let a = cell_zipf_faults(0x5CA1E, 1 << 10, 1 << 12);
        let b = cell_zipf_faults(0x5CA1E, 1 << 10, 1 << 12);
        assert!(a.ok, "{a:?}");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn shrunken_soak_passes_end_to_end() {
        // Library tests run without the counting allocator; the alloc and
        // memory gates are skipped, everything else must hold.
        let r = run_quick(0x5CA1E);
        assert!(r.passes(), "{r}");
    }
}
