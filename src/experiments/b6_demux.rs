//! B6: demultiplexing cost (§3.2).
//!
//! "Because of multipath routing, a mixture of complete PDUs and fragments
//! of PDUs could arrive at the receiver. The receiver must examine the
//! received packet to demultiplex the packets to the appropriate protocol
//! … Chunks are processed identically regardless of whether network
//! fragmentation has occurred."
//!
//! We synthesize an arrival mix of whole PDUs and fragments and time the
//! receive loop of (a) an IP-style receiver with its two code paths
//! (fast-path whole datagrams vs the reassembly path) and (b) the uniform
//! chunk receiver. The interesting *shape* is that the chunk path cost is
//! flat in the fragment fraction, while the IP path cost grows with it.

use std::fmt;
use std::time::Instant;

use bytes::Bytes;
use chunks_baseline::ip::{fragment, IpPacket, IpReassembler};
use chunks_core::chunk::byte_chunk;
use chunks_core::frag::split_to_fit;
use chunks_core::label::FramingTuple;
use chunks_core::packet::{unpack, Packet, PacketBuilder};
use chunks_core::wire::WIRE_HEADER_LEN;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result row at one fragment mix.
#[derive(Clone, Copy, Debug)]
pub struct B6Row {
    /// Fraction of PDUs that arrive fragmented.
    pub fragmented_fraction: f64,
    /// IP receive-loop cost, ns/packet.
    pub ip_ns_per_packet: f64,
    /// Chunk receive-loop cost, ns/packet.
    pub chunk_ns_per_packet: f64,
}

/// Full B6 result.
pub struct B6Result {
    /// PDUs per cell.
    pub pdus: usize,
    /// Rows over the fragment mix sweep.
    pub rows: Vec<B6Row>,
}

impl fmt::Display for B6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B6 — demux cost for mixed whole/fragmented arrivals ({} PDUs) ===",
            self.pdus
        )?;
        writeln!(
            f,
            "  {:>10} {:>18} {:>18}",
            "frag mix", "IP ns/packet", "chunks ns/packet"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>9.0}% {:>18.0} {:>18.0}",
                r.fragmented_fraction * 100.0,
                r.ip_ns_per_packet,
                r.chunk_ns_per_packet
            )?;
        }
        Ok(())
    }
}

const PDU_BYTES: usize = 1024;
const SMALL_MTU: usize = 400;

fn run_cell(pdus: usize, frag_fraction: f64, seed: u64) -> B6Row {
    let frag_count = (pdus as f64 * frag_fraction) as usize;

    // --- IP workload ---
    let mut ip_frames: Vec<Vec<u8>> = Vec::new();
    for id in 0..pdus as u32 {
        let payload: Vec<u8> = vec![id as u8; PDU_BYTES];
        let dg = IpPacket::datagram(id, Bytes::from(payload));
        if (id as usize) < frag_count {
            for p in fragment(&dg, SMALL_MTU).unwrap() {
                ip_frames.push(p.encode());
            }
        } else {
            ip_frames.push(dg.encode());
        }
    }
    ip_frames.shuffle(&mut StdRng::seed_from_u64(seed));

    let t = Instant::now();
    let mut reasm = IpReassembler::new(64 << 20);
    let mut processed = 0u64;
    for f in &ip_frames {
        let p = IpPacket::decode(f).unwrap();
        // The demux branch: whole datagrams take the fast path; anything
        // fragmented detours through reassembly.
        if p.offset == 0 && !p.mf {
            processed += p.payload.iter().map(|&b| b as u64).sum::<u64>();
        } else if let Some(whole) = reasm.offer(p) {
            processed += whole.iter().map(|&b| b as u64).sum::<u64>();
        }
    }
    std::hint::black_box(processed);
    let ip_ns = t.elapsed().as_nanos() as f64 / ip_frames.len() as f64;

    // --- chunk workload: same mix, same arrival order discipline ---
    let mut chunk_frames: Vec<Bytes> = Vec::new();
    for id in 0..pdus as u32 {
        let payload: Vec<u8> = vec![id as u8; PDU_BYTES];
        let whole = byte_chunk(
            FramingTuple::new(1, id.wrapping_mul(PDU_BYTES as u32), false),
            FramingTuple::new(id, 0, true),
            FramingTuple::new(id, 0, true),
            &payload,
        );
        let pieces = if (id as usize) < frag_count {
            split_to_fit(whole, SMALL_MTU + WIRE_HEADER_LEN).unwrap()
        } else {
            vec![whole]
        };
        for c in pieces {
            let mut b = PacketBuilder::new(1 << 16);
            b.push(c).unwrap();
            chunk_frames.push(b.finish().bytes);
        }
    }
    chunk_frames.shuffle(&mut StdRng::seed_from_u64(seed));

    let t = Instant::now();
    let mut trackers: std::collections::HashMap<u32, chunks_vreasm::PduTracker> =
        std::collections::HashMap::new();
    let mut processed = 0u64;
    for f in &chunk_frames {
        let packet = Packet { bytes: f.clone() };
        // One code path: every chunk is processed identically on arrival
        // (here: "processed" = summed, the stand-in for ILP work); virtual
        // reassembly is pure bookkeeping, no payload is ever buffered.
        for c in unpack(&packet).unwrap() {
            processed += c.payload.iter().map(|&b| b as u64).sum::<u64>();
            trackers.entry(c.header.tpdu.id).or_default().offer(
                c.header.tpdu.sn as u64,
                c.header.len as u64,
                c.header.tpdu.st,
            );
        }
    }
    std::hint::black_box(processed);
    let chunk_ns = t.elapsed().as_nanos() as f64 / chunk_frames.len() as f64;

    B6Row {
        fragmented_fraction: frag_fraction,
        ip_ns_per_packet: ip_ns,
        chunk_ns_per_packet: chunk_ns,
    }
}

/// Runs B6 over a sweep of fragment fractions.
pub fn run(pdus: usize, seed: u64) -> B6Result {
    let rows = [0.0, 0.25, 0.5, 0.75, 1.0]
        .into_iter()
        .map(|f| run_cell(pdus, f, seed))
        .collect();
    B6Result { pdus, rows }
}
