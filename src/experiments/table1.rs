//! Reproduction of Table 1: how corruption of each chunk field is detected.
//!
//! For every row of the paper's table we frame a three-chunk TPDU (plus its
//! ED chunk), corrupt exactly the named field of one chunk in flight, feed
//! everything to the receiver, and record which detection channel fired.
//! The paper's claimed channel is carried alongside for comparison.

use std::fmt;

use chunks_core::chunk::Chunk;
use chunks_transport::{
    AlfFrame, ConnectionParams, DeliveryMode, FailureReason, Framer, Receiver, RxEvent, Tpdu,
};
use chunks_wsc::InvariantLayout;

/// The detection channels of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Channel {
    /// "Error Detection Code".
    EdCode,
    /// "Consistency Check".
    Consistency,
    /// "Reassembly Error".
    Reassembly,
    /// Corruption escaped detection (never expected).
    Undetected,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Channel::EdCode => "Error Detection Code",
            Channel::Consistency => "Consistency Check",
            Channel::Reassembly => "Reassembly Error",
            Channel::Undetected => "UNDETECTED",
        })
    }
}

/// One row of the reproduced table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Field corrupted.
    pub field: &'static str,
    /// Whether fragmentation rewrites the field (the paper's middle
    /// column).
    pub changed_by_fragmentation: bool,
    /// The channel the paper claims detects it.
    pub paper: Channel,
    /// The channel our implementation reported.
    pub measured: Channel,
}

/// The full reproduced table.
pub struct Table1 {
    /// All rows, in the paper's order.
    pub rows: Vec<Row>,
}

impl Table1 {
    /// True when every measured channel matches the paper.
    pub fn matches_paper(&self) -> bool {
        self.rows.iter().all(|r| r.measured == r.paper)
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== Table 1 — how corruption is detected, per chunk field ==="
        )?;
        writeln!(
            f,
            "  {:<10} {:<14} {:<22} {:<22}",
            "Field", "Frag-variant?", "Paper says", "Measured"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<10} {:<14} {:<22} {:<22} {}",
                r.field,
                if r.changed_by_fragmentation {
                    "yes"
                } else {
                    "no"
                },
                r.paper.to_string(),
                r.measured.to_string(),
                if r.measured == r.paper {
                    "ok"
                } else {
                    "MISMATCH"
                }
            )?;
        }
        Ok(())
    }
}

fn params() -> ConnectionParams {
    ConnectionParams {
        conn_id: 0xA,
        elem_size: 1,
        initial_csn: 100,
        tpdu_elements: 9,
    }
}

fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(1024)
}

/// Frames two TPDUs; the first has three chunks (three external frames).
fn victim_tpdus() -> Vec<Tpdu> {
    let mut f = Framer::new(params(), layout());
    f.frame_stream(
        &[7u8; 18],
        &[
            AlfFrame {
                id: 0xE1,
                len_elements: 3,
            },
            AlfFrame {
                id: 0xE2,
                len_elements: 3,
            },
            AlfFrame {
                id: 0xE3,
                len_elements: 3,
            },
            AlfFrame {
                id: 0xE4,
                len_elements: 9,
            },
        ],
        false,
    )
}

/// Runs the receiver over the (possibly corrupted) chunks and classifies
/// the outcome.
fn classify(chunks: Vec<Chunk>) -> Channel {
    let mut rx = Receiver::new(DeliveryMode::Immediate, params(), layout(), 1 << 12);
    let mut events = Vec::new();
    for c in chunks {
        events.extend(rx.handle_chunk(c, 0));
    }
    events.extend(rx.expire_incomplete());
    // The corrupted TPDU is the first one (start 0); find its fate.
    let mut channel = Channel::Undetected;
    for e in &events {
        if let RxEvent::TpduFailed { reason, .. } = e {
            let c = match reason {
                FailureReason::EdMismatch => Channel::EdCode,
                // An overlap conflict is label-consistency detection: the
                // labels place two differing payloads at one position.
                FailureReason::Consistency | FailureReason::OverlapConflict => Channel::Consistency,
                FailureReason::ReassemblyError | FailureReason::BadChunk => Channel::Reassembly,
            };
            // First failure wins (it is what an implementation would log).
            if channel == Channel::Undetected {
                channel = c;
            }
        }
    }
    // A corruption that prevented delivery of TPDU 0 without an explicit
    // failure event would also count as reassembly trouble; but if TPDU 0
    // was delivered cleanly the corruption went undetected.
    if channel == Channel::Undetected {
        let delivered_t0 = events
            .iter()
            .any(|e| matches!(e, RxEvent::TpduDelivered { start: 0, .. }));
        if !delivered_t0 {
            channel = Channel::Reassembly;
        }
    }
    channel
}

/// Builds the chunk sequence with the first TPDU's middle (index 1) data
/// chunk replaced by `transform`'s output.
fn with_replacement(transform: impl FnOnce(Chunk) -> Vec<Chunk>) -> Vec<Chunk> {
    let mut transform = Some(transform);
    let tpdus = victim_tpdus();
    let mut chunks = Vec::new();
    for (i, t) in tpdus.iter().enumerate() {
        let mut cs = t.all_chunks();
        if i == 0 {
            let victim = cs.remove(1);
            let transform = transform.take().expect("first TPDU seen once");
            for (k, replacement) in transform(victim).into_iter().enumerate() {
                cs.insert(1 + k, replacement);
            }
        }
        chunks.extend(cs);
    }
    chunks
}

/// Builds the chunk sequence with `mutate` applied to the first TPDU's
/// middle (index 1) data chunk.
fn with_corruption(mutate: impl FnOnce(&mut Chunk)) -> Vec<Chunk> {
    with_replacement(|mut c| {
        mutate(&mut c);
        vec![c]
    })
}

/// Same, but corrupting the ED chunk of the first TPDU.
fn with_ed_corruption(mutate: impl FnOnce(&mut Chunk)) -> Vec<Chunk> {
    let mut mutate = Some(mutate);
    let tpdus = victim_tpdus();
    let mut chunks = Vec::new();
    for (i, t) in tpdus.iter().enumerate() {
        let mut cs = t.all_chunks();
        if i == 0 {
            let last = cs.len() - 1;
            (mutate.take().expect("first TPDU seen once"))(&mut cs[last]);
        }
        chunks.extend(cs);
    }
    chunks
}

fn flip_payload_byte(c: &mut Chunk) {
    let mut raw = c.payload.to_vec();
    raw[0] ^= 0x20;
    c.payload = raw.into();
}

/// Runs the whole Table 1 experiment.
pub fn run() -> Table1 {
    let rows = vec![
        Row {
            field: "C.ID",
            changed_by_fragmentation: false,
            paper: Channel::EdCode,
            measured: classify(with_corruption(|c| c.header.conn.id ^= 0x1)),
        },
        Row {
            field: "C.SN",
            changed_by_fragmentation: true,
            paper: Channel::Consistency,
            // Misaligned shift into a neighbouring TPDU's element range.
            measured: classify(with_corruption(|c| {
                c.header.conn.sn = c.header.conn.sn.wrapping_add(7)
            })),
        },
        Row {
            field: "C.ST",
            changed_by_fragmentation: true,
            paper: Channel::EdCode,
            measured: classify(with_corruption(|c| c.header.conn.st = true)),
        },
        Row {
            field: "T.ID",
            changed_by_fragmentation: false,
            paper: Channel::EdCode,
            measured: classify(with_corruption(|c| c.header.tpdu.id ^= 0x40)),
        },
        Row {
            field: "T.SN",
            changed_by_fragmentation: true,
            paper: Channel::Reassembly,
            measured: classify(with_corruption(|c| {
                c.header.tpdu.sn = c.header.tpdu.sn.wrapping_add(16)
            })),
        },
        Row {
            field: "T.ST",
            changed_by_fragmentation: true,
            paper: Channel::Reassembly,
            // A spurious stop bit mid-TPDU: reassembly completes at the
            // wrong length or conflicts with the true stop.
            measured: classify(with_corruption(|c| c.header.tpdu.st = true)),
        },
        Row {
            field: "X.ID",
            changed_by_fragmentation: false,
            paper: Channel::EdCode,
            // The middle chunk ends external frame E2 (X.ST set), so its
            // X.ID is boundary-encoded in the invariant.
            measured: classify(with_corruption(|c| c.header.ext.id ^= 0x1000)),
        },
        Row {
            field: "X.SN",
            changed_by_fragmentation: true,
            paper: Channel::Consistency,
            // X.SN is rewritten by fragmentation, so the natural corruption
            // site is a fragment: split the chunk (Appendix C) and corrupt
            // the tail's X.SN. `C.SN - X.SN` is then no longer constant
            // within the external PDU.
            measured: classify(with_replacement(|c| {
                let (a, mut b) = chunks_core::frag::split(&c, 1).unwrap();
                b.header.ext.sn = b.header.ext.sn.wrapping_add(5);
                vec![a, b]
            })),
        },
        Row {
            field: "X.ST",
            changed_by_fragmentation: true,
            paper: Channel::EdCode,
            measured: classify(with_corruption(|c| c.header.ext.st = !c.header.ext.st)),
        },
        Row {
            field: "TYPE",
            changed_by_fragmentation: false,
            paper: Channel::Reassembly,
            // Data re-typed as signalling: the TPDU never completes.
            measured: classify(with_corruption(|c| {
                c.header.ty = chunks_core::label::ChunkType::Signal;
                c.header.len = 1;
                c.header.size = c.payload.len() as u16;
            })),
        },
        Row {
            field: "LEN",
            changed_by_fragmentation: true,
            paper: Channel::Reassembly,
            // LEN no longer matches the payload: the chunk is malformed and
            // dropped; its elements never arrive.
            measured: classify(with_corruption(|c| {
                // Model the post-parse effect: a shorter claimed run.
                let lost = c.header.size as usize;
                c.header.len -= 1;
                let raw = c.payload.to_vec();
                c.payload = raw[..raw.len() - lost].to_vec().into();
            })),
        },
        Row {
            field: "SIZE",
            changed_by_fragmentation: false,
            paper: Channel::Reassembly,
            measured: classify(with_corruption(|c| {
                // SIZE disagrees with the connection's signalled element
                // size (and would shift every invariant position).
                c.header.size = 3;
                c.header.len = 1;
            })),
        },
        Row {
            field: "Data",
            changed_by_fragmentation: false,
            paper: Channel::EdCode,
            measured: classify(with_corruption(flip_payload_byte)),
        },
        Row {
            field: "ED code",
            changed_by_fragmentation: false,
            paper: Channel::EdCode,
            measured: classify(with_ed_corruption(flip_payload_byte)),
        },
    ];
    Table1 { rows }
}
