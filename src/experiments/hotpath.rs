//! Receive hot-path sweep: chunks/s, bytes/s and allocations-per-chunk for
//! the zero-copy receive path, its pre-refactor owned oracle, and the
//! parallel dispatcher — the numbers behind `BENCH_hotpath.json`.
//!
//! Three legs over the same clean packet stream:
//!
//! * **zero-copy** — the default serial path: one `validate` scan, a
//!   streaming span walk, payloads sliced (not copied) from the packet
//!   buffer, pooled group state, batched ingest. The ≥ 96 MiB/s acceptance
//!   bar reads this leg.
//! * **legacy-owned** — the same receiver through the owned `unpack` decode
//!   (`set_legacy_owned`), kept as the differential oracle. Reported for
//!   contrast; its per-chunk copies and allocations are the cost the
//!   refactor removed.
//! * **parallel** — the virtual-engine dispatcher at 4 workers, batched
//!   ingest + drain (single-threaded execution, so the wall time is the
//!   total work, not a host-core measurement).
//!
//! Allocations are counted by the `experiments` binary's counting global
//! allocator (`CountingAlloc`); each leg warms up on a quarter of the
//! stream, then counts heap allocations over the steady-state remainder.
//! When the counting allocator is not installed (e.g. library tests) the
//! alloc columns report -1 and the alloc gate is skipped.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use chunks_core::packet::{spans, Packet};
use chunks_obs::{ObsSink, ShardSink};
use chunks_transport::{
    ConnSpec, ConnectionParams, DeliveryMode, Engine, ParallelReceiver, Receiver, Schedule, Sender,
    SenderConfig,
};
use chunks_wsc::InvariantLayout;

/// Elements (= bytes) per TPDU.
pub const TPDU_ELEMENTS: u32 = 8192;
/// Application bytes per connection.
pub const MESSAGE_BYTES: usize = 4 * 1024 * 1024;
/// Path MTU (jumbo: one TPDU chunk per packet).
pub const MTU: usize = 9000;
/// Packets per `ingest_batch` call.
pub const BATCH: usize = 32;
/// Connections on the parallel leg.
pub const PAR_CONNS: u32 = 8;
/// Workers on the parallel leg.
pub const PAR_WORKERS: usize = 4;
/// Timing repetitions (medians are reported).
const REPEATS: usize = 3;

/// Heap-allocation counting hooks. The `experiments` binary installs
/// [`CountingAlloc`](alloc_count::CountingAlloc) as its
/// `#[global_allocator]`; the sweep then reads the
/// counter around the steady-state window of each leg.
pub mod alloc_count {
    // The workspace denies `unsafe_code`; a `GlobalAlloc` impl is the one
    // construct an allocation meter cannot avoid. It only forwards to
    // `System` and bumps an atomic.
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Heap allocations since process start (alloc + alloc_zeroed + realloc).
    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);
    /// Bytes currently live on the heap (allocated minus deallocated).
    pub static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

    /// `System`, with every allocation counted.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LIVE_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            System.dealloc(ptr, layout)
        }
    }

    /// Current allocation count.
    pub fn allocs() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Bytes currently live on the heap; only meaningful while the counting
    /// allocator is installed (otherwise stays 0).
    pub fn live_bytes() -> u64 {
        LIVE_BYTES.load(Ordering::Relaxed)
    }

    /// True when the counting allocator is actually installed as the global
    /// allocator (a probe allocation moves the counter).
    pub fn active() -> bool {
        let before = allocs();
        std::hint::black_box(Box::new(0u64));
        allocs() != before
    }
}

pub(crate) fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: TPDU_ELEMENTS,
    }
}

pub(crate) fn layout() -> InvariantLayout {
    InvariantLayout::with_data_symbols(1 << 15)
}

pub(crate) fn capacity_elements() -> u64 {
    MESSAGE_BYTES as u64 + 4 * TPDU_ELEMENTS as u64
}

fn message(conn_id: u32, seed: u64) -> Vec<u8> {
    let mut state = seed ^ ((conn_id as u64) << 17);
    (0..MESSAGE_BYTES)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

pub(crate) fn stream(conn_id: u32, seed: u64) -> Vec<Packet> {
    let mut tx = Sender::new(SenderConfig {
        params: params(conn_id),
        layout: layout(),
        mtu: MTU,
        min_tpdu_elements: 64,
        max_tpdu_elements: TPDU_ELEMENTS,
    });
    tx.submit_simple(&message(conn_id, seed), 0x10 + conn_id, false);
    tx.packets_for_pending().expect("clean stream packs")
}

pub(crate) fn chunk_count(packets: &[Packet]) -> u64 {
    packets.iter().map(|p| spans(p).count() as u64).sum()
}

/// One leg's measurements.
#[derive(Clone, PartialEq, Debug)]
pub struct Leg {
    /// Leg name.
    pub leg: &'static str,
    /// Packets replayed.
    pub packets: usize,
    /// Data + ED chunks replayed.
    pub chunks: u64,
    /// Wire bytes replayed.
    pub wire_bytes: u64,
    /// Median wall time over the whole replay, ns.
    pub wall_ns: u64,
    /// Chunks per second over the median wall time.
    pub chunks_per_s: f64,
    /// Wire MiB per second over the median wall time.
    pub mib_s: f64,
    /// Heap allocations inside the steady-state window (worst repetition);
    /// -1 when the counting allocator is not installed.
    pub steady_allocs: i64,
    /// Chunks inside the steady-state window.
    pub steady_chunks: u64,
    /// `steady_allocs / steady_chunks`; -1 when not measured.
    pub allocs_per_chunk: f64,
    /// Verified application bytes after the replay.
    pub delivered_bytes: u64,
}

/// The whole sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct HotpathResult {
    /// Seed the streams were drawn from.
    pub seed: u64,
    /// Whether allocation counting was active.
    pub alloc_counting: bool,
    /// zero-copy / legacy-owned / parallel legs.
    pub legs: Vec<Leg>,
    /// Delivered-digest mismatches between the zero-copy and legacy legs.
    pub divergences: u32,
}

pub(crate) struct RunOutcome {
    pub(crate) wall_ns: u64,
    pub(crate) steady_allocs: u64,
    pub(crate) delivered_bytes: u64,
    pub(crate) digests: Vec<(u64, [u8; 8])>,
}

fn run_serial(packets: &[Packet], warm_batches: usize, legacy: bool) -> RunOutcome {
    run_serial_with(packets, warm_batches, legacy, None)
}

/// Serial replay with an optional observability sink installed on the
/// receiver (wrapped in a [`ShardSink`] facade when the sink shards) — the
/// `obs-overhead` bench's instrument.
pub(crate) fn run_serial_with(
    packets: &[Packet],
    warm_batches: usize,
    legacy: bool,
    sink: Option<Arc<dyn ObsSink>>,
) -> RunOutcome {
    let tpdus = MESSAGE_BYTES / TPDU_ELEMENTS as usize + 2;
    let mut rx = Receiver::new(
        DeliveryMode::Immediate,
        params(1),
        layout(),
        capacity_elements(),
    );
    if let Some(sink) = sink {
        rx.set_obs(ShardSink::wrap(sink));
    }
    rx.set_legacy_owned(legacy);
    rx.reserve(tpdus + 8, tpdus * 4 + 64);
    let mut out = Vec::with_capacity(tpdus * 4 + 64);
    let mut steady_from = 0u64;
    let begin = Instant::now();
    for (i, batch) in packets.chunks(BATCH).enumerate() {
        if i == warm_batches {
            steady_from = alloc_count::allocs();
        }
        rx.ingest_batch(batch, i as u64, &mut out);
    }
    let steady_allocs = alloc_count::allocs() - steady_from;
    let wall_ns = begin.elapsed().as_nanos() as u64;
    RunOutcome {
        wall_ns,
        steady_allocs,
        delivered_bytes: rx.verified_prefix(),
        digests: rx.delivered_digests(),
    }
}

fn run_parallel(streams: &[Vec<Packet>], warm_batches: usize) -> RunOutcome {
    run_parallel_with(streams, warm_batches, None)
}

/// Parallel replay with an optional observability sink shared by the
/// dispatcher and every worker — the `obs-overhead` bench's instrument.
pub(crate) fn run_parallel_with(
    streams: &[Vec<Packet>],
    warm_batches: usize,
    sink: Option<Arc<dyn ObsSink>>,
) -> RunOutcome {
    // Interleave the connections round-robin, as a shared link would.
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut packets: Vec<Packet> = Vec::new();
    for i in 0..longest {
        for s in streams {
            if let Some(p) = s.get(i) {
                packets.push(p.clone());
            }
        }
    }
    let specs: Vec<ConnSpec> = (1..=PAR_CONNS)
        .map(|id| {
            ConnSpec::new(
                params(id),
                layout(),
                DeliveryMode::Immediate,
                capacity_elements(),
            )
        })
        .collect();
    let mut pr = match sink {
        Some(sink) => ParallelReceiver::new_with_obs(
            PAR_WORKERS,
            Engine::Virtual(Schedule::Fair),
            specs,
            sink,
        ),
        None => ParallelReceiver::new(PAR_WORKERS, Engine::Virtual(Schedule::Fair), specs),
    };
    let tpdus = (MESSAGE_BYTES / TPDU_ELEMENTS as usize + 2) * PAR_CONNS as usize;
    pr.reserve(tpdus + 8, tpdus * 4 + 64);
    let mut steady_from = 0u64;
    let begin = Instant::now();
    for (i, batch) in packets.chunks(BATCH).enumerate() {
        if i == warm_batches {
            steady_from = alloc_count::allocs();
        }
        pr.ingest_batch(batch, i as u64);
        pr.drain();
    }
    let steady_allocs = alloc_count::allocs() - steady_from;
    let wall_ns = begin.elapsed().as_nanos() as u64;
    let outcome = pr.finish();
    let delivered_bytes = outcome
        .conns
        .values()
        .map(|r| r.receiver.verified_prefix())
        .sum();
    RunOutcome {
        wall_ns,
        steady_allocs,
        delivered_bytes,
        digests: Vec::new(),
    }
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn leg_of(
    leg: &'static str,
    packets: usize,
    chunks: u64,
    wire_bytes: u64,
    steady_chunks: u64,
    counting: bool,
    runs: &[RunOutcome],
) -> Leg {
    let wall_ns = median(runs.iter().map(|r| r.wall_ns).collect());
    // Allocation counts should be identical across repetitions; report the
    // worst so a flaky leg cannot hide behind the median.
    let steady = runs.iter().map(|r| r.steady_allocs).max().unwrap_or(0);
    let secs = wall_ns.max(1) as f64 / 1e9;
    Leg {
        leg,
        packets,
        chunks,
        wire_bytes,
        wall_ns,
        chunks_per_s: chunks as f64 / secs,
        mib_s: wire_bytes as f64 / (1024.0 * 1024.0) / secs,
        steady_allocs: if counting { steady as i64 } else { -1 },
        steady_chunks,
        allocs_per_chunk: if counting {
            steady as f64 / steady_chunks.max(1) as f64
        } else {
            -1.0
        },
        delivered_bytes: runs.last().map(|r| r.delivered_bytes).unwrap_or(0),
    }
}

impl HotpathResult {
    /// The zero-copy leg (the one the acceptance bar reads).
    pub fn zero_copy(&self) -> Option<&Leg> {
        self.legs.iter().find(|l| l.leg == "zero-copy")
    }

    /// Acceptance: full delivery on every leg, zero divergence between the
    /// zero-copy and legacy decoders, ≥ 96 MiB/s on the zero-copy leg, and —
    /// when the counting allocator is installed — zero steady-state
    /// allocations on the zero-copy and parallel legs.
    pub fn passes(&self) -> bool {
        let full = self.legs.iter().all(|l| {
            let want = if l.leg == "parallel" {
                MESSAGE_BYTES as u64 * PAR_CONNS as u64
            } else {
                MESSAGE_BYTES as u64
            };
            l.delivered_bytes == want
        });
        let fast = self.zero_copy().map(|l| l.mib_s >= 96.0).unwrap_or(false);
        let lean = !self.alloc_counting
            || self
                .legs
                .iter()
                .filter(|l| l.leg != "legacy-owned")
                .all(|l| l.steady_allocs == 0);
        full && fast && lean && self.divergences == 0
    }
}

impl fmt::Display for HotpathResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== hotpath — zero-copy receive path throughput and allocations (seed {:#x}) ===",
            self.seed
        )?;
        writeln!(
            f,
            "  {} KiB message, {} KiB TPDUs, mtu {}, batches of {}; alloc counting {}",
            MESSAGE_BYTES / 1024,
            TPDU_ELEMENTS / 1024,
            MTU,
            BATCH,
            if self.alloc_counting { "on" } else { "off" },
        )?;
        writeln!(
            f,
            "  {:<14} {:>8} {:>9} {:>10} {:>12} {:>9} {:>12} {:>12}",
            "leg", "packets", "chunks", "wall", "chunks/s", "MiB/s", "steady-alloc", "allocs/chunk"
        )?;
        for l in &self.legs {
            writeln!(
                f,
                "  {:<14} {:>8} {:>9} {:>8.2}ms {:>12.0} {:>9.1} {:>12} {:>12}",
                l.leg,
                l.packets,
                l.chunks,
                l.wall_ns as f64 / 1e6,
                l.chunks_per_s,
                l.mib_s,
                l.steady_allocs,
                if l.allocs_per_chunk < 0.0 {
                    "n/a".to_owned()
                } else {
                    format!("{:.4}", l.allocs_per_chunk)
                },
            )?;
        }
        writeln!(f, "  zero-copy vs legacy divergences: {}", self.divergences)?;
        Ok(())
    }
}

/// Runs the sweep under one seed.
pub fn run(seed: u64) -> HotpathResult {
    let counting = alloc_count::active();
    let serial_stream = stream(1, seed);
    let serial_chunks = chunk_count(&serial_stream);
    let wire: u64 = serial_stream.iter().map(|p| p.bytes.len() as u64).sum();
    let batches = serial_stream.len().div_ceil(BATCH);
    let warm = (batches / 4).max(1);
    let steady_chunks = chunk_count(&serial_stream[(warm * BATCH).min(serial_stream.len())..]);

    let mut legs = Vec::new();
    let mut divergences = 0u32;

    let zc: Vec<RunOutcome> = (0..REPEATS)
        .map(|_| run_serial(&serial_stream, warm, false))
        .collect();
    let legacy: Vec<RunOutcome> = (0..REPEATS)
        .map(|_| run_serial(&serial_stream, warm, true))
        .collect();
    for (a, b) in zc.iter().zip(legacy.iter()) {
        if a.digests != b.digests || a.delivered_bytes != b.delivered_bytes {
            divergences += 1;
        }
    }
    legs.push(leg_of(
        "zero-copy",
        serial_stream.len(),
        serial_chunks,
        wire,
        steady_chunks,
        counting,
        &zc,
    ));
    legs.push(leg_of(
        "legacy-owned",
        serial_stream.len(),
        serial_chunks,
        wire,
        steady_chunks,
        counting,
        &legacy,
    ));

    let streams: Vec<Vec<Packet>> = (1..=PAR_CONNS).map(|id| stream(id, seed)).collect();
    let par_packets: usize = streams.iter().map(Vec::len).sum();
    let par_chunks: u64 = streams.iter().map(|s| chunk_count(s)).sum();
    let par_wire: u64 = streams
        .iter()
        .flat_map(|s| s.iter())
        .map(|p| p.bytes.len() as u64)
        .sum();
    let par_batches = par_packets.div_ceil(BATCH);
    let par_warm = (par_batches / 4).max(1);
    // Steady chunks on the parallel leg: everything after the warm-up cut.
    let par_steady = par_chunks - par_chunks * par_warm as u64 / par_batches.max(1) as u64;
    let par: Vec<RunOutcome> = (0..REPEATS)
        .map(|_| run_parallel(&streams, par_warm))
        .collect();
    legs.push(leg_of(
        "parallel",
        par_packets,
        par_chunks,
        par_wire,
        par_steady,
        counting,
        &par,
    ));

    HotpathResult {
        seed,
        alloc_counting: counting,
        legs,
        divergences,
    }
}

/// Renders the sweep as the `BENCH_hotpath.json` record. Wall-clock numbers
/// are host-dependent, so `bench-check` validates this file structurally.
pub fn bench_json(r: &HotpathResult, describe: &str) -> String {
    use super::benchjson::meta_json;
    let mut out = String::from("{\n");
    out.push_str(&meta_json(
        "receive-hotpath-throughput-and-allocations",
        "cargo run --release --bin experiments hotpath (or: just bench-hotpath)",
        describe,
    ));
    out.push_str(&format!(
        "  \"workload\": \"{} KiB message, {} KiB TPDUs, mtu {}, ingest batches of {}; parallel leg {} conns x {} workers (virtual engine)\",\n",
        MESSAGE_BYTES / 1024,
        TPDU_ELEMENTS / 1024,
        MTU,
        BATCH,
        PAR_CONNS,
        PAR_WORKERS,
    ));
    out.push_str(
        "  \"method\": \"medians of 3 timed replays per leg; steady-state allocations counted by the binary's counting global allocator after a quarter-stream warm-up (worst repetition; -1 = counting not installed); zero-copy and legacy legs are digest-compared\",\n",
    );
    out.push_str(&format!("  \"alloc_counting\": {},\n", r.alloc_counting));
    out.push_str(&format!("  \"divergences\": {},\n", r.divergences));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .legs
        .iter()
        .map(|l| {
            format!(
                "    {{\"leg\": \"{}\", \"packets\": {}, \"chunks\": {}, \"wire_bytes\": {}, \"wall_ms\": {:.3}, \"chunks_per_s\": {:.0}, \"mib_s\": {:.1}, \"steady_allocs\": {}, \"steady_chunks\": {}, \"allocs_per_chunk\": {:.4}, \"delivered_bytes\": {}}}",
                l.leg,
                l.packets,
                l.chunks,
                l.wire_bytes,
                l.wall_ns as f64 / 1e6,
                l.chunks_per_s,
                l.mib_s,
                l.steady_allocs,
                l.steady_chunks,
                l.allocs_per_chunk,
                l.delivered_bytes,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_delivers_and_agrees_without_the_counting_allocator() {
        // Library tests run without the counting global allocator: the
        // alloc columns must report -1 and the gate must not read them.
        let r = run(0x407);
        assert!(!r.alloc_counting || r.legs.iter().all(|l| l.steady_allocs >= 0));
        assert_eq!(r.divergences, 0);
        for l in &r.legs {
            let want = if l.leg == "parallel" {
                MESSAGE_BYTES as u64 * PAR_CONNS as u64
            } else {
                MESSAGE_BYTES as u64
            };
            assert_eq!(l.delivered_bytes, want, "{} leg", l.leg);
        }
    }
}
