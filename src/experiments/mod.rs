//! Executable reproductions of every figure and table in the paper, plus
//! the quantified prose claims (experiments B1–B6 in DESIGN.md).
//!
//! Each experiment returns a structured result with a `Display`
//! implementation; the `experiments` binary prints them, and the
//! integration tests assert on them. EXPERIMENTS.md records the outcomes
//! against the paper's claims.

pub mod appendix_b;
pub mod b1_receiver_modes;
pub mod b2_frag_systems;
pub mod b3_lockup;
pub mod b4_codes;
pub mod b5_compress;
pub mod b6_demux;
pub mod b7_turner;
pub mod b8_gap_budget;
pub mod figures;
pub mod parallel;
pub mod soak;
pub mod table1;
pub mod trace;
