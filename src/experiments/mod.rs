//! Executable reproductions of every figure and table in the paper, plus
//! the quantified prose claims (experiments B1–B6 in DESIGN.md).
//!
//! Each experiment returns a structured result with a `Display`
//! implementation; the `experiments` binary prints them, and the
//! integration tests assert on them. EXPERIMENTS.md records the outcomes
//! against the paper's claims.

/// Seed every deterministic experiment runs under.
pub const SEED: u64 = 0xC0451;
/// Second, independent seed for the soak determinism sweep.
pub const SEED2: u64 = 0xA5EED;

pub mod appendix_b;
pub mod b1_receiver_modes;
pub mod b2_frag_systems;
pub mod b3_lockup;
pub mod b4_codes;
pub mod b5_compress;
pub mod b6_demux;
pub mod b7_turner;
pub mod b8_gap_budget;
pub mod bench_check;
pub mod benchjson;
pub mod figures;
pub mod health;
pub mod hotpath;
pub mod lineage;
pub mod obs_overhead;
pub mod overlap;
pub mod parallel;
pub mod scale;
pub mod soak;
pub mod table1;
pub mod trace;
