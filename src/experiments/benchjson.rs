//! A minimal JSON reader/writer for the `BENCH_*.json` summaries.
//!
//! The bench files are written by our own byte-stable renderers and read
//! back by the `bench-check` regression gate and the schema test — a small
//! hand-rolled recursive-descent parser keeps the loop closed without any
//! external dependency. Objects preserve key order (the files are diffed
//! byte-for-byte, so order is meaningful), and numbers keep their raw
//! source text (no float round-trip can perturb a comparison).

use std::fmt::Write as _;

/// One parsed JSON value. Numbers stay as raw source text.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other kinds or a missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload parsed from its raw source text, if this is a
    /// number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns the value or a message naming the
/// byte offset where parsing failed.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte {}", self.at)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.at += 1;
            } else {
                break;
            }
        }
        if self.at == start {
            return Err(format!("empty number at byte {start}"));
        }
        Ok(Value::Num(
            String::from_utf8_lossy(&self.bytes[start..self.at]).into_owned(),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences included).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.at))?;
                    let ch = s.chars().next().expect("nonempty");
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// Renders the standard `meta` block every BENCH file opens with: the bench
/// name, the exact command that regenerates the file, and the source
/// revision (`git describe`, passed in by the caller — the experiments never
/// read the wall clock or shell out themselves).
pub fn meta_json(bench: &str, regenerate: &str, describe: &str) -> String {
    format!(
        "  \"meta\": {{\"bench\": \"{bench}\", \"regenerate\": \"{regenerate}\", \"describe\": \"{describe}\"}},\n"
    )
}

/// Renders a row's nonzero-counter snapshot as one compact JSON object.
pub fn metrics_json(metrics: &[(String, u64)]) -> String {
    let mut out = String::from("{");
    for (i, (n, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{n}\": {v}");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_shapes_the_bench_writers_emit() {
        let v = parse(
            "{\n  \"meta\": {\"bench\": \"x\", \"describe\": \"v1.2-3-gabc\"},\n  \"rows\": [1, -2.5, 1e3, true, null]\n}\n",
        )
        .unwrap();
        assert_eq!(
            v.get("meta").unwrap().get("bench").unwrap().as_str(),
            Some("x")
        );
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[1], Value::Num("-2.5".into()));
        assert_eq!(rows[1].as_f64(), Some(-2.5));
        assert_eq!(rows[2].as_f64(), Some(1000.0));
        assert_eq!(rows[4], Value::Null);
        assert_eq!(rows[4].as_f64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\n\t\"\\ A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ A"));
    }
}
