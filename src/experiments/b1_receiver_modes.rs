//! B1: the paper's headline performance claim (§1, §3.3) — processing data
//! as it arrives beats reordering and physical reassembly on both data
//! movement (bus crossings) and holding latency, and the gap grows with
//! network disorder and loss.
//!
//! A bulk transfer runs over a skewed four-way multipath (the paper's
//! parallel-ATM reordering source) with varying loss; the same transfer is
//! received in the three §3.3 modes. We report data touches per payload
//! byte, the staging-buffer high-water mark, and total holding delay.

use std::fmt;

use chunks_netsim::{LinkConfig, PathBuilder};
use chunks_transport::{ConnectionParams, DeliveryMode, Receiver, Sender, SenderConfig};
use chunks_wsc::InvariantLayout;

/// One measured cell of the B1 matrix.
#[derive(Clone, Copy, Debug)]
pub struct B1Row {
    /// Receiver strategy.
    pub mode: DeliveryMode,
    /// Link loss probability.
    pub loss: f64,
    /// Data touches per delivered payload byte.
    pub touches_per_byte: f64,
    /// Staging-buffer high-water mark in bytes.
    pub peak_buffer: u64,
    /// Total nanoseconds data spent waiting in staging buffers.
    pub holding_delay_ns: u64,
    /// Retransmission rounds needed to complete the transfer.
    pub rounds: u32,
    /// Whether the full stream was verified and delivered.
    pub complete: bool,
}

/// Full experiment result.
pub struct B1Result {
    /// Bytes transferred per cell.
    pub message_bytes: usize,
    /// All rows.
    pub rows: Vec<B1Row>,
}

impl fmt::Display for B1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B1 — receiver strategies under disorder and loss ({} KiB transfer) ===",
            self.message_bytes / 1024
        )?;
        writeln!(
            f,
            "  {:<11} {:>6} {:>14} {:>12} {:>16} {:>7}",
            "mode", "loss", "touches/byte", "peak buffer", "holding delay", "rounds"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<11} {:>5.0}% {:>14.3} {:>10} B {:>13} us {:>7}{}",
                format!("{:?}", r.mode),
                r.loss * 100.0,
                r.touches_per_byte,
                r.peak_buffer,
                r.holding_delay_ns / 1000,
                r.rounds,
                if r.complete { "" } else { "  INCOMPLETE" }
            )?;
        }
        Ok(())
    }
}

/// Runs one cell: a full reliable transfer in the given mode over the given
/// loss rate.
fn run_cell(mode: DeliveryMode, loss: f64, message: &[u8], seed: u64) -> B1Row {
    let params = ConnectionParams {
        conn_id: 1,
        elem_size: 1,
        initial_csn: 7_000,
        tpdu_elements: 2048,
    };
    let layout = InvariantLayout::default();
    let mtu = 1500;
    let mut tx = Sender::new(SenderConfig {
        params,
        layout,
        mtu,
        min_tpdu_elements: 256,
        max_tpdu_elements: 8192,
    });
    let mut rx = Receiver::new(mode, params, layout, message.len() as u64 + 16);
    tx.submit_simple(message, 0xF, false);

    // Four parallel 155 Mbps-ish paths with 40 us skew: heavy reordering.
    let base = LinkConfig::clean(mtu, 100_000, 155_000_000).with_loss(loss);
    let mut rounds = 0;
    let mut clock = 0u64;
    while rounds < 32 {
        rounds += 1;
        let packets = if rounds == 1 {
            tx.packets_for_pending().expect("packable")
        } else {
            let missing = tx.unacked_starts();
            if missing.is_empty() {
                break;
            }
            // Clear any verification-failed groups before the retry.
            for s in rx.failed_starts() {
                rx.reset_group(s);
            }
            tx.retransmit(&missing).expect("packable")
        };
        let mut path = PathBuilder::new(seed.wrapping_add(rounds as u64))
            .multipath(4, base, 40_000)
            .build();
        let inputs = packets
            .into_iter()
            .enumerate()
            .map(|(i, p)| (clock + i as u64 * 1_000, p.bytes.to_vec()))
            .collect();
        let deliveries = path.run(inputs);
        for d in &deliveries {
            let packet = chunks_core::packet::Packet {
                bytes: d.frame.clone().into(),
            };
            rx.handle_packet(&packet, d.time);
        }
        clock = deliveries.last().map(|d| d.time).unwrap_or(clock) + 1_000_000;
        let ack = rx.make_ack();
        tx.handle_ack(&ack);
        if tx.pending_tpdus() == 0 {
            break;
        }
        tx.on_loss();
    }

    let delivered = rx.verified_prefix();
    B1Row {
        mode,
        loss,
        touches_per_byte: rx.stats.data_touches as f64 / message.len() as f64,
        peak_buffer: rx.stats.peak_buffered_bytes,
        holding_delay_ns: rx.stats.holding_delay,
        rounds,
        complete: delivered == message.len() as u64,
    }
}

/// Runs the full B1 matrix.
pub fn run(message_bytes: usize, seed: u64) -> B1Result {
    let message: Vec<u8> = (0..message_bytes).map(|i| (i * 31 + 7) as u8).collect();
    let mut rows = Vec::new();
    for mode in [
        DeliveryMode::Immediate,
        DeliveryMode::Reorder,
        DeliveryMode::Reassemble,
    ] {
        for loss in [0.0, 0.01, 0.05] {
            rows.push(run_cell(mode, loss, &message, seed));
        }
    }
    B1Result {
        message_bytes,
        rows,
    }
}
