//! B4: error-detection codes (§4) — WSC-2 versus CRC-32 versus the
//! Internet checksum.
//!
//! Three claims are exercised:
//!
//! 1. WSC-2 and the Internet checksum can be computed over **disordered**
//!    fragments; a CRC cannot — it must buffer out-of-order fragments until
//!    the in-order prefix reaches them.
//! 2. WSC-2 detects symbol transpositions the Internet checksum misses.
//! 3. Throughput: the table reports MB/s for each code on this machine
//!    (shape, not absolute numbers, is the claim).

use std::fmt;
use std::time::Instant;

use chunks_wsc::compare::{internet_checksum, ones_complement_sum, Crc32};
use chunks_wsc::Wsc2;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of the B4 experiment.
pub struct B4Result {
    /// Buffer size used for throughput runs.
    pub buffer_bytes: usize,
    /// (name, MB/s, can compute disordered).
    pub throughput: Vec<(&'static str, f64, bool)>,
    /// Bytes a CRC receiver had to buffer to checksum a disordered arrival
    /// of `buffer_bytes` of fragments (WSC-2 and checksum: zero).
    pub crc_buffered_bytes: u64,
    /// Did WSC-2 detect a 32-bit word transposition?
    pub wsc_detects_swap: bool,
    /// Did the Internet checksum detect the same transposition?
    pub checksum_detects_swap: bool,
}

impl fmt::Display for B4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B4 — error detection codes over {} MiB ===",
            self.buffer_bytes >> 20
        )?;
        writeln!(
            f,
            "  {:<20} {:>10} {:>22}",
            "code", "MB/s", "disordered data?"
        )?;
        for (name, mbps, disordered) in &self.throughput {
            writeln!(
                f,
                "  {:<20} {:>10.0} {:>22}",
                name,
                mbps,
                if *disordered {
                    "yes"
                } else {
                    "no (must buffer)"
                }
            )?;
        }
        writeln!(
            f,
            "  CRC buffering for a fully disordered arrival: {} bytes",
            self.crc_buffered_bytes
        )?;
        writeln!(
            f,
            "  word-swap detection: WSC-2 = {}, Internet checksum = {}",
            self.wsc_detects_swap, self.checksum_detects_swap
        )?;
        Ok(())
    }
}

fn mbps(bytes: usize, elapsed_s: f64) -> f64 {
    bytes as f64 / 1e6 / elapsed_s
}

/// Runs B4.
pub fn run(buffer_bytes: usize, seed: u64) -> B4Result {
    let data: Vec<u8> = (0..buffer_bytes).map(|i| (i * 37 + 11) as u8).collect();

    // Throughput, in-order.
    let t = Instant::now();
    let mut w = Wsc2::new();
    w.add_bytes(0, &data);
    let wsc_t = t.elapsed().as_secs_f64();
    std::hint::black_box(w.digest());

    let t = Instant::now();
    let crc = Crc32::of(&data);
    let crc_t = t.elapsed().as_secs_f64();
    std::hint::black_box(crc);

    let t = Instant::now();
    let sum = internet_checksum(&data);
    let sum_t = t.elapsed().as_secs_f64();
    std::hint::black_box(sum);

    // Disordered computation: 1 KiB fragments in random order.
    const FRAG: usize = 1024;
    let mut order: Vec<usize> = (0..buffer_bytes / FRAG).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    // WSC-2: absorb each fragment at its position — no buffering.
    let mut disordered = Wsc2::new();
    for &k in &order {
        disordered.add_bytes((k * FRAG / 4) as u64, &data[k * FRAG..(k + 1) * FRAG]);
    }
    assert_eq!(disordered, w, "WSC-2 is order-independent");

    // Internet checksum: partial sums add — no buffering.
    let mut partial = 0u16;
    for &k in &order {
        partial = chunks_wsc::compare::ones_complement_add(
            partial,
            ones_complement_sum(&data[k * FRAG..(k + 1) * FRAG]),
        );
    }
    assert_eq!(!partial, sum, "checksum is order-independent");

    // CRC: can only consume the in-order prefix; everything else waits in a
    // buffer. Count the peak buffered bytes.
    let mut held: std::collections::BTreeMap<usize, &[u8]> = std::collections::BTreeMap::new();
    let mut next = 0usize;
    let mut crc_stream = Crc32::new();
    let mut buffered = 0u64;
    let mut peak = 0u64;
    for &k in &order {
        if k == next {
            crc_stream.update(&data[k * FRAG..(k + 1) * FRAG]);
            next += 1;
            while let Some(frag) = held.remove(&next) {
                crc_stream.update(frag);
                buffered -= FRAG as u64;
                next += 1;
            }
        } else {
            held.insert(k, &data[k * FRAG..(k + 1) * FRAG]);
            buffered += FRAG as u64;
            peak = peak.max(buffered);
        }
    }
    assert_eq!(crc_stream.finish(), crc, "CRC consistent once reordered");

    // Transposition detection.
    let mut swapped = data.clone();
    swapped.swap(0, 4);
    swapped.swap(1, 5);
    swapped.swap(2, 6);
    swapped.swap(3, 7); // swap two adjacent 32-bit words
    let mut w2 = Wsc2::new();
    w2.add_bytes(0, &swapped);
    let wsc_detects_swap = w2 != w;
    let checksum_detects_swap = internet_checksum(&swapped) != sum;

    B4Result {
        buffer_bytes,
        throughput: vec![
            ("WSC-2 (GF(2^32))", mbps(buffer_bytes, wsc_t), true),
            ("CRC-32", mbps(buffer_bytes, crc_t), false),
            ("Internet checksum", mbps(buffer_bytes, sum_t), true),
        ],
        crc_buffered_bytes: peak,
        wsc_detects_swap,
        checksum_detects_swap,
    }
}
