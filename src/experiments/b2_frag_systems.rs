//! B2: fragmentation systems compared (§3.2) — chunks versus IP-style
//! fragmentation versus XTP-style small PDUs.
//!
//! The workload is the paper's supercomputer example: 64 KiB transport
//! blocks (a Cray TCP implementation used 64 KiB segments, §3) crossing an
//! internet path whose MTU shrinks hop by hop: 9180 (ATM/AAL5) → 1500
//! (Ethernet) → 576 (X.25-era minimum).
//!
//! Measured per system: packets delivered, wire bytes, header overhead, and
//! the number of *reassembly steps* the receiver performs before the data
//! can be processed (chunks: one; IP: fragments → TPDU → stream: two).

use std::fmt;

use bytes::Bytes;
use chunks_baseline::ip::{fragment, IpPacket, IpReassembler, IP_HEADER_LEN};
use chunks_baseline::xtp::{segment_message, XTP_HEADER_LEN};
use chunks_core::chunk::byte_chunk;
use chunks_core::frag::ReassemblyPool;
use chunks_core::label::FramingTuple;
use chunks_core::packet::{pack, unpack, Packet};
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_netsim::{ChunkRouter, PacketTransform, RefragPolicy};

/// Result for one fragmentation system.
#[derive(Clone, Debug)]
pub struct SystemRow {
    /// System name.
    pub system: &'static str,
    /// Packets arriving at the receiver.
    pub packets: usize,
    /// Total bytes on the final wire.
    pub wire_bytes: usize,
    /// Header bytes (wire − payload).
    pub header_bytes: usize,
    /// Reassembly steps before the application can see data.
    pub reassembly_steps: u32,
    /// Peak bytes buffered at the receiver before data could be processed.
    pub receiver_buffer_peak: u64,
    /// Whether the message survived intact.
    pub intact: bool,
}

/// Full B2 result.
pub struct B2Result {
    /// Message size in bytes.
    pub message_bytes: usize,
    /// The shrinking MTU path used.
    pub mtus: Vec<usize>,
    /// Per-system rows.
    pub rows: Vec<SystemRow>,
}

impl fmt::Display for B2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B2 — fragmentation systems over a shrinking-MTU path {:?} ({} KiB blocks) ===",
            self.mtus,
            self.message_bytes / 1024
        )?;
        writeln!(
            f,
            "  {:<18} {:>8} {:>11} {:>13} {:>10} {:>13} {:>7}",
            "system", "packets", "wire bytes", "header bytes", "overhead", "rx buffer", "steps"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<18} {:>8} {:>11} {:>13} {:>9.1}% {:>11} B {:>7}{}",
                r.system,
                r.packets,
                r.wire_bytes,
                r.header_bytes,
                r.header_bytes as f64 * 100.0 / self.message_bytes as f64,
                r.receiver_buffer_peak,
                r.reassembly_steps,
                if r.intact { "" } else { "  CORRUPT" }
            )?;
        }
        Ok(())
    }
}

fn chunk_system(message: &[u8], mtus: &[usize]) -> SystemRow {
    let whole = byte_chunk(
        FramingTuple::new(1, 0, false),
        FramingTuple::new(2, 0, true),
        FramingTuple::new(3, 0, false),
        message,
    );
    let mut frames: Vec<Vec<u8>> = pack(vec![whole.clone()], mtus[0])
        .unwrap()
        .into_iter()
        .map(|p| p.bytes.to_vec())
        .collect();
    for &mtu in &mtus[1..] {
        let mut router = ChunkRouter::new(mtu, RefragPolicy::Repack);
        let mut next: Vec<Vec<u8>> = frames.drain(..).flat_map(|f| router.ingest(f)).collect();
        next.extend(router.flush());
        frames = next;
    }
    let wire_bytes: usize = frames.iter().map(Vec::len).sum();
    // Receiver: chunks are processed on arrival; the single-step pool only
    // tracks merge bookkeeping, no payload buffering is required (immediate
    // placement) — buffer peak is zero by construction.
    let mut pool = ReassemblyPool::new();
    for f in &frames {
        for c in unpack(&Packet {
            bytes: f.clone().into(),
        })
        .unwrap()
        {
            pool.insert(c);
        }
    }
    let intact = pool.take_complete().as_ref() == Some(&whole);
    SystemRow {
        system: "chunks",
        packets: frames.len(),
        wire_bytes,
        header_bytes: wire_bytes - message.len(),
        reassembly_steps: 1,
        receiver_buffer_peak: 0,
        intact,
    }
}

fn ip_system(message: &[u8], mtus: &[usize]) -> SystemRow {
    // The 64 KiB transport block travels as one IP datagram (transport
    // header modelled at 20 bytes inside the payload, TCP-like).
    const TRANSPORT_HEADER: usize = 20;
    let mut payload = vec![0u8; TRANSPORT_HEADER];
    payload.extend_from_slice(message);
    let datagram = IpPacket::datagram(42, Bytes::from(payload));
    let mut frags = fragment(&datagram, mtus[0]).expect("fits first hop");
    for &mtu in &mtus[1..] {
        frags = frags
            .iter()
            .flat_map(|p| fragment(p, mtu).expect("fragmentable"))
            .collect();
    }
    let wire_bytes: usize = frags.iter().map(IpPacket::wire_len).sum();
    let packets = frags.len();
    // Receiver step 1: physical reassembly of fragments into the datagram.
    let mut reasm = IpReassembler::new(1 << 20);
    let mut peak = 0u64;
    let mut whole = None;
    for p in frags {
        if let Some(d) = reasm.offer(p) {
            whole = Some(d);
        }
        peak = peak.max(reasm.used());
    }
    // Receiver step 2: the reassembled TPDU is copied to the stream buffer
    // before processing.
    let intact = whole
        .as_ref()
        .is_some_and(|d| &d[TRANSPORT_HEADER..] == message);
    let buffer_peak = peak + message.len() as u64; // step-2 copy buffer
    SystemRow {
        system: "IP fragmentation",
        packets,
        wire_bytes,
        header_bytes: wire_bytes - message.len(),
        reassembly_steps: 2,
        receiver_buffer_peak: buffer_peak,
        intact,
    }
}

fn xtp_system(message: &[u8], mtus: &[usize]) -> SystemRow {
    // XTP avoids network fragmentation: the transport segments to the path
    // minimum MTU, paying a full transport header per packet.
    let path_min = *mtus.iter().min().unwrap();
    let pdus = segment_message(0, &Bytes::copy_from_slice(message), path_min).unwrap();
    let wire_bytes: usize = pdus.iter().map(|p| p.wire_len()).sum();
    let intact = {
        let mut rebuilt = Vec::with_capacity(message.len());
        for p in &pdus {
            rebuilt.extend_from_slice(&p.payload);
        }
        rebuilt == message
    };
    SystemRow {
        system: "XTP small PDUs",
        packets: pdus.len(),
        wire_bytes,
        header_bytes: pdus.len() * XTP_HEADER_LEN,
        // Each mini-PDU is processed independently, but the stream must
        // still be reordered/placed: one step.
        reassembly_steps: 1,
        receiver_buffer_peak: 0,
        intact,
    }
}

/// Runs B2 for one block size over the canonical shrinking path.
pub fn run(message_bytes: usize) -> B2Result {
    let message: Vec<u8> = (0..message_bytes).map(|i| (i * 17 + 3) as u8).collect();
    let mtus = vec![9180usize, 1500, 576];
    let rows = vec![
        chunk_system(&message, &mtus),
        ip_system(&message, &mtus),
        xtp_system(&message, &mtus),
    ];
    B2Result {
        message_bytes,
        mtus,
        rows,
    }
}

/// Reference overheads used in the display: chunk, IP and XTP header sizes.
pub fn header_sizes() -> (usize, usize, usize) {
    (WIRE_HEADER_LEN, IP_HEADER_LEN, XTP_HEADER_LEN)
}
