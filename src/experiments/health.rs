//! Health surface under induced degradation: the watchdog sees the failure
//! before the caller does, and the flight recorder explains it afterwards.
//!
//! Two legs, both on the virtual clock and both run twice to prove the
//! whole surface — reports, events, flight dump — is byte-deterministic:
//!
//! * **session leg** — a sender pushes a transfer into a total ack
//!   blackout under `DegradePolicy::Abort`. The in-session watchdog's
//!   livelock rule (timers firing across a window with zero deliveries)
//!   raises [`HealthEvent::LivelockSuspected`] *before* the retry budget
//!   empties; the eventual `PeerUnreachable` verdict arms the flight
//!   recorder's `peer-unreachable` trigger and the sink captures a dump.
//! * **table leg** — a small [`ConnTable`] is churned far past `max_live`.
//!   The occupancy pins above the pressure threshold
//!   ([`HealthEvent::PressureStuck`]) while sampled-LRU evictions exceed
//!   the storm threshold every window ([`HealthEvent::EvictionStorm`]);
//!   the storm rule raises the `eviction-storm` degradation trigger.
//!
//! This is the experiment behind `experiments health` / `just health`.

use std::fmt;
use std::sync::Arc;

use chunks_obs::{AlwaysOnSink, HealthEvent, HealthReport, Watchdog, WatchdogConfig};
use chunks_transport::ConnTable;
use chunks_transport::{
    ConnectionParams, DegradePolicy, DeliveryMode, Receiver, RtoConfig, SenderConfig, Session,
    TableConfig,
};
use chunks_wsc::InvariantLayout;

/// Virtual time between session pumps.
pub const TICK_NS: u64 = 200_000;
/// Livelock bound on the session leg.
pub const MAX_TICKS: u64 = 3_000;
/// Bytes the blackout transfer submits.
pub const PAYLOAD_BYTES: usize = 2_048;
/// Table-leg capacity ceiling (evictions start here).
pub const TABLE_MAX_LIVE: usize = 16;
/// Table-leg admissions driven through the table.
pub const TABLE_CHURN: usize = 200;

/// One leg's outcome: the health events the watchdog raised, the final
/// report, and the flight-recorder dump the degradation left behind.
#[derive(Clone, PartialEq, Debug)]
pub struct LegOutcome {
    /// Leg label.
    pub leg: &'static str,
    /// Watchdog verdicts, in emission order.
    pub events: Vec<HealthEvent>,
    /// The last health report of the run.
    pub report: HealthReport,
    /// The flight dump (JSON lines), if a degradation trigger fired.
    pub dump: Option<String>,
    /// Watchdog reports consumed.
    pub reports: u64,
}

impl LegOutcome {
    /// True when `name` appears among the raised events.
    pub fn raised(&self, name: &str) -> bool {
        self.events.iter().any(|e| e.name() == name)
    }

    /// The dump's trigger field, parsed from the header line.
    pub fn dump_trigger(&self) -> Option<&str> {
        let header = self.dump.as_deref()?.lines().next()?;
        let tail = header.split("\"trigger\": \"").nth(1)?;
        tail.split('"').next()
    }
}

/// Both legs plus the determinism verdict from the second run.
#[derive(Clone, PartialEq, Debug)]
pub struct HealthResult {
    /// Seed of the run.
    pub seed: u64,
    /// The ack-blackout session leg.
    pub session: LegOutcome,
    /// True when the session leg ended in the typed `PeerUnreachable`.
    pub session_aborted: bool,
    /// The connection-table churn leg.
    pub table: LegOutcome,
    /// True when a full re-run reproduced both legs byte-for-byte
    /// (events, reports, and dumps).
    pub deterministic: bool,
}

impl HealthResult {
    /// Acceptance: the session leg aborts with a livelock warning first and
    /// a `peer-unreachable` dump after; the table leg raises both the storm
    /// and the stuck-pressure verdicts with an armed dump; and the whole
    /// surface replays byte-identically.
    pub fn passes(&self) -> bool {
        self.session_aborted
            && self.session.raised("LivelockSuspected")
            && self.session.dump_trigger() == Some("peer-unreachable")
            && self.table.raised("EvictionStorm")
            && self.table.raised("PressureStuck")
            && self.table.dump.is_some()
            && self.deterministic
    }
}

impl fmt::Display for HealthResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== health — watchdog verdicts under induced degradation (seed {:#x}) ===",
            self.seed
        )?;
        for leg in [&self.session, &self.table] {
            writeln!(
                f,
                "  [{}] {} watchdog reports, {} events, dump trigger: {}",
                leg.leg,
                leg.reports,
                leg.events.len(),
                leg.dump_trigger().unwrap_or("-"),
            )?;
            writeln!(f, "    last report: {}", leg.report.to_json())?;
            for e in &leg.events {
                writeln!(f, "    event: {}", e.to_json())?;
            }
        }
        writeln!(
            f,
            "  session aborted: {}; deterministic replay: {}",
            self.session_aborted, self.deterministic
        )?;
        Ok(())
    }
}

fn params(conn_id: u32) -> ConnectionParams {
    ConnectionParams {
        conn_id,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 64,
    }
}

/// The ack-blackout session leg: pump into the void until the abort.
fn run_session_leg(seed: u64) -> (LegOutcome, bool) {
    let sink = AlwaysOnSink::shared();
    let layout = InvariantLayout::with_data_symbols(2048);
    let payload: Vec<u8> = (0..PAYLOAD_BYTES)
        .map(|i| (i as u64).wrapping_mul(7).wrapping_add(seed) as u8)
        .collect();
    let mut s = Session::new(
        SenderConfig {
            params: params(1),
            layout,
            mtu: 512,
            min_tpdu_elements: 4,
            max_tpdu_elements: 256,
        },
        params(2),
        layout,
        DeliveryMode::Immediate,
        1 << 14,
    )
    .with_rto(RtoConfig {
        policy: DegradePolicy::Abort,
        ..RtoConfig::default()
    })
    .with_burst_limits(4, 8)
    .with_obs(sink.clone() as Arc<dyn chunks_obs::ObsSink>)
    .with_watchdog(WatchdogConfig::default());
    s.send(&payload, 0xA, false);

    let mut events = Vec::new();
    let mut aborted = false;
    let mut elapsed = 0;
    for tick in 0..MAX_TICKS {
        let t = tick * TICK_NS;
        elapsed = t;
        // Every packet drops into the blackout: no acks ever return.
        if s.pump(t).is_err() {
            aborted = true;
            break;
        }
        events.extend(s.take_health_events());
    }
    events.extend(s.take_health_events());
    let mut report = s.health_report();
    report.at_ns = elapsed;
    (
        LegOutcome {
            leg: "session",
            events,
            report,
            dump: sink.dump_json_lines(),
            reports: 0,
        },
        aborted,
    )
}

/// The churn leg: admissions far past `max_live`, watchdog driven off the
/// table's own statistics.
fn run_table_leg(seed: u64) -> LegOutcome {
    let sink = AlwaysOnSink::shared();
    let layout = InvariantLayout::with_data_symbols(2048);
    let mut table =
        ConnTable::new(TableConfig::for_capacity(TABLE_MAX_LIVE).with_max_live(TABLE_MAX_LIVE));
    table.set_obs(sink.clone() as Arc<dyn chunks_obs::ObsSink>);
    let mut wd = Watchdog::new(WatchdogConfig {
        interval_ns: 10 * TICK_NS,
        ..WatchdogConfig::default()
    });

    let mut events = Vec::new();
    let mut report = HealthReport::default();
    // Conn-id order is seed-rotated: determinism must not hinge on one
    // fixed admission order.
    let base = (seed % 97) as u32 + 1;
    for i in 0..TABLE_CHURN {
        let t = i as u64 * TICK_NS;
        let conn_id = base + i as u32;
        table.admit(
            params(conn_id),
            t,
            || Receiver::new(DeliveryMode::Immediate, params(conn_id), layout, 1 << 12),
            |_| {},
        );
        if wd.due(t) {
            let stats = table.stats;
            report = HealthReport {
                at_ns: t,
                live_conns: table.len() as u64,
                admissions: stats.admissions,
                evictions: stats.evictions,
                refusals: stats.refusals,
                under_pressure: table.under_pressure(),
                ..HealthReport::default()
            };
            events.extend(wd.tick(&report, &*sink));
        }
    }
    LegOutcome {
        leg: "table",
        events,
        report,
        dump: sink.dump_json_lines(),
        reports: wd.reports(),
    }
}

fn run_once(seed: u64) -> (LegOutcome, bool, LegOutcome) {
    let (session, aborted) = run_session_leg(seed);
    let table = run_table_leg(seed);
    (session, aborted, table)
}

/// Runs both legs twice under one seed and compares the replays.
pub fn run(seed: u64) -> HealthResult {
    let (session, session_aborted, table) = run_once(seed);
    let (session2, aborted2, table2) = run_once(seed);
    let deterministic = session == session2 && table == table2 && session_aborted == aborted2;
    HealthResult {
        seed,
        session,
        session_aborted,
        table,
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_raises_livelock_then_aborts_with_dump() {
        let r = run(0xC0451);
        assert!(r.session_aborted, "blackout must abort");
        assert!(
            r.session.raised("LivelockSuspected"),
            "watchdog must warn before the verdict: {:?}",
            r.session.events
        );
        assert_eq!(r.session.dump_trigger(), Some("peer-unreachable"));
    }

    #[test]
    fn churn_raises_storm_and_stuck_pressure() {
        let r = run(0xC0451);
        assert!(r.table.raised("EvictionStorm"), "{:?}", r.table.events);
        assert!(r.table.raised("PressureStuck"), "{:?}", r.table.events);
        assert!(r.table.dump.is_some(), "a degradation trigger must fire");
    }

    #[test]
    fn whole_surface_is_deterministic_and_passes() {
        let r = run(0xA5EED);
        assert!(r.deterministic);
        assert!(r.passes());
    }
}
