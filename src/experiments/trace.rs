//! Deterministic event-trace replay: any soak scenario, observed.
//!
//! The observability layer's core promise is that a trace is *evidence*: the
//! same seeded scenario must export the byte-identical JSON-lines trace on
//! every run, because everything — the fault stream, the retransmission
//! timers, the event timestamps — rides the virtual clock. This experiment
//! replays one cell of the soak matrix (any of them: `experiments trace
//! <scenario>` picks; the default `label-flips` mixes Byzantine label
//! mutations with 10% ack loss, exercising decode rejects, WSC-2
//! verification failures, timer-driven retransmission and backoff) twice
//! with recording sinks and checks the exports byte for byte, then
//! pretty-prints the timeline a human would read to diagnose the run.

use std::fmt;

use chunks_obs::RecordingSink;

use super::soak;

/// Scenario replayed when none is named on the command line.
pub const DEFAULT_SCENARIO: &str = "label-flips";
/// Trace-ring capacity for the replay: large enough that no event of the
/// 2 KiB transfer is evicted, so the export really is the whole story.
pub const TRACE_EVENTS: usize = 1 << 16;

/// Result of the trace replay.
#[derive(Clone, Debug)]
pub struct TraceResult {
    /// Scenario replayed.
    pub scenario: &'static str,
    /// Seed of the run.
    pub seed: u64,
    /// True when two runs exported byte-identical JSON lines *and*
    /// identical metric snapshots.
    pub deterministic: bool,
    /// Events recorded (after which the ring was not full: `dropped == 0`).
    pub events: usize,
    /// Events evicted from the ring (must be zero at [`TRACE_EVENTS`]).
    pub dropped: u64,
    /// The machine-readable export: one JSON object per line.
    pub json_lines: String,
    /// The human-readable timeline.
    pub text: String,
    /// The metric registry rendered as text.
    pub metrics_text: String,
    /// The underlying soak row (outcome, delivered bytes, retransmits).
    pub row: soak::SoakRow,
}

impl TraceResult {
    /// Acceptance: the export is reproducible, non-empty, complete (no
    /// eviction), and the run itself terminated cleanly.
    pub fn passes(&self) -> bool {
        self.deterministic && self.events > 0 && self.dropped == 0 && self.row.terminated_cleanly()
    }
}

impl fmt::Display for TraceResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== trace — deterministic event timeline (scenario {}, seed {:#x}) ===",
            self.scenario, self.seed
        )?;
        writeln!(
            f,
            "  outcome {} ({}/{} bytes), {} events, {} dropped, replay {}",
            self.row.outcome,
            self.row.delivered_bytes,
            self.row.total_bytes,
            self.events,
            self.dropped,
            if self.deterministic {
                "byte-identical"
            } else {
                "DIVERGED"
            },
        )?;
        writeln!(f, "--- metrics ---")?;
        write!(f, "{}", self.metrics_text)?;
        writeln!(f, "--- timeline ---")?;
        let lines: Vec<&str> = self.text.lines().collect();
        const HEAD: usize = 40;
        const TAIL: usize = 10;
        if lines.len() <= HEAD + TAIL {
            for l in &lines {
                writeln!(f, "{l}")?;
            }
        } else {
            for l in &lines[..HEAD] {
                writeln!(f, "{l}")?;
            }
            writeln!(
                f,
                "  ... {} timeline lines elided ...",
                lines.len() - HEAD - TAIL
            )?;
            for l in &lines[lines.len() - TAIL..] {
                writeln!(f, "{l}")?;
            }
        }
        Ok(())
    }
}

/// Every scenario name the replay accepts, in fault-matrix order.
pub fn scenario_names() -> Vec<&'static str> {
    soak::fault_matrix().iter().map(|sc| sc.name).collect()
}

fn observed_run(
    sc: &soak::SoakScenario,
    seed: u64,
) -> (soak::SoakRow, std::sync::Arc<RecordingSink>) {
    let sink = RecordingSink::with_capacity(TRACE_EVENTS);
    let row = soak::run_scenario_observed(sc, seed, sink.clone());
    (row, sink)
}

/// Replays `scenario` twice under `seed` and compares the exports. An
/// unknown scenario name returns the list of valid ones instead.
pub fn run(seed: u64, scenario: &str) -> Result<TraceResult, Vec<&'static str>> {
    let Some(sc) = soak::fault_matrix()
        .into_iter()
        .find(|sc| sc.name == scenario)
    else {
        return Err(scenario_names());
    };
    let (row, sink) = observed_run(&sc, seed);
    let (_, sink2) = observed_run(&sc, seed);
    let json_lines = sink.trace_json_lines();
    let deterministic =
        json_lines == sink2.trace_json_lines() && sink.snapshot() == sink2.snapshot();
    Ok(TraceResult {
        scenario: sc.name,
        seed,
        deterministic,
        events: sink.events().len(),
        dropped: sink.trace_dropped(),
        json_lines,
        text: sink.trace_text(),
        metrics_text: sink.snapshot().render_text(),
        row,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_replay_is_deterministic_and_complete() {
        let r = run(0xC0451, DEFAULT_SCENARIO).expect("default scenario exists");
        assert!(r.passes(), "trace replay failed: {r}");
        // The scenario's faults must actually appear in the trace.
        assert!(r.json_lines.contains("\"ev\": \"ChunkRejected\""));
        assert!(r.json_lines.contains("\"ev\": \"RetransmitFired\""));
        assert!(r.json_lines.contains("\"ev\": \"GroupDelivered\""));
        // The Byzantine middlebox now narrates its own mutations.
        assert!(r.json_lines.contains("\"ev\": \"ChunkMutated\""));
    }

    #[test]
    fn unknown_scenario_lists_the_valid_names() {
        let names = run(0xC0451, "no-such-cell").unwrap_err();
        assert!(names.contains(&"label-flips"));
        assert!(names.contains(&"ack-blackout-shed"));
        assert_eq!(names, scenario_names());
    }
}
