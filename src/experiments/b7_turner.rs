//! B7: Turner's whole-TPDU dropping under congestion (§3).
//!
//! "If fragments travel along the same route, we have the option of
//! dropping all of the fragments of a TPDU if any fragment must be
//! dropped." When a congested router must shed one chunk, the rest of that
//! TPDU is dead weight: it will cross every downstream link and then be
//! retransmitted anyway. We compare a congestion point that victimizes
//! single chunks (naive) with one that condemns the whole TPDU (Turner),
//! at the same victim rate, and count the downstream bytes that were
//! carried for nothing.

use std::fmt;

use chunks_core::chunk::Chunk;
use chunks_core::packet::{pack, unpack, Packet};
use chunks_netsim::{PacketTransform, TurnerDropper};
use chunks_transport::{ConnectionParams, Framer};
use chunks_wsc::InvariantLayout;

/// Result for one congestion policy.
#[derive(Clone, Copy, Debug)]
pub struct B7Row {
    /// Policy name.
    pub policy: &'static str,
    /// Chunks dropped at the congestion point.
    pub dropped_chunks: u64,
    /// Payload bytes carried downstream in total.
    pub downstream_bytes: u64,
    /// Downstream payload bytes belonging to TPDUs that cannot complete —
    /// pure waste.
    pub wasted_bytes: u64,
    /// TPDUs that arrive complete.
    pub complete_tpdus: u64,
}

/// Full B7 result.
pub struct B7Result {
    /// TPDUs in the workload.
    pub tpdus: u64,
    /// Rows per policy.
    pub rows: Vec<B7Row>,
}

impl fmt::Display for B7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B7 — Turner whole-TPDU dropping at a congestion point ({} TPDUs) ===",
            self.tpdus
        )?;
        writeln!(
            f,
            "  {:<16} {:>9} {:>17} {:>13} {:>10}",
            "policy", "dropped", "downstream bytes", "wasted bytes", "complete"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<16} {:>9} {:>17} {:>13} {:>10}",
                r.policy, r.dropped_chunks, r.downstream_bytes, r.wasted_bytes, r.complete_tpdus
            )?;
        }
        Ok(())
    }
}

/// A naive congestion point: victimizes every `drop_every`-th data chunk,
/// keeping the rest of the TPDU flowing (downstream waste).
struct NaiveDropper {
    drop_every: u64,
    seen: u64,
    dropped: u64,
}

impl PacketTransform for NaiveDropper {
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let packet = Packet {
            bytes: frame.into(),
        };
        let Ok(chunks) = unpack(&packet) else {
            return Vec::new();
        };
        let mut keep = Vec::new();
        for c in chunks {
            if !c.header.ty.is_control() {
                self.seen += 1;
                if self.seen.is_multiple_of(self.drop_every) {
                    self.dropped += 1;
                    continue;
                }
            }
            keep.push(c);
        }
        if keep.is_empty() {
            return Vec::new();
        }
        match pack(keep, 1 << 16) {
            Ok(ps) => ps.into_iter().map(|p| p.bytes.to_vec()).collect(),
            Err(_) => Vec::new(),
        }
    }
}

fn measure(frames: &[Vec<u8>], transform: &mut dyn PacketTransform, policy: &'static str) -> B7Row {
    let mut out: Vec<Vec<u8>> = frames
        .iter()
        .flat_map(|f| transform.ingest(f.clone()))
        .collect();
    out.extend(transform.flush());

    // Account downstream chunks per TPDU (keyed by implicit T.ID).
    let mut per_tpdu: std::collections::HashMap<(u32, u32), (u64, u64)> =
        std::collections::HashMap::new(); // key -> (bytes seen, elements seen)
    let mut downstream_bytes = 0u64;
    let mut chunks_down: Vec<Chunk> = Vec::new();
    for f in &out {
        for c in unpack(&Packet {
            bytes: f.clone().into(),
        })
        .unwrap()
        {
            if c.header.ty.is_control() {
                continue;
            }
            downstream_bytes += c.payload.len() as u64;
            let key = (
                c.header.conn.id,
                c.header.conn.sn.wrapping_sub(c.header.tpdu.sn),
            );
            let e = per_tpdu.entry(key).or_default();
            e.0 += c.payload.len() as u64;
            e.1 += c.header.len as u64;
            chunks_down.push(c);
        }
    }
    // A TPDU is complete when all 64 of its elements arrived.
    let complete = per_tpdu.values().filter(|&&(_, elems)| elems == 64).count() as u64;
    let wasted: u64 = per_tpdu
        .values()
        .filter(|&&(_, elems)| elems != 64)
        .map(|&(bytes, _)| bytes)
        .sum();
    let total_sent: u64 = frames
        .iter()
        .flat_map(|f| {
            unpack(&Packet {
                bytes: f.clone().into(),
            })
            .unwrap()
        })
        .filter(|c| !c.header.ty.is_control())
        .map(|c| c.payload.len() as u64)
        .sum();
    B7Row {
        policy,
        dropped_chunks: total_sent.saturating_sub(downstream_bytes) / 16, // 16B chunks
        downstream_bytes,
        wasted_bytes: wasted,
        complete_tpdus: complete,
    }
}

/// Runs B7: `tpdus` TPDUs of 64 elements, 4 chunks each, victim rate 1/13.
pub fn run(tpdus: u64) -> B7Result {
    let params = ConnectionParams {
        conn_id: 0x77,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 64,
    };
    let mut framer = Framer::new(params, InvariantLayout::with_data_symbols(4096));
    // Four external frames per TPDU force four chunks per TPDU.
    let data = vec![0x3Cu8; (tpdus * 64) as usize];
    let alf: Vec<chunks_transport::AlfFrame> = (0..tpdus * 4)
        .map(|i| chunks_transport::AlfFrame {
            id: i as u32,
            len_elements: 16,
        })
        .collect();
    let framed = framer.frame_stream(&data, &alf, false);
    // One packet per chunk, as a congested queue would see them.
    let frames: Vec<Vec<u8>> = framed
        .iter()
        .flat_map(|t| t.chunks.iter())
        .map(|c| pack(vec![c.clone()], 1 << 12).unwrap()[0].bytes.to_vec())
        .collect();

    let mut naive = NaiveDropper {
        drop_every: 13,
        seen: 0,
        dropped: 0,
    };
    let mut turner = TurnerDropper::new(13);
    let rows = vec![
        measure(&frames, &mut naive, "naive single"),
        measure(&frames, &mut turner, "Turner whole-TPDU"),
    ];
    B7Result { tpdus, rows }
}
