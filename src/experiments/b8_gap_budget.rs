//! B8: how much gap-list hardware does virtual reassembly need? (§3.3's
//! VLSI pointer, ablated.)
//!
//! TPDUs are fragmented and striped over a skewed multipath, so fragments
//! arrive interleaved; a [`chunks_vreasm::BoundedTracker`]
//! with `b` registers refuses any fragment that would open run `b + 1`.
//! We sweep the register budget against the multipath width and count
//! refusals (each refusal is a forced retransmission in hardware).

use std::fmt;

use chunks_core::frag::split_to_fit;
use chunks_core::packet::{pack, unpack, Packet};
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_netsim::{LinkConfig, PathBuilder};
use chunks_transport::{ConnectionParams, Framer};
use chunks_vreasm::{BoundedEvent, BoundedTracker};
use chunks_wsc::InvariantLayout;

/// One cell of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct B8Row {
    /// Parallel paths in the bundle.
    pub paths: usize,
    /// Gap-list registers per TPDU.
    pub budget: usize,
    /// Fragments refused (forced retransmissions).
    pub refusals: u64,
    /// Fragments offered.
    pub offered: u64,
}

/// Full B8 result.
pub struct B8Result {
    /// Rows over (paths, budget).
    pub rows: Vec<B8Row>,
}

impl fmt::Display for B8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "=== B8 — virtual-reassembly gap-list budget vs multipath disorder ==="
        )?;
        writeln!(
            f,
            "  {:>6} {:>8} {:>10} {:>10} {:>9}",
            "paths", "budget", "refused", "offered", "rate"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>6} {:>8} {:>10} {:>10} {:>8.1}%",
                r.paths,
                r.budget,
                r.refusals,
                r.offered,
                r.refusals as f64 * 100.0 / r.offered.max(1) as f64
            )?;
        }
        Ok(())
    }
}

fn run_cell(paths: usize, budget: usize, seed: u64) -> B8Row {
    let params = ConnectionParams {
        conn_id: 1,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 256,
    };
    let mut framer = Framer::new(params, InvariantLayout::default());
    let tpdus = framer.frame_simple(&vec![0x11u8; 16 * 256], 0xF, false);
    // Fragment every TPDU's chunk to 32-element pieces, one per packet.
    let frames: Vec<Vec<u8>> = tpdus
        .iter()
        .flat_map(|t| t.chunks.iter())
        .flat_map(|c| split_to_fit(c.clone(), WIRE_HEADER_LEN + 32).unwrap())
        .map(|c| pack(vec![c], 1 << 12).unwrap()[0].bytes.to_vec())
        .collect();

    // Stripe over a skewed multipath.
    let mut path = PathBuilder::new(seed)
        .multipath(
            paths,
            LinkConfig::clean(1 << 12, 100_000, 155_000_000),
            60_000,
        )
        .build();
    let inputs = frames
        .into_iter()
        .enumerate()
        .map(|(i, f)| (i as u64 * 2_000, f))
        .collect();
    let deliveries = path.run(inputs);

    let mut trackers: std::collections::HashMap<u64, BoundedTracker> =
        std::collections::HashMap::new();
    let mut refusals = 0;
    let mut offered = 0;
    for d in &deliveries {
        for c in unpack(&Packet {
            bytes: d.frame.clone().into(),
        })
        .unwrap()
        {
            if c.header.ty.is_control() {
                continue;
            }
            offered += 1;
            let key = c.header.conn.sn.wrapping_sub(c.header.tpdu.sn) as u64;
            let t = trackers
                .entry(key)
                .or_insert_with(|| BoundedTracker::new(budget));
            if t.offer(
                c.header.tpdu.sn as u64,
                c.header.len as u64,
                c.header.tpdu.st,
            ) == BoundedEvent::Refused
            {
                refusals += 1;
            }
        }
    }
    B8Row {
        paths,
        budget,
        refusals,
        offered,
    }
}

/// Runs the sweep.
pub fn run(seed: u64) -> B8Result {
    let mut rows = Vec::new();
    for paths in [2usize, 4, 8] {
        for budget in [1usize, 2, 4, 8] {
            rows.push(run_cell(paths, budget, seed));
        }
    }
    B8Result { rows }
}
