//! # chunks
//!
//! A complete implementation of the data-labelling technique of
//! **D. C. Feldmeier, "A Data Labelling Technique for High-Performance
//! Protocol Processing and Its Consequences", ACM SIGCOMM 1993** — plus
//! every substrate its evaluation needs.
//!
//! A *chunk* is a completely self-describing piece of a PDU: a header with a
//! `TYPE`, an atomic element `SIZE`, a `LEN`, and three independent
//! `(ID, SN, ST)` framing tuples (connection / transport PDU / external
//! PDU). Self-description buys three things:
//!
//! 1. **Processing on arrival** — no reordering or reassembly buffers, one
//!    bus crossing per byte (Integrated Layer Processing);
//! 2. **Closure under fragmentation** — split and merge both yield ordinary
//!    chunks, so any number of in-network refragmentation steps still ends
//!    in single-step reassembly;
//! 3. **Fragmentation-invariant end-to-end error detection** — the WSC-2
//!    weighted-sum code over the paper's Figure 5/6 invariant.
//!
//! ## Crate map
//!
//! | module (re-export) | crate | contents |
//! |---|---|---|
//! | [`gf`] | `chunks-gf` | GF(2^32) arithmetic |
//! | [`wsc`] | `chunks-wsc` | WSC-2 code, TPDU invariant, CRC-32/Internet-checksum comparators |
//! | [`core`] | `chunks-core` | chunk model, wire codec, Appendix C/D algorithms, packets, Appendix A header compression |
//! | [`vreasm`] | `chunks-vreasm` | virtual reassembly, reassembly-buffer lock-up model |
//! | [`netsim`] | `chunks-netsim` | deterministic lossy/reordering network simulator, Figure 4 routers |
//! | [`baseline`] | `chunks-baseline` | IP-style, XTP-style and AAL5-style comparators |
//! | [`transport`] | `chunks-transport` | framer, sender, the three §3.3 receivers, acks, signalling |
//!
//! ## Quickstart
//!
//! ```
//! use chunks::transport::{Sender, SenderConfig, Receiver, DeliveryMode, RxEvent};
//! use chunks::transport::ConnectionParams;
//! use chunks::wsc::InvariantLayout;
//!
//! let params = ConnectionParams {
//!     conn_id: 1, elem_size: 1, initial_csn: 0, tpdu_elements: 1024,
//! };
//! let layout = InvariantLayout::default();
//! let mut tx = Sender::new(SenderConfig {
//!     params, layout, mtu: 1500, min_tpdu_elements: 64, max_tpdu_elements: 16_384,
//! });
//! let mut rx = Receiver::new(DeliveryMode::Immediate, params, layout, 1 << 16);
//!
//! let message = b"data labelled for processing in any order";
//! tx.submit_simple(message, 7, false);
//! for packet in tx.packets_for_pending().unwrap() {
//!     for event in rx.handle_packet(&packet, 0) {
//!         if let RxEvent::TpduDelivered { start, elements } = event {
//!             println!("TPDU at {start} delivered: {elements} elements");
//!         }
//!     }
//! }
//! assert_eq!(&rx.app_data()[..message.len()], message);
//! ```

#![deny(missing_docs)]

pub mod experiments;

/// GF(2^32) finite-field arithmetic (substrate for WSC-2).
pub use chunks_gf as gf;

/// WSC-2 weighted sum code, the TPDU fragmentation invariant, and
/// comparator codes.
pub use chunks_wsc as wsc;

/// The chunk data model: labels, wire format, fragmentation/reassembly,
/// packets-as-envelopes, header compression.
pub use chunks_core as core;

/// Virtual reassembly and the physical reassembly-buffer (lock-up) model.
pub use chunks_vreasm as vreasm;

/// Deterministic network simulator with multipath skew and chunk-aware
/// routers.
pub use chunks_netsim as netsim;

/// Baseline fragmentation systems (IP, XTP, AAL5 styles).
pub use chunks_baseline as baseline;

/// The end-to-end chunk transport.
pub use chunks_transport as transport;

/// Position-keyed block encryption that works on disordered data (the
/// FELD 92 substrate behind the paper's §1 ILP argument).
pub use chunks_cipher as cipher;
