//! Experiment harness: regenerates every figure, the table, and the
//! quantified claims of the paper.
//!
//! ```text
//! experiments [--describe REV] [fig1|...|fig7|table1|b1|...|b8|soak|parallel|hotpath|lineage|scale|obs-overhead|health|trace [SCENARIO] [--json]|bench-check|all]
//! ```
//!
//! With no argument (or `all`) every experiment runs. Output is the content
//! EXPERIMENTS.md records. `--describe` stamps regenerated `BENCH_*.json`
//! files with a source revision (the justfile passes `git describe`); the
//! experiments themselves never shell out or read the wall clock.
//! `trace` takes an optional soak-scenario name (`--help` lists the valid
//! ones; an unknown name does too) and `--json` switches the output to the
//! machine-readable JSON-lines export — the same shape the flight recorder
//! dumps. `bench-check` is the regression gate: it diffs regenerated
//! summaries against the committed `BENCH_*.json` files.

use chunks::experiments::{
    appendix_b, b1_receiver_modes, b2_frag_systems, b3_lockup, b4_codes, b5_compress, b6_demux,
    b7_turner, b8_gap_budget, bench_check, figures, health, hotpath, lineage, obs_overhead,
    overlap, parallel, scale, soak, table1, trace, SEED, SEED2,
};

// The hotpath sweep reports allocations-per-chunk on the receive path; the
// counting allocator forwards to `System` and costs one relaxed atomic add
// per allocation, negligible for every other experiment.
#[global_allocator]
static ALLOC: hotpath::alloc_count::CountingAlloc = hotpath::alloc_count::CountingAlloc;

/// One parsed invocation: an experiment name plus its trailing arguments
/// (only `trace` takes any: an optional scenario and/or `--json`/`--help`).
struct Job {
    name: String,
    args: Vec<String>,
}

fn run_one(job: &Job, describe: &str) -> bool {
    match job.name.as_str() {
        "fig1" => print_fig(figures::figure1()),
        "fig2" => print_fig(figures::figure2()),
        "fig3" => print_fig(figures::figure3()),
        "fig4" => print_fig(figures::figure4()),
        "fig5" => print_fig(figures::figure5()),
        "fig6" => print_fig(figures::figure6()),
        "fig7" => print_fig(figures::figure7()),
        "appendixb" => {
            let r = appendix_b::run();
            println!("{r}");
            r.chunks_dominate
        }
        "table1" => {
            let t = table1::run();
            println!("{t}");
            t.matches_paper()
        }
        "b1" => {
            let r = b1_receiver_modes::run(256 * 1024, SEED);
            println!("{r}");
            r.rows.iter().all(|row| row.complete)
        }
        "b2" => {
            let r = b2_frag_systems::run(64 * 1024);
            println!("{r}");
            r.rows.iter().all(|row| row.intact)
        }
        "b3" => {
            let r = b3_lockup::run(64, 4096, 0.05, SEED);
            println!("{r}");
            r.rows.iter().all(|row| row.chunk_drops == 0)
        }
        "b4" => {
            let r = b4_codes::run(4 << 20, SEED);
            println!("{r}");
            r.wsc_detects_swap && !r.checksum_detects_swap
        }
        "b5" => {
            let r = b5_compress::run();
            println!("{r}");
            r.rows.iter().all(|row| row.invertible)
        }
        "b6" => {
            let r = b6_demux::run(2_000, SEED);
            println!("{r}");
            true
        }
        "b7" => {
            let r = b7_turner::run(64);
            println!("{r}");
            // Turner must waste (strictly) fewer downstream bytes while
            // completing at least as many TPDUs.
            r.rows[1].wasted_bytes < r.rows[0].wasted_bytes
                && r.rows[1].complete_tpdus >= r.rows[0].complete_tpdus
        }
        "b8" => {
            let r = b8_gap_budget::run(SEED);
            println!("{r}");
            // More registers never refuse more, and 8 registers suffice for
            // an 8-way stripe.
            r.rows
                .iter()
                .filter(|row| row.budget == 8)
                .all(|row| row.refusals == 0)
        }
        "soak" => {
            let (r1, r2) = (soak::run(SEED), soak::run(SEED2));
            println!("{r1}");
            println!("{r2}");
            // Same seed, same rows — the whole matrix is reproducible.
            let deterministic = soak::run(SEED) == r1;
            if let Err(e) =
                std::fs::write("BENCH_soak.json", soak::bench_json(&[&r1, &r2], describe))
            {
                eprintln!("could not write BENCH_soak.json: {e}");
            }
            deterministic && r1.passes() && r2.passes()
        }
        "hotpath" => {
            let r = hotpath::run(SEED);
            println!("{r}");
            if let Err(e) = std::fs::write("BENCH_hotpath.json", hotpath::bench_json(&r, describe))
            {
                eprintln!("could not write BENCH_hotpath.json: {e}");
            }
            r.passes()
        }
        "parallel" => {
            let r = parallel::run(SEED);
            println!("{r}");
            if let Err(e) =
                std::fs::write("BENCH_parallel.json", parallel::bench_json(&r, describe))
            {
                eprintln!("could not write BENCH_parallel.json: {e}");
            }
            r.passes()
        }
        "overlap" => {
            let r = overlap::run(SEED);
            println!("{r}");
            // Same seed, same rows — every cell is reproducible.
            let deterministic = overlap::run(SEED) == r;
            if let Err(e) = std::fs::write("BENCH_overlap.json", overlap::bench_json(&r, describe))
            {
                eprintln!("could not write BENCH_overlap.json: {e}");
            }
            deterministic && r.passes()
        }
        "scale" => {
            let r = scale::run(SEED);
            println!("{r}");
            if let Err(e) = std::fs::write("BENCH_scale.json", scale::bench_json(&r, describe)) {
                eprintln!("could not write BENCH_scale.json: {e}");
            }
            r.passes()
        }
        "lineage" => {
            let r = lineage::run(SEED);
            println!("{r}");
            if let Err(e) = std::fs::write("BENCH_lineage.json", lineage::bench_json(&r, describe))
            {
                eprintln!("could not write BENCH_lineage.json: {e}");
            }
            r.passes()
        }
        "obs-overhead" => {
            let r = obs_overhead::run(SEED);
            println!("{r}");
            if let Err(e) = std::fs::write("BENCH_obs.json", obs_overhead::bench_json(&r, describe))
            {
                eprintln!("could not write BENCH_obs.json: {e}");
            }
            r.passes()
        }
        "health" => {
            let r = health::run(SEED);
            println!("{r}");
            r.passes()
        }
        "trace" => {
            let mut scenario: Option<&str> = None;
            let mut json = false;
            let mut help = false;
            for a in &job.args {
                match a.as_str() {
                    "--json" => json = true,
                    "--help" => help = true,
                    other => scenario = Some(other),
                }
            }
            if help {
                println!("usage: experiments trace [SCENARIO] [--json]");
                println!(
                    "available scenarios: {}",
                    trace::scenario_names().join(", ")
                );
                println!("default scenario: {}", trace::DEFAULT_SCENARIO);
                true
            } else {
                let scenario = scenario.unwrap_or(trace::DEFAULT_SCENARIO);
                match trace::run(SEED, scenario) {
                    Ok(r) => {
                        if json {
                            print!("{}", r.json_lines);
                        } else {
                            println!("{r}");
                        }
                        r.passes()
                    }
                    Err(names) => {
                        eprintln!("unknown trace scenario: {scenario}");
                        eprintln!("available scenarios: {}", names.join(", "));
                        false
                    }
                }
            }
        }
        "bench-check" => {
            let r = bench_check::run();
            println!("{r}");
            r.passes()
        }
        other => {
            eprintln!("unknown experiment: {other}");
            false
        }
    }
}

fn print_fig(f: figures::FigureResult) -> bool {
    let ok = f.ok();
    println!("{f}");
    ok
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "appendixb",
        "b1",
        "b2",
        "b3",
        "b4",
        "b5",
        "b6",
        "b7",
        "b8",
        "soak",
        "parallel",
        "hotpath",
        "overlap",
        "lineage",
        "scale",
        "obs-overhead",
        "health",
        "trace",
    ];
    // Pull out `--describe REV`, then pair `trace` with its optional
    // trailing arguments (a scenario name and/or `--json`/`--help` — any
    // following tokens that are not themselves experiment names).
    let mut describe = String::from("unknown");
    let mut jobs: Vec<Job> = Vec::new();
    let mut run_all = raw.is_empty();
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--describe" => {
                if let Some(v) = raw.get(i + 1) {
                    describe = v.clone();
                    i += 2;
                } else {
                    eprintln!("--describe needs a value");
                    std::process::exit(2);
                }
            }
            "all" => {
                run_all = true;
                i += 1;
            }
            name => {
                let takes_args = name == "trace";
                let mut args = Vec::new();
                if takes_args {
                    while let Some(a) = raw
                        .get(i + 1 + args.len())
                        .filter(|a| !all.contains(&a.as_str()) && *a != "--describe")
                    {
                        args.push(a.clone());
                    }
                }
                i += 1 + args.len();
                jobs.push(Job {
                    name: name.to_owned(),
                    args,
                });
            }
        }
    }
    if run_all {
        jobs = all
            .iter()
            .map(|&name| Job {
                name: name.to_owned(),
                args: Vec::new(),
            })
            .collect();
    }
    let mut failures = 0;
    for job in &jobs {
        if !run_one(job, &describe) {
            eprintln!("experiment {}: CHECK FAILED", job.name);
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
