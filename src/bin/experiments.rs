//! Experiment harness: regenerates every figure, the table, and the
//! quantified claims of the paper.
//!
//! ```text
//! experiments [fig1|fig2|...|fig7|table1|b1|b2|b3|b4|b5|b6|all]
//! ```
//!
//! With no argument (or `all`) every experiment runs. Output is the content
//! EXPERIMENTS.md records.

use chunks::experiments::{
    appendix_b, b1_receiver_modes, b2_frag_systems, b3_lockup, b4_codes, b5_compress, b6_demux,
    b7_turner, b8_gap_budget, figures, parallel, soak, table1, trace,
};

const SEED: u64 = 0xC0451;
/// Second, independent seed for the soak determinism sweep.
const SEED2: u64 = 0xA5EED;

fn run_one(name: &str) -> bool {
    match name {
        "fig1" => print_fig(figures::figure1()),
        "fig2" => print_fig(figures::figure2()),
        "fig3" => print_fig(figures::figure3()),
        "fig4" => print_fig(figures::figure4()),
        "fig5" => print_fig(figures::figure5()),
        "fig6" => print_fig(figures::figure6()),
        "fig7" => print_fig(figures::figure7()),
        "appendixb" => {
            let r = appendix_b::run();
            println!("{r}");
            r.chunks_dominate
        }
        "table1" => {
            let t = table1::run();
            println!("{t}");
            t.matches_paper()
        }
        "b1" => {
            let r = b1_receiver_modes::run(256 * 1024, SEED);
            println!("{r}");
            r.rows.iter().all(|row| row.complete)
        }
        "b2" => {
            let r = b2_frag_systems::run(64 * 1024);
            println!("{r}");
            r.rows.iter().all(|row| row.intact)
        }
        "b3" => {
            let r = b3_lockup::run(64, 4096, 0.05, SEED);
            println!("{r}");
            r.rows.iter().all(|row| row.chunk_drops == 0)
        }
        "b4" => {
            let r = b4_codes::run(4 << 20, SEED);
            println!("{r}");
            r.wsc_detects_swap && !r.checksum_detects_swap
        }
        "b5" => {
            let r = b5_compress::run();
            println!("{r}");
            r.rows.iter().all(|row| row.invertible)
        }
        "b6" => {
            let r = b6_demux::run(2_000, SEED);
            println!("{r}");
            true
        }
        "b7" => {
            let r = b7_turner::run(64);
            println!("{r}");
            // Turner must waste (strictly) fewer downstream bytes while
            // completing at least as many TPDUs.
            r.rows[1].wasted_bytes < r.rows[0].wasted_bytes
                && r.rows[1].complete_tpdus >= r.rows[0].complete_tpdus
        }
        "b8" => {
            let r = b8_gap_budget::run(SEED);
            println!("{r}");
            // More registers never refuse more, and 8 registers suffice for
            // an 8-way stripe.
            r.rows
                .iter()
                .filter(|row| row.budget == 8)
                .all(|row| row.refusals == 0)
        }
        "soak" => {
            let (r1, r2) = (soak::run(SEED), soak::run(SEED2));
            println!("{r1}");
            println!("{r2}");
            // Same seed, same rows — the whole matrix is reproducible.
            let deterministic = soak::run(SEED) == r1;
            if let Err(e) = std::fs::write("BENCH_soak.json", soak_json(&[&r1, &r2])) {
                eprintln!("could not write BENCH_soak.json: {e}");
            }
            deterministic && r1.passes() && r2.passes()
        }
        "parallel" => {
            let r = parallel::run(SEED);
            println!("{r}");
            if let Err(e) = std::fs::write("BENCH_parallel.json", parallel_json(&r)) {
                eprintln!("could not write BENCH_parallel.json: {e}");
            }
            r.passes()
        }
        "trace" => {
            let r = trace::run(SEED);
            println!("{r}");
            r.passes()
        }
        other => {
            eprintln!("unknown experiment: {other}");
            false
        }
    }
}

/// Renders a row's nonzero-counter snapshot as one compact JSON object.
fn metrics_json(metrics: &[(String, u64)]) -> String {
    let parts: Vec<String> = metrics
        .iter()
        .map(|(n, v)| format!("\"{n}\": {v}"))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// Renders the soak sweeps as the BENCH_soak.json goodput-under-loss record.
fn soak_json(results: &[&soak::SoakResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"soak-reliability-under-faults\",\n");
    out.push_str(
        "  \"regenerate\": \"cargo run --release --bin experiments soak (or: just soak)\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": \"{} bytes over a 4-path bundle through a Byzantine middlebox, virtual clock, tick {} ns\",\n",
        soak::PAYLOAD_BYTES,
        soak::TICK_NS
    ));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = results
        .iter()
        .flat_map(|r| r.rows.iter())
        .map(|row| {
            format!(
                "    {{\"scenario\": \"{}\", \"seed\": \"{:#x}\", \"outcome\": \"{}\", \"delivered_frac\": {:.3}, \"virtual_ms\": {:.1}, \"timer_retransmits\": {}, \"shed_tpdus\": {}, \"acks_dropped\": {}, \"goodput_mib_s\": {:.2}, \"metrics\": {}}}",
                row.scenario,
                row.seed,
                row.outcome,
                row.delivered_frac(),
                row.elapsed_ns as f64 / 1e6,
                row.timer_retransmits,
                row.shed_tpdus,
                row.acks_dropped,
                row.goodput_mibps,
                metrics_json(&row.metrics),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the parallel sweep as the BENCH_parallel.json scaling record.
fn parallel_json(r: &parallel::ParallelResult) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"parallel-receive-pipeline-scaling\",\n");
    out.push_str(
        "  \"regenerate\": \"cargo run --release --bin experiments parallel (or: just bench-parallel)\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": \"{} connections x {} KiB, {} KiB TPDUs, mtu {}; arrival trace replayed per worker count\",\n",
        parallel::CONNS,
        parallel::MESSAGE_BYTES / 1024,
        parallel::TPDU_ELEMENTS / 1024,
        parallel::MTU,
    ));
    out.push_str(
        "  \"method\": \"throughput is wire bytes over the modelled makespan dispatch + busiest-worker busy time + merge, from per-stage times measured on the deterministic virtual engine (medians of 3); threads_wall_ms is the real std::thread engine on this host; every cell is fingerprint-compared against the serial demux\",\n",
    );
    out.push_str(&format!(
        "  \"reorder_speedup_at_4_workers\": {:.2},\n",
        r.reorder_speedup_at_4()
    ));
    out.push_str("  \"results\": [\n");
    let rows: Vec<String> = r
        .sweeps
        .iter()
        .flat_map(|s| {
            let serial_ms = s.serial_wall_ns as f64 / 1e6;
            s.cells.iter().map(move |c| {
                format!(
                    "    {{\"profile\": \"{}\", \"workers\": {}, \"dispatch_ms\": {:.3}, \"process_total_ms\": {:.3}, \"process_max_ms\": {:.3}, \"merge_ms\": {:.3}, \"makespan_ms\": {:.3}, \"modeled_mib_s\": {:.1}, \"speedup_vs_1\": {:.2}, \"threads_wall_ms\": {:.3}, \"serial_wall_ms\": {:.3}, \"delivered_bytes\": {}, \"divergences\": {}, \"metrics\": {}}}",
                    c.profile,
                    c.workers,
                    c.dispatch_ns as f64 / 1e6,
                    c.process_total_ns as f64 / 1e6,
                    c.process_max_ns as f64 / 1e6,
                    c.merge_ns as f64 / 1e6,
                    c.critical_path_ns as f64 / 1e6,
                    c.modeled_mib_s,
                    c.speedup_vs_1,
                    c.threads_wall_ns as f64 / 1e6,
                    serial_ms,
                    c.delivered_bytes,
                    c.divergences,
                    metrics_json(&c.metrics),
                )
            })
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn print_fig(f: figures::FigureResult) -> bool {
    let ok = f.ok();
    println!("{f}");
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "table1",
        "appendixb",
        "b1",
        "b2",
        "b3",
        "b4",
        "b5",
        "b6",
        "b7",
        "b8",
        "soak",
        "parallel",
        "trace",
    ];
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failures = 0;
    for name in selected {
        if !run_one(name) {
            eprintln!("experiment {name}: CHECK FAILED");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
