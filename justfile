# Lint and verification recipes. Everything runs offline — the external
# dependencies are vendored (see vendor/ and [patch.crates-io]).
# Each recipe is a plain cargo command, so `just` itself is optional.

# Full lint gate: formatting, clippy, rustdoc — all warnings denied —
# plus the release-mode test suite, the parallel-equivalence gate, the
# reliability soak, and the deterministic-trace replay.
lint: check test-release test-parallel soak trace

# Static gate only: formatting, clippy, rustdoc.
check: fmt clippy doc

# Formatting only, no changes written.
fmt:
    cargo fmt --all --check

# Clippy across the workspace, warnings as errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc with warnings denied (deny(missing_docs) holds on every crate).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Tier-1: what the repo must always pass (see ROADMAP.md).
test:
    cargo build --release
    cargo test -q

# Release-mode test suite (the soak assertions also run here, in seconds).
test-release:
    cargo test -q --release

# Reliability soak: the full fault matrix under two seeds, deterministic,
# release mode, well under 60 s. Rewrites BENCH_soak.json at the repo root.
soak:
    cargo run --release --bin experiments soak

# Parallel-equivalence gate: the full 200-scenario differential sweep plus
# the deterministic-schedule and closure-algebra suites, release mode.
test-parallel:
    PARALLEL_SCENARIOS=200 cargo test -q --release --test parallel_differential --test parallel_schedules --test chunk_closure_props

# Regenerate the BENCH_parallel.json scaling sweep at the repo root (also
# fingerprint-checks the pipeline against the serial demux per cell).
bench-parallel:
    cargo run --release --bin experiments parallel

# Regenerate the BENCH_wsc.json fast-path snapshot at the repo root.
bench-wsc:
    cargo bench -p chunks-bench --bench invariant

# Replay the label-flips soak cell twice with a recording sink, prove the
# two traces byte-identical, and print the metrics + event timeline.
trace:
    cargo run --release --bin experiments trace
