# Lint and verification recipes. Everything runs offline — the external
# dependencies are vendored (see vendor/ and [patch.crates-io]).
# Each recipe is a plain cargo command, so `just` itself is optional.

# Full lint gate: formatting, clippy, rustdoc — all warnings denied —
# plus the release-mode test suite, the parallel-equivalence gate, the
# zero-allocation hot-path gate, the connection-table scale gate, the
# BENCH regression gate, the reliability soak, the adversarial overlap
# sweep, the lineage sweep, and the deterministic-trace replay.
lint: check test-release test-parallel test-hotpath test-scale bench-check soak soak-overlap lineage trace obs-overhead health

# Static gate only: formatting, clippy, rustdoc.
check: fmt clippy doc

# Formatting only, no changes written.
fmt:
    cargo fmt --all --check

# Clippy across the workspace, warnings as errors.
clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc with warnings denied (deny(missing_docs) holds on every crate).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Tier-1: what the repo must always pass (see ROADMAP.md).
test:
    cargo build --release
    cargo test -q

# Release-mode test suite (the soak assertions also run here, in seconds).
test-release:
    cargo test -q --release

# Reliability soak: the full fault matrix under two seeds, deterministic,
# release mode, well under 60 s. Rewrites BENCH_soak.json at the repo root.
soak:
    cargo run --release --bin experiments soak --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# Adversarial overlap sweep: overlap policy × reassembly attack × memory
# budget, proving serial/parallel equivalence, WSC-2 integrity authority,
# and bounded memory under flood. Rewrites BENCH_overlap.json at the root.
soak-overlap:
    cargo run --release --bin experiments overlap --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# Parallel-equivalence gate: the full 200-scenario differential sweep plus
# the deterministic-schedule and closure-algebra suites, release mode.
test-parallel:
    PARALLEL_SCENARIOS=200 cargo test -q --release --test parallel_differential --test parallel_schedules --test chunk_closure_props

# Regenerate the BENCH_parallel.json scaling sweep at the repo root (also
# fingerprint-checks the pipeline against the serial demux per cell).
bench-parallel:
    cargo run --release --bin experiments parallel --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# Zero-allocation hot-path gate: a counting global allocator proves the
# steady-state receive windows (serial and parallel) allocate exactly
# nothing per chunk, release mode.
test-hotpath:
    cargo test -q --release --test hotpath_allocs

# Connection-table scale gate: the shrunken scale soak (16 Ki connections,
# churn, Zipf faults, both demux paths) replayed twice for determinism,
# plus the table-vs-HashMap oracle property suite, release mode.
test-scale:
    cargo test -q --release --test scale_determinism
    cargo test -q --release -p chunks-transport --test table_props

# Regenerate the BENCH_scale.json million-connection soak at the repo
# root: admit ≥ 1 Mi concurrent connections on the open-addressed table,
# soak them with templated traffic, churn, Zipf skew and a Byzantine
# fault matrix on the serial and parallel paths, and gate on delivery,
# eviction accounting, bounded memory and replay determinism.
scale:
    cargo run --release --bin experiments scale --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# Regenerate the BENCH_hotpath.json receive-path sweep at the repo root:
# chunks/s, MiB/s and allocs/chunk for the zero-copy, legacy-owned and
# parallel legs (digest-compared; ≥ 96 MiB/s and 0 allocs/chunk gates).
bench-hotpath:
    cargo run --release --bin experiments hotpath --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# Regenerate the BENCH_wsc.json backend × batch-width snapshot at the
# repo root (sweeps every GF(2^32) backend this CPU supports).
bench-wsc:
    CHUNKS_DESCRIBE="$(git describe --always --dirty 2>/dev/null || echo unknown)" cargo bench -p chunks-bench --bench invariant

# Run the WSC bench under both backend configurations: first with the
# portable table fallback forced via the CHUNKS_GF_BACKEND override
# (exactly what a CPU without carry-less multiply would measure), then
# the full auto-detected sweep, which writes the committed snapshot.
bench-wsc-all:
    CHUNKS_GF_BACKEND=tables CHUNKS_DESCRIBE="$(git describe --always --dirty 2>/dev/null || echo unknown)-tables-forced" cargo bench -p chunks-bench --bench invariant
    CHUNKS_DESCRIBE="$(git describe --always --dirty 2>/dev/null || echo unknown)" cargo bench -p chunks-bench --bench invariant

# Label-keyed lifecycle spans: drive one transfer through every netsim
# profile, prove the span trees byte-identical across replays, and rewrite
# BENCH_lineage.json at the repo root.
lineage:
    cargo run --release --bin experiments lineage --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# BENCH regression gate: regenerate the virtual-clock BENCH_*.json
# summaries in-process and fail on any byte of drift; wall-clock summaries
# are checked structurally (parse + meta block + nonempty results).
bench-check:
    cargo run --release --bin experiments bench-check

# Replay a soak cell twice with a recording sink, prove the two traces
# byte-identical, and print the metrics + event timeline.
trace:
    cargo run --release --bin experiments trace

# Always-on telemetry overhead gate: paired obs-off/obs-on runs of the
# serial, parallel and demux workloads, gating the serial + parallel
# on-null legs at ≤ 5% wall overhead with zero steady-state allocations
# while proving the sink actually recorded. Rewrites BENCH_obs.json.
obs-overhead:
    cargo run --release --bin experiments obs-overhead --describe "$(git describe --always --dirty 2>/dev/null || echo unknown)"

# Health surface gate: drive degradation scenarios through the watchdog,
# assert each expected verdict (LivelockSuspected, EvictionStorm,
# PressureStuck) fires, and prove the flight recorder dumps exactly once
# per connection on first degradation with byte-stable output.
health:
    cargo run --release --bin experiments health
