//! Offline stand-in for the `proptest` crate.
//!
//! The build sandbox for this repository cannot reach crates.io, so the
//! workspace patches `proptest` to this implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It keeps the surface the
//! workspace's property tests use — [`Strategy`] with `prop_map` /
//! `prop_filter`, [`any`], integer/float range strategies, tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / [`prop_assume!`]
//! macros — backed by a deterministic per-test RNG.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its index and panics; rerun
//!   the test to reproduce (generation is deterministic per test name).
//! * **No persistence files.** Failures are reproducible from the test name
//!   alone, so no `proptest-regressions/` directory is written.

use std::fmt;

/// Deterministic generator driving value production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so every test gets its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw below `bound` (which must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
    /// An assertion failed; the test must panic.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing the predicate (retrying up to a
    /// bounded number of times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Chains a strategy-producing function (each generated value seeds a
    /// second strategy).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

impl<const N: usize, T: Arbitrary> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The full-domain strategy for `T` (biased occasionally toward the
/// extremes, which is where protocol bugs live).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns the canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or an
    /// integer range, mirroring the real crate's `SizeRange` conversions.
    pub trait IntoSizeRange {
        /// Returns `(min, max_exclusive)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `range`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize, // exclusive
    }

    /// Generates vectors whose length lies in `range`.
    pub fn vec<S: Strategy>(element: S, range: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = range.bounds();
        assert!(min < max, "empty length range for collection::vec");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit choices.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly among the given options.
    pub struct Select<T: Clone>(Vec<T>);

    /// Chooses one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// The items property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
    /// Alias matching the real crate's `prelude::prop` module path.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Declares property tests.
///
/// Supports the subset of the real macro's grammar this workspace uses: an
/// optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])+ fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while passed < config.cases {
                    case += 1;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(20).max(1000),
                                "proptest {}: too many prop_assume rejections",
                                stringify!($name)
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Rejects the current case (not counted against the budget) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in 1usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec(any::<u8>(), 0..16), t in (0u8..4, any::<bool>())) {
            prop_assert!(v.len() < 16);
            prop_assert!(t.0 < 4);
        }

        #[test]
        fn map_and_filter(x in any::<u32>().prop_map(|v| v | 1).prop_filter("odd", |v| v % 2 == 1)) {
            prop_assert_eq!(x % 2, 1);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x >= 50);
            prop_assert!(x >= 50);
        }
    }

    #[test]
    fn deterministic_rng_streams_differ_by_name() {
        let mut a = crate::TestRng::deterministic("a");
        let mut b = crate::TestRng::deterministic("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
