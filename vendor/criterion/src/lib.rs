//! Offline stand-in for the `criterion` crate.
//!
//! The build sandbox for this repository cannot reach crates.io, so the
//! workspace patches `criterion` to this implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It is a *real* measuring
//! harness — warm-up, calibrated iteration counts, multiple samples, median
//! and mean reporting, bytes-per-second throughput — just without the
//! statistical machinery, plotting, and saved baselines of the real crate.
//!
//! Environment knobs (milliseconds): `CRITERION_WARMUP_MS` (default 150)
//! and `CRITERION_MEASURE_MS` (default 600).
//!
//! Measured results can also be harvested programmatically via
//! [`Criterion::take_results`], which the workspace's bench targets use to
//! emit JSON snapshots such as `BENCH_wsc.json`.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching the real crate's helper.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }
}

/// Conversion of the various id forms benches pass around.
pub trait IntoBenchmarkId {
    /// The full textual id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// One measured benchmark outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Throughput in MiB/s, when [`Throughput::Bytes`] was declared.
    pub fn mib_per_s(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(b)) => {
                Some(b as f64 / (1u64 << 20) as f64 / (self.median_ns / 1e9))
            }
            _ => None,
        }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`.
    result: Option<(f64, f64)>, // (median ns/iter, mean ns/iter)
}

impl Bencher<'_> {
    /// Measures `routine`, called repeatedly in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating cost.
        let warmup = self.config.warmup;
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup {
            std_black_box(routine());
            iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / iters.max(1) as f64;

        // Aim for SAMPLES samples inside the measurement budget.
        const SAMPLES: usize = 10;
        let budget_ns = self.config.measure.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / SAMPLES as f64) / per_iter).ceil().max(1.0) as u64;

        let mut samples = [0f64; SAMPLES];
        for sample in &mut samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            *sample = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = (samples[SAMPLES / 2 - 1] + samples[SAMPLES / 2]) / 2.0;
        let mean = samples.iter().sum::<f64>() / SAMPLES as f64;
        self.result = Some((median, mean));
    }

    /// `iter` variant receiving the elapsed-time budget per call; provided
    /// for API compatibility, measured the same way.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine);
    }
}

#[derive(Clone, Debug)]
struct Config {
    warmup: Duration,
    measure: Duration,
}

impl Config {
    fn from_env() -> Self {
        let ms = |var: &str, default: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Config {
            warmup: Duration::from_millis(ms("CRITERION_WARMUP_MS", 150)),
            measure: Duration::from_millis(ms("CRITERION_MEASURE_MS", 600)),
        }
    }
}

/// The benchmark manager: entry point mirroring the real crate.
pub struct Criterion {
    config: Config,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: Config::from_env(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single ungrouped function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into_id(), None, f);
        self
    }

    /// Drains every result measured so far (used by bench targets that
    /// export JSON snapshots).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut b);
        let Some((median, mean)) = b.result else {
            eprintln!("warning: bench {id} never called Bencher::iter");
            return;
        };
        let result = BenchResult {
            id,
            median_ns: median,
            mean_ns: mean,
            throughput,
        };
        match result.mib_per_s() {
            Some(rate) => println!(
                "bench {:<48} {:>12.1} ns/iter {:>10.1} MiB/s",
                result.id, result.median_ns, rate
            ),
            None => println!("bench {:<48} {:>12.1} ns/iter", result.id, result.median_ns),
        }
        self.results.push(result);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored; accepted for compatibility with the real API.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored; accepted for compatibility with the real API.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let throughput = self.throughput;
        self.criterion.run_one(full, throughput, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "5");
        std::env::set_var("CRITERION_MEASURE_MS", "20");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("nop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].median_ns > 0.0);
        assert!(results[0].mib_per_s().unwrap() > 0.0);
    }
}
