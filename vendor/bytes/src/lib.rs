//! Offline stand-in for the `bytes` crate.
//!
//! The build sandbox for this repository has no access to crates.io, so the
//! workspace patches `bytes` to this minimal implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides exactly the
//! subset of the real API the workspace uses: a cheaply-cloneable,
//! reference-counted, sliceable byte container.
//!
//! Semantics match the real crate for that subset: `clone` and `slice` are
//! O(1) and share the underlying allocation; equality/ordering/hashing are
//! by byte content.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable and sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering to callers (this stand-in copies once into an `Arc`).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_arc(Arc::from(bytes))
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same allocation (O(1), no copy).
    ///
    /// # Panics
    /// Panics when the range is out of bounds, matching the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range out of bounds: {begin}..{end} of {len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_offsets() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn equality_by_content() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a, *b"abc");
    }
}
