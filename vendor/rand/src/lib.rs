//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build sandbox for this repository cannot reach crates.io, so the
//! workspace patches `rand` to this implementation (see `[patch.crates-io]`
//! in the root `Cargo.toml`). Only the surface the workspace uses is
//! provided:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (xoshiro256++
//!   seeded via SplitMix64, the same construction the real `rand` documents
//!   for seeding);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] (for `f64`/`bool`/unsigned integers) and
//!   [`Rng::random_range`] over integer `Range`/`RangeInclusive`;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is deterministic given the seed; there is no OS entropy in
//! the sandbox and none of the workspace's simulations want it.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be drawn uniformly from the full domain of a type.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64 - lo as i64) as u64;
                (lo as i64 + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value uniformly from the type's full domain
    /// (`[0, 1)` for `f64`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.random_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = StdRng::seed_from_u64(1);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
