//! A 16-round, 64-bit Feistel network — the DES-shaped stand-in.
//!
//! Same block geometry as DES (64-bit blocks, 16 rounds, per-round
//! subkeys), so the protocol-level consequences the paper discusses — the
//! `SIZE` field protecting 64-bit atomic units from being split by
//! fragmentation — are exercised faithfully. The round function is an
//! ARX-style mix, chosen for clarity; **this is not a vetted cipher**.

/// Cipher block size in bytes.
pub const BLOCK_BYTES: usize = 8;

/// Number of Feistel rounds.
const ROUNDS: usize = 16;

/// The Feistel block cipher with an expanded key schedule.
#[derive(Clone, Debug)]
pub struct Feistel64 {
    subkeys: [u32; ROUNDS],
}

impl Feistel64 {
    /// Expands a 128-bit key into 16 round subkeys (an xorshift-style
    /// sponge over the key words).
    pub fn new(key: [u64; 2]) -> Self {
        let mut state = key[0] ^ 0x9E37_79B9_7F4A_7C15;
        let mut subkeys = [0u32; ROUNDS];
        for (i, sk) in subkeys.iter_mut().enumerate() {
            state ^= key[i % 2];
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *sk = (state >> 16) as u32 ^ (state as u32).rotate_left(i as u32);
        }
        Feistel64 { subkeys }
    }

    /// The round function: key-dependent ARX mix of the right half.
    #[inline]
    fn round(r: u32, k: u32) -> u32 {
        let x = r.wrapping_add(k);
        let x = x.rotate_left(5) ^ x.rotate_right(11) ^ k;
        x.wrapping_mul(0x9E37_79B9).rotate_left(7)
    }

    /// Encrypts one 64-bit block.
    pub fn encrypt(&self, block: [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        let mut l = u32::from_be_bytes(block[..4].try_into().unwrap());
        let mut r = u32::from_be_bytes(block[4..].try_into().unwrap());
        for k in self.subkeys {
            let next_l = r;
            r = l ^ Self::round(r, k);
            l = next_l;
        }
        // Final swap-less output (standard Feistel: swap halves once more).
        let mut out = [0u8; BLOCK_BYTES];
        out[..4].copy_from_slice(&r.to_be_bytes());
        out[4..].copy_from_slice(&l.to_be_bytes());
        out
    }

    /// Decrypts one 64-bit block.
    pub fn decrypt(&self, block: [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        let mut r = u32::from_be_bytes(block[..4].try_into().unwrap());
        let mut l = u32::from_be_bytes(block[4..].try_into().unwrap());
        for k in self.subkeys.iter().rev() {
            let prev_r = l;
            l = r ^ Self::round(l, *k);
            r = prev_r;
        }
        let mut out = [0u8; BLOCK_BYTES];
        out[..4].copy_from_slice(&l.to_be_bytes());
        out[4..].copy_from_slice(&r.to_be_bytes());
        out
    }

    /// Encrypts a 64-bit integer (used for tweak derivation).
    pub fn encrypt_u64(&self, v: u64) -> u64 {
        u64::from_be_bytes(self.encrypt(v.to_be_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> Feistel64 {
        Feistel64::new([0x0011_2233_4455_6677, 0x8899_AABB_CCDD_EEFF])
    }

    #[test]
    fn roundtrip_various_blocks() {
        let c = cipher();
        for block in [
            [0u8; 8],
            [0xFF; 8],
            [1, 2, 3, 4, 5, 6, 7, 8],
            [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67],
        ] {
            assert_eq!(c.decrypt(c.encrypt(block)), block);
        }
    }

    #[test]
    fn different_keys_different_ciphertext() {
        let a = Feistel64::new([1, 2]);
        let b = Feistel64::new([1, 3]);
        let block = [7u8; 8];
        assert_ne!(a.encrypt(block), b.encrypt(block));
    }

    #[test]
    fn encryption_changes_the_block() {
        let c = cipher();
        let block = [0x42u8; 8];
        assert_ne!(c.encrypt(block), block);
    }

    #[test]
    fn avalanche_on_input_bit() {
        // Flipping one plaintext bit flips a substantial number of
        // ciphertext bits (sanity, not a security proof).
        let c = cipher();
        let a = c.encrypt([0u8; 8]);
        let mut flipped = [0u8; 8];
        flipped[7] = 1;
        let b = c.encrypt(flipped);
        let diff: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert!(diff >= 16, "avalanche too weak: {diff} bits");
    }

    #[test]
    fn encrypt_u64_matches_bytes() {
        let c = cipher();
        let v = 0x0102_0304_0506_0708u64;
        assert_eq!(
            c.encrypt_u64(v),
            u64::from_be_bytes(c.encrypt(v.to_be_bytes()))
        );
    }
}
