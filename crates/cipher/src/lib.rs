//! Block encryption that can be performed on **disordered data**.
//!
//! The paper's §1 observes that "there exist protocol operations that
//! provide the equivalent functionality of CRC error detection and DES
//! cipher block chaining encryption, but with the additional property that
//! they can be performed on disordered data" (citing FELD 92) — this is
//! what removes the last ordering constraint from the receive path and lets
//! Integrated Layer Processing fold decryption into the single per-arrival
//! pass.
//!
//! Classic CBC chains each block to its predecessor, so decryption of block
//! *i* needs ciphertext *i−1*: ordering is baked in. The replacement here is
//! a **position-keyed (tweaked) mode**: each 64-bit block is whitened by a
//! pad derived from its absolute element position before and after the
//! block cipher,
//!
//! ```text
//! C_i = E_K(P_i ⊕ T_i) ⊕ T_i        with   T_i = E_K(i)
//! ```
//!
//! so any block encrypts/decrypts *independently given its position* — the
//! same trick the WSC-2 code plays with its per-position weights. Chunk
//! labels supply the position (the element's `T.SN`), and the chunk `SIZE`
//! field guarantees fragmentation never splits a cipher block (§2's DES
//! example verbatim).
//!
//! The block cipher itself is a 16-round Feistel network — a stand-in for
//! DES with the same 64-bit block geometry. **It is a protocol-processing
//! model, not a vetted cipher; do not use it to protect real data.**

#![deny(missing_docs)]

pub mod feistel;
pub mod tweak;

pub use feistel::{Feistel64, BLOCK_BYTES};
pub use tweak::PositionCipher;

use chunks_core::chunk::Chunk;
use chunks_core::error::CoreError;

/// Encrypts a data chunk in place (element `k` of the chunk is block
/// `T.SN + k`). Requires `SIZE` to be the cipher block size so fragments
/// never split blocks.
pub fn encrypt_chunk(cipher: &PositionCipher, chunk: &Chunk) -> Result<Chunk, CoreError> {
    crypt_chunk(chunk, |pos, block| cipher.encrypt_block(pos, block))
}

/// Decrypts a data chunk in place — usable on any fragment, in any arrival
/// order, because each element carries its position in its labels.
pub fn decrypt_chunk(cipher: &PositionCipher, chunk: &Chunk) -> Result<Chunk, CoreError> {
    crypt_chunk(chunk, |pos, block| cipher.decrypt_block(pos, block))
}

fn crypt_chunk(
    chunk: &Chunk,
    mut f: impl FnMut(u64, [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES],
) -> Result<Chunk, CoreError> {
    if chunk.header.size as usize != BLOCK_BYTES {
        return Err(CoreError::ElementExceedsMtu {
            size: chunk.header.size,
            mtu: BLOCK_BYTES,
        });
    }
    let mut out = Vec::with_capacity(chunk.payload.len());
    for (k, block) in chunk.payload.chunks(BLOCK_BYTES).enumerate() {
        let pos = chunk.header.tpdu.sn as u64 + k as u64;
        let mut b = [0u8; BLOCK_BYTES];
        b.copy_from_slice(block);
        out.extend_from_slice(&f(pos, b));
    }
    Ok(Chunk {
        header: chunk.header,
        payload: out.into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::chunk::{Chunk, ChunkHeader};
    use chunks_core::frag::split;
    use chunks_core::label::FramingTuple;

    fn cipher() -> PositionCipher {
        PositionCipher::new([0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210])
    }

    fn block_chunk(t_sn: u32, blocks: u32) -> Chunk {
        let payload: Vec<u8> = (0..blocks * 8).map(|i| (i * 7 + 3) as u8).collect();
        Chunk::new(
            ChunkHeader::data(
                8,
                blocks,
                FramingTuple::new(1, 100 + t_sn, false),
                FramingTuple::new(2, t_sn, false),
                FramingTuple::new(3, t_sn, false),
            ),
            payload.into(),
        )
        .unwrap()
    }

    #[test]
    fn chunk_roundtrip() {
        let c = block_chunk(0, 8);
        let enc = encrypt_chunk(&cipher(), &c).unwrap();
        assert_ne!(enc.payload, c.payload);
        let dec = decrypt_chunk(&cipher(), &enc).unwrap();
        assert_eq!(dec, c);
    }

    #[test]
    fn fragments_decrypt_independently_in_any_order() {
        // Encrypt whole, fragment in the network, decrypt each fragment on
        // arrival — no waiting for predecessors (the anti-CBC property).
        let c = block_chunk(0, 8);
        let enc = encrypt_chunk(&cipher(), &c).unwrap();
        let (a, rest) = split(&enc, 3).unwrap();
        let (b, d) = split(&rest, 2).unwrap();
        // Decrypt tail first.
        let dec_d = decrypt_chunk(&cipher(), &d).unwrap();
        let dec_b = decrypt_chunk(&cipher(), &b).unwrap();
        let dec_a = decrypt_chunk(&cipher(), &a).unwrap();
        let merged =
            chunks_core::frag::merge(&chunks_core::frag::merge(&dec_a, &dec_b).unwrap(), &dec_d)
                .unwrap();
        assert_eq!(merged, c);
    }

    #[test]
    fn equal_plaintext_blocks_encrypt_differently() {
        // Position whitening defeats the ECB give-away.
        let payload = vec![0xAAu8; 32];
        let c = Chunk::new(
            ChunkHeader::data(
                8,
                4,
                FramingTuple::new(1, 0, false),
                FramingTuple::new(2, 0, false),
                FramingTuple::new(3, 0, false),
            ),
            payload.into(),
        )
        .unwrap();
        let enc = encrypt_chunk(&cipher(), &c).unwrap();
        let blocks: Vec<&[u8]> = enc.payload.chunks(8).collect();
        assert_ne!(blocks[0], blocks[1]);
        assert_ne!(blocks[1], blocks[2]);
    }

    #[test]
    fn wrong_size_rejected() {
        let c = chunks_core::chunk::byte_chunk(
            FramingTuple::new(1, 0, false),
            FramingTuple::new(2, 0, false),
            FramingTuple::new(3, 0, false),
            b"not blocks",
        );
        assert!(encrypt_chunk(&cipher(), &c).is_err());
    }

    #[test]
    fn position_matters() {
        // The same bytes at a different T.SN produce different ciphertext —
        // and decrypting at the wrong position yields garbage, which the
        // end-to-end error detection then catches.
        let c0 = block_chunk(0, 1);
        let mut c5 = block_chunk(5, 1);
        c5.payload = c0.payload.clone();
        let e0 = encrypt_chunk(&cipher(), &c0).unwrap();
        let e5 = encrypt_chunk(&cipher(), &c5).unwrap();
        assert_ne!(e0.payload, e5.payload);
        let mut wrong = e0.clone();
        wrong.header.tpdu.sn = 5;
        let garbage = decrypt_chunk(&cipher(), &wrong).unwrap();
        assert_ne!(garbage.payload, c0.payload);
    }
}
