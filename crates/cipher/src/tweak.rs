//! The position-keyed mode: CBC-equivalent protection, order-free.

use crate::feistel::{Feistel64, BLOCK_BYTES};

/// Encrypts/decrypts 64-bit blocks addressed by absolute position.
///
/// ```
/// use chunks_cipher::PositionCipher;
/// let c = PositionCipher::new([1, 2]);
/// let block = *b"8 bytes!";
/// let enc = c.encrypt_block(7, block);
/// assert_eq!(c.decrypt_block(7, enc), block);   // right position
/// assert_ne!(c.decrypt_block(8, enc), block);   // wrong position
/// ```
///
/// `C_i = E_K(P_i ⊕ T_i) ⊕ T_i` with tweak `T_i = E_K2(i)` (a second key
/// avoids tweak/ECB interactions). Like CBC, equal plaintext blocks at
/// different positions yield unrelated ciphertext; unlike CBC, block *i*
/// needs nothing but its own bytes and its position — the property that
/// lets a chunk receiver decrypt fragments as they arrive (§1).
#[derive(Clone, Debug)]
pub struct PositionCipher {
    data: Feistel64,
    tweak: Feistel64,
}

impl PositionCipher {
    /// Creates a cipher from a 128-bit key (the tweak key is derived).
    pub fn new(key: [u64; 2]) -> Self {
        PositionCipher {
            data: Feistel64::new(key),
            tweak: Feistel64::new([
                key[0] ^ 0xA5A5_A5A5_A5A5_A5A5,
                key[1] ^ 0x5A5A_5A5A_5A5A_5A5A,
            ]),
        }
    }

    #[inline]
    fn pad(&self, position: u64) -> [u8; BLOCK_BYTES] {
        self.tweak.encrypt_u64(position).to_be_bytes()
    }

    /// Encrypts the block at `position`.
    pub fn encrypt_block(&self, position: u64, mut block: [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        let t = self.pad(position);
        for (b, t) in block.iter_mut().zip(&t) {
            *b ^= t;
        }
        let mut out = self.data.encrypt(block);
        for (b, t) in out.iter_mut().zip(&t) {
            *b ^= t;
        }
        out
    }

    /// Decrypts the block at `position`.
    pub fn decrypt_block(&self, position: u64, mut block: [u8; BLOCK_BYTES]) -> [u8; BLOCK_BYTES] {
        let t = self.pad(position);
        for (b, t) in block.iter_mut().zip(&t) {
            *b ^= t;
        }
        let mut out = self.data.decrypt(block);
        for (b, t) in out.iter_mut().zip(&t) {
            *b ^= t;
        }
        out
    }

    /// Encrypts a whole buffer of consecutive blocks starting at
    /// `first_position`. The buffer length must be a block multiple.
    pub fn encrypt_buffer(&self, first_position: u64, data: &mut [u8]) {
        assert_eq!(data.len() % BLOCK_BYTES, 0, "whole blocks only");
        for (k, block) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let mut b = [0u8; BLOCK_BYTES];
            b.copy_from_slice(block);
            block.copy_from_slice(&self.encrypt_block(first_position + k as u64, b));
        }
    }

    /// Decrypts a whole buffer of consecutive blocks.
    pub fn decrypt_buffer(&self, first_position: u64, data: &mut [u8]) {
        assert_eq!(data.len() % BLOCK_BYTES, 0, "whole blocks only");
        for (k, block) in data.chunks_mut(BLOCK_BYTES).enumerate() {
            let mut b = [0u8; BLOCK_BYTES];
            b.copy_from_slice(block);
            block.copy_from_slice(&self.decrypt_block(first_position + k as u64, b));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> PositionCipher {
        PositionCipher::new([42, 1337])
    }

    #[test]
    fn block_roundtrip_at_positions() {
        let c = cipher();
        let block = *b"deadbeef";
        for pos in [0u64, 1, 7, 1 << 40] {
            assert_eq!(c.decrypt_block(pos, c.encrypt_block(pos, block)), block);
        }
    }

    #[test]
    fn position_binds_ciphertext() {
        let c = cipher();
        let block = *b"sameblok";
        assert_ne!(c.encrypt_block(0, block), c.encrypt_block(1, block));
        // Decrypting at the wrong position fails to recover the plaintext.
        let enc = c.encrypt_block(3, block);
        assert_ne!(c.decrypt_block(4, enc), block);
    }

    #[test]
    fn buffer_matches_blockwise() {
        let c = cipher();
        let mut buf: Vec<u8> = (0..64).collect();
        let original = buf.clone();
        c.encrypt_buffer(10, &mut buf);
        // Decrypt block 3 alone (positions 10..18: block 3 is position 13).
        let mut third = [0u8; 8];
        third.copy_from_slice(&buf[24..32]);
        assert_eq!(c.decrypt_block(13, third), original[24..32]);
        c.decrypt_buffer(10, &mut buf);
        assert_eq!(buf, original);
    }

    #[test]
    fn disordered_decryption_equals_inorder() {
        let c = cipher();
        let mut buf: Vec<u8> = (0..128).map(|i| (i * 3) as u8).collect();
        let original = buf.clone();
        c.encrypt_buffer(0, &mut buf);
        // Decrypt blocks in reverse order, independently.
        let mut out = vec![0u8; buf.len()];
        for k in (0..buf.len() / 8).rev() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[k * 8..k * 8 + 8]);
            out[k * 8..k * 8 + 8].copy_from_slice(&c.decrypt_block(k as u64, b));
        }
        assert_eq!(out, original);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn partial_block_rejected() {
        cipher().encrypt_buffer(0, &mut [0u8; 7]);
    }
}
