//! Property tests for the baseline protocol models.

use bytes::Bytes;
use chunks_baseline::aal::{to_cells, CellEvent, CellReassembler};
use chunks_baseline::aal4;
use chunks_baseline::hdlc::{decode_line, encode_line, HdlcEvent, HdlcFrame};
use chunks_baseline::ip::{fragment, IpPacket, IpReassembler, IP_HEADER_LEN};
use chunks_baseline::xtp::{decode_super, encode_super, segment_message, XTP_HEADER_LEN};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hdlc_roundtrip_arbitrary_frames(
        frames in proptest::collection::vec(
            (any::<u8>(), 0u8..8, any::<bool>(),
             proptest::collection::vec(any::<u8>(), 0..96)),
            0..6),
    ) {
        let frames: Vec<HdlcFrame> = frames
            .into_iter()
            .map(|(address, ns, pf, payload)| HdlcFrame { address, ns, pf, payload })
            .collect();
        let line = encode_line(&frames);
        let decoded: Vec<HdlcFrame> = decode_line(&line)
            .into_iter()
            .filter_map(|e| match e {
                HdlcEvent::Frame(f) => Some(f),
                _ => None,
            })
            .collect();
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn hdlc_decoder_never_panics(line in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_line(&line);
    }

    #[test]
    fn ip_fragment_reassemble_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
        mtu_extra in 8usize..256,
        seed in any::<u64>(),
    ) {
        let mtu = IP_HEADER_LEN + (mtu_extra / 8) * 8 + 8;
        let dg = IpPacket::datagram(1, Bytes::from(payload.clone()));
        let mut frags = fragment(&dg, mtu).unwrap();
        // Pseudo-shuffle.
        let n = frags.len();
        for i in 0..n {
            let j = (seed.wrapping_add(i as u64 * 2654435761) % n as u64) as usize;
            frags.swap(i, j);
        }
        let mut r = IpReassembler::new(1 << 22);
        let mut out = None;
        for f in frags {
            if let Some(d) = r.offer(f) {
                out = Some(d);
            }
        }
        prop_assert_eq!(out.unwrap().to_vec(), payload);
    }

    #[test]
    fn xtp_segments_and_super_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        room in 1usize..512,
    ) {
        let mtu = XTP_HEADER_LEN + room;
        let pdus = segment_message(0, &Bytes::from(payload.clone()), mtu).unwrap();
        let mut rebuilt = Vec::new();
        for p in &pdus {
            prop_assert!(p.wire_len() <= mtu);
            rebuilt.extend_from_slice(&p.payload);
        }
        prop_assert_eq!(&rebuilt, &payload);
        prop_assert_eq!(decode_super(&encode_super(&pdus)), Some(pdus));
    }

    #[test]
    fn aal5_roundtrip_in_order(payload in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let cells = to_cells(&payload);
        let mut r = CellReassembler::new();
        let mut got = None;
        for c in &cells {
            if let CellEvent::Frame(f) = r.push(c) {
                got = Some(f);
            }
        }
        prop_assert_eq!(got.unwrap(), payload);
    }

    #[test]
    fn aal4_roundtrip_and_interleave(
        a in proptest::collection::vec(any::<u8>(), 1..600),
        b in proptest::collection::vec(any::<u8>(), 1..600),
    ) {
        let ca = aal4::to_cells(1, &a);
        let cb = aal4::to_cells(2, &b);
        let mut r = aal4::Aal4Reassembler::new();
        let mut out = std::collections::HashMap::new();
        let (mut ia, mut ib) = (ca.iter(), cb.iter());
        loop {
            let mut any = false;
            for (mid, it) in [(1u16, &mut ia), (2, &mut ib)] {
                if let Some(c) = it.next() {
                    any = true;
                    if let aal4::Aal4Event::Frame(f) = r.push(c) {
                        out.insert(mid, f);
                    }
                }
            }
            if !any {
                break;
            }
        }
        prop_assert_eq!(out.remove(&1).unwrap(), a);
        prop_assert_eq!(out.remove(&2).unwrap(), b);
    }
}
