//! AAL5-style framing (Appendix B; Lyon's SEAL).
//!
//! "The type 5 ATM Adaptation Layer provides a single bit of higher-layer
//! framing information in the ATM cell header … No explicit ID, SN, or TYPE
//! fields are needed because ATM links do not misorder. Because no SN is
//! used … a cell is considered to contain the beginning of a frame if the
//! previous cell was the end of a frame."
//!
//! The model shows exactly what that buys and costs: framing overhead is a
//! single bit, but any loss or misordering silently corrupts frames until
//! the next boundary — caught only by the end-of-frame CRC.

use chunks_wsc::compare::Crc32;

/// ATM cell payload size in bytes.
pub const CELL_PAYLOAD: usize = 48;

/// Frame trailer: payload length (4) + CRC-32 (4), as in AAL5.
pub const TRAILER_LEN: usize = 8;

/// One cell: 48 payload bytes plus the end-of-frame bit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Cell payload (always 48 bytes; final cell zero-padded before the
    /// trailer).
    pub payload: [u8; CELL_PAYLOAD],
    /// End-of-frame indication (the PTI bit).
    pub eof: bool,
}

/// Segments a frame into cells, appending the AAL5 length+CRC trailer in
/// the final cell (padding as needed).
pub fn to_cells(frame: &[u8]) -> Vec<Cell> {
    let mut buf = frame.to_vec();
    // Pad so that payload + trailer is a whole number of cells.
    let content = buf.len() + TRAILER_LEN;
    let padded = content.div_ceil(CELL_PAYLOAD) * CELL_PAYLOAD;
    buf.resize(padded - TRAILER_LEN, 0);
    buf.extend_from_slice(&(frame.len() as u32).to_be_bytes());
    buf.extend_from_slice(&Crc32::of(frame).to_be_bytes());
    buf.chunks(CELL_PAYLOAD)
        .enumerate()
        .map(|(i, c)| {
            let mut payload = [0u8; CELL_PAYLOAD];
            payload.copy_from_slice(c);
            Cell {
                payload,
                eof: (i + 1) * CELL_PAYLOAD == padded,
            }
        })
        .collect()
}

/// Outcome of feeding a cell to the reassembler.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CellEvent {
    /// Cell absorbed; frame still open.
    Absorbed,
    /// A frame completed and its CRC checked out.
    Frame(Vec<u8>),
    /// A frame boundary arrived but the CRC or length failed — loss or
    /// misordering upstream corrupted it.
    BadFrame,
}

/// In-order cell reassembler. Has no sequence numbers to recover from
/// disorder — by design.
#[derive(Debug, Default)]
pub struct CellReassembler {
    current: Vec<u8>,
    /// Good frames delivered.
    pub frames: u64,
    /// Frames discarded on CRC/length failure.
    pub bad_frames: u64,
}

impl CellReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next cell *in arrival order*.
    pub fn push(&mut self, cell: &Cell) -> CellEvent {
        self.current.extend_from_slice(&cell.payload);
        if !cell.eof {
            return CellEvent::Absorbed;
        }
        let buf = std::mem::take(&mut self.current);
        if buf.len() < TRAILER_LEN {
            self.bad_frames += 1;
            return CellEvent::BadFrame;
        }
        let tail = buf.len() - TRAILER_LEN;
        let len = u32::from_be_bytes(buf[tail..tail + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(buf[tail + 4..].try_into().unwrap());
        if len > tail || Crc32::of(&buf[..len]) != crc {
            self.bad_frames += 1;
            return CellEvent::BadFrame;
        }
        self.frames += 1;
        CellEvent::Frame(buf[..len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7) as u8).collect()
    }

    #[test]
    fn cells_roundtrip_in_order() {
        for n in [1usize, 40, 48, 100, 500] {
            let f = frame(n);
            let cells = to_cells(&f);
            let mut r = CellReassembler::new();
            let mut got = None;
            for c in &cells {
                if let CellEvent::Frame(out) = r.push(c) {
                    got = Some(out);
                }
            }
            assert_eq!(got.unwrap(), f, "n = {n}");
        }
    }

    #[test]
    fn exactly_one_eof_per_frame() {
        let cells = to_cells(&frame(200));
        assert_eq!(cells.iter().filter(|c| c.eof).count(), 1);
        assert!(cells.last().unwrap().eof);
    }

    #[test]
    fn trailer_makes_whole_cells() {
        for n in [1usize, 39, 40, 41, 48, 96] {
            let cells = to_cells(&frame(n));
            assert_eq!(cells.len(), (n + TRAILER_LEN).div_ceil(CELL_PAYLOAD));
        }
    }

    #[test]
    fn lost_cell_corrupts_frame() {
        let f = frame(200);
        let mut cells = to_cells(&f);
        cells.remove(1); // lose one mid-frame cell
        let mut r = CellReassembler::new();
        let mut events = Vec::new();
        for c in &cells {
            events.push(r.push(c));
        }
        assert_eq!(*events.last().unwrap(), CellEvent::BadFrame);
        assert_eq!(r.bad_frames, 1);
    }

    #[test]
    fn misordered_cells_corrupt_frame() {
        // This is the Appendix B point: with no SNs, AAL5 cannot tolerate
        // the multipath-skew reordering that chunks shrug off.
        let f = frame(200);
        let mut cells = to_cells(&f);
        cells.swap(0, 1);
        let mut r = CellReassembler::new();
        let mut last = CellEvent::Absorbed;
        for c in &cells {
            last = r.push(c);
        }
        assert_eq!(last, CellEvent::BadFrame);
    }

    #[test]
    fn loss_of_eof_merges_frames_and_fails() {
        let f1 = frame(100);
        let f2: Vec<u8> = (0..60).map(|i| (i * 13 + 5) as u8).collect();
        let mut cells = to_cells(&f1);
        let eof_at = cells.len() - 1;
        cells.remove(eof_at); // lose the end-of-frame cell
        cells.extend(to_cells(&f2));
        let mut r = CellReassembler::new();
        let mut outcomes = Vec::new();
        for c in &cells {
            outcomes.push(r.push(c));
        }
        // The two frames fused into one bad frame.
        assert_eq!(
            outcomes
                .iter()
                .filter(|e| **e == CellEvent::BadFrame)
                .count(),
            1
        );
        assert_eq!(r.frames, 0);
    }

    #[test]
    fn back_to_back_frames_delimited_by_eof() {
        let f1 = frame(50);
        let f2 = frame(70);
        let mut r = CellReassembler::new();
        let mut delivered = Vec::new();
        for c in to_cells(&f1).iter().chain(to_cells(&f2).iter()) {
            if let CellEvent::Frame(out) = r.push(c) {
                delivered.push(out);
            }
        }
        assert_eq!(delivered, vec![f1, f2]);
    }
}
