//! XTP-style conversion of large PDUs into small PDUs (§3.2).
//!
//! "An alternative to fragmentation is to convert large PDUs into smaller
//! PDUs, as is done in XTP." The costs the paper calls out, all modelled:
//!
//! * full transport-header overhead in every packet;
//! * the conversion must happen at the transport, so the path MTU must be
//!   known end-to-end (Kent–Mogul MTU discovery) — in-network conversion
//!   would require every fragmenting entity to speak XTP;
//! * SUPER packets (several PDUs per packet) use a format *different from*
//!   the regular packet format, so parsers need two code paths — unlike
//!   chunks, which look identical whatever combining occurred.

use bytes::Bytes;

/// Modelled XTP transport header length per PDU (the XTP 3.5 fixed header).
pub const XTP_HEADER_LEN: usize = 40;

/// Extra envelope header a SUPER packet carries.
pub const SUPER_HEADER_LEN: usize = 8;

/// One transport PDU (post-conversion, sized to the path MTU).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct XtpPdu {
    /// Stream sequence number of the first payload byte.
    pub seq: u64,
    /// End-of-message flag.
    pub eom: bool,
    /// PDU payload.
    pub payload: Bytes,
}

impl XtpPdu {
    /// Wire length of a stand-alone PDU packet.
    pub fn wire_len(&self) -> usize {
        XTP_HEADER_LEN + self.payload.len()
    }

    /// Encodes a stand-alone (non-SUPER) packet: marker 0, seq, eom, len.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.push(0); // regular-format marker
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.push(self.eom as u8);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.resize(XTP_HEADER_LEN, 0); // remaining fixed-header fields
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a stand-alone packet.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < XTP_HEADER_LEN || buf[0] != 0 {
            return None;
        }
        let seq = u64::from_be_bytes(buf[1..9].try_into().ok()?);
        let eom = buf[9] != 0;
        let len = u32::from_be_bytes(buf[10..14].try_into().ok()?) as usize;
        if buf.len() != XTP_HEADER_LEN + len {
            return None;
        }
        Some(XtpPdu {
            seq,
            eom,
            payload: Bytes::copy_from_slice(&buf[XTP_HEADER_LEN..]),
        })
    }
}

/// Converts a message into MTU-sized PDUs — the sender-side MTU-matching
/// XTP relies on instead of network fragmentation.
pub fn segment_message(seq0: u64, message: &Bytes, path_mtu: usize) -> Option<Vec<XtpPdu>> {
    let room = path_mtu.checked_sub(XTP_HEADER_LEN)?;
    if room == 0 {
        return None;
    }
    let mut out = Vec::new();
    let total = message.len();
    let mut at = 0;
    while at < total {
        let take = room.min(total - at);
        out.push(XtpPdu {
            seq: seq0 + at as u64,
            eom: at + take == total,
            payload: message.slice(at..at + take),
        });
        at += take;
    }
    if out.is_empty() {
        out.push(XtpPdu {
            seq: seq0,
            eom: true,
            payload: Bytes::new(),
        });
    }
    Some(out)
}

/// Encodes several PDUs as a SUPER packet — *a different wire format* from
/// the regular packet (marker 1 + count + concatenated regular packets).
pub fn encode_super(pdus: &[XtpPdu]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(1); // SUPER-format marker
    out.extend_from_slice(&(pdus.len() as u32).to_be_bytes());
    out.resize(SUPER_HEADER_LEN, 0);
    for p in pdus {
        let enc = p.encode();
        out.extend_from_slice(&(enc.len() as u32).to_be_bytes());
        out.extend_from_slice(&enc);
    }
    out
}

/// Decodes a SUPER packet. A parser that only knows the regular format
/// cannot read this — the format-divergence cost §3.2 notes.
pub fn decode_super(buf: &[u8]) -> Option<Vec<XtpPdu>> {
    if buf.len() < SUPER_HEADER_LEN || buf[0] != 1 {
        return None;
    }
    let count = u32::from_be_bytes(buf[1..5].try_into().ok()?) as usize;
    // An attacker-controlled count must not drive allocation: each PDU needs
    // at least a length word plus a header, bounding the plausible count.
    if count > buf.len() / (4 + XTP_HEADER_LEN) + 1 {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    let mut at = SUPER_HEADER_LEN;
    for _ in 0..count {
        let len = u32::from_be_bytes(buf.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        out.push(XtpPdu::decode(buf.get(at..at + len)?)?);
        at += len;
    }
    (at == buf.len()).then_some(out)
}

/// Total header bytes XTP pays to move `message_len` bytes over a path of
/// `path_mtu` (every PDU carries a full transport header).
pub fn header_overhead(message_len: usize, path_mtu: usize) -> usize {
    let room = path_mtu.saturating_sub(XTP_HEADER_LEN).max(1);
    message_len.div_ceil(room) * XTP_HEADER_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> Bytes {
        (0..n).map(|i| i as u8).collect::<Vec<u8>>().into()
    }

    #[test]
    fn segmentation_sizes_to_mtu() {
        let pdus = segment_message(0, &msg(1000), XTP_HEADER_LEN + 400).unwrap();
        assert_eq!(pdus.len(), 3);
        assert!(pdus.iter().all(|p| p.wire_len() <= XTP_HEADER_LEN + 400));
        assert_eq!(pdus[0].seq, 0);
        assert_eq!(pdus[1].seq, 400);
        assert_eq!(pdus[2].seq, 800);
        assert!(!pdus[0].eom && !pdus[1].eom && pdus[2].eom);
    }

    #[test]
    fn segments_reconstruct_message() {
        let m = msg(1000);
        let pdus = segment_message(7, &m, 300).unwrap();
        let mut rebuilt = Vec::new();
        for p in &pdus {
            rebuilt.extend_from_slice(&p.payload);
        }
        assert_eq!(Bytes::from(rebuilt), m);
    }

    #[test]
    fn regular_roundtrip() {
        let p = XtpPdu {
            seq: 42,
            eom: true,
            payload: msg(100),
        };
        assert_eq!(XtpPdu::decode(&p.encode()), Some(p));
    }

    #[test]
    fn super_roundtrip_and_format_divergence() {
        let pdus = segment_message(0, &msg(300), XTP_HEADER_LEN + 100).unwrap();
        let sup = encode_super(&pdus);
        assert_eq!(decode_super(&sup), Some(pdus.clone()));
        // The regular parser cannot read a SUPER packet, and vice versa.
        assert_eq!(XtpPdu::decode(&sup), None);
        assert_eq!(decode_super(&pdus[0].encode()), None);
    }

    #[test]
    fn header_overhead_grows_with_shrinking_mtu() {
        let big = header_overhead(64 * 1024, 9000);
        let small = header_overhead(64 * 1024, 576);
        assert!(small > big);
        assert_eq!(header_overhead(100, 1000), XTP_HEADER_LEN);
    }

    #[test]
    fn empty_message_gets_one_pdu() {
        let pdus = segment_message(0, &Bytes::new(), 1000).unwrap();
        assert_eq!(pdus.len(), 1);
        assert!(pdus[0].eom);
    }

    #[test]
    fn mtu_too_small_fails() {
        assert!(segment_message(0, &msg(10), XTP_HEADER_LEN).is_none());
        assert!(segment_message(0, &msg(10), 10).is_none());
    }
}
