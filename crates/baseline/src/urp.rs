//! URP-style byte-stream framing (Appendix B; FRAS 89, Datakit).
//!
//! "URP delimits messages with a BOT marker (similar to X.ST) and delimits
//! blocks (TPDUs) with a BOT marker or BOTM marker (similar to T.ST). The
//! error detection code is found by its position in the frame; thus TYPE,
//! T.ID, and T.SN are implicit … LEN also is implicit."
//!
//! The model: control codes live *in the byte stream* (with an escape for
//! transparency), blocks carry a 3-bit-equivalent `C.SN` and a trailing
//! checksum, and the receiver must scan every byte — the flags-in-data cost
//! chunks trade away for explicit headers.

use chunks_wsc::compare::crc16_x25;

/// Beginning-of-transmission marker: ends a block.
pub const BOT: u8 = 0x01;
/// Block marker that also ends a message (the `X.ST` analogue).
pub const BOTM: u8 = 0x02;
/// Escape for transparency: a control byte in data is prefixed with ESC.
pub const ESC: u8 = 0x10;

/// A decoded URP block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UrpBlock {
    /// Block sequence number (wraps mod 8, as in URP's window).
    pub seq: u8,
    /// True when this block ends a message.
    pub eom: bool,
    /// Block payload.
    pub payload: Vec<u8>,
}

/// Encodes blocks onto a byte stream.
pub fn encode_stream(blocks: &[UrpBlock]) -> Vec<u8> {
    let mut out = Vec::new();
    for b in blocks {
        // Body: seq byte + payload, escaped; then FCS (escaped); then the
        // terminating marker.
        let mut body = vec![b.seq & 0x7];
        body.extend_from_slice(&b.payload);
        let fcs = crc16_x25(&body);
        body.extend_from_slice(&fcs.to_le_bytes());
        for &byte in &body {
            if byte == BOT || byte == BOTM || byte == ESC {
                out.push(ESC);
            }
            out.push(byte);
        }
        out.push(if b.eom { BOTM } else { BOT });
    }
    out
}

/// Decode outcome per block candidate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum UrpEvent {
    /// A block with a valid trailer checksum.
    Block(UrpBlock),
    /// A candidate whose checksum failed (corruption, or a marker byte
    /// destroyed by the channel fusing two blocks).
    BadBlock,
}

/// Decodes a byte stream, scanning for markers and honouring escapes —
/// the per-byte parse Appendix B contrasts with chunk headers.
pub fn decode_stream(stream: &[u8]) -> Vec<UrpEvent> {
    let mut events = Vec::new();
    let mut body: Vec<u8> = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        let byte = stream[i];
        i += 1;
        match byte {
            ESC => {
                if i < stream.len() {
                    body.push(stream[i]);
                    i += 1;
                }
            }
            BOT | BOTM => {
                events.push(finish_block(&body, byte == BOTM));
                body.clear();
            }
            other => body.push(other),
        }
    }
    // Trailing unterminated bytes are an incomplete block: dropped, as a
    // byte-stream receiver waits for its marker forever.
    events
}

fn finish_block(body: &[u8], eom: bool) -> UrpEvent {
    if body.len() < 3 {
        return UrpEvent::BadBlock;
    }
    let n = body.len();
    let fcs = u16::from_le_bytes([body[n - 2], body[n - 1]]);
    if crc16_x25(&body[..n - 2]) != fcs {
        return UrpEvent::BadBlock;
    }
    UrpEvent::Block(UrpBlock {
        seq: body[0] & 0x7,
        eom,
        payload: body[1..n - 2].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(seq: u8, eom: bool, payload: &[u8]) -> UrpBlock {
        UrpBlock {
            seq,
            eom,
            payload: payload.to_vec(),
        }
    }

    fn decode_blocks(stream: &[u8]) -> Vec<UrpBlock> {
        decode_stream(stream)
            .into_iter()
            .filter_map(|e| match e {
                UrpEvent::Block(b) => Some(b),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn roundtrip_blocks_and_messages() {
        let blocks = vec![
            block(0, false, b"first block"),
            block(1, true, b"end of message"),
            block(2, false, b""),
        ];
        let stream = encode_stream(&blocks);
        assert_eq!(decode_blocks(&stream), blocks);
    }

    #[test]
    fn control_bytes_in_payload_are_escaped() {
        let nasty = vec![BOT, BOTM, ESC, BOT, 0x41, ESC, ESC];
        let blocks = vec![block(3, true, &nasty)];
        let stream = encode_stream(&blocks);
        assert_eq!(decode_blocks(&stream), blocks);
    }

    #[test]
    fn lost_marker_fuses_blocks_and_fails_checksum() {
        let blocks = vec![block(0, false, b"aaaa"), block(1, false, b"bbbb")];
        let mut stream = encode_stream(&blocks);
        // Remove the first block's terminating BOT (it is unescaped).
        let bot_at = stream
            .iter()
            .enumerate()
            .position(|(k, &b)| b == BOT && (k == 0 || stream[k - 1] != ESC))
            .unwrap();
        stream.remove(bot_at);
        let events = decode_stream(&stream);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0], UrpEvent::BadBlock, "fused blocks fail the FCS");
    }

    #[test]
    fn corruption_detected_positionally() {
        let mut stream = encode_stream(&[block(5, false, b"some payload data")]);
        stream[4] ^= 0x20;
        let events = decode_stream(&stream);
        assert!(events.iter().all(|e| *e == UrpEvent::BadBlock));
    }

    #[test]
    fn decoder_never_panics_on_garbage() {
        for seed in 0..50u64 {
            let bytes: Vec<u8> = (0..97)
                .map(|i| ((seed.wrapping_mul(6364136223846793005) >> (i % 57)) & 0xFF) as u8)
                .collect();
            let _ = decode_stream(&bytes);
        }
        let _ = decode_stream(&[ESC]); // dangling escape
        let _ = decode_stream(&[BOT]);
    }
}
