//! Baseline fragmentation systems the paper compares chunks against
//! (§3.2 and Appendix B).
//!
//! * [`ip`] — classical IP-style fragmentation: a single `(ID, offset, MF)`
//!   framing level, never combined in the network, physically reassembled at
//!   the receiver *before* any processing. This is the system that exhibits
//!   two-step reassembly (fragments → TPDUs → stream) and reassembly-buffer
//!   lock-up.
//! * [`xtp`] — the XTP approach: avoid network fragmentation by converting
//!   large PDUs into MTU-sized PDUs at the transport, paying full transport
//!   header overhead per packet; SUPER packets combine several PDUs but use
//!   a format distinct from the regular one, so combiners must speak XTP.
//! * [`aal`] — AAL5-style framing: one stop bit per cell and *no* sequence
//!   numbers, so it only works on in-order channels; misordering corrupts
//!   frames (Appendix B).
//! * [`aal4`] — AAL4-style framing: a MID lets frames interleave and a
//!   4-bit SN detects single losses, but a wrap-aligned 16-cell burst slips
//!   past it (Appendix B).
//!
//! * [`hdlc`] — HDLC-style flag-delimited, bit-stuffed link framing with a
//!   CRC-16 FCS: all framing implicit in positions and flags, the
//!   parse-the-stream cost chunks avoid (Appendix B).
//!
//! * [`urp`] — URP-style BOT/BOTM marker framing in the byte stream, with
//!   escape transparency: another flags-in-data design (Appendix B).
//! * [`vmtp`] — VMTP-style per-packet error detection with transaction id /
//!   segOffset / EOM (Appendix B): misorder-tolerant like chunks, but the
//!   PDU *is* the packet, so no in-network refragmentation exists.
//!
//! * [`delta_t`] — Delta-t-style framing: disorder tolerated at the
//!   connection level (explicit C.SN), but B/E message symbols force a
//!   resequencing pass before frames can be delimited (Appendix B).
//!
//! Only Axon remains purely tabular (its framing structure is a strict
//! subset of chunks'); the full qualitative comparison is queryable data in
//! [`comparison`].

#![deny(missing_docs)]

pub mod aal;
pub mod aal4;
pub mod comparison;
pub mod delta_t;
pub mod hdlc;
pub mod ip;
pub mod urp;
pub mod vmtp;
pub mod xtp;
