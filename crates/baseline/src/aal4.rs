//! AAL type 4 framing (Appendix B; DEPR 91).
//!
//! "The type 4 AAL protocol uses a C.ID (MID), a 4-bit C.SN, and framing
//! information denoting the beginning, continuation, or end of message
//! (BOM, COM, EOM). EOM is equivalent to X.ST, and with BOM, the X.ID and
//! X.SN can be derived from the C.SN. No C.ST is used. LEN information is
//! explicit."
//!
//! Compared with AAL5 the MID lets frames from different sources interleave
//! on one channel; compared with chunks the 4-bit sequence number wraps
//! every 16 cells, so an aligned burst loss passes the SN check and is
//! caught only by the frame-length backstop — one of the implicit-framing
//! fragilities Appendix B tabulates.

use std::collections::HashMap;

/// Payload bytes per AAL4 cell (48 minus the 2+2 byte SAR overhead).
pub const CELL_PAYLOAD: usize = 44;

/// Segment type of a cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SegType {
    /// Beginning of message (carries the declared frame length).
    Bom,
    /// Continuation of message.
    Com,
    /// End of message.
    Eom,
    /// Single-segment message.
    Ssm,
}

/// One AAL4 SAR cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Aal4Cell {
    /// Multiplexing identifier (the `C.ID` analogue, 10 bits in hardware).
    pub mid: u16,
    /// 4-bit sequence number, wrapping modulo 16.
    pub sn: u8,
    /// Segment type.
    pub seg: SegType,
    /// Declared total frame length (meaningful in BOM/SSM cells).
    pub frame_len: u32,
    /// Payload bytes carried (≤ [`CELL_PAYLOAD`]).
    pub payload: Vec<u8>,
}

/// Segments a frame for `mid` into AAL4 cells with wrapping 4-bit SNs.
pub fn to_cells(mid: u16, frame: &[u8]) -> Vec<Aal4Cell> {
    let pieces: Vec<&[u8]> = frame.chunks(CELL_PAYLOAD).collect();
    let n = pieces.len().max(1);
    if n == 1 {
        return vec![Aal4Cell {
            mid,
            sn: 0,
            seg: SegType::Ssm,
            frame_len: frame.len() as u32,
            payload: frame.to_vec(),
        }];
    }
    pieces
        .iter()
        .enumerate()
        .map(|(i, p)| Aal4Cell {
            mid,
            sn: (i % 16) as u8,
            seg: if i == 0 {
                SegType::Bom
            } else if i == n - 1 {
                SegType::Eom
            } else {
                SegType::Com
            },
            frame_len: frame.len() as u32,
            payload: p.to_vec(),
        })
        .collect()
}

/// Outcome of feeding a cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Aal4Event {
    /// Cell absorbed into an open frame.
    Absorbed,
    /// A frame completed for this MID.
    Frame(Vec<u8>),
    /// Sequence-number discontinuity: the open frame is discarded.
    SnViolation,
    /// The frame ended with a length different from the BOM declaration —
    /// the backstop that catches 16-aligned burst loss.
    LengthMismatch,
    /// A COM/EOM arrived with no open frame (its BOM was lost).
    NoOpenFrame,
}

#[derive(Debug)]
struct OpenFrame {
    expect_sn: u8,
    declared_len: u32,
    buf: Vec<u8>,
}

/// Per-MID reassembler: frames from different MIDs interleave freely; cells
/// *within* a MID must stay in order.
#[derive(Debug, Default)]
pub struct Aal4Reassembler {
    open: HashMap<u16, OpenFrame>,
    /// Completed frames delivered.
    pub frames: u64,
    /// Frames discarded for any reason.
    pub discarded: u64,
}

impl Aal4Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next cell in arrival order.
    pub fn push(&mut self, cell: &Aal4Cell) -> Aal4Event {
        match cell.seg {
            SegType::Ssm => {
                self.frames += 1;
                Aal4Event::Frame(cell.payload.clone())
            }
            SegType::Bom => {
                // A BOM while a frame is open abandons the old frame.
                if self.open.remove(&cell.mid).is_some() {
                    self.discarded += 1;
                }
                self.open.insert(
                    cell.mid,
                    OpenFrame {
                        expect_sn: (cell.sn + 1) % 16,
                        declared_len: cell.frame_len,
                        buf: cell.payload.clone(),
                    },
                );
                Aal4Event::Absorbed
            }
            SegType::Com | SegType::Eom => {
                let Some(frame) = self.open.get_mut(&cell.mid) else {
                    self.discarded += 1;
                    return Aal4Event::NoOpenFrame;
                };
                if cell.sn != frame.expect_sn {
                    self.open.remove(&cell.mid);
                    self.discarded += 1;
                    return Aal4Event::SnViolation;
                }
                frame.expect_sn = (frame.expect_sn + 1) % 16;
                frame.buf.extend_from_slice(&cell.payload);
                if cell.seg == SegType::Com {
                    return Aal4Event::Absorbed;
                }
                let done = self.open.remove(&cell.mid).expect("open");
                if done.buf.len() as u32 != done.declared_len {
                    self.discarded += 1;
                    return Aal4Event::LengthMismatch;
                }
                self.frames += 1;
                Aal4Event::Frame(done.buf)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn roundtrip_single_and_multi_cell() {
        for n in [10usize, 44, 45, 200, 44 * 20] {
            let f = frame(n, 1);
            let mut r = Aal4Reassembler::new();
            let mut got = None;
            for c in to_cells(5, &f) {
                if let Aal4Event::Frame(out) = r.push(&c) {
                    got = Some(out);
                }
            }
            assert_eq!(got.unwrap(), f, "n = {n}");
        }
    }

    #[test]
    fn mids_interleave_freely() {
        // The AAL4 advantage over AAL5: two frames in flight at once.
        let fa = frame(200, 1);
        let fb = frame(150, 2);
        let ca = to_cells(1, &fa);
        let cb = to_cells(2, &fb);
        let mut r = Aal4Reassembler::new();
        let mut delivered = Vec::new();
        let mut ia = ca.iter();
        let mut ib = cb.iter();
        loop {
            let mut progressed = false;
            for it in [&mut ia, &mut ib] {
                if let Some(c) = it.next() {
                    progressed = true;
                    if let Aal4Event::Frame(f) = r.push(c) {
                        delivered.push(f);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(delivered, vec![fb.clone(), fa.clone()]);
        assert_eq!(r.frames, 2);
    }

    #[test]
    fn single_cell_loss_detected_by_sn() {
        let f = frame(300, 3);
        let mut cells = to_cells(7, &f);
        cells.remove(3);
        let mut r = Aal4Reassembler::new();
        let mut events = Vec::new();
        for c in &cells {
            events.push(r.push(c));
        }
        assert!(events.contains(&Aal4Event::SnViolation));
        assert_eq!(r.frames, 0);
    }

    #[test]
    fn sixteen_cell_burst_loss_slips_past_sn_check() {
        // The 4-bit SN wraps: losing exactly 16 consecutive COM cells keeps
        // the SN sequence consistent, and only the BOM-declared length
        // catches the damage at EOM — the Appendix B fragility.
        let f = frame(44 * 40, 4);
        let mut cells = to_cells(9, &f);
        cells.drain(5..21); // 16 consecutive continuations
        let mut r = Aal4Reassembler::new();
        let mut events = Vec::new();
        for c in &cells {
            events.push(r.push(c));
        }
        assert!(
            !events.contains(&Aal4Event::SnViolation),
            "SN check is blind to the wrap-aligned burst"
        );
        assert!(events.contains(&Aal4Event::LengthMismatch));
        assert_eq!(r.frames, 0);
    }

    #[test]
    fn lost_bom_reported() {
        let f = frame(200, 5);
        let cells = to_cells(3, &f);
        let mut r = Aal4Reassembler::new();
        assert_eq!(r.push(&cells[1]), Aal4Event::NoOpenFrame);
    }

    #[test]
    fn new_bom_abandons_stale_frame() {
        let f1 = frame(200, 6);
        let f2 = frame(90, 7);
        let c1 = to_cells(4, &f1);
        let c2 = to_cells(4, &f2);
        let mut r = Aal4Reassembler::new();
        r.push(&c1[0]); // BOM of frame 1, rest lost
        let mut out = None;
        for c in &c2 {
            if let Aal4Event::Frame(f) = r.push(c) {
                out = Some(f);
            }
        }
        assert_eq!(out.unwrap(), f2);
        assert_eq!(r.discarded, 1);
    }
}
