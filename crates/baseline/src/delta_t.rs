//! Delta-t-style framing (Appendix B; WATS 83).
//!
//! "The Delta-t protocol has a C.ID and C.SN, with the C.SN large enough to
//! allow reordering of disordered data. Within the data stream, Delta-t
//! provides symbols that mark the beginning and end of a higher-level frame
//! (the B and E symbols). The E symbol is equivalent to the X.ST, and the
//! X.ID and X.SN can be derived from the B symbol and C.SN."
//!
//! The split personality Appendix B highlights: the *connection* level
//! tolerates misordering (explicit C.SN → resequencing works), but the
//! *message* level does not — B/E symbols are positions in the byte stream,
//! so messages can only be delimited after the stream is back in order.
//! Chunks carry the message framing explicitly and need no such pass.

/// Begin-of-frame symbol embedded in the stream.
pub const B_SYM: u8 = 0x02;
/// End-of-frame symbol embedded in the stream.
pub const E_SYM: u8 = 0x03;
/// Transparency escape.
pub const DLE: u8 = 0x10;

/// A Delta-t packet: explicit connection sequencing over an opaque slice of
/// the symbol stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeltaTPacket {
    /// Connection identifier.
    pub conn: u32,
    /// Byte offset of this packet's slice within the connection stream.
    pub c_sn: u32,
    /// Stream bytes (symbols already escaped by the sender).
    pub stream: Vec<u8>,
}

/// Encodes messages into the symbol stream: `B <escaped bytes> E` per
/// message.
pub fn encode_messages(messages: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for m in messages {
        out.push(B_SYM);
        for &b in m {
            if b == B_SYM || b == E_SYM || b == DLE {
                out.push(DLE);
            }
            out.push(b);
        }
        out.push(E_SYM);
    }
    out
}

/// Splits a symbol stream into packets of at most `mtu` stream bytes.
pub fn packetize(conn: u32, stream: &[u8], mtu: usize) -> Vec<DeltaTPacket> {
    stream
        .chunks(mtu.max(1))
        .enumerate()
        .map(|(i, s)| DeltaTPacket {
            conn,
            c_sn: (i * mtu.max(1)) as u32,
            stream: s.to_vec(),
        })
        .collect()
}

/// The Delta-t receiver: resequences packets by `C.SN` (disorder tolerated
/// at this level), then parses B/E symbols out of the *in-order* stream —
/// the second pass chunks make unnecessary.
#[derive(Debug, Default)]
pub struct DeltaTReceiver {
    /// Out-of-order slices waiting for their turn.
    pending: std::collections::BTreeMap<u32, Vec<u8>>,
    next_sn: u32,
    /// Parser state: current message, if a B has been seen.
    current: Option<Vec<u8>>,
    escaped: bool,
    /// Bytes held in the resequencing buffer right now.
    pub resequence_buffered: usize,
    /// High-water mark of the resequencing buffer.
    pub peak_resequence_buffered: usize,
    /// Completed messages.
    pub messages: Vec<Vec<u8>>,
    /// Bytes discarded outside any frame (after loss, until the next B).
    pub discarded: u64,
}

impl DeltaTReceiver {
    /// Creates a receiver expecting the stream to start at `C.SN = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a packet; in-order bytes are parsed immediately, the rest
    /// buffer until their predecessors arrive.
    pub fn offer(&mut self, p: DeltaTPacket) {
        self.pending.insert(p.c_sn, p.stream.clone());
        self.resequence_buffered += p.stream.len();
        self.peak_resequence_buffered = self.peak_resequence_buffered.max(self.resequence_buffered);
        // Drain the in-order prefix.
        while let Some(entry) = self.pending.first_entry() {
            if *entry.key() != self.next_sn {
                break;
            }
            let (sn, bytes) = self.pending.pop_first().expect("just seen");
            self.resequence_buffered -= bytes.len();
            self.next_sn = sn + bytes.len() as u32;
            self.parse(&bytes);
        }
    }

    fn parse(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if self.escaped {
                self.escaped = false;
                match &mut self.current {
                    Some(m) => m.push(b),
                    None => self.discarded += 1,
                }
                continue;
            }
            match b {
                DLE => self.escaped = true,
                B_SYM => self.current = Some(Vec::new()),
                E_SYM => {
                    if let Some(m) = self.current.take() {
                        self.messages.push(m);
                    }
                }
                data => match &mut self.current {
                    Some(m) => m.push(data),
                    None => self.discarded += 1,
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs() -> Vec<Vec<u8>> {
        vec![
            b"first message".to_vec(),
            vec![B_SYM, E_SYM, DLE, 0x41], // nasty: symbols inside data
            b"third".to_vec(),
        ]
    }

    #[test]
    fn in_order_roundtrip() {
        let stream = encode_messages(&msgs());
        let mut rx = DeltaTReceiver::new();
        for p in packetize(1, &stream, 7) {
            rx.offer(p);
        }
        assert_eq!(rx.messages, msgs());
        assert_eq!(rx.discarded, 0);
    }

    #[test]
    fn connection_level_disorder_is_resequenced() {
        let stream = encode_messages(&msgs());
        let mut packets = packetize(1, &stream, 5);
        packets.reverse();
        let mut rx = DeltaTReceiver::new();
        for p in packets {
            rx.offer(p);
        }
        assert_eq!(rx.messages, msgs());
        // But it cost a resequencing buffer of nearly the whole stream —
        // the pass chunks avoid.
        assert!(rx.peak_resequence_buffered >= stream.len() - 5);
    }

    #[test]
    fn loss_discards_until_next_frame_start() {
        let stream = encode_messages(&msgs());
        let packets = packetize(1, &stream, 5);
        let mut rx = DeltaTReceiver::new();
        // Drop the first packet: the receiver never reaches in-order state.
        for p in packets.into_iter().skip(1) {
            rx.offer(p);
        }
        assert!(rx.messages.is_empty(), "stream stalls without the head");
        assert!(rx.resequence_buffered > 0);
    }

    #[test]
    fn bytes_outside_frames_are_discarded() {
        let mut stream = vec![0x55, 0x66]; // garbage before any B
        stream.extend(encode_messages(&[b"ok".to_vec()]));
        let mut rx = DeltaTReceiver::new();
        for p in packetize(1, &stream, 4) {
            rx.offer(p);
        }
        assert_eq!(rx.messages, vec![b"ok".to_vec()]);
        assert_eq!(rx.discarded, 2);
    }

    #[test]
    fn empty_message_supported() {
        let stream = encode_messages(&[vec![]]);
        let mut rx = DeltaTReceiver::new();
        for p in packetize(1, &stream, 2) {
            rx.offer(p);
        }
        assert_eq!(rx.messages, vec![Vec::<u8>::new()]);
    }
}
