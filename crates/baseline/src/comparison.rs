//! The qualitative protocol-syntax comparison of Appendix B, reproduced as
//! a queryable table.
//!
//! For each protocol the paper asks which of the chunk header fields exist
//! explicitly, which are implicit (derivable from other fields or from
//! channel ordering), and which are absent. "Chunks provide the best of
//! both worlds because multiple chunks, each of which delimits a frame, can
//! be placed in a single packet" while keeping every field explicit.

/// How a protocol represents one piece of chunk-equivalent information.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldSupport {
    /// Carried as an explicit header field.
    Explicit,
    /// Derivable from other fields, position, or in-order delivery.
    Implicit,
    /// Not representable.
    Absent,
}

/// One row of the Appendix B comparison.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolRow {
    /// Protocol name.
    pub name: &'static str,
    /// `TYPE` field.
    pub ty: FieldSupport,
    /// Connection-level `(ID, SN, ST)`.
    pub c: [FieldSupport; 3],
    /// Transport-level `(ID, SN, ST)`.
    pub t: [FieldSupport; 3],
    /// External-level `(ID, SN, ST)`.
    pub x: [FieldSupport; 3],
    /// `LEN` information.
    pub len: FieldSupport,
    /// Whether the protocol tolerates misordered arrival at this framing.
    pub tolerates_misorder: bool,
}

use FieldSupport::{Absent, Explicit, Implicit};

/// The Appendix B table. Entries follow the paper's prose description of
/// each protocol. Executable models exist for every row except Delta-t and
/// Axon: see [`crate::ip`], [`crate::xtp`], [`crate::aal`], [`crate::aal4`],
/// [`crate::hdlc`] and [`crate::urp`], plus the chunk implementation itself
/// in `chunks-core`/`chunks-transport` and VMTP in [`crate::vmtp`].
pub const COMPARISON: &[ProtocolRow] = &[
    ProtocolRow {
        name: "Chunks",
        ty: Explicit,
        c: [Explicit, Explicit, Explicit],
        t: [Explicit, Explicit, Explicit],
        x: [Explicit, Explicit, Explicit],
        len: Explicit,
        tolerates_misorder: true,
    },
    ProtocolRow {
        name: "AAL5",
        ty: Implicit,
        c: [Implicit, Absent, Absent],
        t: [Absent, Absent, Explicit], // the single framing bit ~ T.ST
        x: [Absent, Absent, Absent],
        len: Explicit,
        tolerates_misorder: false,
    },
    ProtocolRow {
        name: "AAL4",
        ty: Implicit,
        c: [Explicit, Explicit, Absent], // MID + 4-bit SN
        t: [Absent, Absent, Absent],
        x: [Implicit, Implicit, Explicit], // BOM/COM/EOM; EOM ~ X.ST
        len: Explicit,
        tolerates_misorder: false,
    },
    ProtocolRow {
        name: "HDLC",
        ty: Implicit,
        c: [Explicit, Explicit, Implicit], // address, SN; disconnect ~ C.ST
        t: [Implicit, Implicit, Implicit], // flags delimit frames
        x: [Implicit, Implicit, Explicit], // P/F bit ~ X.ST
        len: Implicit,
        tolerates_misorder: false,
    },
    ProtocolRow {
        name: "URP",
        ty: Implicit,
        c: [Implicit, Explicit, Implicit],
        t: [Implicit, Implicit, Explicit], // BOT/BOTM markers
        x: [Implicit, Implicit, Explicit], // BOT marker
        len: Implicit,
        tolerates_misorder: false,
    },
    ProtocolRow {
        name: "IP",
        ty: Implicit,
        c: [Absent, Absent, Absent],
        t: [Explicit, Explicit, Explicit], // identification, offset, !MF
        x: [Absent, Absent, Absent],
        len: Explicit,
        tolerates_misorder: true,
    },
    ProtocolRow {
        name: "VMTP",
        ty: Implicit,
        c: [Absent, Absent, Absent],
        t: [Implicit, Implicit, Implicit], // per-packet error detection
        x: [Explicit, Explicit, Explicit], // transaction id, segOffset, EOM
        len: Implicit,
        tolerates_misorder: true,
    },
    ProtocolRow {
        name: "Axon",
        ty: Explicit,
        c: [Absent, Explicit, Explicit], // index + limit per level,
        t: [Absent, Explicit, Explicit], // but no per-level ID:
        x: [Absent, Explicit, Explicit], // frames hierarchically nested
        len: Implicit,
        tolerates_misorder: true,
    },
    ProtocolRow {
        name: "Delta-t",
        ty: Implicit,
        c: [Explicit, Explicit, Absent],
        t: [Implicit, Implicit, Implicit],
        x: [Implicit, Implicit, Explicit], // B/E symbols in the stream
        len: Implicit,
        tolerates_misorder: false, // reorder needed above connection level
    },
    ProtocolRow {
        name: "XTP",
        ty: Implicit,
        c: [Explicit, Explicit, Absent],
        t: [Implicit, Implicit, Implicit],
        x: [Implicit, Implicit, Explicit], // BTAG/ETAG fields
        len: Explicit,
        tolerates_misorder: false,
    },
];

impl ProtocolRow {
    /// Count of explicit fields — a proxy for how self-describing each
    /// packet is.
    pub fn explicit_count(&self) -> usize {
        let mut n = usize::from(self.ty == Explicit) + usize::from(self.len == Explicit);
        for lvl in [self.c, self.t, self.x] {
            n += lvl.iter().filter(|&&f| f == Explicit).count();
        }
        n
    }
}

/// Looks a protocol up by name (case-insensitive).
pub fn lookup(name: &str) -> Option<&'static ProtocolRow> {
    COMPARISON
        .iter()
        .find(|r| r.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_are_fully_explicit() {
        let chunks = lookup("chunks").unwrap();
        assert_eq!(chunks.explicit_count(), 11);
        assert!(chunks.tolerates_misorder);
    }

    #[test]
    fn chunks_strictly_dominate_on_explicitness() {
        let chunks = lookup("Chunks").unwrap().explicit_count();
        for row in COMPARISON.iter().filter(|r| r.name != "Chunks") {
            assert!(
                row.explicit_count() < chunks,
                "{} should carry less explicit framing than chunks",
                row.name
            );
        }
    }

    #[test]
    fn in_order_protocols_lack_sequence_numbers() {
        // Every protocol that cannot tolerate misorder leans on implicit
        // framing somewhere below the connection level.
        for row in COMPARISON.iter().filter(|r| !r.tolerates_misorder) {
            let has_explicit_t_sn = row.t[1] == FieldSupport::Explicit;
            assert!(
                !has_explicit_t_sn,
                "{} is in-order yet has an explicit T.SN?",
                row.name
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(lookup("aal5").is_some());
        assert!(lookup("XTP").is_some());
        assert!(lookup("nonesuch").is_none());
    }
}
