//! IP-style fragmentation (RFC 791 shape): `(ID, offset, MF)`.
//!
//! The contrast with chunks (§3.2): fragments carry only *one* level of
//! framing, identified relative to the original PDU, so "fragments must be
//! reassembled into PDUs at the receiver before they can be processed as
//! usual" — reassembly before processing implies buffering, two bus
//! crossings per byte, and exposure to reassembly-buffer lock-up. IP never
//! combines fragments in the network.

use bytes::Bytes;
use chunks_netsim::PacketTransform;
use std::collections::HashMap;

/// Modelled IP header size in bytes (an IPv4 header without options).
pub const IP_HEADER_LEN: usize = 20;

/// Fragment offsets are in 8-byte units, as in IPv4.
pub const OFFSET_UNIT: usize = 8;

/// A (possibly fragmented) IP packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IpPacket {
    /// PDU identification shared by all fragments of one datagram.
    pub id: u32,
    /// Byte offset of this fragment's payload within the datagram
    /// (a multiple of [`OFFSET_UNIT`] for non-final fragments).
    pub offset: u32,
    /// More-fragments flag (the paper's `T.ST` is its logical inverse).
    pub mf: bool,
    /// Fragment payload.
    pub payload: Bytes,
}

impl IpPacket {
    /// A whole, unfragmented datagram.
    pub fn datagram(id: u32, payload: Bytes) -> Self {
        IpPacket {
            id,
            offset: 0,
            mf: false,
            payload,
        }
    }

    /// Total wire length of this fragment.
    pub fn wire_len(&self) -> usize {
        IP_HEADER_LEN + self.payload.len()
    }

    /// Encodes to wire form: `id | offset | flags | pad` then payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.offset.to_be_bytes());
        out.push(self.mf as u8);
        out.extend_from_slice(&[0u8; IP_HEADER_LEN - 9]); // version/ttl/etc.
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes wire form.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < IP_HEADER_LEN {
            return None;
        }
        Some(IpPacket {
            id: u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
            offset: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            mf: buf[8] != 0,
            payload: Bytes::copy_from_slice(&buf[IP_HEADER_LEN..]),
        })
    }
}

/// Fragments a packet so each piece fits `mtu` bytes on the wire.
///
/// Offsets of non-final fragments stay multiples of [`OFFSET_UNIT`].
pub fn fragment(p: &IpPacket, mtu: usize) -> Option<Vec<IpPacket>> {
    if p.wire_len() <= mtu {
        return Some(vec![p.clone()]);
    }
    let room = (mtu.checked_sub(IP_HEADER_LEN)?) / OFFSET_UNIT * OFFSET_UNIT;
    if room == 0 {
        return None;
    }
    let mut out = Vec::new();
    let total = p.payload.len();
    let mut at = 0usize;
    while at < total {
        let take = room.min(total - at);
        let last = at + take == total;
        out.push(IpPacket {
            id: p.id,
            offset: p.offset + at as u32,
            mf: p.mf || !last,
            payload: p.payload.slice(at..at + take),
        });
        at += take;
    }
    Some(out)
}

/// An IP router: fragments onto a smaller egress MTU; never reassembles or
/// combines ("IP fragmentation never combines fragments in the network").
#[derive(Debug)]
pub struct IpRouter {
    /// Egress MTU in bytes.
    pub egress_mtu: usize,
    /// Fragments produced beyond the originals.
    pub splits: u64,
    /// Packets dropped as unfragmentable.
    pub drops: u64,
}

impl IpRouter {
    /// Creates a router for the given egress MTU.
    pub fn new(egress_mtu: usize) -> Self {
        IpRouter {
            egress_mtu,
            splits: 0,
            drops: 0,
        }
    }
}

impl PacketTransform for IpRouter {
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let Some(p) = IpPacket::decode(&frame) else {
            self.drops += 1;
            return Vec::new();
        };
        match fragment(&p, self.egress_mtu) {
            Some(frags) => {
                self.splits += frags.len().saturating_sub(1) as u64;
                frags.iter().map(IpPacket::encode).collect()
            }
            None => {
                self.drops += 1;
                Vec::new()
            }
        }
    }
}

/// Receiver-side datagram reassembly with a finite buffer.
///
/// Holds fragment payloads until a datagram is complete, then releases it
/// whole — the physical-reassembly step chunks avoid. Reports lock-up drops
/// when the buffer fills with incomplete datagrams.
#[derive(Debug)]
pub struct IpReassembler {
    capacity: u64,
    used: u64,
    pending: HashMap<u32, Datagram>,
    clock: u64,
    /// Fragments dropped because the buffer was full.
    pub lockup_drops: u64,
    /// Datagrams completed.
    pub completed: u64,
    /// Duplicate fragments rejected.
    pub duplicates: u64,
    /// Datagrams evicted by timeout.
    pub evicted: u64,
}

#[derive(Debug)]
struct Datagram {
    tracker: chunks_vreasm::PduTracker,
    /// Sparse payload store keyed by offset.
    pieces: Vec<(u32, Bytes)>,
    bytes: u64,
    born: u64,
}

impl IpReassembler {
    /// Creates a reassembler with `capacity` bytes of fragment storage.
    pub fn new(capacity: u64) -> Self {
        IpReassembler {
            capacity,
            used: 0,
            pending: HashMap::new(),
            clock: 0,
            lockup_drops: 0,
            completed: 0,
            duplicates: 0,
            evicted: 0,
        }
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Incomplete datagrams held.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Offers a fragment; returns the whole datagram payload when this
    /// fragment completes it.
    pub fn offer(&mut self, p: IpPacket) -> Option<Bytes> {
        use chunks_vreasm::TrackEvent;
        self.clock += 1;
        let born = self.clock;
        let len = p.payload.len() as u64;
        let entry = self.pending.entry(p.id).or_insert_with(|| Datagram {
            tracker: chunks_vreasm::PduTracker::new(),
            pieces: Vec::new(),
            bytes: 0,
            born,
        });
        let mut probe = entry.tracker.clone();
        match probe.offer(p.offset as u64, len, !p.mf) {
            TrackEvent::Accepted => {}
            TrackEvent::Duplicate => {
                self.duplicates += 1;
                return None;
            }
            TrackEvent::Inconsistent => return None,
        }
        if probe.is_complete() {
            let mut dg = self.pending.remove(&p.id).unwrap();
            self.used -= dg.bytes;
            self.completed += 1;
            dg.pieces.push((p.offset, p.payload));
            dg.pieces.sort_by_key(|&(o, _)| o);
            let mut whole = Vec::with_capacity((dg.bytes + len) as usize);
            for (_, piece) in dg.pieces {
                whole.extend_from_slice(&piece);
            }
            return Some(whole.into());
        }
        if self.used + len > self.capacity {
            if entry.bytes == 0 {
                self.pending.remove(&p.id);
            }
            self.lockup_drops += 1;
            return None;
        }
        entry.tracker = probe;
        entry.pieces.push((p.offset, p.payload));
        entry.bytes += len;
        self.used += len;
        None
    }

    /// Evicts the oldest incomplete datagram (fragment timeout).
    pub fn evict_oldest(&mut self) -> Option<u32> {
        let (&id, _) = self.pending.iter().min_by_key(|(_, d)| d.born)?;
        let dg = self.pending.remove(&id).unwrap();
        self.used -= dg.bytes;
        self.evicted += 1;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        (0..n).map(|i| i as u8).collect::<Vec<u8>>().into()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = IpPacket {
            id: 0xDEAD,
            offset: 64,
            mf: true,
            payload: payload(100),
        };
        assert_eq!(IpPacket::decode(&p.encode()), Some(p));
    }

    #[test]
    fn fragment_respects_mtu_and_offsets() {
        let p = IpPacket::datagram(7, payload(100));
        let frags = fragment(&p, IP_HEADER_LEN + 40).unwrap();
        assert_eq!(frags.len(), 3); // 40 + 40 + 20
        for f in &frags {
            assert!(f.wire_len() <= IP_HEADER_LEN + 40);
        }
        assert_eq!(frags[0].offset, 0);
        assert_eq!(frags[1].offset, 40);
        assert_eq!(frags[2].offset, 80);
        assert!(frags[0].mf && frags[1].mf && !frags[2].mf);
    }

    #[test]
    fn refragmentation_preserves_mf_of_non_final() {
        let p = IpPacket::datagram(7, payload(64));
        let first = fragment(&p, IP_HEADER_LEN + 32).unwrap();
        // Refragment the first (mf=true) fragment further.
        let again = fragment(&first[0], IP_HEADER_LEN + 16).unwrap();
        assert!(again.iter().all(|f| f.mf), "no piece may claim to be final");
    }

    #[test]
    fn unfragmentable_when_no_room() {
        let p = IpPacket::datagram(7, payload(100));
        assert!(fragment(&p, IP_HEADER_LEN + 7).is_none());
        assert!(fragment(&p, 4).is_none());
    }

    #[test]
    fn reassembler_out_of_order() {
        let p = IpPacket::datagram(1, payload(100));
        let mut frags = fragment(&p, IP_HEADER_LEN + 40).unwrap();
        frags.reverse();
        let mut r = IpReassembler::new(1 << 20);
        let mut done = None;
        for f in frags {
            if let Some(d) = r.offer(f) {
                done = Some(d);
            }
        }
        assert_eq!(done.unwrap(), payload(100));
        assert_eq!(r.used(), 0);
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn reassembler_rejects_duplicates() {
        let p = IpPacket::datagram(1, payload(80));
        let frags = fragment(&p, IP_HEADER_LEN + 40).unwrap();
        let mut r = IpReassembler::new(1 << 20);
        r.offer(frags[0].clone());
        r.offer(frags[0].clone());
        assert_eq!(r.duplicates, 1);
    }

    #[test]
    fn lockup_when_buffer_full_of_incomplete() {
        let mut r = IpReassembler::new(100);
        // Heads of three datagrams, no tails.
        for id in 0..3 {
            let head = IpPacket {
                id,
                offset: 0,
                mf: true,
                payload: payload(30),
            };
            assert!(r.offer(head).is_none());
        }
        let head4 = IpPacket {
            id: 99,
            offset: 0,
            mf: true,
            payload: payload(30),
        };
        assert!(r.offer(head4).is_none());
        assert_eq!(r.lockup_drops, 1);
        // Timeout eviction unblocks.
        assert_eq!(r.evict_oldest(), Some(0));
        assert_eq!(r.used(), 60);
    }

    #[test]
    fn router_fragments_and_never_combines() {
        let p = IpPacket::datagram(5, payload(100));
        let mut router = IpRouter::new(IP_HEADER_LEN + 48);
        let out = router.ingest(p.encode());
        assert_eq!(out.len(), 3);
        assert_eq!(router.splits, 2);
        // Feeding small fragments through a large-MTU router: they stay
        // separate (IP cannot combine).
        let mut wide = IpRouter::new(64 * 1024);
        let reout: Vec<_> = out.iter().flat_map(|f| wide.ingest(f.clone())).collect();
        assert_eq!(reout.len(), 3);
        assert_eq!(wide.splits, 0);
    }

    #[test]
    fn router_drops_garbage() {
        let mut router = IpRouter::new(1500);
        assert!(router.ingest(vec![1, 2, 3]).is_empty());
        assert_eq!(router.drops, 1);
    }
}
