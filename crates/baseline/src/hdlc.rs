//! HDLC-style link framing (Appendix B).
//!
//! "The basic HDLC frame is delimited by flags, and the error detection
//! code is found by its position in the frame; thus TYPE, T.ID, T.SN, and
//! T.ST are implicit. HDLC uses a C.ID (address field), C.SN (SN field) …
//! The P/F bit can be used as an X.ST bit … LEN also is implicit."
//!
//! This is a faithful bit-level model: frames are separated by the `0x7E`
//! flag, and **zero-bit stuffing** (a `0` inserted after five consecutive
//! `1`s) keeps flag patterns out of the payload — the framing-by-parsing
//! cost chunks avoid ("the advantage of using header fields is that we need
//! not parse the data stream for flags"). A CRC-16/X.25 FCS closes each
//! frame.

use chunks_wsc::compare::crc16_x25;

/// The frame delimiter.
pub const FLAG: u8 = 0x7E;

/// A decoded HDLC frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HdlcFrame {
    /// Address field — the `C.ID` analogue.
    pub address: u8,
    /// 3-bit send sequence number — the `C.SN` analogue (wraps mod 8).
    pub ns: u8,
    /// Poll/Final bit — usable as an `X.ST` analogue.
    pub pf: bool,
    /// Information field.
    pub payload: Vec<u8>,
}

/// A growable bit string (MSB-first within each byte).
#[derive(Debug, Default)]
struct BitVec {
    bits: Vec<bool>,
}

impl BitVec {
    fn push_byte_stuffed(&mut self, byte: u8, run: &mut u32) {
        for i in (0..8).rev() {
            let bit = (byte >> i) & 1 == 1;
            self.bits.push(bit);
            if bit {
                *run += 1;
                if *run == 5 {
                    // Zero-bit stuffing: break any run of five ones.
                    self.bits.push(false);
                    *run = 0;
                }
            } else {
                *run = 0;
            }
        }
    }

    fn push_flag(&mut self) {
        for i in (0..8).rev() {
            self.bits.push((FLAG >> i) & 1 == 1);
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        // Pad the tail with ones (idle line), which cannot form a flag.
        let mut bits = self.bits.clone();
        while !bits.len().is_multiple_of(8) {
            bits.push(true);
        }
        bits.chunks(8)
            .map(|b| b.iter().fold(0u8, |acc, &bit| (acc << 1) | bit as u8))
            .collect()
    }
}

/// Encodes frames onto a flag-delimited, bit-stuffed line.
pub fn encode_line(frames: &[HdlcFrame]) -> Vec<u8> {
    let mut line = BitVec::default();
    line.push_flag();
    for f in frames {
        let control = (f.ns & 0x7) << 1 | (f.pf as u8) << 4;
        let mut body = vec![f.address, control];
        body.extend_from_slice(&f.payload);
        let fcs = crc16_x25(&body);
        body.extend_from_slice(&fcs.to_le_bytes());
        let mut run = 0u32;
        for &b in &body {
            line.push_byte_stuffed(b, &mut run);
        }
        line.push_flag();
    }
    line.to_bytes()
}

/// Outcome per frame candidate on the line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HdlcEvent {
    /// A frame with a valid FCS.
    Frame(HdlcFrame),
    /// Bytes between flags failed the FCS (corruption, or a lost flag that
    /// fused two frames).
    BadFcs,
    /// A candidate too short to hold address+control+FCS (noise between
    /// flags is ignored, as HDLC receivers do).
    Runt,
}

/// Decodes a line: scans for flags bit by bit, removes stuffing, checks
/// each candidate's FCS. This *is* the "parse the data stream for flags"
/// work Appendix B contrasts with chunk headers.
pub fn decode_line(line: &[u8]) -> Vec<HdlcEvent> {
    let bits: Vec<bool> = line
        .iter()
        .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
        .collect();
    let mut events = Vec::new();
    let mut ones = 0u32;
    let mut frame_bits: Vec<bool> = Vec::new();
    let mut in_frame = false;
    let mut i = 0;
    while i < bits.len() {
        let bit = bits[i];
        i += 1;
        if bit {
            ones += 1;
            frame_bits.push(true);
            continue;
        }
        // A zero after six ones closes a flag (01111110): the last 7 bits
        // pushed (6 ones + nothing) plus this zero... reconstruct:
        if ones == 6 {
            // Remove the flag's seven already-pushed bits (0 + six 1s were
            // pushed as data; the leading 0 belongs to the previous byte
            // boundary handling below).
            for _ in 0..6 {
                frame_bits.pop();
            }
            if frame_bits.last() == Some(&false) {
                frame_bits.pop();
            }
            if in_frame {
                events.extend(finish_candidate(&frame_bits));
            }
            frame_bits.clear();
            in_frame = true;
        } else if ones == 5 {
            // Stuffed zero: drop it.
        } else {
            frame_bits.push(false);
        }
        ones = 0;
    }
    events
}

fn finish_candidate(bits: &[bool]) -> Option<HdlcEvent> {
    if bits.is_empty() {
        return None; // back-to-back flags
    }
    if !bits.len().is_multiple_of(8) || bits.len() / 8 < 4 {
        return Some(HdlcEvent::Runt);
    }
    let bytes: Vec<u8> = bits
        .chunks(8)
        .map(|b| b.iter().fold(0u8, |acc, &bit| (acc << 1) | bit as u8))
        .collect();
    let n = bytes.len();
    let fcs = u16::from_le_bytes([bytes[n - 2], bytes[n - 1]]);
    if crc16_x25(&bytes[..n - 2]) != fcs {
        return Some(HdlcEvent::BadFcs);
    }
    Some(HdlcEvent::Frame(HdlcFrame {
        address: bytes[0],
        ns: (bytes[1] >> 1) & 0x7,
        pf: bytes[1] & 0x10 != 0,
        payload: bytes[2..n - 2].to_vec(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(ns: u8, payload: &[u8]) -> HdlcFrame {
        HdlcFrame {
            address: 0xA3,
            ns,
            pf: ns == 7,
            payload: payload.to_vec(),
        }
    }

    fn decode_frames(line: &[u8]) -> Vec<HdlcFrame> {
        decode_line(line)
            .into_iter()
            .filter_map(|e| match e {
                HdlcEvent::Frame(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn roundtrip_simple_frames() {
        let frames = vec![frame(0, b"hello"), frame(1, b"world"), frame(2, b"")];
        let line = encode_line(&frames);
        assert_eq!(decode_frames(&line), frames);
    }

    #[test]
    fn payload_full_of_flag_bytes_survives_stuffing() {
        // The whole point of bit stuffing: 0x7E and 0xFF runs in the data
        // must not terminate the frame.
        let frames = vec![frame(3, &[0x7E; 32]), frame(4, &[0xFF; 32])];
        let line = encode_line(&frames);
        assert_eq!(decode_frames(&line), frames);
    }

    #[test]
    fn stuffed_line_never_contains_flag_inside_frame() {
        let line = encode_line(&[frame(1, &[0xFFu8; 64])]);
        // Between the first and last flag byte there must be no 0x7E at
        // *bit* level: count six-one runs.
        let bits: Vec<bool> = line
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect();
        let mut run = 0;
        let mut flags = 0;
        for b in bits {
            if b {
                run += 1;
                if run == 6 {
                    flags += 1;
                }
            } else {
                run = 0;
            }
        }
        assert_eq!(flags, 2, "exactly the opening and closing flag");
    }

    #[test]
    fn corruption_caught_by_fcs() {
        let mut line = encode_line(&[frame(5, b"payload bytes here")]);
        let mid = line.len() / 2;
        line[mid] ^= 0x08;
        let events = decode_line(&line);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, HdlcEvent::BadFcs | HdlcEvent::Runt)),
            "flip must not yield a valid frame: {events:?}"
        );
        assert!(decode_frames(&line).is_empty());
    }

    #[test]
    fn sequence_numbers_wrap_mod_8() {
        let frames: Vec<HdlcFrame> = (0..10).map(|i| frame(i % 8, &[i])).collect();
        let got = decode_frames(&encode_line(&frames));
        assert_eq!(got.len(), 10);
        assert_eq!(got[9].ns, 1, "3-bit SN wrapped");
    }

    #[test]
    fn empty_line_and_idle_bits() {
        assert!(decode_frames(&encode_line(&[])).is_empty());
        // Idle ones after the closing flag are ignored.
        let mut line = encode_line(&[frame(0, b"x")]);
        line.push(0xFF);
        assert_eq!(decode_frames(&line).len(), 1);
    }
}
