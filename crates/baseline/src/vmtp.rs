//! VMTP-style framing (Appendix B; CHER 86).
//!
//! "The VMTP protocol provides error detection per packet, so T.ID, T.SN,
//! T.ST, and TYPE information is implicit. VMTP also provides an X.ID
//! (transaction identifier), a X.SN (segOffset), and X.ST bit
//! (End-of-Message). LEN is implicit."
//!
//! Per-packet error detection means a packet is self-checking (misordering
//! tolerated, like chunks) — but because the transport PDU *is* the packet,
//! there is no in-network refragmentation: a VMTP segment that meets a
//! smaller MTU can only be dropped.

use chunks_wsc::compare::crc16_x25;

/// A VMTP segment (one packet).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VmtpSegment {
    /// Transaction identifier — the `X.ID` analogue.
    pub transaction: u32,
    /// Byte offset within the message — the `X.SN` analogue (segOffset).
    pub seg_offset: u32,
    /// End-of-Message — the `X.ST` analogue.
    pub eom: bool,
    /// Segment payload.
    pub payload: Vec<u8>,
}

/// Header length: transaction + offset + flags byte + checksum.
pub const VMTP_HEADER_LEN: usize = 4 + 4 + 1 + 2;

impl VmtpSegment {
    /// Encodes the segment with its per-packet checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(VMTP_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.transaction.to_be_bytes());
        out.extend_from_slice(&self.seg_offset.to_be_bytes());
        out.push(self.eom as u8);
        out.extend_from_slice(&self.payload);
        let fcs = crc16_x25(&out);
        out.extend_from_slice(&fcs.to_le_bytes());
        out
    }

    /// Decodes and checks a segment. `None` on truncation or checksum
    /// failure — per-packet detection, no cross-packet state needed.
    pub fn decode(buf: &[u8]) -> Option<VmtpSegment> {
        if buf.len() < VMTP_HEADER_LEN {
            return None;
        }
        let n = buf.len();
        let fcs = u16::from_le_bytes([buf[n - 2], buf[n - 1]]);
        if crc16_x25(&buf[..n - 2]) != fcs {
            return None;
        }
        Some(VmtpSegment {
            transaction: u32::from_be_bytes(buf[..4].try_into().ok()?),
            seg_offset: u32::from_be_bytes(buf[4..8].try_into().ok()?),
            eom: buf[8] != 0,
            payload: buf[9..n - 2].to_vec(),
        })
    }
}

/// Segments a message for one transaction.
pub fn segment_message(transaction: u32, message: &[u8], mtu: usize) -> Option<Vec<VmtpSegment>> {
    let room = mtu.checked_sub(VMTP_HEADER_LEN)?;
    if room == 0 {
        return None;
    }
    let mut out = Vec::new();
    let mut at = 0;
    while at < message.len() || out.is_empty() {
        let take = room.min(message.len() - at);
        out.push(VmtpSegment {
            transaction,
            seg_offset: at as u32,
            eom: at + take == message.len(),
            payload: message[at..at + take].to_vec(),
        });
        at += take;
        if message.is_empty() {
            break;
        }
    }
    Some(out)
}

/// In-progress message state: a byte tracker plus offset-keyed pieces.
type PartialMessage = (chunks_vreasm::PduTracker, Vec<(u32, Vec<u8>)>);

/// Message reassembly by transaction: segments may arrive in any order
/// (they are self-checking and self-locating), but an EOM fixes the length.
#[derive(Debug, Default)]
pub struct VmtpReassembler {
    messages: std::collections::HashMap<u32, PartialMessage>,
    /// Completed messages.
    pub completed: u64,
}

impl VmtpReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a segment; returns the whole message on completion.
    pub fn offer(&mut self, seg: VmtpSegment) -> Option<Vec<u8>> {
        use chunks_vreasm::TrackEvent;
        let entry = self.messages.entry(seg.transaction).or_default();
        let len = seg.payload.len().max(1) as u64;
        match entry.0.offer(seg.seg_offset as u64, len, seg.eom) {
            TrackEvent::Accepted => {}
            _ => return None,
        }
        entry.1.push((seg.seg_offset, seg.payload));
        if !entry.0.is_complete() {
            return None;
        }
        let (_, mut pieces) = self.messages.remove(&seg.transaction).unwrap();
        pieces.sort_by_key(|&(o, _)| o);
        let mut out = Vec::new();
        for (_, p) in pieces {
            out.extend_from_slice(&p);
        }
        self.completed += 1;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 3 + 1) as u8).collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = VmtpSegment {
            transaction: 0x7A,
            seg_offset: 128,
            eom: true,
            payload: msg(64),
        };
        assert_eq!(VmtpSegment::decode(&s.encode()), Some(s));
    }

    #[test]
    fn per_packet_detection_catches_corruption() {
        let s = VmtpSegment {
            transaction: 1,
            seg_offset: 0,
            eom: false,
            payload: msg(64),
        };
        let mut raw = s.encode();
        raw[20] ^= 0x4;
        assert_eq!(VmtpSegment::decode(&raw), None);
    }

    #[test]
    fn out_of_order_reassembly() {
        let m = msg(500);
        let mut segs = segment_message(9, &m, 128).unwrap();
        segs.reverse();
        let mut r = VmtpReassembler::new();
        let mut got = None;
        for s in segs {
            if let Some(whole) = r.offer(s) {
                got = Some(whole);
            }
        }
        assert_eq!(got.unwrap(), m);
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn transactions_interleave() {
        let a = msg(200);
        let b = msg(300);
        let sa = segment_message(1, &a, 100).unwrap();
        let sb = segment_message(2, &b, 100).unwrap();
        let mut r = VmtpReassembler::new();
        let mut done = Vec::new();
        for (x, y) in sa.iter().zip(sb.iter()) {
            if let Some(m) = r.offer(x.clone()) {
                done.push(m);
            }
            if let Some(m) = r.offer(y.clone()) {
                done.push(m);
            }
        }
        for s in sb.iter().skip(sa.len()) {
            if let Some(m) = r.offer(s.clone()) {
                done.push(m);
            }
        }
        assert!(done.contains(&a) && done.contains(&b));
    }

    #[test]
    fn mtu_too_small_refused() {
        assert!(segment_message(1, &msg(10), VMTP_HEADER_LEN).is_none());
    }
}
