//! Event-driven simulation of a multi-hop path.
//!
//! A [`Path`] is a linear chain of hops; each hop is a link (possibly a
//! multipath bundle) optionally preceded by a [`PacketTransform`] router.
//! Frames are injected at the head with timestamps and collected at the tail
//! with their arrival times — possibly out of order, which is the point.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use chunks_obs::ObsSink;

use crate::link::{Link, LinkConfig, LinkStats, MultipathLink, RouteChangeLink};
use crate::router::PacketTransform;

/// A link that is either a single wire or a skewed multipath bundle.
#[derive(Debug)]
pub enum AnyLink {
    /// One point-to-point link.
    Single(Box<Link>),
    /// A round-robin striped bundle.
    Multi(Box<MultipathLink>),
    /// A link whose route (and latency) changes mid-run.
    RouteChange(Box<RouteChangeLink>),
}

/// Pending event: `(arrival time, FIFO tiebreak, next hop index, frame)`.
type EventHeap = BinaryHeap<Reverse<(u64, u64, usize, Vec<u8>)>>;

impl AnyLink {
    fn transmit(&mut self, now: u64, frame: Vec<u8>) -> Vec<(u64, Vec<u8>)> {
        match self {
            AnyLink::Single(l) => l.transmit(now, frame),
            AnyLink::Multi(m) => m.transmit(now, frame),
            AnyLink::RouteChange(r) => r.transmit(now, frame),
        }
    }

    /// The link's (minimum) MTU.
    pub fn mtu(&self) -> usize {
        match self {
            AnyLink::Single(l) => l.cfg.mtu,
            AnyLink::Multi(m) => m.mtu(),
            AnyLink::RouteChange(_) => usize::MAX,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LinkStats {
        match self {
            AnyLink::Single(l) => l.stats,
            AnyLink::Multi(m) => m.stats(),
            AnyLink::RouteChange(r) => r.stats(),
        }
    }

    /// Attaches an observability sink to whichever link this is.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        match self {
            AnyLink::Single(l) => l.set_obs(sink),
            AnyLink::Multi(m) => m.set_obs(sink),
            AnyLink::RouteChange(r) => r.set_obs(sink),
        }
    }
}

/// One hop of a path: an optional router followed by a link.
pub struct Hop {
    /// Router applied to frames entering this hop (fragmentation point).
    pub router: Option<Box<dyn PacketTransform>>,
    /// The link the hop transmits on.
    pub link: AnyLink,
}

impl std::fmt::Debug for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hop")
            .field("router", &self.router.as_ref().map(|_| "<transform>"))
            .field("link", &self.link)
            .finish()
    }
}

/// A linear chain of hops.
#[derive(Debug, Default)]
pub struct Path {
    hops: Vec<Hop>,
}

/// Builder for [`Path`].
#[derive(Debug, Default)]
pub struct PathBuilder {
    hops: Vec<Hop>,
    seed: u64,
}

impl PathBuilder {
    /// Starts a path whose links draw faults from `seed`.
    pub fn new(seed: u64) -> Self {
        PathBuilder {
            hops: Vec::new(),
            seed,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.seed
    }

    /// Appends a plain link.
    pub fn link(mut self, cfg: LinkConfig) -> Self {
        let seed = self.next_seed();
        self.hops.push(Hop {
            router: None,
            link: AnyLink::Single(Box::new(Link::new(cfg, seed))),
        });
        self
    }

    /// Appends a router followed by a link.
    pub fn routed_link(mut self, router: Box<dyn PacketTransform>, cfg: LinkConfig) -> Self {
        let seed = self.next_seed();
        self.hops.push(Hop {
            router: Some(router),
            link: AnyLink::Single(Box::new(Link::new(cfg, seed))),
        });
        self
    }

    /// Appends a link whose route changes (old → new) at `switch_at_ns`.
    pub fn route_change(mut self, old: LinkConfig, new: LinkConfig, switch_at_ns: u64) -> Self {
        let seed = self.next_seed();
        self.hops.push(Hop {
            router: None,
            link: AnyLink::RouteChange(Box::new(RouteChangeLink::new(
                old,
                new,
                switch_at_ns,
                seed,
            ))),
        });
        self
    }

    /// Appends a multipath bundle of `n` sub-links skewed by `skew_ns`.
    pub fn multipath(mut self, n: usize, base: LinkConfig, skew_ns: u64) -> Self {
        let seed = self.next_seed();
        self.hops.push(Hop {
            router: None,
            link: AnyLink::Multi(Box::new(MultipathLink::skewed(n, base, skew_ns, seed))),
        });
        self
    }

    /// Finishes the path.
    pub fn build(self) -> Path {
        Path { hops: self.hops }
    }
}

/// Result of a path run.
#[derive(Debug)]
pub struct Delivery {
    /// Arrival time at the far end, in nanoseconds.
    pub time: u64,
    /// The delivered frame.
    pub frame: Vec<u8>,
}

impl Path {
    /// Access to the hops (for statistics).
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Attaches an observability sink to every hop of the path — links
    /// record `hop` transit spans, routers record fragmentation span links.
    /// With the default [`chunks_obs::NullSink`] this is a no-op.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        for hop in &mut self.hops {
            if let Some(r) = &mut hop.router {
                r.set_obs(Arc::clone(&sink));
            }
            hop.link.set_obs(Arc::clone(&sink));
        }
    }

    /// Drives every queued event through the remaining hops; deliveries at
    /// the far end land in `out` in arrival-time order (the heap pops
    /// nondecreasing times).
    fn pump(&mut self, heap: &mut EventHeap, seq: &mut u64, out: &mut Vec<Delivery>) {
        while let Some(Reverse((now, _, hop_idx, frame))) = heap.pop() {
            if hop_idx == self.hops.len() {
                out.push(Delivery { time: now, frame });
                continue;
            }
            let hop = &mut self.hops[hop_idx];
            let frames = match &mut hop.router {
                Some(r) => r.ingest_at(now, frame),
                None => vec![frame],
            };
            for f in frames {
                for (arrival, delivered) in hop.link.transmit(now, f) {
                    heap.push(Reverse((arrival, *seq, hop_idx + 1, delivered)));
                    *seq += 1;
                }
            }
        }
    }

    /// Transmits one frame injected at `now` through every hop, returning
    /// the far-end deliveries. Unlike [`run`](Self::run) this is
    /// incremental: callers interleave injections with their own clock (a
    /// closed-loop transfer with acks and retransmissions). Frames a router
    /// holds back for batching stay queued until [`flush`](Self::flush).
    pub fn transmit(&mut self, now: u64, frame: Vec<u8>) -> Vec<Delivery> {
        let mut heap: EventHeap = BinaryHeap::new();
        let mut seq = 0u64;
        heap.push(Reverse((now, seq, 0, frame)));
        seq += 1;
        let mut out = Vec::new();
        self.pump(&mut heap, &mut seq, &mut out);
        out
    }

    /// Drains router batching windows hop by hop at virtual time `now`;
    /// flushed frames traverse the remaining hops. Returns any resulting
    /// far-end deliveries sorted by arrival time.
    pub fn flush(&mut self, now: u64) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut seq = 0u64;
        for i in 0..self.hops.len() {
            let flushed = match &mut self.hops[i].router {
                Some(r) => r.flush_at(now),
                None => Vec::new(),
            };
            if flushed.is_empty() {
                continue;
            }
            let mut heap: EventHeap = BinaryHeap::new();
            for f in flushed {
                for (arrival, delivered) in self.hops[i].link.transmit(now, f) {
                    heap.push(Reverse((arrival, seq, i + 1, delivered)));
                    seq += 1;
                }
            }
            self.pump(&mut heap, &mut seq, &mut out);
        }
        out.sort_by_key(|d| d.time);
        out
    }

    /// Runs frames through the path; `inputs` are `(inject_time, frame)`
    /// pairs. Returns deliveries at the far end sorted by arrival time.
    pub fn run(&mut self, inputs: Vec<(u64, Vec<u8>)>) -> Vec<Delivery> {
        // Event = (time, seq, hop_index, frame); seq breaks ties FIFO.
        let mut heap: EventHeap = BinaryHeap::new();
        let mut seq = 0u64;
        for (t, f) in inputs {
            heap.push(Reverse((t, seq, 0, f)));
            seq += 1;
        }
        let mut out = Vec::new();
        self.pump(&mut heap, &mut seq, &mut out);
        // Drain router windows (reassembly policies) hop by hop: flushed
        // frames traverse the remaining hops at the max observed time.
        let flush_time = out.last().map(|d| d.time).unwrap_or(0);
        out.extend(self.flush(flush_time));
        out.sort_by_key(|d| d.time);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{ChunkRouter, RefragPolicy};
    use chunks_core::chunk::byte_chunk;
    use chunks_core::frag::ReassemblyPool;
    use chunks_core::label::FramingTuple;
    use chunks_core::packet::{pack, unpack, Packet};
    use chunks_core::wire::WIRE_HEADER_LEN;

    #[test]
    fn two_hop_latency_accumulates() {
        let mut p = PathBuilder::new(1)
            .link(LinkConfig::clean(1500, 1000, 0))
            .link(LinkConfig::clean(1500, 2000, 0))
            .build();
        let out = p.run(vec![(0, vec![1, 2, 3])]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].time, 3000);
        assert_eq!(out[0].frame, vec![1, 2, 3]);
    }

    #[test]
    fn multipath_reorders_across_path() {
        let base = LinkConfig::clean(1500, 1000, 0);
        let mut p = PathBuilder::new(1).multipath(2, base, 50_000).build();
        let inputs: Vec<(u64, Vec<u8>)> = (0..4u8).map(|i| (i as u64, vec![i])).collect();
        let out = p.run(inputs);
        let ids: Vec<u8> = out.iter().map(|d| d.frame[0]).collect();
        assert_eq!(ids, vec![0, 2, 1, 3]);
    }

    #[test]
    fn router_fragments_mid_path_and_receiver_reassembles() {
        // Big MTU, then a narrow hop: the router splits chunks; the
        // receiver's single-step reassembly recovers the original.
        let payload: Vec<u8> = (0..120).map(|i| i as u8).collect();
        let chunk = byte_chunk(
            FramingTuple::new(1, 0, false),
            FramingTuple::new(2, 0, true),
            FramingTuple::new(3, 0, false),
            &payload,
        );
        let packets = pack(vec![chunk.clone()], 9000).unwrap();
        let narrow = WIRE_HEADER_LEN + 50;
        let mut p = PathBuilder::new(2)
            .link(LinkConfig::clean(9000, 1000, 0))
            .routed_link(
                Box::new(ChunkRouter::new(narrow, RefragPolicy::Repack)),
                LinkConfig::clean(narrow, 1000, 0),
            )
            .build();
        let inputs = packets
            .into_iter()
            .map(|p| (0u64, p.bytes.to_vec()))
            .collect();
        let out = p.run(inputs);
        assert!(out.len() >= 2, "fragmented into several frames");
        let mut pool = ReassemblyPool::new();
        for d in out {
            for c in unpack(&Packet {
                bytes: d.frame.into(),
            })
            .unwrap()
            {
                pool.insert(c);
            }
        }
        assert_eq!(pool.take_complete().unwrap(), chunk);
    }

    #[test]
    fn lossy_path_drops_frames() {
        let mut p = PathBuilder::new(3)
            .link(LinkConfig::clean(1500, 0, 0).with_loss(0.5))
            .build();
        let inputs: Vec<(u64, Vec<u8>)> = (0..1000).map(|i| (i, vec![0u8; 10])).collect();
        let out = p.run(inputs);
        assert!(
            out.len() > 300 && out.len() < 700,
            "delivered {}",
            out.len()
        );
        assert_eq!(p.hops()[0].link.stats().lost, 1000 - out.len() as u64);
    }

    #[test]
    fn deliveries_sorted_by_time() {
        let base = LinkConfig::clean(1500, 100, 0).with_jitter(10_000);
        let mut p = PathBuilder::new(9).link(base).build();
        let inputs: Vec<(u64, Vec<u8>)> = (0..50).map(|i| (i * 10, vec![i as u8])).collect();
        let out = p.run(inputs);
        for w in out.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
}
