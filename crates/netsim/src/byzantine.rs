//! Adversarial in-network fault injection.
//!
//! The faults of [`crate::link`] are *oblivious* — loss, duplication and
//! corruption strike uniformly. A Byzantine middlebox is worse: it can
//! target exactly the chunks the protocol leans on. [`ByzantineRouter`]
//! models that adversary as a [`PacketTransform`]:
//!
//! * **selective ack drop** — acknowledgment control chunks vanish while
//!   data sails through, starving the sender of the feedback its reactive
//!   repair loop needs (the failure mode the RTO timer exists for);
//! * **ED duplication** — the 8-byte WSC-2 digest chunk is delivered twice,
//!   exercising receiver-side duplicate rejection of control chunks;
//! * **label flips** — a bit of a data chunk's `T.SN`, `C.ID` or `LEN`
//!   header field is flipped *on the wire*, after packing, producing
//!   exactly the Table-1 corruptions (misaddressing, misdelivery, length
//!   error) the paper's detection story is about;
//! * **overlap injection** — three attacks on the reassembly state machine
//!   itself: a data chunk duplicated at a *shifted offset* (its `C.SN` and
//!   `T.SN` advance together, so the copy lands inside its own TPDU group
//!   overlapping already-held positions with different bytes), an
//!   *overlapping rewrite* (identical labels, payload bits flipped — the
//!   classic fragment-overwrite evasion), and a *tiny-fragment flood*
//!   (bursts of single-element chunks, each opening a far-ahead group that
//!   never completes, to exhaust reassembly memory).
//!
//! All decisions come from a seeded [`StdRng`], so a soak run is exactly
//! reproducible from its seed. The overlap attacks draw from the RNG only
//! when their probability is non-zero, so enabling them does not perturb
//! the fault stream of a pre-existing configuration.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use chunks_core::label::ChunkType;
use chunks_core::packet::{pack, unpack, Packet};
use chunks_obs::{Event, Labels, ObsSink, SpanId, Stage};

use crate::link::MIN_REPACK_MTU;
use crate::router::PacketTransform;

/// Fault probabilities of a [`ByzantineRouter`] (each in `[0, 1]`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ByzantineConfig {
    /// Probability an Ack control chunk is silently deleted.
    pub ack_drop: f64,
    /// Probability an ErrorDetection chunk is delivered twice.
    pub ed_duplicate: f64,
    /// Probability a data chunk's `T.SN` field gets one bit flipped.
    pub flip_tsn: f64,
    /// Probability a data chunk's `C.ID` field gets one bit flipped.
    pub flip_cid: f64,
    /// Probability a data chunk's `LEN` field gets one bit flipped.
    pub flip_len: f64,
    /// Probability a data chunk is duplicated at a shifted offset: the
    /// copy's `C.SN`, `T.SN` and `X.SN` all advance by half the chunk's
    /// length, so it stays in its own TPDU group but overlaps the
    /// original's positions with different bytes.
    pub dup_shifted: f64,
    /// Probability a data chunk is re-sent with identical labels and every
    /// payload bit flipped — a full overlap whose bytes always differ.
    pub rewrite_overlap: f64,
    /// Probability a data chunk triggers a tiny-fragment flood burst.
    pub tiny_flood: f64,
    /// Single-element fragments per flood burst, each opening its own
    /// never-completing TPDU group.
    pub tiny_burst: u32,
    /// Connection-space element where the flood starts claiming groups
    /// (keep it inside the victim receiver's capacity).
    pub tiny_base: u32,
}

impl ByzantineConfig {
    /// An adversary that only deletes acks.
    pub fn ack_dropper(p: f64) -> Self {
        ByzantineConfig {
            ack_drop: p,
            ..Default::default()
        }
    }

    /// The shifted-duplicate overlap attack alone.
    pub fn shifted_duplicator(p: f64) -> Self {
        ByzantineConfig {
            dup_shifted: p,
            ..Default::default()
        }
    }

    /// The overlapping-rewrite attack alone.
    pub fn rewriter(p: f64) -> Self {
        ByzantineConfig {
            rewrite_overlap: p,
            ..Default::default()
        }
    }

    /// The tiny-fragment flood alone: each firing emits `burst`
    /// single-element fragments claiming groups from `base` upward.
    pub fn tiny_flooder(p: f64, burst: u32, base: u32) -> Self {
        ByzantineConfig {
            tiny_flood: p,
            tiny_burst: burst,
            tiny_base: base,
            ..Default::default()
        }
    }
}

/// Counters kept by a [`ByzantineRouter`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ByzantineStats {
    /// Ack chunks deleted.
    pub acks_dropped: u64,
    /// ED chunks duplicated.
    pub eds_duplicated: u64,
    /// `T.SN` fields flipped.
    pub tsn_flips: u64,
    /// `C.ID` fields flipped.
    pub cid_flips: u64,
    /// `LEN` fields flipped.
    pub len_flips: u64,
    /// Shifted-offset duplicates injected.
    pub shifted_dups: u64,
    /// Overlapping rewrites injected.
    pub rewrites: u64,
    /// Tiny fragments injected by flood bursts.
    pub tiny_fragments: u64,
    /// Frames that did not parse as chunk packets (passed through intact).
    pub unparsed: u64,
}

impl ByzantineStats {
    /// Total mutations of any kind.
    pub fn total(&self) -> u64 {
        self.acks_dropped
            + self.eds_duplicated
            + self.tsn_flips
            + self.cid_flips
            + self.len_flips
            + self.shifted_dups
            + self.rewrites
            + self.tiny_fragments
    }
}

/// A middlebox that mutates traffic adversarially (see module docs).
#[derive(Debug)]
pub struct ByzantineRouter {
    cfg: ByzantineConfig,
    rng: StdRng,
    /// Accumulated mutation counters.
    pub stats: ByzantineStats,
    obs: Arc<dyn ObsSink>,
    obs_on: bool,
    /// Virtual time of the frame being mutated (set by `ingest_at`).
    now: u64,
    /// Next connection-space element the tiny-fragment flood will claim
    /// (starts at `cfg.tiny_base`, strides by 2 so every fragment opens its
    /// own incomplete group).
    tiny_next: u32,
}

// Wire offsets inside a 32-byte chunk header (see `chunks_core::wire`).
const OFF_LEN: usize = 4;
const OFF_C_ID: usize = 8;
const OFF_T_SN: usize = 20;
const OFF_X_SN: usize = 28;
const HDR: usize = chunks_core::wire::WIRE_HEADER_LEN;

impl ByzantineRouter {
    /// Creates a router with a deterministic mutation stream.
    pub fn new(cfg: ByzantineConfig, seed: u64) -> Self {
        ByzantineRouter {
            tiny_next: cfg.tiny_base,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            stats: ByzantineStats::default(),
            obs: chunks_obs::null(),
            obs_on: false,
            now: 0,
        }
    }

    /// Records a label flip against the sink, reading the chunk's labels
    /// *before* the mutation lands so the event names the identity the
    /// sender gave the chunk. Never touches the fault RNG — attaching a
    /// sink cannot change which faults fire.
    fn note_mutation(&mut self, frame: &[u8], h: usize, field: &'static str) {
        if !self.obs_on {
            return;
        }
        let be32 = |at: usize| {
            u32::from_be_bytes([frame[at], frame[at + 1], frame[at + 2], frame[at + 3]])
        };
        let labels = Labels::new(be32(h + OFF_C_ID), be32(h + OFF_T_SN), be32(h + OFF_X_SN));
        self.obs
            .event(self.now, Event::ChunkMutated { labels, field });
        self.obs.counter("netsim.byzantine.mutations", 1);
        let id = SpanId::new(labels, Stage::Mutate);
        self.obs.span_open(self.now, id);
        self.obs.span_close(self.now, id);
    }

    /// The chunk-level overlap attacks: returns the injected chunks that
    /// should travel right behind `c`. Each attack draws from the RNG only
    /// when its probability is non-zero, so a configuration without overlap
    /// attacks keeps its exact historical fault stream.
    fn overlap_attacks(&mut self, c: &chunks_core::chunk::Chunk) -> Vec<chunks_core::chunk::Chunk> {
        let mut evil = Vec::new();
        if self.cfg.dup_shifted > 0.0 && self.rng.random::<f64>() < self.cfg.dup_shifted {
            // Advance C.SN, T.SN and X.SN together: the group key
            // (C.SN − T.SN) is unchanged, so the copy overlaps its own
            // group's held positions with bytes from the wrong offset.
            let shift = (c.header.len / 2).max(1);
            let mut dup = c.clone();
            dup.header.conn.sn = dup.header.conn.sn.wrapping_add(shift);
            dup.header.tpdu.sn = dup.header.tpdu.sn.wrapping_add(shift);
            dup.header.ext.sn = dup.header.ext.sn.wrapping_add(shift);
            self.stats.shifted_dups += 1;
            evil.push(dup);
        }
        if self.cfg.rewrite_overlap > 0.0 && self.rng.random::<f64>() < self.cfg.rewrite_overlap {
            // Same labels, complemented payload: a full overlap whose
            // bytes always differ from what the receiver holds.
            let mut dup = c.clone();
            let mut raw = dup.payload.to_vec();
            for b in &mut raw {
                *b = !*b;
            }
            dup.payload = raw.into();
            self.stats.rewrites += 1;
            evil.push(dup);
        }
        if self.cfg.tiny_flood > 0.0 && self.rng.random::<f64>() < self.cfg.tiny_flood {
            use chunks_core::chunk::{Chunk, ChunkHeader};
            use chunks_core::label::FramingTuple;
            for _ in 0..self.cfg.tiny_burst {
                let sn = self.tiny_next;
                // Stride 2: a one-element claim then a hole, so every
                // fragment opens its own group and none ever completes.
                self.tiny_next = self.tiny_next.wrapping_add(2);
                let header = ChunkHeader::data(
                    c.header.size,
                    1,
                    FramingTuple::new(c.header.conn.id, sn, false),
                    FramingTuple::new(c.header.tpdu.id, 0, false),
                    FramingTuple::new(c.header.ext.id, sn, false),
                );
                let payload = vec![0x5Au8; c.header.size as usize];
                if let Ok(frag) = Chunk::new(header, payload.into()) {
                    self.stats.tiny_fragments += 1;
                    evil.push(frag);
                }
            }
        }
        evil
    }

    /// Flips one random bit in the 4-byte field at `at` of `frame`.
    fn flip_field(&mut self, frame: &mut [u8], at: usize) {
        let byte = at + self.rng.random_range(0..4usize);
        let bit = 1u8 << self.rng.random_range(0..8);
        frame[byte] ^= bit;
    }

    /// Walks the packed frame and applies label flips to data chunk
    /// headers, *after* packing so the mutation reaches the wire exactly as
    /// a broken router would emit it. Offsets are collected before any
    /// mutation so a flipped `LEN` cannot derail the walk itself.
    fn flip_labels(&mut self, frame: &mut [u8]) {
        let mut data_headers = Vec::new();
        let mut off = 0;
        while off + HDR <= frame.len() {
            let ty = frame[off];
            let size = u16::from_be_bytes([frame[off + 2], frame[off + 3]]) as usize;
            let len = u32::from_be_bytes([
                frame[off + 4],
                frame[off + 5],
                frame[off + 6],
                frame[off + 7],
            ]) as usize;
            if len == 0 {
                break; // end-of-packet marker
            }
            if ty == ChunkType::Data.to_u8() {
                data_headers.push(off);
            }
            off += HDR + size * len;
        }
        for h in data_headers {
            if self.rng.random::<f64>() < self.cfg.flip_tsn {
                self.note_mutation(frame, h, "tsn");
                self.flip_field(frame, h + OFF_T_SN);
                self.stats.tsn_flips += 1;
            }
            if self.rng.random::<f64>() < self.cfg.flip_cid {
                self.note_mutation(frame, h, "cid");
                self.flip_field(frame, h + OFF_C_ID);
                self.stats.cid_flips += 1;
            }
            if self.rng.random::<f64>() < self.cfg.flip_len {
                self.note_mutation(frame, h, "len");
                self.flip_field(frame, h + OFF_LEN);
                self.stats.len_flips += 1;
            }
        }
    }
}

impl PacketTransform for ByzantineRouter {
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let mtu = frame.len().max(MIN_REPACK_MTU);
        let packet = Packet {
            bytes: frame.into(),
        };
        let Ok(chunks) = unpack(&packet) else {
            // Already mangled beyond chunk syntax: forward it untouched and
            // let the endpoint's decoder prove it copes.
            self.stats.unparsed += 1;
            return vec![packet.bytes.to_vec()];
        };
        let mut keep = Vec::with_capacity(chunks.len() + 1);
        for c in chunks {
            match c.header.ty {
                ChunkType::Ack if self.rng.random::<f64>() < self.cfg.ack_drop => {
                    self.stats.acks_dropped += 1;
                }
                ChunkType::ErrorDetection if self.rng.random::<f64>() < self.cfg.ed_duplicate => {
                    self.stats.eds_duplicated += 1;
                    keep.push(c.clone());
                    keep.push(c);
                }
                ChunkType::Data => {
                    let evil = self.overlap_attacks(&c);
                    keep.push(c);
                    keep.extend(evil);
                }
                _ => keep.push(c),
            }
        }
        if keep.is_empty() {
            return Vec::new();
        }
        let Ok(packets) = pack(keep, mtu) else {
            return Vec::new();
        };
        packets
            .into_iter()
            .map(|p| {
                let mut f = p.bytes.to_vec();
                self.flip_labels(&mut f);
                f
            })
            .collect()
    }

    fn ingest_at(&mut self, now: u64, frame: Vec<u8>) -> Vec<Vec<u8>> {
        self.now = now;
        self.ingest(frame)
    }

    fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.obs_on = sink.enabled();
        self.obs = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use chunks_core::chunk::{byte_chunk, Chunk, ChunkHeader};
    use chunks_core::label::FramingTuple;

    fn data_chunk(c_sn: u32, t_sn: u32, payload: &[u8]) -> Chunk {
        byte_chunk(
            FramingTuple::new(0xC1, c_sn, false),
            FramingTuple::new(0, t_sn, false),
            FramingTuple::new(0xF, c_sn, false),
            payload,
        )
    }

    fn ack_chunk() -> Chunk {
        Chunk::new(
            ChunkHeader::control(
                ChunkType::Ack,
                12,
                FramingTuple::new(0xC1, 0, false),
                FramingTuple::new(0, 0, false),
                FramingTuple::new(0, 0, false),
            ),
            Bytes::from(vec![0u8; 12]),
        )
        .unwrap()
    }

    fn ed_chunk() -> Chunk {
        Chunk::new(
            ChunkHeader::control(
                ChunkType::ErrorDetection,
                8,
                FramingTuple::new(0xC1, 0, false),
                FramingTuple::new(0, 0, false),
                FramingTuple::new(0, 0, false),
            ),
            Bytes::from(vec![7u8; 8]),
        )
        .unwrap()
    }

    fn one_frame(chunks: Vec<Chunk>) -> Vec<u8> {
        let packets = pack(chunks, 4096).unwrap();
        assert_eq!(packets.len(), 1);
        packets[0].bytes.to_vec()
    }

    #[test]
    fn ack_dropper_deletes_only_acks() {
        let mut r = ByzantineRouter::new(ByzantineConfig::ack_dropper(1.0), 1);
        let frame = one_frame(vec![data_chunk(0, 0, &[1; 8]), ack_chunk()]);
        let out = r.ingest(frame);
        assert_eq!(r.stats.acks_dropped, 1);
        let survivors = unpack(&Packet {
            bytes: out[0].clone().into(),
        })
        .unwrap();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].header.ty, ChunkType::Data);
    }

    #[test]
    fn ed_duplication_doubles_the_digest() {
        let cfg = ByzantineConfig {
            ed_duplicate: 1.0,
            ..Default::default()
        };
        let mut r = ByzantineRouter::new(cfg, 2);
        let out = r.ingest(one_frame(vec![data_chunk(0, 0, &[1; 8]), ed_chunk()]));
        let chunks: Vec<Chunk> = out
            .iter()
            .flat_map(|f| {
                unpack(&Packet {
                    bytes: f.clone().into(),
                })
                .unwrap()
            })
            .collect();
        let eds = chunks
            .iter()
            .filter(|c| c.header.ty == ChunkType::ErrorDetection)
            .count();
        assert_eq!(eds, 2);
        assert_eq!(r.stats.eds_duplicated, 1);
    }

    #[test]
    fn label_flip_changes_exactly_one_header_bit() {
        let cfg = ByzantineConfig {
            flip_tsn: 1.0,
            ..Default::default()
        };
        let mut r = ByzantineRouter::new(cfg, 3);
        let original = one_frame(vec![data_chunk(4, 4, &[9; 8])]);
        let out = r.ingest(original.clone());
        assert_eq!(out.len(), 1);
        assert_eq!(r.stats.tsn_flips, 1);
        let diff: u32 = original
            .iter()
            .zip(&out[0])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit of the wire image changed");
        // And the flipped bit sits inside the T.SN field (bytes 20..24).
        let at = original
            .iter()
            .zip(&out[0])
            .position(|(a, b)| a != b)
            .unwrap();
        assert!((OFF_T_SN..OFF_T_SN + 4).contains(&at));
    }

    #[test]
    fn len_flip_survives_to_the_wire() {
        let cfg = ByzantineConfig {
            flip_len: 1.0,
            ..Default::default()
        };
        let mut r = ByzantineRouter::new(cfg, 4);
        let out = r.ingest(one_frame(vec![data_chunk(0, 0, &[3; 16])]));
        assert_eq!(r.stats.len_flips, 1);
        // The emitted frame's LEN no longer matches its payload: the
        // receiver's decoder must reject it without panicking.
        let _ = unpack(&Packet {
            bytes: out[0].clone().into(),
        });
    }

    #[test]
    fn unparsed_frames_pass_through() {
        let mut r = ByzantineRouter::new(ByzantineConfig::ack_dropper(1.0), 5);
        let junk = vec![0xEEu8; 48];
        let out = r.ingest(junk.clone());
        assert_eq!(out, vec![junk]);
        assert_eq!(r.stats.unparsed, 1);
    }

    #[test]
    fn shifted_duplicate_keeps_the_group_key() {
        let mut r = ByzantineRouter::new(ByzantineConfig::shifted_duplicator(1.0), 6);
        let out = r.ingest(one_frame(vec![data_chunk(16, 4, &[9; 8])]));
        assert_eq!(r.stats.shifted_dups, 1);
        let chunks: Vec<Chunk> = out
            .iter()
            .flat_map(|f| {
                unpack(&Packet {
                    bytes: f.clone().into(),
                })
                .unwrap()
            })
            .collect();
        assert_eq!(chunks.len(), 2);
        let (orig, dup) = (&chunks[0], &chunks[1]);
        // Same group: C.SN − T.SN is preserved; the copy sits at a shifted
        // offset inside it, overlapping [20, 24) of the original's [16, 24).
        assert_eq!(
            orig.header.conn.sn - orig.header.tpdu.sn,
            dup.header.conn.sn - dup.header.tpdu.sn
        );
        assert_eq!(dup.header.conn.sn, 20);
        assert_eq!(dup.payload, orig.payload);
    }

    #[test]
    fn rewrite_overlap_flips_every_payload_bit() {
        let mut r = ByzantineRouter::new(ByzantineConfig::rewriter(1.0), 7);
        let out = r.ingest(one_frame(vec![data_chunk(0, 0, &[0xA5; 8])]));
        assert_eq!(r.stats.rewrites, 1);
        let chunks: Vec<Chunk> = out
            .iter()
            .flat_map(|f| {
                unpack(&Packet {
                    bytes: f.clone().into(),
                })
                .unwrap()
            })
            .collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].header, chunks[1].header, "labels identical");
        assert!(chunks[1].payload.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn tiny_flood_opens_disjoint_far_ahead_groups() {
        let mut r = ByzantineRouter::new(ByzantineConfig::tiny_flooder(1.0, 4, 1000), 8);
        let frames: Vec<Vec<u8>> = (0..2)
            .flat_map(|i| r.ingest(one_frame(vec![data_chunk(i * 8, 0, &[1; 8])])))
            .collect();
        assert_eq!(r.stats.tiny_fragments, 8);
        let frags: Vec<Chunk> = frames
            .iter()
            .flat_map(|f| {
                unpack(&Packet {
                    bytes: f.clone().into(),
                })
                .unwrap()
            })
            .filter(|c| c.header.len == 1)
            .collect();
        assert_eq!(frags.len(), 8);
        // Consecutive bursts keep striding: all group starts distinct.
        let sns: Vec<u32> = frags.iter().map(|c| c.header.conn.sn).collect();
        assert_eq!(sns, (0..8u32).map(|i| 1000 + 2 * i).collect::<Vec<_>>());
        assert!(frags.iter().all(|c| c.header.tpdu.sn == 0));
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ByzantineConfig {
            ack_drop: 0.5,
            ed_duplicate: 0.5,
            flip_tsn: 0.3,
            flip_cid: 0.3,
            flip_len: 0.3,
            dup_shifted: 0.3,
            rewrite_overlap: 0.3,
            tiny_flood: 0.2,
            tiny_burst: 2,
            tiny_base: 4000,
        };
        let run = |seed| {
            let mut r = ByzantineRouter::new(cfg, seed);
            (0..50u32)
                .flat_map(|i| {
                    r.ingest(one_frame(vec![
                        data_chunk(i * 8, 0, &[i as u8; 8]),
                        ed_chunk(),
                        ack_chunk(),
                    ]))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
