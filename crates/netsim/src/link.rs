//! Point-to-point links with faults, and multipath bundles that reorder.

use std::sync::Arc;

use chunks_obs::{Event, ObsSink, SpanId, Stage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::obs::frame_labels;

/// Smallest egress packet a transform will repack into (headroom for a
/// header plus one element when the ingress frame was tiny).
pub const MIN_REPACK_MTU: usize = 64;

/// Static configuration of one link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Maximum frame size in bytes; larger frames are dropped (routers must
    /// fragment to below this).
    pub mtu: usize,
    /// One-way propagation latency in nanoseconds.
    pub latency_ns: u64,
    /// Uniform random extra delay in `[0, jitter_ns]`.
    pub jitter_ns: u64,
    /// Serialization bandwidth in bits per second; `0` means infinite.
    pub bandwidth_bps: u64,
    /// Probability a frame is silently lost.
    pub loss: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability one byte of the frame is corrupted in flight.
    pub corrupt: f64,
}

impl LinkConfig {
    /// A clean link: no loss, no jitter, no corruption.
    pub fn clean(mtu: usize, latency_ns: u64, bandwidth_bps: u64) -> Self {
        LinkConfig {
            mtu,
            latency_ns,
            jitter_ns: 0,
            bandwidth_bps,
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
        }
    }

    /// Adds loss to a configuration.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Adds jitter to a configuration.
    pub fn with_jitter(mut self, jitter_ns: u64) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Adds corruption to a configuration.
    pub fn with_corrupt(mut self, corrupt: f64) -> Self {
        self.corrupt = corrupt;
        self
    }

    /// Adds duplication to a configuration.
    pub fn with_duplicate(mut self, duplicate: f64) -> Self {
        self.duplicate = duplicate;
        self
    }

    /// Nanoseconds to serialize `bytes` onto this link.
    pub fn serialize_ns(&self, bytes: usize) -> u64 {
        (bytes as u64 * 8)
            .saturating_mul(1_000_000_000)
            .checked_div(self.bandwidth_bps)
            .unwrap_or(0)
    }
}

/// Counters accumulated by a link.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Frames offered to the link.
    pub offered: u64,
    /// Frames delivered (duplicates counted).
    pub delivered: u64,
    /// Frames lost to random loss.
    pub lost: u64,
    /// Frames dropped because they exceeded the MTU.
    pub oversize: u64,
    /// Frames delivered with a corrupted byte.
    pub corrupted: u64,
    /// Extra copies delivered by duplication.
    pub duplicated: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
}

/// A single simulated link with its own fault RNG and serialization state.
#[derive(Debug)]
pub struct Link {
    /// The link's configuration.
    pub cfg: LinkConfig,
    rng: StdRng,
    /// Time the transmitter becomes free (serialization queueing).
    next_free_ns: u64,
    /// Accumulated counters.
    pub stats: LinkStats,
    obs: Arc<dyn ObsSink>,
    obs_on: bool,
}

impl Link {
    /// Creates a link with a deterministic fault stream.
    pub fn new(cfg: LinkConfig, seed: u64) -> Self {
        Link {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            next_free_ns: 0,
            stats: LinkStats::default(),
            obs: chunks_obs::null(),
            obs_on: false,
        }
    }

    /// Attaches an observability sink. When the sink records, every data
    /// chunk carried by this link gets a `hop` span: opened when the frame
    /// is offered, closed at arrival — and left open (a visible drop) when
    /// the link loses the frame. Fault decisions never consult the sink.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.obs_on = sink.enabled();
        self.obs = sink;
    }

    /// Offers a frame at time `now`; returns zero or more `(arrival, frame)`
    /// deliveries at the far end.
    pub fn transmit(&mut self, now: u64, frame: Vec<u8>) -> Vec<(u64, Vec<u8>)> {
        self.stats.offered += 1;
        let labels = if self.obs_on {
            frame_labels(&frame)
        } else {
            Vec::new()
        };
        if frame.len() > self.cfg.mtu {
            self.stats.oversize += 1;
            for l in &labels {
                self.obs.span_open(now, SpanId::new(*l, Stage::Hop));
            }
            return Vec::new();
        }
        // Serialization: the transmitter is busy until the frame is on the
        // wire; queued frames wait.
        let start = now.max(self.next_free_ns);
        let ser = self.cfg.serialize_ns(frame.len());
        self.next_free_ns = start + ser;

        if self.rng.random::<f64>() < self.cfg.loss {
            self.stats.lost += 1;
            for l in &labels {
                self.obs.span_open(now, SpanId::new(*l, Stage::Hop));
            }
            return Vec::new();
        }

        let mut deliveries = Vec::with_capacity(1);
        let copies = if self.rng.random::<f64>() < self.cfg.duplicate {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let mut f = frame.clone();
            if self.rng.random::<f64>() < self.cfg.corrupt && !f.is_empty() {
                let at = self.rng.random_range(0..f.len());
                // Flip one nonzero bit so corruption is always a change.
                let bit = 1u8 << self.rng.random_range(0..8);
                f[at] ^= bit;
                self.stats.corrupted += 1;
            }
            let jitter = if self.cfg.jitter_ns == 0 {
                0
            } else {
                self.rng.random_range(0..=self.cfg.jitter_ns)
            };
            let arrival = start + ser + self.cfg.latency_ns + jitter;
            self.stats.delivered += 1;
            self.stats.bytes += f.len() as u64;
            for l in &labels {
                let id = SpanId::new(*l, Stage::Hop);
                self.obs.span_open(now, id);
                self.obs.span_close(arrival, id);
            }
            deliveries.push((arrival, f));
        }
        deliveries
    }
}

/// A bundle of parallel sub-links striped round-robin — the paper's eight
/// parallel 155 Mbps ATM connections (§1). Skew between the sub-links'
/// latencies reorders packets.
#[derive(Debug)]
pub struct MultipathLink {
    paths: Vec<Link>,
    next: usize,
    /// Per-path stall windows `(from_ns, until_ns)`: frames striped onto a
    /// stalled path inside the window queue until the stall clears.
    stalls: Vec<Option<(u64, u64)>>,
    obs: Arc<dyn ObsSink>,
    obs_on: bool,
}

impl MultipathLink {
    /// Creates a bundle from sub-link configurations.
    pub fn new(configs: Vec<LinkConfig>, seed: u64) -> Self {
        let paths: Vec<Link> = configs
            .into_iter()
            .enumerate()
            .map(|(i, c)| Link::new(c, seed.wrapping_add(i as u64 * 0x9E37_79B9)))
            .collect();
        let stalls = vec![None; paths.len()];
        MultipathLink {
            paths,
            next: 0,
            stalls,
            obs: chunks_obs::null(),
            obs_on: false,
        }
    }

    /// Attaches an observability sink to the bundle and every sub-link.
    /// The bundle itself records which path each frame was striped onto
    /// (`PathChosen` events, `path_choice` marker spans); the sub-links
    /// record their own `hop` spans.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        for p in &mut self.paths {
            p.set_obs(Arc::clone(&sink));
        }
        self.obs_on = sink.enabled();
        self.obs = sink;
    }

    /// Stalls one path of the bundle for `[from_ns, until_ns)`: frames the
    /// round-robin striper hands to it during the window are held and only
    /// enter the link when the stall clears — a head-of-line blockage on a
    /// single stripe that mass-reorders the bundle (and starves acks long
    /// enough to make retransmission timers fire).
    pub fn stall_path(&mut self, idx: usize, from_ns: u64, until_ns: u64) {
        self.stalls[idx] = Some((from_ns, until_ns));
    }

    /// The classic configuration: `n` identical paths whose latencies are
    /// skewed by `skew_ns` per path index.
    pub fn skewed(n: usize, base: LinkConfig, skew_ns: u64, seed: u64) -> Self {
        let configs = (0..n)
            .map(|i| LinkConfig {
                latency_ns: base.latency_ns + i as u64 * skew_ns,
                ..base
            })
            .collect();
        Self::new(configs, seed)
    }

    /// The smallest MTU across the bundle.
    pub fn mtu(&self) -> usize {
        self.paths.iter().map(|p| p.cfg.mtu).min().unwrap_or(0)
    }

    /// Stripes a frame onto the next sub-link.
    pub fn transmit(&mut self, now: u64, frame: Vec<u8>) -> Vec<(u64, Vec<u8>)> {
        let i = self.next;
        self.next = (self.next + 1) % self.paths.len();
        let offered = match self.stalls[i] {
            Some((from, until)) if now >= from && now < until => until,
            _ => now,
        };
        if self.obs_on {
            self.obs.counter("netsim.multipath.path_choices", 1);
            for l in frame_labels(&frame) {
                self.obs.event(
                    now,
                    Event::PathChosen {
                        labels: l,
                        path: i as u32,
                    },
                );
                let id = SpanId::new(l, Stage::PathChoice);
                self.obs.span_open(now, id);
                self.obs.span_close(now, id);
            }
        }
        self.paths[i].transmit(offered, frame)
    }

    /// Aggregated statistics over the sub-links.
    pub fn stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for p in &self.paths {
            total.offered += p.stats.offered;
            total.delivered += p.stats.delivered;
            total.lost += p.stats.lost;
            total.oversize += p.stats.oversize;
            total.corrupted += p.stats.corrupted;
            total.duplicated += p.stats.duplicated;
            total.bytes += p.stats.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> Vec<u8> {
        (0..n).map(|i| i as u8).collect()
    }

    #[test]
    fn clean_link_delivers_in_order_with_latency() {
        let mut l = Link::new(LinkConfig::clean(1500, 1000, 0), 1);
        let d1 = l.transmit(0, frame(100));
        let d2 = l.transmit(10, frame(100));
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].0, 1000);
        assert_eq!(d2[0].0, 1010);
        assert_eq!(d1[0].1, frame(100));
    }

    #[test]
    fn serialization_delay_queues_frames() {
        // 8 Mbps: 1000-byte frame takes 1 ms to serialize.
        let mut l = Link::new(LinkConfig::clean(1500, 0, 8_000_000), 1);
        let d1 = l.transmit(0, frame(1000));
        let d2 = l.transmit(0, frame(1000));
        assert_eq!(d1[0].0, 1_000_000);
        assert_eq!(d2[0].0, 2_000_000, "second frame waits for the first");
    }

    #[test]
    fn oversize_frames_dropped() {
        let mut l = Link::new(LinkConfig::clean(100, 0, 0), 1);
        assert!(l.transmit(0, frame(101)).is_empty());
        assert_eq!(l.stats.oversize, 1);
        assert_eq!(l.transmit(0, frame(100)).len(), 1);
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let mut l = Link::new(LinkConfig::clean(1500, 0, 0).with_loss(0.3), 42);
        let mut lost = 0;
        for _ in 0..10_000 {
            if l.transmit(0, frame(10)).is_empty() {
                lost += 1;
            }
        }
        assert!((2600..3400).contains(&lost), "lost = {lost}");
        assert_eq!(l.stats.lost, lost);
    }

    #[test]
    fn corruption_changes_exactly_one_bit() {
        let mut l = Link::new(LinkConfig::clean(1500, 0, 0).with_corrupt(1.0), 7);
        let original = frame(64);
        let d = l.transmit(0, original.clone());
        let delivered = &d[0].1;
        let diff: u32 = original
            .iter()
            .zip(delivered)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn duplication_delivers_two_copies() {
        let mut l = Link::new(LinkConfig::clean(1500, 0, 0).with_duplicate(1.0), 9);
        let d = l.transmit(0, frame(10));
        assert_eq!(d.len(), 2);
        assert_eq!(l.stats.duplicated, 1);
        assert_eq!(l.stats.delivered, 2);
    }

    #[test]
    fn determinism_under_same_seed() {
        let cfg = LinkConfig::clean(1500, 100, 0)
            .with_loss(0.2)
            .with_jitter(500)
            .with_corrupt(0.1);
        let run = |seed| {
            let mut l = Link::new(cfg, seed);
            (0..200)
                .flat_map(|t| l.transmit(t * 10, frame(32)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn multipath_skew_reorders() {
        // Two paths, second 10 us slower: striping 0,1,0,1 makes frame 1
        // arrive after frame 2.
        let base = LinkConfig::clean(1500, 1_000, 0);
        let mut mp = MultipathLink::skewed(2, base, 10_000, 3);
        let mut arrivals = Vec::new();
        for i in 0..4u8 {
            for (t, f) in mp.transmit(i as u64, vec![i]) {
                arrivals.push((t, f[0]));
            }
        }
        arrivals.sort();
        let order: Vec<u8> = arrivals.iter().map(|&(_, id)| id).collect();
        assert_eq!(order, vec![0, 2, 1, 3], "skew must interleave the stripes");
    }

    #[test]
    fn stalled_path_releases_at_window_end() {
        let base = LinkConfig::clean(1500, 1_000, 0);
        let mut mp = MultipathLink::skewed(2, base, 0, 3);
        mp.stall_path(1, 0, 50_000);
        // Frame 0 takes path 0 (clear), frame 1 takes stalled path 1.
        let d0 = mp.transmit(10, vec![0]);
        let d1 = mp.transmit(20, vec![1]);
        assert_eq!(d0[0].0, 1_010);
        assert_eq!(d1[0].0, 51_000, "held until the stall clears");
        // After the window the path behaves normally again.
        mp.transmit(60_000, vec![2]);
        let d3 = mp.transmit(60_000, vec![3]);
        assert_eq!(d3[0].0, 61_000);
    }

    #[test]
    fn multipath_stats_aggregate() {
        let base = LinkConfig::clean(100, 0, 0);
        let mut mp = MultipathLink::skewed(4, base, 0, 1);
        for i in 0..8 {
            mp.transmit(i, frame(50));
        }
        let s = mp.stats();
        assert_eq!(s.offered, 8);
        assert_eq!(s.delivered, 8);
        assert_eq!(mp.mtu(), 100);
    }
}

/// A link whose route changes at a configured time — the paper's third
/// disordering source (§1): "route changes that occur during communication
/// also can cause packet disordering, because the first packet sent along
/// the new route may arrive before the last packet sent along the old
/// route."
#[derive(Debug)]
pub struct RouteChangeLink {
    old: Link,
    new: Link,
    /// Time (ns) at which traffic switches to the new route.
    pub switch_at_ns: u64,
}

impl RouteChangeLink {
    /// Creates a link that uses `old` before `switch_at_ns` and `new`
    /// afterwards. Disordering occurs when the new route is faster.
    pub fn new(old: LinkConfig, new: LinkConfig, switch_at_ns: u64, seed: u64) -> Self {
        RouteChangeLink {
            old: Link::new(old, seed),
            new: Link::new(new, seed.wrapping_add(0x5EED)),
            switch_at_ns,
        }
    }

    /// Attaches an observability sink to both routes.
    pub fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.old.set_obs(Arc::clone(&sink));
        self.new.set_obs(sink);
    }

    /// Offers a frame; routing depends on the send time.
    pub fn transmit(&mut self, now: u64, frame: Vec<u8>) -> Vec<(u64, Vec<u8>)> {
        if now < self.switch_at_ns {
            self.old.transmit(now, frame)
        } else {
            self.new.transmit(now, frame)
        }
    }

    /// Combined statistics over both routes.
    pub fn stats(&self) -> LinkStats {
        let (a, b) = (self.old.stats, self.new.stats);
        LinkStats {
            offered: a.offered + b.offered,
            delivered: a.delivered + b.delivered,
            lost: a.lost + b.lost,
            oversize: a.oversize + b.oversize,
            corrupted: a.corrupted + b.corrupted,
            duplicated: a.duplicated + b.duplicated,
            bytes: a.bytes + b.bytes,
        }
    }
}

#[cfg(test)]
mod route_change_tests {
    use super::*;

    #[test]
    fn faster_new_route_reorders_across_the_switch() {
        // Old route: 100 us. New route: 10 us. Switch at t=1000.
        let mut l = RouteChangeLink::new(
            LinkConfig::clean(1500, 100_000, 0),
            LinkConfig::clean(1500, 10_000, 0),
            1_000,
            1,
        );
        let mut arrivals = Vec::new();
        for (t, id) in [(0u64, 0u8), (500, 1), (1_200, 2), (1_500, 3)] {
            for (at, f) in l.transmit(t, vec![id]) {
                arrivals.push((at, f[0]));
            }
        }
        arrivals.sort();
        let order: Vec<u8> = arrivals.iter().map(|&(_, id)| id).collect();
        // Packets 2 and 3 took the fast new route and overtook 0 and 1.
        assert_eq!(order, vec![2, 3, 0, 1]);
        assert_eq!(l.stats().delivered, 4);
    }

    #[test]
    fn slower_new_route_preserves_order() {
        let mut l = RouteChangeLink::new(
            LinkConfig::clean(1500, 10_000, 0),
            LinkConfig::clean(1500, 100_000, 0),
            1_000,
            1,
        );
        let mut arrivals = Vec::new();
        for (t, id) in [(0u64, 0u8), (1_500, 1)] {
            for (at, f) in l.transmit(t, vec![id]) {
                arrivals.push((at, f[0]));
            }
        }
        arrivals.sort();
        assert_eq!(arrivals[0].1, 0);
        assert_eq!(arrivals[1].1, 1);
    }
}
