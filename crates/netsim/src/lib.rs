//! Deterministic discrete-event network simulator.
//!
//! The paper's experiments ran on the AURORA gigabit testbed over SONET
//! OC-3 ATM hardware we do not have; this crate simulates the behaviours
//! that matter to the protocol design instead (see DESIGN.md §3):
//!
//! * **message loss** — the first disordering source named in §1;
//! * **multipath skew** — "obtaining gigabit rates on a SONET OC-3 ATM
//!   network requires using eight 155 Mbps ATM connections in parallel;
//!   skew among the routes can cause packets to leave the network in a
//!   different order than that in which they entered" ([`MultipathLink`]);
//! * **route changes**, duplication and byte corruption;
//! * **in-network fragmentation** at routers with differing MTUs
//!   ([`ChunkRouter`] implements the three conversion methods of Figure 4;
//!   baseline routers implement the [`PacketTransform`] trait from their own
//!   crates).
//!
//! Everything is driven by a seeded RNG, so every experiment is exactly
//! reproducible.

//!
//! Adversarial (Byzantine) fault injection — targeted ack deletion, ED
//! duplication and on-the-wire label flips — lives in [`byzantine`]; the
//! reliability soak harness (`experiments soak`) is built on it.

#![deny(missing_docs)]

pub mod byzantine;
pub mod link;
pub mod obs;
pub mod path;
pub mod profiles;
pub mod router;

pub use byzantine::{ByzantineConfig, ByzantineRouter, ByzantineStats};
pub use link::MIN_REPACK_MTU;
pub use link::{Link, LinkConfig, LinkStats, MultipathLink, RouteChangeLink};
pub use obs::{frame_chunks, frame_labels, FrameChunk};
pub use path::{Hop, Path, PathBuilder};
pub use profiles::Profile;
pub use router::{ChunkRouter, PacketTransform, Passthrough, RefragPolicy, TurnerDropper};
