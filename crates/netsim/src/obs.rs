//! Label parsing for in-network observability.
//!
//! The simulator's links and routers operate on packed wire frames, not
//! decoded chunks — yet the paper's labels are *self-describing on the
//! wire* (fixed 32-byte headers at computable offsets), so a hop can read
//! the `(C.ID, T.SN, X.SN)` tuple of every chunk it carries without
//! decoding payloads, exactly the way a P4-style in-network telemetry
//! pipeline would. This module is that reader: a header walk shared by the
//! link hop spans, the multipath path-choice events, and the router
//! fragmentation links. It is only invoked when a recording sink is
//! attached (`obs_on`), so the `NullSink` path never walks a frame.

use chunks_core::label::ChunkType;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_obs::Labels;

// Wire offsets inside the fixed chunk header (see `chunks_core::wire`).
const OFF_SIZE: usize = 2;
const OFF_LEN: usize = 4;
const OFF_C_ID: usize = 8;
const OFF_T_SN: usize = 20;
const OFF_X_SN: usize = 28;

fn be32(frame: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([frame[at], frame[at + 1], frame[at + 2], frame[at + 3]])
}

/// Header summary of one chunk found in a packed frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameChunk {
    /// The chunk's `(C.ID, T.SN, X.SN)` labels.
    pub labels: Labels,
    /// Raw `TYPE` byte.
    pub ty: u8,
    /// `LEN` field — the chunk's extent in elements, so a split child's
    /// `X.SN` falls inside `[x_sn, x_sn + len)` of its parent.
    pub len: u32,
}

impl FrameChunk {
    /// True for payload-bearing data chunks (the lifecycles spans track).
    pub fn is_data(&self) -> bool {
        self.ty == ChunkType::Data.to_u8()
    }

    /// True when `other` could be a split piece of `self`: same connection
    /// and an `X.SN` inside this chunk's element extent.
    pub fn covers(&self, other: &FrameChunk) -> bool {
        self.labels.conn_id == other.labels.conn_id
            && other.labels.x_sn >= self.labels.x_sn
            && other.labels.x_sn < self.labels.x_sn.wrapping_add(self.len)
    }

    /// True when the two chunks' `X.SN` element extents intersect on the
    /// same connection — the relation that ties a router's output chunks
    /// back to the input chunks they were split or merged from.
    pub fn overlaps(&self, other: &FrameChunk) -> bool {
        let (a0, a1) = (
            self.labels.x_sn as u64,
            self.labels.x_sn as u64 + self.len as u64,
        );
        let (b0, b1) = (
            other.labels.x_sn as u64,
            other.labels.x_sn as u64 + other.len as u64,
        );
        self.labels.conn_id == other.labels.conn_id && a0 < b1 && b0 < a1
    }
}

/// Walks the fixed chunk headers of a packed frame and returns one
/// [`FrameChunk`] per chunk, payload bytes untouched. A malformed tail (or
/// the zero-`LEN` end-of-packet marker) ends the walk — the walker never
/// panics on mangled frames, it just reports what it could read.
pub fn frame_chunks(frame: &[u8]) -> Vec<FrameChunk> {
    let mut out = Vec::new();
    let mut off = 0;
    while off + WIRE_HEADER_LEN <= frame.len() {
        let ty = frame[off];
        let size = u16::from_be_bytes([frame[off + OFF_SIZE], frame[off + OFF_SIZE + 1]]) as usize;
        let len = be32(frame, off + OFF_LEN);
        if len == 0 {
            break; // end-of-packet marker
        }
        out.push(FrameChunk {
            labels: Labels::new(
                be32(frame, off + OFF_C_ID),
                be32(frame, off + OFF_T_SN),
                be32(frame, off + OFF_X_SN),
            ),
            ty,
            len,
        });
        off += WIRE_HEADER_LEN + size * len as usize;
    }
    out
}

/// The data-chunk labels of a packed frame, in wire order.
pub fn frame_labels(frame: &[u8]) -> Vec<Labels> {
    frame_chunks(frame)
        .into_iter()
        .filter(FrameChunk::is_data)
        .map(|c| c.labels)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::chunk::byte_chunk;
    use chunks_core::label::FramingTuple;
    use chunks_core::packet::pack;

    #[test]
    fn walker_reads_every_data_label_without_decoding() {
        let chunks: Vec<_> = (0..3u32)
            .map(|i| {
                byte_chunk(
                    FramingTuple::new(7, i * 8, false),
                    FramingTuple::new(2, i * 8, false),
                    FramingTuple::new(3, i * 8 + 1, false),
                    &[i as u8; 8],
                )
            })
            .collect();
        let packets = pack(chunks, 4096).unwrap();
        let labels = frame_labels(&packets[0].bytes);
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[1], Labels::new(7, 8, 9));
    }

    #[test]
    fn walker_survives_junk() {
        assert!(frame_chunks(&[0xEE; 48])
            .iter()
            .all(|c| !c.is_data() || c.len > 0));
        assert!(frame_chunks(&[0u8; 10]).is_empty());
    }

    #[test]
    fn covers_matches_split_extents() {
        let parent = FrameChunk {
            labels: Labels::new(1, 0, 16),
            ty: ChunkType::Data.to_u8(),
            len: 8,
        };
        let child = FrameChunk {
            labels: Labels::new(1, 4, 20),
            ty: ChunkType::Data.to_u8(),
            len: 4,
        };
        let stranger = FrameChunk {
            labels: Labels::new(1, 40, 40),
            ty: ChunkType::Data.to_u8(),
            len: 4,
        };
        assert!(parent.covers(&child));
        assert!(!parent.covers(&stranger));
        assert!(parent.overlaps(&child) && child.overlaps(&parent));
        assert!(!parent.overlaps(&stranger));
    }
}
