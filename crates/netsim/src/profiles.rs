//! Named, seeded network profiles.
//!
//! The differential harness (`tests/parallel_differential.rs`), the
//! deterministic-schedule tests, and the `experiments parallel` sweep all
//! need the *same* reproducible network behaviours: a profile name plus a
//! seed fully determines the path. Keeping the constructors here means a
//! BENCH row labelled `reorder` and a failing differential scenario labelled
//! `reorder` are talking about exactly the same simulated network.
//!
//! Every profile models a disordering source the paper names: multipath skew
//! (§1, the AURORA eight-way OC-3 stripe), loss-driven retransmission,
//! in-network duplication, mid-path refragmentation at a narrower MTU
//! (Figure 4), and on-the-wire corruption.

use chunks_core::wire::WIRE_HEADER_LEN;

use crate::link::{LinkConfig, MIN_REPACK_MTU};
use crate::path::{Path, PathBuilder};
use crate::router::{ChunkRouter, RefragPolicy};

/// A named network behaviour, reproducible from a seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// A single clean link — the no-disorder baseline.
    Clean,
    /// An 8-way skewed multipath bundle: heavy reordering, no loss. The
    /// profile the paper's gigabit-striping argument turns on.
    Reorder,
    /// 5% loss with jitter: drives the retransmission machinery.
    Loss,
    /// 5% duplication with jitter: exercises the duplicate-rejection path
    /// in front of the incremental checksum.
    Duplication,
    /// A wide hop followed by a narrow router that refragments chunks
    /// mid-path (Figure 4, repack policy).
    Fragmenting,
    /// A 4-way skewed bundle whose sub-links also lose 3% — reordering and
    /// loss at once.
    MultipathLossy,
    /// 15% of frames take a byte flip: every Table 1 detection channel gets
    /// exercised.
    Corrupt,
}

impl Profile {
    /// Every profile, in sweep order.
    pub const ALL: [Profile; 7] = [
        Profile::Clean,
        Profile::Reorder,
        Profile::Loss,
        Profile::Duplication,
        Profile::Fragmenting,
        Profile::MultipathLossy,
        Profile::Corrupt,
    ];

    /// Stable name used in BENCH rows and scenario labels.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Clean => "clean",
            Profile::Reorder => "reorder",
            Profile::Loss => "loss",
            Profile::Duplication => "duplication",
            Profile::Fragmenting => "fragmenting",
            Profile::MultipathLossy => "multipath-lossy",
            Profile::Corrupt => "corrupt",
        }
    }

    /// True when the profile can drop frames (callers must drive
    /// retransmission rounds to converge).
    pub fn lossy(self) -> bool {
        matches!(
            self,
            Profile::Loss | Profile::MultipathLossy | Profile::Corrupt
        )
    }

    /// Builds the path for frames of at most `mtu` bytes, faults drawn
    /// from `seed`.
    pub fn build(self, mtu: usize, seed: u64) -> Path {
        let base = LinkConfig::clean(mtu, 50_000, 622_000_000);
        match self {
            Profile::Clean => PathBuilder::new(seed).link(base).build(),
            Profile::Reorder => PathBuilder::new(seed).multipath(8, base, 120_000).build(),
            Profile::Loss => PathBuilder::new(seed)
                .link(base.with_loss(0.05).with_jitter(100_000))
                .build(),
            Profile::Duplication => PathBuilder::new(seed)
                .link(base.with_duplicate(0.05).with_jitter(150_000))
                .build(),
            Profile::Fragmenting => {
                let narrow = (WIRE_HEADER_LEN + mtu / 4).max(MIN_REPACK_MTU);
                PathBuilder::new(seed)
                    .link(base)
                    .routed_link(
                        Box::new(ChunkRouter::new(narrow, RefragPolicy::Repack)),
                        LinkConfig::clean(narrow, 50_000, 622_000_000),
                    )
                    .build()
            }
            Profile::MultipathLossy => PathBuilder::new(seed)
                .multipath(4, base.with_loss(0.03), 200_000)
                .build(),
            Profile::Corrupt => PathBuilder::new(seed).link(base.with_corrupt(0.15)).build(),
        }
    }

    /// [`build`](Self::build) with an observability sink attached to every
    /// hop, so the path records `hop` transit spans, path-choice events and
    /// fragmentation span links as it runs. Attaching a sink never changes
    /// the fault stream: the path delivers byte-identical frames either way.
    pub fn build_observed(
        self,
        mtu: usize,
        seed: u64,
        sink: std::sync::Arc<dyn chunks_obs::ObsSink>,
    ) -> Path {
        let mut path = self.build(mtu, seed);
        path.set_obs(sink);
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let names: Vec<&str> = Profile::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Profile::Reorder.name(), "reorder");
    }

    #[test]
    fn same_seed_same_deliveries() {
        for profile in Profile::ALL {
            let inputs: Vec<(u64, Vec<u8>)> =
                (0..40u8).map(|i| (i as u64 * 1000, vec![i; 60])).collect();
            let a = profile.build(1500, 0xBEE5).run(inputs.clone());
            let b = profile.build(1500, 0xBEE5).run(inputs);
            let sig = |d: &[crate::path::Delivery]| {
                d.iter()
                    .map(|x| (x.time, x.frame.clone()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(sig(&a), sig(&b), "{} not reproducible", profile.name());
        }
    }

    #[test]
    fn reorder_profile_disorders_without_loss() {
        let inputs: Vec<(u64, Vec<u8>)> = (0..64u8).map(|i| (i as u64 * 500, vec![i])).collect();
        let out = Profile::Reorder.build(1500, 7).run(inputs);
        assert_eq!(out.len(), 64, "reorder never drops");
        let ids: Vec<u8> = out.iter().map(|d| d.frame[0]).collect();
        assert!(
            ids.windows(2).any(|w| w[0] > w[1]),
            "skewed stripe must disorder"
        );
    }
}
