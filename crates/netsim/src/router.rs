//! In-network packet conversion between MTUs.
//!
//! "Chunk fragmentation is easiest to understand if we think of packets as
//! envelopes that carry chunks. Whenever we must change from one packet size
//! to another packet size, it is as if chunks are emptied from one size of
//! envelope and placed in another size of envelope" (§3.1). Moving to
//! *larger* envelopes offers the three choices of Figure 4, all implemented
//! here; the baseline (IP-style) routers implement the same
//! [`PacketTransform`] trait in `chunks-baseline`.

use std::sync::Arc;

use chunks_core::frag::{merge, split_to_fit};
use chunks_core::packet::{pack, unpack, Packet, PacketBuilder};
use chunks_core::Chunk;
use chunks_obs::{ObsSink, SpanId, Stage};

use crate::obs::{frame_chunks, FrameChunk};

/// A stateful frame transformer placed between two links of a path.
pub trait PacketTransform {
    /// Converts one ingress frame into zero or more egress frames.
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>>;

    /// Flushes any frames the transform is still holding (e.g. a reassembly
    /// window) at the end of a run.
    fn flush(&mut self) -> Vec<Vec<u8>> {
        Vec::new()
    }

    /// Clocked variant of [`ingest`](Self::ingest): transforms that record
    /// observability (span links, mutation events) override this to learn
    /// the virtual time of the conversion. The default ignores the clock.
    fn ingest_at(&mut self, now: u64, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let _ = now;
        self.ingest(frame)
    }

    /// Clocked variant of [`flush`](Self::flush).
    fn flush_at(&mut self, now: u64) -> Vec<Vec<u8>> {
        let _ = now;
        self.flush()
    }

    /// Attaches an observability sink. The default discards it — only
    /// transforms that instrument their conversions store the sink.
    fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        let _ = sink;
    }
}

/// The identity transform.
#[derive(Debug, Default)]
pub struct Passthrough;

impl PacketTransform for Passthrough {
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        vec![frame]
    }
}

/// How a chunk router converts between packet sizes (Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefragPolicy {
    /// Split oversized chunks and emit one chunk per egress packet
    /// (Figure 4 method 1: "put one small chunk in each large packet" —
    /// simple, but wastes envelope space).
    OnePerPacket,
    /// Split oversized chunks and pack as many chunks as fit into each
    /// egress packet (method 2: "combine multiple small chunks into a large
    /// packet" — "simpler than and almost as efficient as chunk
    /// reassembly").
    Repack,
    /// Additionally merge adjacent chunks held in a small window before
    /// packing (method 3: "perform chunk reassembly" in the network).
    Reassemble {
        /// Number of chunks held for merging before the window is flushed.
        window: usize,
    },
    /// Do not fragment: drop packets larger than the egress MTU (the
    /// "never fragment — discard" option §3 calls unacceptable; used as a
    /// baseline).
    DropOversize,
}

/// A router that understands chunk syntax (but, per §3.2, none of the
/// semantics behind the framing levels).
#[derive(Debug)]
pub struct ChunkRouter {
    /// Egress MTU in bytes.
    pub egress_mtu: usize,
    /// Conversion policy.
    pub policy: RefragPolicy,
    window: Vec<Chunk>,
    /// Wire bytes accumulated in the window (Repack batching).
    window_wire: usize,
    /// Chunks split by this router.
    pub splits: u64,
    /// Chunks merged by this router.
    pub merges: u64,
    /// Packets dropped (DropOversize policy or malformed).
    pub drops: u64,
    obs: Arc<dyn ObsSink>,
    obs_on: bool,
    /// Data-chunk headers still awaiting egress (Repack/Reassemble windows
    /// batch inputs across frames). Populated only when `obs_on`.
    pending: Vec<FrameChunk>,
}

impl ChunkRouter {
    /// Creates a router with the given egress MTU and policy.
    pub fn new(egress_mtu: usize, policy: RefragPolicy) -> Self {
        ChunkRouter {
            egress_mtu,
            policy,
            window: Vec::new(),
            window_wire: 0,
            splits: 0,
            merges: 0,
            drops: 0,
            obs: chunks_obs::null(),
            obs_on: false,
            pending: Vec::new(),
        }
    }

    /// Ties this conversion's output chunks back to the inputs they came
    /// from: any output whose `X.SN` extent overlaps an input it does not
    /// exactly equal was split or merged in-network, so the router records
    /// a parent→child span link (the Appendix C/D label closure made
    /// visible) plus a `fragment` marker span on the child.
    fn note_outputs(&mut self, now: u64, outs: &[Vec<u8>], splits0: u64, merges0: u64) {
        if self.splits > splits0 {
            self.obs
                .counter("netsim.router.splits", self.splits - splits0);
        }
        if self.merges > merges0 {
            self.obs
                .counter("netsim.router.repacks", self.merges - merges0);
        }
        if outs.is_empty() {
            return; // still batching — inputs stay pending
        }
        let inputs = std::mem::take(&mut self.pending);
        for f in outs {
            for oc in frame_chunks(f).into_iter().filter(FrameChunk::is_data) {
                let untouched = inputs
                    .iter()
                    .any(|ic| ic.labels == oc.labels && ic.len == oc.len);
                if untouched {
                    continue;
                }
                let mut relabelled = false;
                for ic in inputs.iter().filter(|ic| ic.overlaps(&oc)) {
                    self.obs.span_link(now, ic.labels, oc.labels);
                    relabelled = true;
                }
                if relabelled {
                    let id = SpanId::new(oc.labels, Stage::Fragment);
                    self.obs.span_open(now, id);
                    self.obs.span_close(now, id);
                }
            }
        }
    }

    fn emit(&mut self, chunks: Vec<Chunk>) -> Vec<Vec<u8>> {
        match self.policy {
            RefragPolicy::OnePerPacket => {
                let mut out = Vec::new();
                for c in chunks {
                    match split_to_fit(c, self.egress_mtu) {
                        Ok(pieces) => {
                            self.splits += pieces.len().saturating_sub(1) as u64;
                            for p in pieces {
                                let mut b = PacketBuilder::new(self.egress_mtu);
                                b.push(p).expect("sized to fit");
                                out.push(b.finish().bytes.to_vec());
                            }
                        }
                        Err(_) => self.drops += 1,
                    }
                }
                out
            }
            RefragPolicy::Repack | RefragPolicy::Reassemble { .. } => {
                match pack(chunks, self.egress_mtu) {
                    Ok(packets) => packets.into_iter().map(|p| p.bytes.to_vec()).collect(),
                    Err(_) => {
                        self.drops += 1;
                        Vec::new()
                    }
                }
            }
            RefragPolicy::DropOversize => unreachable!("handled in ingest"),
        }
    }

    fn merge_window(&mut self) -> Vec<Chunk> {
        // Greedy adjacent merging within the window, order-insensitive.
        let mut chunks = std::mem::take(&mut self.window);
        chunks.sort_by_key(|c| (c.header.tpdu.id, c.header.tpdu.sn));
        let mut merged: Vec<Chunk> = Vec::with_capacity(chunks.len());
        for c in chunks {
            if let Some(last) = merged.last_mut() {
                if let Ok(m) = merge(last, &c) {
                    *last = m;
                    self.merges += 1;
                    continue;
                }
            }
            merged.push(c);
        }
        merged
    }
}

impl PacketTransform for ChunkRouter {
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        if self.policy == RefragPolicy::DropOversize {
            return if frame.len() <= self.egress_mtu {
                vec![frame]
            } else {
                self.drops += 1;
                Vec::new()
            };
        }
        let packet = Packet {
            bytes: frame.into(),
        };
        let chunks = match unpack(&packet) {
            Ok(c) => c,
            Err(_) => {
                self.drops += 1;
                return Vec::new();
            }
        };
        match self.policy {
            RefragPolicy::Reassemble { window } => {
                self.window.extend(chunks);
                if self.window.len() < window {
                    return Vec::new();
                }
                let merged = self.merge_window();
                self.emit(merged)
            }
            RefragPolicy::Repack => {
                // Batch chunks until an egress envelope can be filled; this
                // is what lets small-network chunks combine into large
                // packets (Figure 4 method 2).
                self.window_wire += chunks.iter().map(Chunk::wire_len).sum::<usize>();
                self.window.extend(chunks);
                if self.window_wire < self.egress_mtu {
                    return Vec::new();
                }
                self.window_wire = 0;
                let batch = std::mem::take(&mut self.window);
                self.emit(batch)
            }
            _ => self.emit(chunks),
        }
    }

    fn flush(&mut self) -> Vec<Vec<u8>> {
        if self.window.is_empty() {
            return Vec::new();
        }
        self.window_wire = 0;
        if matches!(self.policy, RefragPolicy::Reassemble { .. }) {
            let merged = self.merge_window();
            self.emit(merged)
        } else {
            let batch = std::mem::take(&mut self.window);
            self.emit(batch)
        }
    }

    fn ingest_at(&mut self, now: u64, frame: Vec<u8>) -> Vec<Vec<u8>> {
        if !self.obs_on {
            return self.ingest(frame);
        }
        self.pending
            .extend(frame_chunks(&frame).into_iter().filter(FrameChunk::is_data));
        let (splits0, merges0) = (self.splits, self.merges);
        let outs = self.ingest(frame);
        self.note_outputs(now, &outs, splits0, merges0);
        outs
    }

    fn flush_at(&mut self, now: u64) -> Vec<Vec<u8>> {
        if !self.obs_on {
            return self.flush();
        }
        let (splits0, merges0) = (self.splits, self.merges);
        let outs = self.flush();
        self.note_outputs(now, &outs, splits0, merges0);
        outs
    }

    fn set_obs(&mut self, sink: Arc<dyn ObsSink>) {
        self.obs_on = sink.enabled();
        self.obs = sink;
    }
}

/// Congestion dropper implementing Turner's suggestion (§3): "if fragments
/// travel along the same route, we have the option of dropping all of the
/// fragments of a TPDU if any fragment must be dropped" — once one chunk of
/// a TPDU is sacrificed, forwarding the TPDU's other chunks only wastes
/// downstream bandwidth, since the TPDU must be retransmitted anyway.
///
/// Drop decisions are driven by a deterministic counter (`drop_every`), and
/// TPDU identity by the fragmentation-invariant `C.SN − T.SN`.
#[derive(Debug)]
pub struct TurnerDropper {
    drop_every: u64,
    seen: u64,
    condemned: std::collections::HashSet<(u32, u32)>,
    /// Chunks dropped as the initial congestion victim.
    pub victims: u64,
    /// Chunks dropped because their TPDU was already condemned.
    pub followers: u64,
}

impl TurnerDropper {
    /// Creates a dropper that victimizes every `drop_every`-th chunk.
    pub fn new(drop_every: u64) -> Self {
        TurnerDropper {
            drop_every: drop_every.max(1),
            seen: 0,
            condemned: std::collections::HashSet::new(),
            victims: 0,
            followers: 0,
        }
    }

    fn tpdu_key(c: &Chunk) -> (u32, u32) {
        (
            c.header.conn.id,
            c.header.conn.sn.wrapping_sub(c.header.tpdu.sn),
        )
    }
}

impl PacketTransform for TurnerDropper {
    fn ingest(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let packet = Packet {
            bytes: frame.into(),
        };
        let Ok(chunks) = unpack(&packet) else {
            return Vec::new();
        };
        let mut keep = Vec::new();
        for c in chunks {
            if !c.header.ty.is_control() {
                let key = Self::tpdu_key(&c);
                if self.condemned.contains(&key) {
                    self.followers += 1;
                    continue;
                }
                self.seen += 1;
                if self.seen.is_multiple_of(self.drop_every) {
                    self.victims += 1;
                    self.condemned.insert(key);
                    continue;
                }
            }
            keep.push(c);
        }
        if keep.is_empty() {
            return Vec::new();
        }
        match pack(keep, packet.bytes.len().max(crate::link::MIN_REPACK_MTU)) {
            Ok(packets) => packets.into_iter().map(|p| p.bytes.to_vec()).collect(),
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::chunk::byte_chunk;
    use chunks_core::frag::ReassemblyPool;
    use chunks_core::label::FramingTuple;
    use chunks_core::wire::WIRE_HEADER_LEN;

    fn big_chunk(len: u32) -> Chunk {
        let payload: Vec<u8> = (0..len).map(|i| i as u8).collect();
        byte_chunk(
            FramingTuple::new(1, 0, false),
            FramingTuple::new(2, 0, true),
            FramingTuple::new(3, 0, false),
            &payload,
        )
    }

    fn frame_of(chunks: Vec<Chunk>, mtu: usize) -> Vec<u8> {
        let packets = pack(chunks, mtu).unwrap();
        assert_eq!(packets.len(), 1);
        packets[0].bytes.to_vec()
    }

    fn reassemble(frames: Vec<Vec<u8>>) -> Vec<Chunk> {
        let mut pool = ReassemblyPool::new();
        for f in frames {
            for c in unpack(&Packet { bytes: f.into() }).unwrap() {
                pool.insert(c);
            }
        }
        pool.segments().to_vec()
    }

    #[test]
    fn shrinking_mtu_splits_chunks() {
        let c = big_chunk(100);
        let frame = frame_of(vec![c.clone()], 10_000);
        let small = WIRE_HEADER_LEN + 40;
        let mut r = ChunkRouter::new(small, RefragPolicy::Repack);
        let out = r.ingest(frame);
        assert!(out.len() >= 3);
        for f in &out {
            assert!(f.len() <= small);
        }
        let seg = reassemble(out);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg[0], c);
    }

    #[test]
    fn one_per_packet_uses_more_packets_than_repack() {
        let chunks: Vec<Chunk> = (0..6u32)
            .map(|i| {
                byte_chunk(
                    FramingTuple::new(1, i * 10, false),
                    FramingTuple::new(2, i * 10, i == 5),
                    FramingTuple::new(3, i * 10, false),
                    &[i as u8; 10],
                )
            })
            .collect();
        let small = WIRE_HEADER_LEN + 10;
        // Arrive as six small packets, egress MTU large.
        let big = 10 * (WIRE_HEADER_LEN + 10);
        let frames: Vec<Vec<u8>> = chunks
            .iter()
            .map(|c| frame_of(vec![c.clone()], small))
            .collect();

        let mut one = ChunkRouter::new(big, RefragPolicy::OnePerPacket);
        let mut repack = ChunkRouter::new(big, RefragPolicy::Reassemble { window: 6 });
        let out_one: Vec<_> = frames.iter().flat_map(|f| one.ingest(f.clone())).collect();
        let mut out_re: Vec<_> = frames
            .iter()
            .flat_map(|f| repack.ingest(f.clone()))
            .collect();
        out_re.extend(repack.flush());
        assert_eq!(out_one.len(), 6, "method 1: one chunk per packet");
        assert_eq!(out_re.len(), 1, "method 3: merged into one envelope");
        assert!(repack.merges > 0);
        // Bytes on the wire shrink with reassembly (fewer headers).
        let b1: usize = out_one.iter().map(Vec::len).sum();
        let b3: usize = out_re.iter().map(Vec::len).sum();
        assert!(b3 < b1);
    }

    #[test]
    fn reassemble_window_flushes_remainder() {
        let c = big_chunk(20);
        let frame = frame_of(vec![c.clone()], 10_000);
        let mut r = ChunkRouter::new(10_000, RefragPolicy::Reassemble { window: 8 });
        assert!(r.ingest(frame).is_empty(), "held in window");
        let out = r.flush();
        assert_eq!(reassemble(out), vec![c]);
    }

    #[test]
    fn drop_oversize_policy() {
        let mut r = ChunkRouter::new(100, RefragPolicy::DropOversize);
        assert_eq!(r.ingest(vec![0u8; 100]).len(), 1);
        assert!(r.ingest(vec![0u8; 101]).is_empty());
        assert_eq!(r.drops, 1);
    }

    #[test]
    fn malformed_frame_dropped() {
        let mut r = ChunkRouter::new(1000, RefragPolicy::Repack);
        let mut junk = vec![0xFFu8; 64];
        junk[0] = 0x09; // invalid type
        assert!(r.ingest(junk).is_empty());
        assert_eq!(r.drops, 1);
    }

    #[test]
    fn refragmentation_is_transparent_end_to_end() {
        // big -> small -> big -> small chain; receiver sees ordinary chunks.
        let c = big_chunk(200);
        let h = WIRE_HEADER_LEN;
        let mut r1 = ChunkRouter::new(h + 50, RefragPolicy::Repack);
        let mut r2 = ChunkRouter::new(h + 170, RefragPolicy::Reassemble { window: 2 });
        let mut r3 = ChunkRouter::new(h + 30, RefragPolicy::Repack);
        let mut frames = vec![frame_of(vec![c.clone()], 10_000)];
        for r in [&mut r1 as &mut dyn PacketTransform, &mut r2, &mut r3] {
            let mut next: Vec<Vec<u8>> = frames.drain(..).flat_map(|f| r.ingest(f)).collect();
            next.extend(r.flush());
            frames = next;
        }
        let seg = reassemble(frames);
        assert_eq!(seg.len(), 1);
        assert_eq!(seg[0], c);
    }

    #[test]
    fn turner_dropper_condemns_whole_tpdu() {
        // Three TPDUs, four single-chunk frames each.
        let mut frames = Vec::new();
        for t in 0..3u32 {
            for k in 0..4u32 {
                let c = byte_chunk(
                    FramingTuple::new(1, t * 100 + k * 5, false),
                    FramingTuple::new(t, k * 5, k == 3),
                    FramingTuple::new(t, k * 5, false),
                    &[t as u8; 5],
                );
                frames.push(frame_of(vec![c], 1500));
            }
        }
        // Victimize every 5th data chunk: chunk #5 is TPDU 1's second chunk.
        let mut dropper = TurnerDropper::new(5);
        let mut survivors = 0;
        for f in frames {
            survivors += dropper
                .ingest(f)
                .iter()
                .map(|f| {
                    unpack(&Packet {
                        bytes: f.clone().into(),
                    })
                    .unwrap()
                    .len()
                })
                .sum::<usize>();
        }
        // The 5th non-condemned data chunk is TPDU 1's first chunk; the
        // rest of TPDU 1 then follows it into the bin.
        assert_eq!(dropper.victims, 1);
        assert_eq!(dropper.followers, 3, "the TPDU's other three chunks");
        assert_eq!(survivors as u64, 12 - dropper.victims - dropper.followers);
    }

    #[test]
    fn turner_dropper_passes_control_chunks() {
        let ed = Chunk::new(
            chunks_core::chunk::ChunkHeader::control(
                chunks_core::label::ChunkType::ErrorDetection,
                8,
                FramingTuple::new(1, 0, false),
                FramingTuple::new(0, 0, false),
                FramingTuple::new(0, 0, false),
            ),
            bytes::Bytes::from_static(&[0u8; 8]),
        )
        .unwrap();
        let mut dropper = TurnerDropper::new(1); // drop every data chunk
        let out = dropper.ingest(frame_of(vec![ed], 1500));
        assert_eq!(out.len(), 1, "control chunks are never victims");
        assert_eq!(dropper.victims, 0);
    }
}
