//! A sorted set of half-open `[start, end)` intervals over `u64`.

use std::fmt;

/// Set of disjoint, sorted, coalesced intervals.
///
/// Insertion reports how much of the inserted range was already present —
/// the duplicate-data signal virtual reassembly needs (§3.3).
///
/// ```
/// use chunks_vreasm::IntervalSet;
/// let mut s = IntervalSet::new();
/// assert_eq!(s.insert(0, 4), 0);
/// assert_eq!(s.insert(8, 12), 0);
/// assert_eq!(s.insert(2, 10), 4); // 4 positions were duplicates
/// assert!(s.is_contiguous_to(12));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IntervalSet {
    /// Disjoint, non-adjacent, sorted `[start, end)` ranges.
    ranges: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `[start, end)`, coalescing with neighbours.
    ///
    /// Returns the number of positions of the inserted range that were
    /// already covered (0 means the data was entirely new).
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "inverted interval");
        if start == end {
            return 0;
        }
        // Find all ranges that touch or overlap [start, end).
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let mut hi = lo;
        let mut overlap = 0;
        let mut new_start = start;
        let mut new_end = end;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            let (s, e) = self.ranges[hi];
            overlap += e.min(end).saturating_sub(s.max(start));
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            hi += 1;
        }
        self.ranges.splice(lo..hi, [(new_start, new_end)]);
        overlap
    }

    /// Removes `[start, end)` from the set, splitting ranges that straddle
    /// either boundary.
    ///
    /// Returns the number of covered positions removed (0 means nothing in
    /// the range was present). This is the inverse a receiver needs when a
    /// failed TPDU's claimed connection-space span is released for
    /// retransmission.
    ///
    /// ```
    /// use chunks_vreasm::IntervalSet;
    /// let mut s = IntervalSet::new();
    /// s.insert(0, 10);
    /// assert_eq!(s.subtract(3, 6), 3);
    /// assert_eq!(s.ranges(), &[(0, 3), (6, 10)]);
    /// ```
    pub fn subtract(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "inverted interval");
        if start == end {
            return 0;
        }
        let lo = self.ranges.partition_point(|&(_, e)| e <= start);
        let mut hi = lo;
        let mut removed = 0;
        let mut keep: Vec<(u64, u64)> = Vec::new();
        while hi < self.ranges.len() && self.ranges[hi].0 < end {
            let (s, e) = self.ranges[hi];
            removed += e.min(end) - s.max(start);
            if s < start {
                keep.push((s, start));
            }
            if e > end {
                keep.push((end, e));
            }
            hi += 1;
        }
        self.ranges.splice(lo..hi, keep);
        removed
    }

    /// True when `[start, end)` is fully covered.
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e < end);
        self.ranges
            .get(i)
            .is_some_and(|&(s, e)| s <= start && end <= e)
    }

    /// How much of `[start, end)` is already covered.
    pub fn overlap(&self, start: u64, end: u64) -> u64 {
        let lo = self.ranges.partition_point(|&(_, e)| e <= start);
        let mut total = 0;
        for &(s, e) in &self.ranges[lo..] {
            if s >= end {
                break;
            }
            total += e.min(end).saturating_sub(s.max(start));
        }
        total
    }

    /// Total positions covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// True when the set is exactly one range `[0, end)`.
    pub fn is_contiguous_to(&self, end: u64) -> bool {
        self.ranges == [(0, end)]
    }

    /// Number of disjoint ranges (the "gap count + 1" a VLSI reassembly unit
    /// would track).
    pub fn fragments(&self) -> usize {
        self.ranges.len()
    }

    /// The disjoint ranges, sorted.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Sub-ranges of `[start, end)` *not* covered by the set — what remains
    /// of a partially-duplicate fragment after trimming.
    pub fn uncovered(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = start;
        let lo = self.ranges.partition_point(|&(_, e)| e <= start);
        for &(s, e) in &self.ranges[lo..] {
            if s >= end {
                break;
            }
            if s > cursor {
                out.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if cursor < end {
            out.push((cursor, end));
        }
        out
    }

    /// Missing sub-ranges of `[0, end)` — the retransmission request list.
    pub fn gaps(&self, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for &(s, e) in &self.ranges {
            if s >= end {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(end)));
            }
            cursor = cursor.max(e);
        }
        if cursor < end {
            out.push((cursor, end));
        }
        out
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, e)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{s},{e})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_disjoint_and_coalesce() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(0, 5), 0);
        assert_eq!(s.insert(10, 15), 0);
        assert_eq!(s.fragments(), 2);
        // Bridge the gap: adjacent ranges coalesce.
        assert_eq!(s.insert(5, 10), 0);
        assert_eq!(s.fragments(), 1);
        assert!(s.is_contiguous_to(15));
    }

    #[test]
    fn insert_reports_overlap() {
        let mut s = IntervalSet::new();
        s.insert(0, 10);
        assert_eq!(s.insert(5, 15), 5);
        assert_eq!(s.insert(0, 15), 15);
        assert_eq!(s.covered(), 15);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut s = IntervalSet::new();
        assert_eq!(s.insert(7, 7), 0);
        assert_eq!(s.fragments(), 0);
        assert!(s.contains(3, 3), "empty range trivially contained");
    }

    #[test]
    fn contains_and_overlap() {
        let mut s = IntervalSet::new();
        s.insert(2, 6);
        s.insert(10, 12);
        assert!(s.contains(2, 6));
        assert!(s.contains(3, 5));
        assert!(!s.contains(2, 7));
        assert!(!s.contains(6, 10));
        assert_eq!(s.overlap(0, 20), 6);
        assert_eq!(s.overlap(5, 11), 2);
        assert_eq!(s.overlap(6, 10), 0);
    }

    #[test]
    fn gaps_lists_missing_ranges() {
        let mut s = IntervalSet::new();
        s.insert(2, 4);
        s.insert(8, 10);
        assert_eq!(s.gaps(12), vec![(0, 2), (4, 8), (10, 12)]);
        assert_eq!(s.gaps(4), vec![(0, 2)]);
        let full = {
            let mut t = IntervalSet::new();
            t.insert(0, 5);
            t
        };
        assert!(full.gaps(5).is_empty());
    }

    #[test]
    fn coalesce_across_multiple_ranges() {
        let mut s = IntervalSet::new();
        s.insert(0, 2);
        s.insert(4, 6);
        s.insert(8, 10);
        let ov = s.insert(1, 9);
        assert_eq!(ov, 1 + 2 + 1); // overlaps [1,2), [4,6), [8,9)
        assert_eq!(s.ranges(), &[(0, 10)]);
    }

    #[test]
    fn display_formats_ranges() {
        let mut s = IntervalSet::new();
        s.insert(1, 3);
        s.insert(5, 6);
        assert_eq!(s.to_string(), "{[1,3), [5,6)}");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        IntervalSet::new().insert(5, 4);
    }

    #[test]
    fn subtract_splits_and_reports_removed() {
        let mut s = IntervalSet::new();
        s.insert(0, 10);
        assert_eq!(s.subtract(3, 6), 3);
        assert_eq!(s.ranges(), &[(0, 3), (6, 10)]);
        // Removing something absent is a no-op.
        assert_eq!(s.subtract(3, 6), 0);
        assert_eq!(s.subtract(20, 30), 0);
        assert_eq!(s.ranges(), &[(0, 3), (6, 10)]);
    }

    #[test]
    fn subtract_spans_multiple_ranges() {
        let mut s = IntervalSet::new();
        s.insert(0, 4);
        s.insert(6, 10);
        s.insert(12, 16);
        assert_eq!(s.subtract(2, 14), 2 + 4 + 2);
        assert_eq!(s.ranges(), &[(0, 2), (14, 16)]);
    }

    #[test]
    fn subtract_exact_range_and_edges() {
        let mut s = IntervalSet::new();
        s.insert(5, 9);
        assert_eq!(s.subtract(5, 9), 4);
        assert!(s.ranges().is_empty());
        s.insert(5, 9);
        // Touching but not overlapping boundaries remove nothing.
        assert_eq!(s.subtract(0, 5), 0);
        assert_eq!(s.subtract(9, 12), 0);
        assert_eq!(s.ranges(), &[(5, 9)]);
        assert_eq!(s.subtract(7, 7), 0, "empty subtraction is a no-op");
    }

    #[test]
    fn subtract_is_inverse_of_insert() {
        // Randomised-ish sweep with a fixed pattern: insert then subtract
        // the same span always restores the complement structure.
        let mut s = IntervalSet::new();
        for k in 0..8u64 {
            s.insert(k * 10, k * 10 + 5);
        }
        let before = s.clone();
        let added = 5 - s.insert(12, 17); // overlaps [10,15)
        assert_eq!(added, 2);
        assert_eq!(s.subtract(15, 17), 2);
        assert_eq!(s, before, "subtracting the fresh part restores the set");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_subtract_panics() {
        IntervalSet::new().subtract(5, 4);
    }
}
