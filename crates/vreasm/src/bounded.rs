//! A hardware-shaped virtual reassembly unit with a *bounded gap list*.
//!
//! §3.3 notes that "virtual reassembly can be complex if data disordering
//! occurs" and points at VLSI implementations (STER 92's hardware unit,
//! McAuley's parallel assembly chip, MCAU 93b). Hardware cannot grow a
//! heap: it tracks at most a fixed number of disjoint received runs.
//! [`BoundedTracker`] models that budget — a fragment that would create a
//! run beyond the budget must be refused (dropped, to be retransmitted),
//! exactly like the `ASSEMBLER_MAX_SEGMENT_COUNT` limit in production
//! software stacks.
//!
//! The experiment ablation this enables: how large a gap list does a chunk
//! receiver need under a given disorder level before refusals become
//! negligible?

use crate::tracker::{PduTracker, TrackEvent};

/// Outcome of offering a fragment to a bounded tracker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundedEvent {
    /// Recorded (see [`TrackEvent::Accepted`]).
    Accepted,
    /// Rejected duplicate.
    Duplicate,
    /// Framing-inconsistent.
    Inconsistent,
    /// The gap-list budget is exhausted: the fragment was refused and must
    /// be retransmitted later.
    Refused,
}

/// A [`PduTracker`] constrained to at most `max_runs` disjoint runs.
#[derive(Clone, Debug)]
pub struct BoundedTracker {
    inner: PduTracker,
    max_runs: usize,
    /// Fragments refused for lack of gap-list space.
    pub refusals: u64,
}

impl BoundedTracker {
    /// Creates a tracker that can hold at most `max_runs` disjoint runs
    /// (hardware register count).
    pub fn new(max_runs: usize) -> Self {
        BoundedTracker {
            inner: PduTracker::new(),
            max_runs: max_runs.max(1),
            refusals: 0,
        }
    }

    /// Offers a fragment covering `[sn, sn+len)`.
    pub fn offer(&mut self, sn: u64, len: u64, st: bool) -> BoundedEvent {
        // Would this fragment create a new run? It does unless it touches
        // an existing run's edge. Probe on a clone (registers are cheap to
        // model; hardware computes this combinationally).
        let mut probe = self.inner.clone();
        match probe.offer(sn, len, st) {
            TrackEvent::Duplicate => return BoundedEvent::Duplicate,
            TrackEvent::Inconsistent => return BoundedEvent::Inconsistent,
            TrackEvent::Accepted => {}
        }
        if probe.fragments() > self.max_runs {
            self.refusals += 1;
            return BoundedEvent::Refused;
        }
        self.inner = probe;
        BoundedEvent::Accepted
    }

    /// See [`PduTracker::is_complete`].
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// Current number of disjoint runs held.
    pub fn runs(&self) -> usize {
        self.inner.fragments()
    }

    /// Elements received.
    pub fn covered(&self) -> u64 {
        self.inner.covered()
    }

    /// The run budget.
    pub fn max_runs(&self) -> usize {
        self.max_runs
    }

    /// Missing ranges (for retransmission of refused fragments).
    pub fn missing(&self) -> Vec<(u64, u64)> {
        self.inner.missing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_never_refuses_with_one_register() {
        let mut t = BoundedTracker::new(1);
        for k in 0..16 {
            assert_eq!(t.offer(k * 4, 4, k == 15), BoundedEvent::Accepted);
        }
        assert!(t.is_complete());
        assert_eq!(t.refusals, 0);
        assert_eq!(t.runs(), 1);
    }

    #[test]
    fn budget_exhaustion_refuses() {
        let mut t = BoundedTracker::new(2);
        assert_eq!(t.offer(0, 2, false), BoundedEvent::Accepted);
        assert_eq!(t.offer(4, 2, false), BoundedEvent::Accepted); // 2 runs
        assert_eq!(t.offer(8, 2, false), BoundedEvent::Refused); // would be 3
        assert_eq!(t.refusals, 1);
        // Filling a gap coalesces and frees a register.
        assert_eq!(t.offer(2, 2, false), BoundedEvent::Accepted);
        assert_eq!(t.runs(), 1);
        assert_eq!(t.offer(8, 2, false), BoundedEvent::Accepted);
    }

    #[test]
    fn refused_fragment_is_recoverable_by_retransmission() {
        let mut t = BoundedTracker::new(1);
        assert_eq!(t.offer(4, 4, true), BoundedEvent::Accepted);
        // Out-of-order head refused with one register...
        // (it would not touch the [4,8) run)
        assert_eq!(t.offer(0, 2, false), BoundedEvent::Refused);
        // ...but an adjacent extension is fine,
        assert_eq!(t.offer(2, 2, false), BoundedEvent::Accepted);
        // and now the head coalesces too.
        assert_eq!(t.offer(0, 2, false), BoundedEvent::Accepted);
        assert!(t.is_complete());
    }

    #[test]
    fn duplicates_and_inconsistencies_pass_through() {
        let mut t = BoundedTracker::new(4);
        t.offer(0, 4, true);
        assert_eq!(t.offer(0, 4, true), BoundedEvent::Duplicate);
        assert_eq!(t.offer(4, 4, false), BoundedEvent::Inconsistent);
    }

    #[test]
    fn larger_budget_tolerates_more_disorder() {
        // Even-indexed fragments first (each opens a run), odd ones after
        // (each coalesces two runs): peak demand is 4 registers.
        let order = [0u64, 2, 4, 6, 1, 3, 5, 7];
        let refusals = |budget: usize| {
            let mut t = BoundedTracker::new(budget);
            let mut refused = 0;
            for &k in &order {
                if t.offer(k * 4, 4, k == 7) == BoundedEvent::Refused {
                    refused += 1;
                }
            }
            refused
        };
        assert!(refusals(1) > refusals(2));
        assert!(refusals(2) > refusals(4));
        assert_eq!(refusals(4), 0, "peak demand is exactly four runs");
    }
}
