//! A finite *physical* reassembly buffer — the thing chunks let you delete.
//!
//! "Reassembly buffer lock-up occurs when the reassembly buffer is filled
//! completely and yet no single PDU is complete" (§3.3). Protocols that must
//! physically reassemble before processing (IP-style fragmentation) hold
//! fragments here; chunks are processed and moved to their final destination
//! on arrival, so they never enter such a buffer.
//!
//! Experiment B3 uses this model to measure lock-up frequency versus buffer
//! size under loss and disorder.

use std::collections::HashMap;

use crate::tracker::{PduTracker, TrackEvent};

/// Outcome of offering a fragment to the buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BufferEvent {
    /// Fragment stored; its PDU is still incomplete.
    Stored,
    /// Fragment completed its PDU; the PDU's bytes leave the buffer.
    Completed {
        /// Total payload bytes of the completed PDU.
        bytes: u64,
    },
    /// Fragment dropped: the buffer is full and no PDU could complete —
    /// the lock-up condition.
    DroppedFull,
    /// Duplicate fragment rejected (buffer unchanged).
    Duplicate,
    /// Framing-inconsistent fragment rejected.
    Inconsistent,
}

/// Per-PDU state held in the buffer.
#[derive(Debug)]
struct Entry {
    tracker: PduTracker,
    bytes: u64,
    /// Insertion stamp for oldest-first eviction (fragment timeout).
    born: u64,
}

/// A capacity-limited reassembly buffer keyed by PDU identifier.
#[derive(Debug)]
pub struct ReassemblyBuffer {
    capacity: u64,
    used: u64,
    clock: u64,
    pdus: HashMap<u64, Entry>,
    /// Number of times a fragment was dropped with the buffer full of
    /// incomplete PDUs.
    pub lockup_drops: u64,
    /// PDUs completed and delivered.
    pub completed: u64,
    /// PDUs evicted by timeout, with their buffered bytes wasted.
    pub evicted: u64,
}

impl ReassemblyBuffer {
    /// Creates a buffer of `capacity` payload bytes.
    pub fn new(capacity: u64) -> Self {
        ReassemblyBuffer {
            capacity,
            used: 0,
            clock: 0,
            pdus: HashMap::new(),
            lockup_drops: 0,
            completed: 0,
            evicted: 0,
        }
    }

    /// Bytes currently buffered.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Incomplete PDUs currently held.
    pub fn pending_pdus(&self) -> usize {
        self.pdus.len()
    }

    /// True when the buffer cannot accept `incoming` more bytes and no held
    /// PDU is complete — the lock-up state.
    pub fn is_locked_up(&self, incoming: u64) -> bool {
        self.used + incoming > self.capacity
    }

    /// Offers a fragment of `pdu` covering elements `[sn, sn+len)` (one
    /// byte per element in this model), `st` marking the final fragment.
    pub fn offer(&mut self, pdu: u64, sn: u64, len: u64, st: bool) -> BufferEvent {
        self.clock += 1;
        let born = self.clock;
        // Duplicate / consistency checks never consume space.
        let entry = self.pdus.entry(pdu).or_insert_with(|| Entry {
            tracker: PduTracker::new(),
            bytes: 0,
            born,
        });
        // Trial-apply on a copy so a fragment dropped for lack of space
        // leaves no trace (its retransmission must be accepted later).
        let mut probe = entry.tracker.clone();
        match probe.offer(sn, len, st) {
            TrackEvent::Duplicate => return BufferEvent::Duplicate,
            TrackEvent::Inconsistent => return BufferEvent::Inconsistent,
            TrackEvent::Accepted => {}
        }
        if probe.is_complete() {
            // The PDU leaves the buffer whole; the closing fragment itself
            // never needs to wait for space.
            let bytes = entry.bytes;
            self.used -= bytes;
            self.pdus.remove(&pdu);
            self.completed += 1;
            return BufferEvent::Completed { bytes: bytes + len };
        }
        if self.used + len > self.capacity {
            // Lock-up: the buffer is full of incomplete PDUs.
            if entry.bytes == 0 && entry.tracker.covered() == 0 {
                self.pdus.remove(&pdu);
            }
            self.lockup_drops += 1;
            return BufferEvent::DroppedFull;
        }
        entry.tracker = probe;
        entry.bytes += len;
        self.used += len;
        BufferEvent::Stored
    }

    /// Evicts the oldest incomplete PDU (fragment timeout), freeing its
    /// space. Returns the PDU id, or `None` when empty.
    pub fn evict_oldest(&mut self) -> Option<u64> {
        let (&pdu, _) = self.pdus.iter().min_by_key(|(_, e)| e.born)?;
        let entry = self.pdus.remove(&pdu).unwrap();
        self.used -= entry.bytes;
        self.evicted += 1;
        Some(pdu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_pdu_flows_through() {
        let mut b = ReassemblyBuffer::new(100);
        assert_eq!(b.offer(1, 0, 40, false), BufferEvent::Stored);
        assert_eq!(b.used(), 40);
        assert_eq!(
            b.offer(1, 40, 40, true),
            BufferEvent::Completed { bytes: 80 }
        );
        assert_eq!(b.used(), 0);
        assert_eq!(b.completed, 1);
    }

    #[test]
    fn lockup_when_full_of_incomplete_pdus() {
        let mut b = ReassemblyBuffer::new(100);
        // Three PDUs, each missing its tail: 90 bytes held.
        for pdu in 0..3 {
            assert_eq!(b.offer(pdu, 0, 30, false), BufferEvent::Stored);
        }
        // A 20-byte head of a fourth PDU cannot fit: lock-up.
        assert_eq!(b.offer(3, 0, 20, false), BufferEvent::DroppedFull);
        assert_eq!(b.lockup_drops, 1);
        assert!(b.is_locked_up(20));
    }

    #[test]
    fn closing_fragment_completes_even_when_full() {
        let mut b = ReassemblyBuffer::new(60);
        assert_eq!(b.offer(1, 0, 30, false), BufferEvent::Stored);
        assert_eq!(b.offer(2, 0, 30, false), BufferEvent::Stored);
        // Buffer is full, but PDU 1's tail completes it and frees space.
        assert_eq!(
            b.offer(1, 30, 30, true),
            BufferEvent::Completed { bytes: 60 }
        );
        assert_eq!(b.used(), 30);
    }

    #[test]
    fn eviction_frees_space() {
        let mut b = ReassemblyBuffer::new(50);
        b.offer(7, 0, 30, false);
        b.offer(8, 0, 20, false);
        assert_eq!(b.offer(9, 0, 10, false), BufferEvent::DroppedFull);
        assert_eq!(b.evict_oldest(), Some(7));
        assert_eq!(b.used(), 20);
        assert_eq!(b.offer(9, 0, 10, false), BufferEvent::Stored);
        assert_eq!(b.evicted, 1);
    }

    #[test]
    fn duplicates_do_not_consume_space() {
        let mut b = ReassemblyBuffer::new(100);
        b.offer(1, 0, 40, false);
        assert_eq!(b.offer(1, 0, 40, false), BufferEvent::Duplicate);
        assert_eq!(b.used(), 40);
    }

    #[test]
    fn inconsistent_fragment_reported() {
        let mut b = ReassemblyBuffer::new(100);
        // Establish the PDU end at element 15, then offer data beyond it —
        // a corrupted-offset fragment (Table 1 reassembly error).
        b.offer(2, 10, 5, true);
        assert_eq!(b.offer(2, 20, 5, false), BufferEvent::Inconsistent);
    }

    #[test]
    fn evict_on_empty_returns_none() {
        let mut b = ReassemblyBuffer::new(10);
        assert_eq!(b.evict_oldest(), None);
    }
}
