//! Virtual reassembly (§3.3 of the paper).
//!
//! "Regardless of whether we perform physical PDU reassembly, packet
//! reordering, or immediate packet processing, we must perform *virtual
//! reassembly* … keeping track of the received fragments to determine when
//! all of the fragments of a PDU have been received."
//!
//! The crate supplies:
//!
//! * [`IntervalSet`] — a compact set of received `[start, end)` ranges with
//!   overlap (duplicate) detection;
//! * [`ArenaIntervalSet`] — the same semantics over a recycling node slab,
//!   the allocation-free storage the receive hot path keeps per TPDU group
//!   (with `IntervalSet` serving as its property-test oracle);
//! * [`PduTracker`] — virtual reassembly of one PDU: completion detection
//!   from the stop bit, duplicate rejection (needed so the incremental
//!   checksum is not corrupted, §3.3), and inconsistency flags;
//! * [`buffer::ReassemblyBuffer`] — a model of a *physical* reassembly
//!   buffer with finite capacity, used to reproduce the reassembly-buffer
//!   **lock-up** phenomenon chunks eliminate (§3.3, citing Kent–Mogul);
//! * [`bounded::BoundedTracker`] — a VLSI-shaped tracker with a fixed gap
//!   budget, modelling the hardware units of STER 92 / MCAU 93b;
//! * [`reassembly::Reassembly`] — tagged intervals with an explicit
//!   [`reassembly::OverlapPolicy`], the hardened layer the transport uses
//!   to make attacker-controlled overlapping fragments well-defined.
//!
//! Completion falls out of coverage plus the stop bit — fragments may
//! arrive in any order:
//!
//! ```
//! use chunks_vreasm::PduTracker;
//!
//! let mut t = PduTracker::new();
//! t.offer(64, 32, true); // the tail arrives first (ST set: PDU ends at 96)
//! assert!(!t.is_complete());
//! t.offer(0, 64, false); // the head closes the single gap
//! assert!(t.is_complete());
//! assert_eq!(t.covered(), 96);
//! ```

#![deny(missing_docs)]

pub mod arena;
pub mod bounded;
pub mod buffer;
pub mod interval;
pub mod reassembly;
pub mod tracker;

pub use arena::ArenaIntervalSet;
pub use bounded::{BoundedEvent, BoundedTracker};
pub use buffer::{BufferEvent, ReassemblyBuffer};
pub use interval::IntervalSet;
pub use reassembly::{Claim, Conflict, OverlapPolicy, Reassembly, Resolution};
pub use tracker::{PduTracker, TrackEvent};
