//! Policy-aware reassembly: tagged intervals with explicit overlap policy.
//!
//! The paper's virtual reassembly assumes fragments are disjoint; real
//! attackers exploit exactly that assumption. OS and NIDS stacks disagree on
//! which copy of an overlapping fragment wins, and the ambiguity is a
//! classic evasion channel (Aubard et al., arXiv 2504.21618). [`Reassembly`]
//! makes the choice explicit: every claimed range carries an owner *tag*,
//! every claim reports the exact conflicting sub-ranges and their owners,
//! and an [`OverlapPolicy`] decides — deterministically and observably —
//! what happens when the bytes genuinely differ.
//!
//! The type deliberately tracks *positions, not bytes*: chunk processing
//! stays one-touch (§3.2), so the byte comparison that distinguishes a
//! benign duplicate from a conflicting rewrite is done by the caller, who
//! already owns the data. [`Reassembly::resolve`] then maps (policy,
//! bytes-differ) to a [`Resolution`]. Whatever the policy keeps, WSC-2
//! verification remains the integrity authority: a resolution can pick
//! which bytes to *hold*, but only the end-to-end invariant can pass them.

use crate::interval::IntervalSet;
use std::fmt;

/// What to do when an arriving fragment overlaps already-claimed positions
/// whose bytes differ from the copy already held.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OverlapPolicy {
    /// Fail the PDU outright: a conflicting overlap is treated as an attack
    /// (or unrecoverable corruption) and surfaces as a typed error.
    Reject,
    /// Keep the bytes that arrived first; the conflicting copy is dropped.
    /// This is the classic BSD behaviour and the crate's default — it is
    /// what silent duplicate-trimming already implemented, now with the
    /// conflict made visible.
    #[default]
    FirstWins,
    /// Overwrite with the bytes that arrived last (the Linux/teardrop-era
    /// behaviour). The caller must patch its incremental invariant with the
    /// XOR of old and new bytes so the final WSC-2 comparison still judges
    /// the bytes actually held.
    LastWins,
}

impl OverlapPolicy {
    /// All policies, in sweep order.
    pub const ALL: [OverlapPolicy; 3] = [
        OverlapPolicy::Reject,
        OverlapPolicy::FirstWins,
        OverlapPolicy::LastWins,
    ];

    /// Stable lowercase name (used in events, bench rows, and docs).
    pub fn as_str(&self) -> &'static str {
        match self {
            OverlapPolicy::Reject => "reject",
            OverlapPolicy::FirstWins => "first-wins",
            OverlapPolicy::LastWins => "last-wins",
        }
    }

    /// Parses the [`Self::as_str`] form back.
    pub fn parse(s: &str) -> Option<OverlapPolicy> {
        OverlapPolicy::ALL.into_iter().find(|p| p.as_str() == s)
    }

    /// Maps the policy and a byte-comparison verdict to what the caller
    /// should do with the conflicting region.
    pub fn resolve(&self, bytes_differ: bool) -> Resolution {
        if !bytes_differ {
            return Resolution::Duplicate;
        }
        match self {
            OverlapPolicy::Reject => Resolution::Fail,
            OverlapPolicy::FirstWins => Resolution::KeepHeld,
            OverlapPolicy::LastWins => Resolution::Overwrite,
        }
    }
}

impl fmt::Display for OverlapPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One conflicting sub-range of a claim: `[start, end)` is already owned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Conflict {
    /// First overlapped position.
    pub start: u64,
    /// One past the last overlapped position.
    pub end: u64,
    /// Tag of the current owner of the overlapped positions (for the
    /// transport: the owning TPDU group's connection-space start).
    pub tag: u64,
}

impl Conflict {
    /// Positions in conflict.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the conflict spans no positions.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The outcome of probing or claiming a range.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Claim {
    /// Sub-ranges of the claim that were previously unclaimed (now owned by
    /// the claimant if the claim mutated the set).
    pub fresh: Vec<(u64, u64)>,
    /// Sub-ranges already owned, with their current owners.
    pub conflicts: Vec<Conflict>,
}

impl Claim {
    /// True when nothing in the claimed range was previously owned.
    pub fn is_clean(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Total conflicting positions.
    pub fn conflict_len(&self) -> u64 {
        self.conflicts.iter().map(Conflict::len).sum()
    }
}

/// What the caller should do with a conflicting overlap, given the policy
/// and whether the overlapping bytes actually differ.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Resolution {
    /// Bytes identical: a benign duplicate under every policy. Trim and
    /// count it; nothing to diagnose.
    Duplicate,
    /// Fail the PDU with a typed error ([`OverlapPolicy::Reject`]).
    Fail,
    /// Keep the held bytes, drop the arriving copy
    /// ([`OverlapPolicy::FirstWins`]).
    KeepHeld,
    /// Overwrite the held bytes with the arriving copy and patch the
    /// incremental invariant ([`OverlapPolicy::LastWins`]).
    Overwrite,
}

/// Tagged interval claims with an explicit overlap policy.
///
/// The per-position state [`IntervalSet`] tracks implicitly ("claimed or
/// not") is extended with an owner tag per range, so a conflict can name
/// *who* owns the contested positions — the byte-precise diagnostic the
/// receive path emits before any policy decision.
///
/// ```
/// use chunks_vreasm::{OverlapPolicy, Reassembly, Resolution};
/// let mut r = Reassembly::new(OverlapPolicy::FirstWins);
/// assert!(r.claim(0, 8, 100).is_clean());
/// let c = r.claim(6, 12, 200); // [6, 8) already owned by tag 100
/// assert_eq!(c.fresh, vec![(8, 12)]);
/// assert_eq!(c.conflicts[0].tag, 100);
/// assert_eq!(r.resolve(true), Resolution::KeepHeld);
/// assert_eq!(r.resolve(false), Resolution::Duplicate);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Reassembly {
    /// Disjoint, sorted `(start, end, tag)` ranges; adjacent ranges coalesce
    /// only when their tags match.
    ranges: Vec<(u64, u64, u64)>,
    policy: OverlapPolicy,
}

impl Reassembly {
    /// Creates an empty set under `policy`.
    pub fn new(policy: OverlapPolicy) -> Self {
        Reassembly {
            ranges: Vec::new(),
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> OverlapPolicy {
        self.policy
    }

    /// Maps the policy and a byte-comparison verdict to what the caller
    /// should do with the conflicting region. Delegates to
    /// [`OverlapPolicy::resolve`].
    pub fn resolve(&self, bytes_differ: bool) -> Resolution {
        self.policy.resolve(bytes_differ)
    }

    /// Reports what claiming `[start, end)` would find, without mutating
    /// the set — the probe a [`OverlapPolicy::Reject`] caller makes before
    /// deciding to fail instead of claim.
    pub fn probe(&self, start: u64, end: u64) -> Claim {
        assert!(start <= end, "inverted interval");
        let mut out = Claim::default();
        let mut cursor = start;
        let lo = self.ranges.partition_point(|&(_, e, _)| e <= start);
        for &(s, e, tag) in &self.ranges[lo..] {
            if s >= end {
                break;
            }
            if s > cursor {
                out.fresh.push((cursor, s));
            }
            out.conflicts.push(Conflict {
                start: s.max(start),
                end: e.min(end),
                tag,
            });
            cursor = cursor.max(e);
        }
        if cursor < end {
            out.fresh.push((cursor, end));
        }
        out
    }

    /// Claims `[start, end)` for `tag`: previously unclaimed sub-ranges are
    /// now owned by `tag`; already-owned sub-ranges keep their owner and are
    /// reported as conflicts. Returns the same [`Claim`] as [`Self::probe`].
    pub fn claim(&mut self, start: u64, end: u64, tag: u64) -> Claim {
        let out = self.probe(start, end);
        for &(s, e) in &out.fresh {
            self.insert_owned(s, e, tag);
        }
        out
    }

    /// Claims `[start, end)` for `tag` when the caller has already verified
    /// (via [`Self::overlap`] returning 0) that nothing in the span is
    /// owned. This is the hot-path shortcut: unlike [`Self::claim`] it
    /// builds no [`Claim`] and allocates nothing beyond amortised `Vec`
    /// growth (see [`Self::reserve`]).
    pub fn claim_uncontested(&mut self, start: u64, end: u64, tag: u64) {
        debug_assert_eq!(
            self.overlap(start, end),
            0,
            "claim_uncontested requires a clean span"
        );
        self.insert_owned(start, end, tag);
    }

    /// Pre-sizes the range table for `fragments` additional disjoint ranges,
    /// so a steady-state claim stream stays allocation-free.
    pub fn reserve(&mut self, fragments: usize) {
        self.ranges.reserve(fragments);
    }

    /// Inserts a range known to be disjoint from everything present.
    ///
    /// Written with `insert`/indexed writes rather than `Vec::splice`:
    /// splice's pure-insertion case collects the replacement through a
    /// temporary `Vec`, which would put one heap allocation on every claim.
    fn insert_owned(&mut self, start: u64, end: u64, tag: u64) {
        if start == end {
            return;
        }
        let at = self.ranges.partition_point(|&(s, _, _)| s < start);
        // Coalesce with same-tag neighbours that touch exactly.
        let mut new = (start, end, tag);
        let mut merge_prev = false;
        let mut merge_next = false;
        if at > 0 {
            let (ps, pe, pt) = self.ranges[at - 1];
            if pe == start && pt == tag {
                new.0 = ps;
                merge_prev = true;
            }
        }
        if at < self.ranges.len() {
            let (ns, ne, nt) = self.ranges[at];
            if ns == end && nt == tag {
                new.1 = ne;
                merge_next = true;
            }
        }
        match (merge_prev, merge_next) {
            (false, false) => self.ranges.insert(at, new),
            (true, false) => self.ranges[at - 1] = new,
            (false, true) => self.ranges[at] = new,
            (true, true) => {
                self.ranges[at - 1] = new;
                self.ranges.remove(at);
            }
        }
    }

    /// Transfers ownership of every claimed position inside `[start, end)`
    /// to `tag` — the [`OverlapPolicy::LastWins`] bookkeeping step after the
    /// caller has overwritten the held bytes.
    pub fn reown(&mut self, start: u64, end: u64, tag: u64) {
        self.release_span(start, end);
        self.insert_owned_merging(start, end, tag);
    }

    /// Inserts `[start, end)` for `tag`, overwriting nothing (the span must
    /// have been released first) but coalescing with same-tag neighbours.
    fn insert_owned_merging(&mut self, start: u64, end: u64, tag: u64) {
        self.insert_owned(start, end, tag);
    }

    /// Releases every position in `[start, end)` regardless of owner,
    /// splitting straddling ranges. Returns positions freed.
    pub fn release_span(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "inverted interval");
        if start == end {
            return 0;
        }
        let lo = self.ranges.partition_point(|&(_, e, _)| e <= start);
        let mut hi = lo;
        let mut removed = 0;
        let mut keep: Vec<(u64, u64, u64)> = Vec::new();
        while hi < self.ranges.len() && self.ranges[hi].0 < end {
            let (s, e, tag) = self.ranges[hi];
            removed += e.min(end) - s.max(start);
            if s < start {
                keep.push((s, start, tag));
            }
            if e > end {
                keep.push((end, e, tag));
            }
            hi += 1;
        }
        self.ranges.splice(lo..hi, keep);
        removed
    }

    /// Releases every range owned by `tag` — what a receiver calls when the
    /// owning PDU group fails or is evicted. Returns positions freed.
    pub fn release(&mut self, tag: u64) -> u64 {
        let mut freed = 0;
        self.ranges.retain(|&(s, e, t)| {
            if t == tag {
                freed += e - s;
                false
            } else {
                true
            }
        });
        freed
    }

    /// Releases every range, every owner — the wholesale form of
    /// [`Self::release`] a receiver shell calls when it is quiesced for
    /// reuse by a different connection. Keeps the interval table's
    /// capacity, so a pooled shell re-arms without touching the allocator.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// How much of `[start, end)` is claimed (by anyone).
    pub fn overlap(&self, start: u64, end: u64) -> u64 {
        let lo = self.ranges.partition_point(|&(_, e, _)| e <= start);
        let mut total = 0;
        for &(s, e, _) in &self.ranges[lo..] {
            if s >= end {
                break;
            }
            total += e.min(end).saturating_sub(s.max(start));
        }
        total
    }

    /// Total claimed positions.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e, _)| e - s).sum()
    }

    /// Number of disjoint tagged ranges held — the interval-table occupancy
    /// a resource budget caps.
    pub fn fragments(&self) -> usize {
        self.ranges.len()
    }

    /// The owner of position `pos`, if claimed.
    pub fn owner_of(&self, pos: u64) -> Option<u64> {
        let i = self.ranges.partition_point(|&(_, e, _)| e <= pos);
        self.ranges
            .get(i)
            .and_then(|&(s, _, t)| (s <= pos).then_some(t))
    }

    /// The untagged coverage, as a plain [`IntervalSet`].
    pub fn coverage(&self) -> IntervalSet {
        let mut set = IntervalSet::new();
        for &(s, e, _) in &self.ranges {
            set.insert(s, e);
        }
        set
    }
}

impl fmt::Display for Reassembly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, e, t)) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{s},{e})#{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_claims_coalesce_per_tag() {
        let mut r = Reassembly::new(OverlapPolicy::Reject);
        assert!(r.claim(0, 4, 1).is_clean());
        assert!(r.claim(4, 8, 1).is_clean());
        assert_eq!(r.fragments(), 1, "same-tag adjacency coalesces");
        assert!(r.claim(8, 12, 2).is_clean());
        assert_eq!(r.fragments(), 2, "different tags never coalesce");
        assert_eq!(r.covered(), 12);
    }

    #[test]
    fn conflicts_name_the_owner_and_exact_range() {
        let mut r = Reassembly::new(OverlapPolicy::Reject);
        r.claim(10, 20, 7);
        r.claim(30, 40, 9);
        let c = r.probe(15, 35);
        assert_eq!(c.fresh, vec![(20, 30)]);
        assert_eq!(
            c.conflicts,
            vec![
                Conflict {
                    start: 15,
                    end: 20,
                    tag: 7
                },
                Conflict {
                    start: 30,
                    end: 35,
                    tag: 9
                },
            ]
        );
        assert_eq!(c.conflict_len(), 10);
        // Probe did not mutate.
        assert_eq!(r.covered(), 20);
    }

    #[test]
    fn claim_takes_only_the_fresh_parts() {
        let mut r = Reassembly::new(OverlapPolicy::FirstWins);
        r.claim(0, 8, 1);
        let c = r.claim(4, 12, 2);
        assert_eq!(c.fresh, vec![(8, 12)]);
        assert_eq!(c.conflicts.len(), 1);
        assert_eq!(r.owner_of(6), Some(1), "held positions keep their owner");
        assert_eq!(r.owner_of(9), Some(2));
        assert_eq!(r.owner_of(12), None);
    }

    #[test]
    fn resolution_matrix() {
        for p in OverlapPolicy::ALL {
            assert_eq!(Reassembly::new(p).resolve(false), Resolution::Duplicate);
        }
        assert_eq!(
            Reassembly::new(OverlapPolicy::Reject).resolve(true),
            Resolution::Fail
        );
        assert_eq!(
            Reassembly::new(OverlapPolicy::FirstWins).resolve(true),
            Resolution::KeepHeld
        );
        assert_eq!(
            Reassembly::new(OverlapPolicy::LastWins).resolve(true),
            Resolution::Overwrite
        );
    }

    #[test]
    fn release_frees_exactly_one_tag() {
        let mut r = Reassembly::new(OverlapPolicy::LastWins);
        r.claim(0, 10, 1);
        r.claim(20, 30, 2);
        r.claim(40, 50, 1);
        assert_eq!(r.release(1), 20);
        assert_eq!(r.covered(), 10);
        assert_eq!(r.owner_of(25), Some(2));
        assert_eq!(r.release(1), 0, "second release is a no-op");
    }

    #[test]
    fn reown_transfers_the_contested_span() {
        let mut r = Reassembly::new(OverlapPolicy::LastWins);
        r.claim(0, 10, 1);
        r.reown(4, 8, 2);
        assert_eq!(r.owner_of(2), Some(1));
        assert_eq!(r.owner_of(5), Some(2));
        assert_eq!(r.owner_of(9), Some(1));
        assert_eq!(r.covered(), 10);
        assert_eq!(r.fragments(), 3);
        // Re-owning back restores a single coalesced range... per tag.
        r.reown(4, 8, 1);
        assert_eq!(r.fragments(), 1);
    }

    #[test]
    fn release_span_splits_straddlers() {
        let mut r = Reassembly::new(OverlapPolicy::Reject);
        r.claim(0, 10, 1);
        assert_eq!(r.release_span(3, 7), 4);
        assert_eq!(r.covered(), 6);
        assert_eq!(r.owner_of(3), None);
        assert_eq!(r.owner_of(8), Some(1));
    }

    #[test]
    fn coverage_matches_an_interval_set() {
        let mut r = Reassembly::new(OverlapPolicy::Reject);
        r.claim(0, 4, 1);
        r.claim(4, 8, 2);
        r.claim(12, 16, 1);
        let set = r.coverage();
        assert_eq!(set.ranges(), &[(0, 8), (12, 16)]);
        assert_eq!(r.overlap(2, 14), set.overlap(2, 14));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in OverlapPolicy::ALL {
            assert_eq!(OverlapPolicy::parse(p.as_str()), Some(p));
            assert_eq!(p.to_string(), p.as_str());
        }
        assert_eq!(OverlapPolicy::parse("bogus"), None);
        assert_eq!(OverlapPolicy::default(), OverlapPolicy::FirstWins);
    }

    #[test]
    fn claim_uncontested_matches_claim_on_clean_spans() {
        let mut a = Reassembly::new(OverlapPolicy::FirstWins);
        let mut b = Reassembly::new(OverlapPolicy::FirstWins);
        for (s, e, t) in [(0, 4, 1), (4, 8, 1), (20, 30, 2), (8, 20, 3)] {
            assert!(a.claim(s, e, t).is_clean());
            assert_eq!(b.overlap(s, e), 0);
            b.claim_uncontested(s, e, t);
            assert_eq!(a, b);
        }
        assert_eq!(a.fragments(), 3);
    }

    #[test]
    fn empty_and_inverted_edges() {
        let mut r = Reassembly::new(OverlapPolicy::Reject);
        assert!(r.claim(5, 5, 1).is_clean());
        assert_eq!(r.fragments(), 0);
        assert_eq!(r.release_span(3, 3), 0);
        let c = Claim::default();
        assert!(c.is_clean());
        assert!(Conflict {
            start: 2,
            end: 2,
            tag: 0
        }
        .is_empty());
    }
}
