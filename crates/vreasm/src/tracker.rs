//! Per-PDU virtual reassembly.

use crate::arena::ArenaIntervalSet;

/// Outcome of offering a fragment to a [`PduTracker`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrackEvent {
    /// Entirely new data was recorded; the caller should process it (e.g.
    /// absorb it into the incremental checksum and place it in application
    /// memory).
    Accepted,
    /// The fragment (partly) duplicates already-received data and must be
    /// rejected *before* processing: re-absorbing would corrupt the
    /// incremental checksum, and a corrupted duplicate could overwrite good
    /// data (§3.3).
    Duplicate,
    /// The fragment disagrees with previously seen framing (two different
    /// stop positions, or data past the stop): a reassembly error (Table 1).
    Inconsistent,
}

/// Virtual reassembly state for a single PDU.
///
/// Tracks which element sequence numbers `[sn, sn+len)` have been received
/// and where the PDU ends (learned from the fragment whose stop bit is set).
#[derive(Clone, Debug, Default)]
pub struct PduTracker {
    /// Arena-backed so a tracker recycled across TPDUs (the receiver's
    /// group pool) reaches steady state without touching the allocator.
    received: ArenaIntervalSet,
    /// One-past-the-last element SN, known once an ST-bearing fragment
    /// arrives.
    end: Option<u64>,
    duplicates: u64,
}

impl PduTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a fragment covering elements `[sn, sn + len)`; `st` signals
    /// that the fragment's last element ends the PDU.
    pub fn offer(&mut self, sn: u64, len: u64, st: bool) -> TrackEvent {
        let end = sn + len;
        // Framing consistency first (Table 1 "Reassembly Error" rows).
        if let Some(known_end) = self.end {
            if end > known_end || (st && end != known_end) {
                return TrackEvent::Inconsistent;
            }
        }
        if self.received.overlap(sn, end) > 0 {
            self.duplicates += 1;
            return TrackEvent::Duplicate;
        }
        if st {
            if self.received.last_end().is_some_and(|e| e > end) {
                return TrackEvent::Inconsistent;
            }
            self.end = Some(end);
        }
        self.received.insert(sn, end);
        TrackEvent::Accepted
    }

    /// True when every element `[0, end)` has been received — the PDU is
    /// *virtually reassembled* and (for instance) the incremental checksum
    /// is ready to compare (§3.3).
    pub fn is_complete(&self) -> bool {
        self.end
            .is_some_and(|end| self.received.is_contiguous_to(end))
    }

    /// The PDU length in elements, once known.
    pub fn known_end(&self) -> Option<u64> {
        self.end
    }

    /// Elements received so far.
    pub fn covered(&self) -> u64 {
        self.received.covered()
    }

    /// Number of disjoint received runs.
    pub fn fragments(&self) -> usize {
        self.received.fragments()
    }

    /// Count of duplicate fragments rejected.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// How much of `[sn, sn+len)` has already been received. Allocation-free
    /// — the hot path checks this before reaching for [`Self::uncovered`],
    /// which builds a `Vec` and is only needed on the (cold) duplicate path.
    pub fn overlap(&self, sn: u64, len: u64) -> u64 {
        self.received.overlap(sn, sn + len)
    }

    /// Sub-ranges of `[sn, sn+len)` not yet received — lets a receiver trim
    /// a partially-duplicate fragment (a retransmission cut at different
    /// points) down to its new data before processing.
    pub fn uncovered(&self, sn: u64, len: u64) -> Vec<(u64, u64)> {
        self.received.uncovered(sn, sn + len)
    }

    /// Missing element ranges (needs the end to be known for the tail gap).
    pub fn missing(&self) -> Vec<(u64, u64)> {
        match self.end {
            Some(end) => self.received.gaps(end),
            None => {
                // Without the stop bit we only know about interior gaps.
                let last = self.received.last_end().unwrap_or(0);
                self.received.gaps(last)
            }
        }
    }

    /// Resets the tracker for reuse on a new PDU, recycling interval nodes
    /// in place. The slab keeps its capacity — this is what lets a pooled
    /// TPDU group be re-armed without allocating.
    pub fn clear(&mut self) {
        self.received.clear();
        self.end = None;
        self.duplicates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_completion() {
        let mut t = PduTracker::new();
        assert_eq!(t.offer(0, 4, false), TrackEvent::Accepted);
        assert!(!t.is_complete());
        assert_eq!(t.offer(4, 4, true), TrackEvent::Accepted);
        assert!(t.is_complete());
        assert_eq!(t.known_end(), Some(8));
    }

    #[test]
    fn out_of_order_completion() {
        let mut t = PduTracker::new();
        assert_eq!(t.offer(4, 4, true), TrackEvent::Accepted);
        assert!(!t.is_complete());
        assert_eq!(t.offer(0, 4, false), TrackEvent::Accepted);
        assert!(t.is_complete());
    }

    #[test]
    fn duplicates_rejected_and_counted() {
        let mut t = PduTracker::new();
        t.offer(0, 4, false);
        assert_eq!(t.offer(0, 4, false), TrackEvent::Duplicate);
        assert_eq!(t.offer(2, 4, false), TrackEvent::Duplicate);
        assert_eq!(t.duplicates(), 2);
        assert_eq!(t.covered(), 4);
    }

    #[test]
    fn data_past_stop_is_inconsistent() {
        let mut t = PduTracker::new();
        assert_eq!(t.offer(0, 4, true), TrackEvent::Accepted);
        assert_eq!(t.offer(4, 2, false), TrackEvent::Inconsistent);
    }

    #[test]
    fn conflicting_stop_positions_inconsistent() {
        let mut t = PduTracker::new();
        assert_eq!(t.offer(4, 4, true), TrackEvent::Accepted);
        assert_eq!(t.offer(0, 2, true), TrackEvent::Inconsistent);
        // A corrupted T.ST appearing beyond already-seen data:
        let mut u = PduTracker::new();
        assert_eq!(u.offer(0, 8, false), TrackEvent::Accepted);
        assert_eq!(u.offer(2, 2, true), TrackEvent::Duplicate);
    }

    #[test]
    fn stop_before_received_tail_inconsistent() {
        let mut t = PduTracker::new();
        assert_eq!(t.offer(6, 2, false), TrackEvent::Accepted);
        assert_eq!(t.offer(0, 2, true), TrackEvent::Inconsistent);
    }

    #[test]
    fn missing_ranges_drive_retransmission() {
        let mut t = PduTracker::new();
        t.offer(0, 2, false);
        t.offer(6, 2, true);
        assert_eq!(t.missing(), vec![(2, 6)]);
        t.offer(2, 4, false);
        assert!(t.is_complete());
        assert!(t.missing().is_empty());
    }

    #[test]
    fn interior_gaps_without_known_end() {
        let mut t = PduTracker::new();
        t.offer(0, 2, false);
        t.offer(4, 2, false);
        assert_eq!(t.missing(), vec![(2, 4)]);
        assert_eq!(t.fragments(), 2);
    }

    #[test]
    fn overlap_mirrors_uncovered_emptiness() {
        let mut t = PduTracker::new();
        t.offer(0, 4, false);
        t.offer(8, 4, false);
        assert_eq!(t.overlap(4, 4), 0);
        assert_eq!(t.uncovered(4, 4), vec![(4, 8)]);
        assert_eq!(t.overlap(2, 4), 2);
        assert_eq!(t.overlap(0, 12), 8);
    }

    #[test]
    fn clear_re_arms_for_a_new_pdu() {
        let mut t = PduTracker::new();
        t.offer(0, 4, false);
        t.offer(0, 4, false); // duplicate
        t.offer(4, 4, true);
        assert!(t.is_complete());
        t.clear();
        assert!(!t.is_complete());
        assert_eq!(t.known_end(), None);
        assert_eq!(t.covered(), 0);
        assert_eq!(t.duplicates(), 0);
        assert_eq!(t.offer(0, 2, true), TrackEvent::Accepted);
        assert!(t.is_complete());
    }
}
