//! Slab/arena-backed interval storage for the receive hot path.
//!
//! [`crate::IntervalSet`] keeps its ranges in a sorted `Vec` and splices on
//! every insert — correct, but a fresh set allocates on first insert and a
//! `Vec::splice` insertion allocates a temporary, so a receiver that opens a
//! tracker per TPDU pays allocator traffic per PDU. [`ArenaIntervalSet`]
//! stores interval nodes in a slab owned by the set, threaded as a sorted
//! singly-linked list with an intrusive free list. Nodes freed by
//! coalescing, subtraction, or [`ArenaIntervalSet::clear`] are recycled, so
//! a cleared set reused for the next TPDU reaches steady state with **zero**
//! allocations: the slab's high-water mark is the worst observed
//! fragmentation, not the traffic volume.
//!
//! Semantics are bit-for-bit those of `IntervalSet` (which serves as the
//! property-test oracle in `tests/chunk_closure_props.rs`): half-open
//! `[start, end)` ranges, adjacent ranges coalesce, `insert` reports the
//! already-covered overlap and `subtract` the removed coverage.

use std::fmt;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    start: u64,
    end: u64,
    next: u32,
}

/// Set of disjoint, sorted, coalesced `[start, end)` intervals backed by a
/// recycling node slab. See the module docs for why this exists; see
/// [`crate::IntervalSet`] for the reference semantics.
#[derive(Clone, Debug)]
pub struct ArenaIntervalSet {
    nodes: Vec<Node>,
    head: u32,
    free: u32,
    len: usize,
    covered: u64,
}

impl Default for ArenaIntervalSet {
    fn default() -> Self {
        ArenaIntervalSet {
            nodes: Vec::new(),
            head: NIL,
            free: NIL,
            len: 0,
            covered: 0,
        }
    }
}

impl ArenaIntervalSet {
    /// Creates an empty set with no slab capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the slab for at least `nodes` interval nodes.
    pub fn reserve(&mut self, nodes: usize) {
        let have = self.nodes.capacity() - self.nodes.len() + self.free_count();
        if nodes > have {
            self.nodes.reserve(nodes - have);
        }
    }

    fn free_count(&self) -> usize {
        let mut n = 0;
        let mut i = self.free;
        while i != NIL {
            n += 1;
            i = self.nodes[i as usize].next;
        }
        n
    }

    fn alloc(&mut self, start: u64, end: u64, next: u32) -> u32 {
        if self.free != NIL {
            let i = self.free;
            self.free = self.nodes[i as usize].next;
            self.nodes[i as usize] = Node { start, end, next };
            i
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(Node { start, end, next });
            i
        }
    }

    fn release(&mut self, i: u32) {
        self.nodes[i as usize].next = self.free;
        self.free = i;
    }

    /// Inserts `[start, end)`, coalescing with overlapping or adjacent
    /// ranges. Returns the number of positions already covered (0 means the
    /// data was entirely new). Allocation-free whenever a recycled node is
    /// available or no new node is needed.
    pub fn insert(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "inverted interval");
        if start == end {
            return 0;
        }
        // Skip nodes entirely before the inserted range (end < start — a
        // node touching at `start` coalesces).
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL && self.nodes[cur as usize].end < start {
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        // Merge every node that overlaps or touches `[start, end)`.
        let mut overlap = 0u64;
        let mut merged_len = 0u64;
        let mut new_start = start;
        let mut new_end = end;
        while cur != NIL && self.nodes[cur as usize].start <= end {
            let Node {
                start: s,
                end: e,
                next,
            } = self.nodes[cur as usize];
            overlap += e.min(end).saturating_sub(s.max(start));
            merged_len += e - s;
            new_start = new_start.min(s);
            new_end = new_end.max(e);
            self.release(cur);
            self.len -= 1;
            cur = next;
        }
        let node = self.alloc(new_start, new_end, cur);
        if prev == NIL {
            self.head = node;
        } else {
            self.nodes[prev as usize].next = node;
        }
        self.len += 1;
        self.covered += (new_end - new_start) - merged_len;
        overlap
    }

    /// Removes `[start, end)`, splitting ranges that straddle either
    /// boundary. Returns the number of covered positions removed.
    pub fn subtract(&mut self, start: u64, end: u64) -> u64 {
        assert!(start <= end, "inverted interval");
        if start == end {
            return 0;
        }
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL && self.nodes[cur as usize].end <= start {
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        let mut removed = 0u64;
        while cur != NIL && self.nodes[cur as usize].start < end {
            let Node {
                start: s,
                end: e,
                next,
            } = self.nodes[cur as usize];
            removed += e.min(end) - s.max(start);
            if s < start && e > end {
                // Straddles both boundaries: trim in place, split off tail.
                self.nodes[cur as usize].end = start;
                let tail = self.alloc(end, e, next);
                self.nodes[cur as usize].next = tail;
                self.len += 1;
                break;
            } else if s < start {
                // Keep the head piece.
                self.nodes[cur as usize].end = start;
                prev = cur;
                cur = next;
            } else if e > end {
                // Keep the tail piece; sorted order means we are done.
                self.nodes[cur as usize].start = end;
                break;
            } else {
                // Fully covered: unlink and recycle.
                if prev == NIL {
                    self.head = next;
                } else {
                    self.nodes[prev as usize].next = next;
                }
                self.release(cur);
                self.len -= 1;
                cur = next;
            }
        }
        self.covered -= removed;
        removed
    }

    /// True when `[start, end)` is fully covered.
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.start <= start {
                if end <= n.end {
                    return true;
                }
                if n.end > start {
                    return false;
                }
            } else {
                return false;
            }
            cur = n.next;
        }
        false
    }

    /// How much of `[start, end)` is already covered. Allocation-free.
    pub fn overlap(&self, start: u64, end: u64) -> u64 {
        let mut total = 0;
        let mut cur = self.head;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.start >= end {
                break;
            }
            total += n.end.min(end).saturating_sub(n.start.max(start));
            cur = n.next;
        }
        total
    }

    /// Total positions covered (maintained incrementally — O(1)).
    pub fn covered(&self) -> u64 {
        self.covered
    }

    /// True when the set is exactly one range `[0, end)`.
    pub fn is_contiguous_to(&self, end: u64) -> bool {
        if self.head == NIL {
            return false;
        }
        let n = &self.nodes[self.head as usize];
        n.start == 0 && n.end == end && n.next == NIL
    }

    /// Number of disjoint ranges.
    pub fn fragments(&self) -> usize {
        self.len
    }

    /// One past the last covered position, if anything is covered.
    /// Allocation-free replacement for `ranges().last()`.
    pub fn last_end(&self) -> Option<u64> {
        let mut cur = self.head;
        let mut last = None;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            last = Some(n.end);
            cur = n.next;
        }
        last
    }

    /// Iterates the disjoint ranges in sorted order, allocation-free.
    pub fn iter(&self) -> RangeIter<'_> {
        RangeIter {
            set: self,
            cur: self.head,
        }
    }

    /// Sub-ranges of `[start, end)` *not* covered by the set.
    pub fn uncovered(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = start;
        for (s, e) in self.iter() {
            if e <= start {
                continue;
            }
            if s >= end {
                break;
            }
            if s > cursor {
                out.push((cursor, s));
            }
            cursor = cursor.max(e);
        }
        if cursor < end {
            out.push((cursor, end));
        }
        out
    }

    /// Missing sub-ranges of `[0, end)` — the retransmission request list.
    pub fn gaps(&self, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for (s, e) in self.iter() {
            if s >= end {
                break;
            }
            if s > cursor {
                out.push((cursor, s.min(end)));
            }
            cursor = cursor.max(e);
        }
        if cursor < end {
            out.push((cursor, end));
        }
        out
    }

    /// Empties the set, recycling every node onto the free list. The slab
    /// keeps its capacity: a cleared set reused for the next TPDU inserts
    /// without touching the allocator.
    pub fn clear(&mut self) {
        let mut cur = self.head;
        while cur != NIL {
            let next = self.nodes[cur as usize].next;
            self.release(cur);
            cur = next;
        }
        self.head = NIL;
        self.len = 0;
        self.covered = 0;
    }
}

/// Iterator over the sorted ranges of an [`ArenaIntervalSet`].
#[derive(Debug)]
pub struct RangeIter<'a> {
    set: &'a ArenaIntervalSet,
    cur: u32,
}

impl Iterator for RangeIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.set.nodes[self.cur as usize];
        self.cur = n.next;
        Some((n.start, n.end))
    }
}

impl PartialEq for ArenaIntervalSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for ArenaIntervalSet {}

impl fmt::Display for ArenaIntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, e)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{s},{e})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalSet;

    fn ranges(s: &ArenaIntervalSet) -> Vec<(u64, u64)> {
        s.iter().collect()
    }

    #[test]
    fn insert_disjoint_and_coalesce() {
        let mut s = ArenaIntervalSet::new();
        assert_eq!(s.insert(0, 5), 0);
        assert_eq!(s.insert(10, 15), 0);
        assert_eq!(s.fragments(), 2);
        assert_eq!(s.insert(5, 10), 0);
        assert_eq!(s.fragments(), 1);
        assert!(s.is_contiguous_to(15));
        assert_eq!(s.covered(), 15);
    }

    #[test]
    fn insert_reports_overlap() {
        let mut s = ArenaIntervalSet::new();
        s.insert(0, 10);
        assert_eq!(s.insert(5, 15), 5);
        assert_eq!(s.insert(0, 15), 15);
        assert_eq!(s.covered(), 15);
    }

    #[test]
    fn subtract_splits_and_recycles() {
        let mut s = ArenaIntervalSet::new();
        s.insert(0, 10);
        assert_eq!(s.subtract(3, 6), 3);
        assert_eq!(ranges(&s), vec![(0, 3), (6, 10)]);
        assert_eq!(s.covered(), 7);
        assert_eq!(s.subtract(3, 6), 0);
        assert_eq!(s.subtract(20, 30), 0);
        let slab_before = s.nodes.len();
        s.clear();
        assert_eq!(s.fragments(), 0);
        assert_eq!(s.covered(), 0);
        // Reuse after clear recycles nodes — the slab does not grow.
        s.insert(0, 4);
        s.insert(8, 12);
        assert_eq!(s.nodes.len(), slab_before, "cleared nodes are recycled");
    }

    #[test]
    fn matches_vec_oracle_on_a_fixed_walk() {
        let mut arena = ArenaIntervalSet::new();
        let mut oracle = IntervalSet::new();
        let ops: &[(bool, u64, u64)] = &[
            (true, 10, 20),
            (true, 0, 5),
            (true, 4, 11),
            (false, 8, 15),
            (true, 30, 40),
            (false, 0, 100),
            (true, 7, 9),
            (true, 9, 10),
            (false, 8, 9),
        ];
        for &(ins, a, b) in ops {
            if ins {
                assert_eq!(arena.insert(a, b), oracle.insert(a, b), "insert [{a},{b})");
            } else {
                assert_eq!(
                    arena.subtract(a, b),
                    oracle.subtract(a, b),
                    "subtract [{a},{b})"
                );
            }
            assert_eq!(ranges(&arena), oracle.ranges().to_vec());
            assert_eq!(arena.covered(), oracle.covered());
            assert_eq!(arena.fragments(), oracle.fragments());
        }
    }

    #[test]
    fn queries_match_oracle() {
        let mut arena = ArenaIntervalSet::new();
        let mut oracle = IntervalSet::new();
        for (a, b) in [(2, 6), (10, 12), (20, 25)] {
            arena.insert(a, b);
            oracle.insert(a, b);
        }
        for lo in 0..28u64 {
            for hi in lo..28u64 {
                assert_eq!(arena.contains(lo, hi), oracle.contains(lo, hi));
                assert_eq!(arena.overlap(lo, hi), oracle.overlap(lo, hi));
                assert_eq!(arena.uncovered(lo, hi), oracle.uncovered(lo, hi));
            }
            assert_eq!(arena.gaps(lo), oracle.gaps(lo));
        }
        assert_eq!(arena.last_end(), Some(25));
        assert_eq!(arena.to_string(), oracle.to_string());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        ArenaIntervalSet::new().insert(5, 4);
    }
}
