//! Property tests for interval tracking against a naive bitmap model.

use chunks_vreasm::{IntervalSet, PduTracker, TrackEvent};
use proptest::prelude::*;

const UNIVERSE: u64 = 256;

fn model_insert(model: &mut [bool], start: u64, end: u64) -> u64 {
    let mut overlap = 0;
    for i in start..end {
        if model[i as usize] {
            overlap += 1;
        }
        model[i as usize] = true;
    }
    overlap
}

proptest! {
    #[test]
    fn matches_bitmap_model(ops in proptest::collection::vec((0u64..UNIVERSE, 1u64..32), 1..40)) {
        let mut set = IntervalSet::new();
        let mut model = vec![false; UNIVERSE as usize * 2];
        for (start, len) in ops {
            let end = start + len;
            let got = set.insert(start, end);
            let want = model_insert(&mut model, start, end);
            prop_assert_eq!(got, want, "insert [{}, {})", start, end);
        }
        // Covered count agrees.
        let covered = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(set.covered(), covered);
        // Ranges are sorted, disjoint, non-adjacent.
        let rs = set.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges {:?} not coalesced", rs);
        }
        // Contains/overlap spot checks.
        for &(s, e) in rs {
            prop_assert!(set.contains(s, e));
            prop_assert_eq!(set.overlap(s, e), e - s);
        }
        // Gaps + covered partitions [0, max).
        if let Some(&(_, max_end)) = rs.last() {
            let gap_total: u64 = set.gaps(max_end).iter().map(|(s, e)| e - s).sum();
            prop_assert_eq!(gap_total + set.covered(), max_end);
        }
    }

    #[test]
    fn tracker_completes_iff_all_elements_seen(
        len in 1u64..64,
        order in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        // Split [0, len) into unit fragments delivered in a pseudo-random
        // order; tracker must complete exactly when the last arrives.
        let mut idx: Vec<u64> = (0..len).collect();
        for (i, &o) in order.iter().enumerate() {
            let j = (o as u64 % len) as usize;
            idx.swap(i % len as usize, j);
        }
        let mut t = PduTracker::new();
        for (k, &sn) in idx.iter().enumerate() {
            prop_assert!(!t.is_complete());
            let ev = t.offer(sn, 1, sn == len - 1);
            prop_assert_eq!(ev, TrackEvent::Accepted);
            prop_assert_eq!(t.is_complete(), k == idx.len() - 1);
        }
        prop_assert_eq!(t.covered(), len);
    }
}
