//! Property tests for interval tracking against a naive bitmap model.

use chunks_vreasm::{IntervalSet, OverlapPolicy, PduTracker, Reassembly, TrackEvent};
use proptest::prelude::*;

const UNIVERSE: u64 = 256;

fn model_insert(model: &mut [bool], start: u64, end: u64) -> u64 {
    let mut overlap = 0;
    for i in start..end {
        if model[i as usize] {
            overlap += 1;
        }
        model[i as usize] = true;
    }
    overlap
}

proptest! {
    #[test]
    fn matches_bitmap_model(ops in proptest::collection::vec((0u64..UNIVERSE, 1u64..32), 1..40)) {
        let mut set = IntervalSet::new();
        let mut model = vec![false; UNIVERSE as usize * 2];
        for (start, len) in ops {
            let end = start + len;
            let got = set.insert(start, end);
            let want = model_insert(&mut model, start, end);
            prop_assert_eq!(got, want, "insert [{}, {})", start, end);
        }
        // Covered count agrees.
        let covered = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(set.covered(), covered);
        // Ranges are sorted, disjoint, non-adjacent.
        let rs = set.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges {:?} not coalesced", rs);
        }
        // Contains/overlap spot checks.
        for &(s, e) in rs {
            prop_assert!(set.contains(s, e));
            prop_assert_eq!(set.overlap(s, e), e - s);
        }
        // Gaps + covered partitions [0, max).
        if let Some(&(_, max_end)) = rs.last() {
            let gap_total: u64 = set.gaps(max_end).iter().map(|(s, e)| e - s).sum();
            prop_assert_eq!(gap_total + set.covered(), max_end);
        }
    }

    #[test]
    fn insert_is_idempotent(ops in proptest::collection::vec((0u64..UNIVERSE, 1u64..32), 1..24)) {
        let mut s = IntervalSet::new();
        for &(start, len) in &ops {
            s.insert(start, start + len);
        }
        let before = s.clone();
        // Re-inserting any already-inserted span changes nothing and
        // reports itself fully duplicate.
        for &(start, len) in &ops {
            prop_assert_eq!(s.insert(start, start + len), len);
            prop_assert_eq!(&s, &before);
        }
    }

    #[test]
    fn disjoint_inserts_commute(spans in proptest::collection::vec((0u64..UNIVERSE, 1u64..16), 2..12)) {
        // Rewrite the spans to be pairwise disjoint by spacing them out,
        // then insert in the generated order and in reverse: the resulting
        // sets must be identical and every insert must report zero overlap.
        let disjoint: Vec<(u64, u64)> = spans
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| {
                let base = i as u64 * 40;
                (base + start % 20, base + start % 20 + len.min(19))
            })
            .collect();
        let mut fwd = IntervalSet::new();
        for &(s, e) in &disjoint {
            prop_assert_eq!(fwd.insert(s, e), 0, "spans must be disjoint");
        }
        let mut rev = IntervalSet::new();
        for &(s, e) in disjoint.iter().rev() {
            prop_assert_eq!(rev.insert(s, e), 0);
        }
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn subtract_inverts_insert(
        ops in proptest::collection::vec((0u64..UNIVERSE, 1u64..32), 0..24),
        span in (0u64..UNIVERSE, 1u64..32),
    ) {
        let mut s = IntervalSet::new();
        for &(start, len) in &ops {
            s.insert(start, start + len);
        }
        let (start, len) = span;
        let end = start + len;
        let before = s.clone();
        let dup = s.insert(start, end);
        // Subtracting only the *fresh* part restores the original set.
        let mut restored = s.clone();
        let mut removed = 0;
        for (gs, ge) in before.uncovered(start, end) {
            removed += restored.subtract(gs, ge);
        }
        prop_assert_eq!(dup + removed, len);
        prop_assert_eq!(&restored, &before);
        // Subtracting the whole span then re-inserting it round-trips too.
        let mut t = s.clone();
        prop_assert_eq!(t.subtract(start, end), len);
        t.insert(start, end);
        prop_assert_eq!(&t, &s);
    }

    #[test]
    fn overlap_is_symmetric_and_bounded(
        a in proptest::collection::vec((0u64..UNIVERSE, 1u64..32), 1..16),
        b in proptest::collection::vec((0u64..UNIVERSE, 1u64..32), 1..16),
    ) {
        // overlap(A, span of B) summed over B's disjoint ranges equals
        // overlap(B, span of A) summed over A's — both count |A ∩ B|.
        let build = |ops: &[(u64, u64)]| {
            let mut s = IntervalSet::new();
            for &(start, len) in ops {
                s.insert(start, start + len);
            }
            s
        };
        let sa = build(&a);
        let sb = build(&b);
        let ab: u64 = sb.ranges().iter().map(|&(s, e)| sa.overlap(s, e)).sum();
        let ba: u64 = sa.ranges().iter().map(|&(s, e)| sb.overlap(s, e)).sum();
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= sa.covered().min(sb.covered()));
        // Self-overlap over each own range is total coverage.
        let self_ov: u64 = sa.ranges().iter().map(|&(s, e)| sa.overlap(s, e)).sum();
        prop_assert_eq!(self_ov, sa.covered());
    }

    #[test]
    fn reassembly_claims_match_untagged_coverage(
        claims in proptest::collection::vec((0u64..UNIVERSE, 1u64..32, 0u64..4), 1..24),
    ) {
        // A Reassembly's coverage and conflict accounting must agree with
        // the plain IntervalSet it extends: fresh + conflicts partition
        // every claim, and coverage() reproduces the untagged set.
        let mut r = Reassembly::new(OverlapPolicy::FirstWins);
        let mut s = IntervalSet::new();
        for &(start, len, tag) in &claims {
            let end = start + len;
            let c = r.claim(start, end, tag);
            let dup = s.insert(start, end);
            prop_assert_eq!(c.conflict_len(), dup);
            let fresh: u64 = c.fresh.iter().map(|(a, b)| b - a).sum();
            prop_assert_eq!(fresh + dup, len);
        }
        prop_assert_eq!(r.covered(), s.covered());
        let cov = r.coverage();
        prop_assert_eq!(cov.ranges(), s.ranges());
        // Every claimed position has exactly one owner.
        for &(cs, ce) in s.ranges() {
            for p in cs..ce {
                prop_assert!(r.owner_of(p).is_some());
            }
        }
    }

    #[test]
    fn tracker_completes_iff_all_elements_seen(
        len in 1u64..64,
        order in proptest::collection::vec(any::<u16>(), 1..64),
    ) {
        // Split [0, len) into unit fragments delivered in a pseudo-random
        // order; tracker must complete exactly when the last arrives.
        let mut idx: Vec<u64> = (0..len).collect();
        for (i, &o) in order.iter().enumerate() {
            let j = (o as u64 % len) as usize;
            idx.swap(i % len as usize, j);
        }
        let mut t = PduTracker::new();
        for (k, &sn) in idx.iter().enumerate() {
            prop_assert!(!t.is_complete());
            let ev = t.offer(sn, 1, sn == len - 1);
            prop_assert_eq!(ev, TrackEvent::Accepted);
            prop_assert_eq!(t.is_complete(), k == idx.len() - 1);
        }
        prop_assert_eq!(t.covered(), len);
    }
}
