//! Fragmentation (Appendix C) and single-step reassembly (Appendix D).
//!
//! Splitting a chunk yields chunks, and merging adjacent chunks yields a
//! chunk — chunks *preserve all of their properties under fragmentation*
//! (§3.1). Consequently the receiver sees the same format no matter how many
//! fragmentation or repacking steps occurred in the network, and reassembly
//! is always a single step.

use crate::chunk::{Chunk, ChunkHeader};
use crate::error::CoreError;
use crate::label::Level;

/// Splits `chunk` into a leading fragment of `first_len` elements and a
/// trailing fragment with the remainder — the algorithm of Appendix C.
///
/// ```
/// use chunks_core::chunk::byte_chunk;
/// use chunks_core::label::FramingTuple;
/// use chunks_core::frag::{split, merge};
/// let c = byte_chunk(
///     FramingTuple::new(0xA, 36, false),
///     FramingTuple::new(0x51, 0, true),
///     FramingTuple::new(0xC, 24, false),
///     b"0123456",
/// );
/// let (head, tail) = split(&c, 4).unwrap();
/// assert_eq!(tail.header.conn.sn, 40);      // SNs advance
/// assert!(tail.header.tpdu.st && !head.header.tpdu.st); // ST rides the tail
/// assert_eq!(merge(&head, &tail).unwrap(), c);          // and merge inverts
/// ```
///
/// * Both fragments keep the original `TYPE`, `SIZE` and all three `ID`s.
/// * The leading fragment keeps the original `SN`s and clears every `ST`.
/// * The trailing fragment advances each `SN` by `first_len` and inherits
///   the original `ST` bits (only the chunk holding the last element may
///   carry them).
///
/// The payload is shared, not copied. Control chunks cannot be split
/// (`LEN = 1` always fails the range check).
pub fn split(chunk: &Chunk, first_len: u32) -> Result<(Chunk, Chunk), CoreError> {
    let len = chunk.header.len;
    if first_len == 0 || first_len >= len {
        return Err(CoreError::SplitOutOfRange { at: first_len, len });
    }
    let cut = first_len as usize * chunk.header.size as usize;

    let head_header = ChunkHeader {
        len: first_len,
        conn: chunk.header.conn.head(),
        tpdu: chunk.header.tpdu.head(),
        ext: chunk.header.ext.head(),
        ..chunk.header
    };
    let tail_header = ChunkHeader {
        len: len - first_len,
        conn: chunk.header.conn.tail(first_len),
        tpdu: chunk.header.tpdu.tail(first_len),
        ext: chunk.header.ext.tail(first_len),
        ..chunk.header
    };

    let head = Chunk {
        header: head_header,
        payload: chunk.payload.slice(..cut),
    };
    let tail = Chunk {
        header: tail_header,
        payload: chunk.payload.slice(cut..),
    };
    Ok((head, tail))
}

/// True when `a` immediately precedes `b` per the Appendix D predicate:
/// identical `TYPE`, `SIZE` and `ID`s, and every `SN` of `b` continues `a`'s
/// run of elements.
pub fn can_merge(a: &ChunkHeader, b: &ChunkHeader) -> bool {
    a.ty == b.ty
        && a.size == b.size
        && Level::ALL
            .iter()
            .all(|&lvl| a.tuple(lvl).is_followed_by(a.len, b.tuple(lvl)))
}

/// Merges two adjacent chunks into one — the algorithm of Appendix D.
///
/// The result takes `a`'s `SN`s and `b`'s `ST` bits. Chunk reassembly works
/// in the network or at the receiver, any number of times, because the
/// result is again an ordinary chunk.
pub fn merge(a: &Chunk, b: &Chunk) -> Result<Chunk, CoreError> {
    if !can_merge(&a.header, &b.header) {
        return Err(CoreError::NotAdjacent);
    }
    let header = ChunkHeader {
        len: a.header.len + b.header.len,
        conn: crate::label::FramingTuple {
            st: b.header.conn.st,
            ..a.header.conn
        },
        tpdu: crate::label::FramingTuple {
            st: b.header.tpdu.st,
            ..a.header.tpdu
        },
        ext: crate::label::FramingTuple {
            st: b.header.ext.st,
            ..a.header.ext
        },
        ..a.header
    };
    // Must own: the two payloads are (in general) slices of different
    // buffers; a merged chunk needs one contiguous run, so this is the one
    // place reassembly genuinely gathers bytes.
    let mut payload = Vec::with_capacity(a.payload.len() + b.payload.len());
    payload.extend_from_slice(&a.payload);
    payload.extend_from_slice(&b.payload);
    Ok(Chunk {
        header,
        payload: payload.into(),
    })
}

/// Extracts the sub-chunk covering elements `[offset, offset + len)` of
/// `chunk` — two applications of the Appendix C split.
///
/// Receivers use this to trim a partially-duplicate chunk (e.g. a
/// retransmission fragmented at different points) down to its new elements.
pub fn extract(chunk: &Chunk, offset: u32, len: u32) -> Result<Chunk, CoreError> {
    if len == 0 || offset + len > chunk.header.len {
        return Err(CoreError::SplitOutOfRange {
            at: offset + len,
            len: chunk.header.len,
        });
    }
    // Not a payload copy: `Chunk::clone` refcounts the shared buffer, and
    // the `split` calls below slice it — no bytes move in `extract`.
    let mut piece = chunk.clone();
    if offset > 0 {
        piece = split(&piece, offset)?.1;
    }
    if len < piece.header.len {
        piece = split(&piece, len)?.0;
    }
    Ok(piece)
}

/// Splits a chunk repeatedly so every piece's *wire length* (header plus
/// payload) fits within `mtu` bytes — emptying chunks from one envelope size
/// into another (§3.1, Figure 4).
///
/// Fails with [`CoreError::ElementExceedsMtu`] when even a single atomic
/// element plus header exceeds the MTU, since the `SIZE` field guarantees
/// atomic units are never split.
pub fn split_to_fit(chunk: Chunk, mtu: usize) -> Result<Vec<Chunk>, CoreError> {
    let header_len = crate::wire::WIRE_HEADER_LEN;
    let size = chunk.header.size as usize;
    if header_len + size > mtu {
        return Err(CoreError::ElementExceedsMtu {
            size: chunk.header.size,
            mtu,
        });
    }
    let max_elements = ((mtu - header_len) / size) as u32;
    let mut out = Vec::new();
    let mut rest = chunk;
    while rest.header.len > max_elements {
        let (head, tail) = split(&rest, max_elements)?;
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    Ok(out)
}

/// A single-step reassembly pool: chunks are inserted in any order and
/// greedily merged with their neighbours.
///
/// Regardless of how many fragmentation steps the network performed, the
/// pool converges to the maximal merged chunks in one pass per insertion —
/// the paper's "chunks can be efficiently reassembled in a single step"
/// (§3.1). Insertion is keyed by TPDU sequence number.
#[derive(Debug, Default)]
pub struct ReassemblyPool {
    /// Non-overlapping chunks ordered by `T.SN`.
    segments: Vec<Chunk>,
    /// Count of merge operations performed (for the evaluation harness).
    merges: u64,
    /// Count of duplicate chunks rejected.
    duplicates: u64,
}

impl ReassemblyPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of merge operations performed so far.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Number of duplicate chunks rejected so far.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Inserts a chunk, merging with adjacent neighbours where the
    /// Appendix D predicate allows. Exact duplicates (same `T.SN` start) are
    /// rejected and counted.
    pub fn insert(&mut self, chunk: Chunk) {
        let sn = chunk.header.tpdu.sn;
        let pos = self.segments.partition_point(|c| c.header.tpdu.sn < sn);
        if self
            .segments
            .get(pos)
            .is_some_and(|c| c.header.tpdu.sn == sn)
        {
            self.duplicates += 1;
            return;
        }
        self.segments.insert(pos, chunk);
        // Try to merge with the successor first (indices stay valid), then
        // with the predecessor.
        if pos + 1 < self.segments.len() {
            if let Ok(merged) = merge(&self.segments[pos], &self.segments[pos + 1]) {
                self.segments[pos] = merged;
                self.segments.remove(pos + 1);
                self.merges += 1;
            }
        }
        if pos > 0 {
            if let Ok(merged) = merge(&self.segments[pos - 1], &self.segments[pos]) {
                self.segments[pos - 1] = merged;
                self.segments.remove(pos);
                self.merges += 1;
            }
        }
    }

    /// Current maximal segments in `T.SN` order.
    pub fn segments(&self) -> &[Chunk] {
        &self.segments
    }

    /// True when the pool holds exactly one chunk that starts at `T.SN = 0`
    /// and carries the TPDU stop bit — the whole PDU is reassembled.
    pub fn is_complete(&self) -> bool {
        self.segments.len() == 1
            && self.segments[0].header.tpdu.sn == 0
            && self.segments[0].header.tpdu.st
    }

    /// Removes and returns the reassembled PDU when complete.
    pub fn take_complete(&mut self) -> Option<Chunk> {
        if self.is_complete() {
            Some(self.segments.remove(0))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::byte_chunk;
    use crate::label::FramingTuple;

    /// A LEN=9 SIZE=1 chunk mirroring Figure 2's TPDU Q run.
    fn figure2_chunk() -> Chunk {
        byte_chunk(
            FramingTuple::new(0xA, 36, false),
            FramingTuple::new(0x51, 0, true), // 'Q'
            FramingTuple::new(0xC, 24, false),
            b"0123456",
        )
    }

    #[test]
    fn split_matches_figure3() {
        // Figure 3 splits the LEN=7 chunk into LEN=4 + LEN=3.
        let c = figure2_chunk();
        let (a, b) = split(&c, 4).unwrap();
        // Leading: SNs (36, 0, 24), all STs cleared.
        assert_eq!(a.header.len, 4);
        assert_eq!(a.header.conn.sn, 36);
        assert_eq!(a.header.tpdu.sn, 0);
        assert_eq!(a.header.ext.sn, 24);
        assert!(!a.header.conn.st && !a.header.tpdu.st && !a.header.ext.st);
        // Trailing: SNs (40, 4, 28), STs (0, 1, 0) as in the figure.
        assert_eq!(b.header.len, 3);
        assert_eq!(b.header.conn.sn, 40);
        assert_eq!(b.header.tpdu.sn, 4);
        assert_eq!(b.header.ext.sn, 28);
        assert!(!b.header.conn.st && b.header.tpdu.st && !b.header.ext.st);
        // Payload split without copying.
        assert_eq!(&a.payload[..], b"0123");
        assert_eq!(&b.payload[..], b"456");
    }

    #[test]
    fn split_rejects_degenerate_points() {
        let c = figure2_chunk();
        assert!(split(&c, 0).is_err());
        assert!(split(&c, 7).is_err());
        assert!(split(&c, 8).is_err());
    }

    #[test]
    fn merge_is_inverse_of_split() {
        let c = figure2_chunk();
        for at in 1..c.header.len {
            let (a, b) = split(&c, at).unwrap();
            let merged = merge(&a, &b).unwrap();
            assert_eq!(merged, c, "split at {at}");
        }
    }

    #[test]
    fn merge_rejects_non_adjacent() {
        let c = figure2_chunk();
        let (a, b) = split(&c, 3).unwrap();
        assert_eq!(merge(&b, &a).unwrap_err(), CoreError::NotAdjacent);
        assert_eq!(merge(&a, &a).unwrap_err(), CoreError::NotAdjacent);
    }

    #[test]
    fn merge_requires_all_three_levels() {
        let c = figure2_chunk();
        let (a, mut b) = split(&c, 3).unwrap();
        // Same T adjacency but a different external PDU id: must not merge.
        b.header.ext.id = 0xDD;
        assert!(!can_merge(&a.header, &b.header));
    }

    #[test]
    fn split_to_fit_respects_mtu() {
        let c = figure2_chunk();
        let mtu = crate::wire::WIRE_HEADER_LEN + 2;
        let parts = split_to_fit(c.clone(), mtu).unwrap();
        assert_eq!(parts.len(), 4); // 2+2+2+1 elements
        for p in &parts {
            assert!(p.wire_len() <= mtu);
        }
        // And they reassemble to the original.
        let mut pool = ReassemblyPool::new();
        for p in parts {
            pool.insert(p);
        }
        assert!(pool.is_complete());
        assert_eq!(pool.take_complete().unwrap(), c);
    }

    #[test]
    fn split_to_fit_refuses_to_split_atomic_elements() {
        let mut c = figure2_chunk();
        // Re-type as an 8-byte-element chunk.
        c.header.size = 7;
        c.header.len = 1;
        let err = split_to_fit(c, crate::wire::WIRE_HEADER_LEN + 4).unwrap_err();
        assert!(matches!(err, CoreError::ElementExceedsMtu { size: 7, .. }));
    }

    #[test]
    fn pool_reassembles_out_of_order() {
        let c = figure2_chunk();
        let (a, rest) = split(&c, 2).unwrap();
        let (b, d) = split(&rest, 3).unwrap();
        let mut pool = ReassemblyPool::new();
        pool.insert(d);
        assert!(!pool.is_complete());
        pool.insert(a);
        assert!(!pool.is_complete());
        pool.insert(b);
        assert!(pool.is_complete());
        assert_eq!(pool.take_complete().unwrap(), c);
        assert_eq!(pool.merge_count(), 2);
    }

    #[test]
    fn pool_rejects_duplicates() {
        let c = figure2_chunk();
        let (a, b) = split(&c, 4).unwrap();
        let mut pool = ReassemblyPool::new();
        pool.insert(a.clone());
        pool.insert(a);
        assert_eq!(pool.duplicate_count(), 1);
        pool.insert(b);
        assert!(pool.is_complete());
    }

    #[test]
    fn pool_incomplete_without_stop_bit() {
        let c = figure2_chunk();
        let (a, _b) = split(&c, 4).unwrap();
        let mut pool = ReassemblyPool::new();
        pool.insert(a);
        assert!(!pool.is_complete());
        assert!(pool.take_complete().is_none());
        assert_eq!(pool.segments().len(), 1);
    }

    #[test]
    fn repeated_refragmentation_still_single_step() {
        // Fragment at three "routers" with shrinking MTUs, shuffle, and
        // reassemble once.
        let c = figure2_chunk();
        let h = crate::wire::WIRE_HEADER_LEN;
        let mut pieces = vec![c.clone()];
        for mtu in [h + 4, h + 2, h + 1] {
            pieces = pieces
                .into_iter()
                .flat_map(|p| split_to_fit(p, mtu).unwrap())
                .collect();
        }
        assert_eq!(pieces.len(), 7);
        pieces.reverse();
        let mut pool = ReassemblyPool::new();
        for p in pieces {
            pool.insert(p);
        }
        assert_eq!(pool.take_complete().unwrap(), c);
    }
}
