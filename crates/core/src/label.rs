//! Explicit data labels: chunk types and `(ID, SN, ST)` framing tuples.
//!
//! Conventional protocols identify PDU elements implicitly by their position
//! within the PDU; the paper's central move (§2) is to label each piece of a
//! PDU *explicitly* so it can be processed without having seen any other
//! piece.

use std::fmt;

/// The `TYPE` field of a chunk: how the payload is to be processed.
///
/// The basic PDU contains pieces of type *data* and *control*; a system may
/// use several distinct control types (§2). Chunks can be demultiplexed to
/// processing units purely on this field (Appendix A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ChunkType {
    /// Reserved on-the-wire value `0`, used by zero padding; never a valid
    /// chunk. Parsers treat a padding header as end-of-packet.
    Padding,
    /// PDU payload data (`TYPE = D` in the paper's figures).
    Data,
    /// Error-detection control: carries the end-to-end error detection code
    /// of a TPDU (`TYPE = ED`, Figure 3).
    ErrorDetection,
    /// Connection signalling (establishment / teardown / parameter
    /// announcement, §2 and Appendix A).
    Signal,
    /// Acknowledgment control for the error-control protocol. Chunks let
    /// acks share packets with data, giving piggybacking "for free"
    /// (Appendix A).
    Ack,
}

impl ChunkType {
    /// All valid non-padding chunk types.
    pub const ALL: [ChunkType; 4] = [
        ChunkType::Data,
        ChunkType::ErrorDetection,
        ChunkType::Signal,
        ChunkType::Ack,
    ];

    /// Wire encoding of the type field.
    pub const fn to_u8(self) -> u8 {
        match self {
            ChunkType::Padding => 0,
            ChunkType::Data => 1,
            ChunkType::ErrorDetection => 2,
            ChunkType::Signal => 3,
            ChunkType::Ack => 4,
        }
    }

    /// Decodes a wire type byte.
    pub const fn from_u8(v: u8) -> Option<ChunkType> {
        match v {
            0 => Some(ChunkType::Padding),
            1 => Some(ChunkType::Data),
            2 => Some(ChunkType::ErrorDetection),
            3 => Some(ChunkType::Signal),
            4 => Some(ChunkType::Ack),
            _ => None,
        }
    }

    /// Control information is indivisible (§2): control chunks carry exactly
    /// one atomic element and are never split by fragmentation.
    pub const fn is_control(self) -> bool {
        matches!(
            self,
            ChunkType::ErrorDetection | ChunkType::Signal | ChunkType::Ack
        )
    }
}

impl fmt::Display for ChunkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChunkType::Padding => "PAD",
            ChunkType::Data => "D",
            ChunkType::ErrorDetection => "ED",
            ChunkType::Signal => "SIG",
            ChunkType::Ack => "ACK",
        };
        f.write_str(s)
    }
}

/// The three independent framing levels of a chunk (§2, Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Level {
    /// `C` — the connection, treated as one large PDU whose sequence numbers
    /// are reused over time.
    Connection,
    /// `T` — the transport PDU (the unit of error control).
    Tpdu,
    /// `X` — an external PDU, e.g. an Application Layer Frame.
    External,
}

impl Level {
    /// All three levels, in C/T/X order.
    pub const ALL: [Level; 3] = [Level::Connection, Level::Tpdu, Level::External];
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Connection => "C",
            Level::Tpdu => "T",
            Level::External => "X",
        })
    }
}

/// An `(ID, SN, ST)` framing tuple.
///
/// `ID` names the PDU the data belong to, `SN` is the first element's
/// sequence number within that PDU's payload, and `ST` (the *STop* bit) is
/// set when the chunk's **last** element is the final element of the PDU.
/// Only the last element of a chunk can carry an ST bit, because all
/// elements of a chunk share the same `ID` (§2, footnote 3).
///
/// Sequence numbers wrap modulo 2^32; the connection level explicitly reuses
/// SNs over the life of a connection (§2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FramingTuple {
    /// PDU identifier.
    pub id: u32,
    /// Sequence number of the chunk's first data element within the PDU.
    pub sn: u32,
    /// STop bit: the chunk's last element ends the PDU.
    pub st: bool,
}

impl FramingTuple {
    /// Creates a tuple.
    pub const fn new(id: u32, sn: u32, st: bool) -> Self {
        FramingTuple { id, sn, st }
    }

    /// Tuple for the *leading* fragment when the chunk is split: same ID and
    /// SN, ST cleared (Appendix C — no ST bits are set in any chunk except
    /// the one carrying the original last element).
    pub const fn head(self) -> Self {
        FramingTuple {
            id: self.id,
            sn: self.sn,
            st: false,
        }
    }

    /// Tuple for the *trailing* fragment starting `offset` elements in: SN
    /// advanced, ST preserved (Appendix C).
    pub const fn tail(self, offset: u32) -> Self {
        FramingTuple {
            id: self.id,
            sn: self.sn.wrapping_add(offset),
            st: self.st,
        }
    }

    /// Sequence number of the element `k` positions into the chunk.
    pub const fn sn_at(self, k: u32) -> u32 {
        self.sn.wrapping_add(k)
    }

    /// True when `other` continues this tuple immediately after `len`
    /// elements: same ID and contiguous SN (Appendix D merge predicate).
    pub const fn is_followed_by(self, len: u32, other: Self) -> bool {
        self.id == other.id && self.sn.wrapping_add(len) == other.sn
    }
}

impl fmt::Display for FramingTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(id={}, sn={}, st={})", self.id, self.sn, self.st as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_roundtrip() {
        for t in ChunkType::ALL {
            assert_eq!(ChunkType::from_u8(t.to_u8()), Some(t));
        }
        assert_eq!(ChunkType::from_u8(0), Some(ChunkType::Padding));
        assert_eq!(ChunkType::from_u8(200), None);
    }

    #[test]
    fn control_classification() {
        assert!(!ChunkType::Data.is_control());
        assert!(ChunkType::ErrorDetection.is_control());
        assert!(ChunkType::Signal.is_control());
        assert!(ChunkType::Ack.is_control());
    }

    #[test]
    fn head_clears_st_tail_preserves() {
        let t = FramingTuple::new(7, 100, true);
        assert_eq!(t.head(), FramingTuple::new(7, 100, false));
        assert_eq!(t.tail(4), FramingTuple::new(7, 104, true));
    }

    #[test]
    fn tail_wraps_sequence_numbers() {
        let t = FramingTuple::new(1, u32::MAX - 1, false);
        assert_eq!(t.tail(3).sn, 1);
        assert_eq!(t.sn_at(2), 0);
    }

    #[test]
    fn followed_by_predicate() {
        let a = FramingTuple::new(9, 10, false);
        let b = FramingTuple::new(9, 14, true);
        assert!(a.is_followed_by(4, b));
        assert!(!a.is_followed_by(3, b));
        assert!(!a.is_followed_by(4, FramingTuple::new(8, 14, true)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ChunkType::ErrorDetection.to_string(), "ED");
        assert_eq!(Level::External.to_string(), "X");
        assert_eq!(
            FramingTuple::new(1, 2, true).to_string(),
            "(id=1, sn=2, st=1)"
        );
    }
}
