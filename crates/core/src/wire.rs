//! Fixed-field wire codec for chunks.
//!
//! The paper's simple chunk form uses a fixed-field format that is "easy to
//! parse" (Appendix A). The layout, big-endian throughout:
//!
//! ```text
//! offset  field
//!  0      TYPE  (u8)
//!  1      flags (u8): bit0 = C.ST, bit1 = T.ST, bit2 = X.ST
//!  2..4   SIZE  (u16)
//!  4..8   LEN   (u32)   — 0 marks end-of-packet
//!  8..12  C.ID  12..16 C.SN
//! 16..20  T.ID  20..24 T.SN
//! 24..28  X.ID  28..32 X.SN
//! ```
//!
//! Compressed variants that elide redundant fields live in
//! [`crate::compress`].

use bytes::Bytes;
use chunks_obs::{Event, Labels, ObsSink};

use crate::chunk::{Chunk, ChunkHeader};
use crate::error::CoreError;
use crate::label::{ChunkType, FramingTuple};

/// Byte length of the uncompressed chunk header.
pub const WIRE_HEADER_LEN: usize = 32;

/// Upper bound on the payload a decoded header may claim (`SIZE * LEN`).
/// The two fields multiply out to nearly 2^48 bytes; an adversarial header
/// must be refused as [`CoreError::OversizedLen`] before any buffer math
/// trusts the claim.
pub const MAX_DECODE_PAYLOAD: usize = 1 << 24; // 16 MiB

const FLAG_C_ST: u8 = 1 << 0;
const FLAG_T_ST: u8 = 1 << 1;
const FLAG_X_ST: u8 = 1 << 2;

/// Appends the header's wire encoding to `out`.
pub fn encode_header(h: &ChunkHeader, out: &mut Vec<u8>) {
    out.push(h.ty.to_u8());
    let mut flags = 0u8;
    if h.conn.st {
        flags |= FLAG_C_ST;
    }
    if h.tpdu.st {
        flags |= FLAG_T_ST;
    }
    if h.ext.st {
        flags |= FLAG_X_ST;
    }
    out.push(flags);
    out.extend_from_slice(&h.size.to_be_bytes());
    out.extend_from_slice(&h.len.to_be_bytes());
    for t in [h.conn, h.tpdu, h.ext] {
        out.extend_from_slice(&t.id.to_be_bytes());
        out.extend_from_slice(&t.sn.to_be_bytes());
    }
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

/// Decodes a header from the front of `buf`.
///
/// A decoded header with `LEN = 0` is the end-of-packet marker; callers stop
/// parsing there. Headers of padding type with nonzero `LEN` are rejected.
pub fn decode_header(buf: &[u8]) -> Result<ChunkHeader, CoreError> {
    if buf.len() < WIRE_HEADER_LEN {
        return Err(CoreError::Truncated);
    }
    let ty = ChunkType::from_u8(buf[0]).ok_or(CoreError::BadType(buf[0]))?;
    let flags = buf[1];
    let size = u16::from_be_bytes([buf[2], buf[3]]);
    let len = read_u32(buf, 4);
    if ty == ChunkType::Padding && len != 0 {
        return Err(CoreError::BadType(0));
    }
    let conn = FramingTuple::new(read_u32(buf, 8), read_u32(buf, 12), flags & FLAG_C_ST != 0);
    let tpdu = FramingTuple::new(read_u32(buf, 16), read_u32(buf, 20), flags & FLAG_T_ST != 0);
    let ext = FramingTuple::new(read_u32(buf, 24), read_u32(buf, 28), flags & FLAG_X_ST != 0);
    Ok(ChunkHeader {
        ty,
        size,
        len,
        conn,
        tpdu,
        ext,
    })
}

/// Appends a chunk (header + payload) to `out`.
pub fn encode_chunk(c: &Chunk, out: &mut Vec<u8>) {
    encode_header(&c.header, out);
    out.extend_from_slice(&c.payload);
}

/// A decoded chunk whose payload *borrows* the wire buffer.
///
/// The zero-copy receive path decodes headers in place and keeps payloads as
/// borrowed slices of the arriving packet; nothing is materialised until (and
/// unless) the chunk is staged. Validation is identical to [`decode_chunk`]:
/// the two functions accept and reject exactly the same inputs, and on
/// acceptance the borrowed payload is bitwise equal to the owned copy (a
/// property `tests/chunk_closure_props.rs` pins for arbitrary packets).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChunkRef<'a> {
    /// The decoded, validated header.
    pub header: ChunkHeader,
    /// The payload, borrowed from the wire buffer.
    pub payload: &'a [u8],
}

impl ChunkRef<'_> {
    /// Materialises an owned [`Chunk`], copying the payload. The receive
    /// path avoids this; it exists for callers that must outlive the buffer.
    pub fn to_chunk(&self) -> Chunk {
        Chunk {
            header: self.header,
            payload: Bytes::copy_from_slice(self.payload),
        }
    }
}

/// Shared validation core: decodes and validates the header at the front of
/// `buf` and returns `(header, total wire length)` without touching the
/// payload bytes.
#[inline]
fn decode_validated(buf: &[u8]) -> Result<(ChunkHeader, usize), CoreError> {
    let header = decode_header(buf)?;
    header.validate()?;
    // Widen before multiplying: `SIZE * LEN` approaches 2^48, which on a
    // 32-bit target would wrap a `usize` product *before* the bound check
    // could see it — `ChunkHeader::payload_len` must not be trusted here.
    let claimed = header.size as u64 * header.len as u64;
    if claimed > MAX_DECODE_PAYLOAD as u64 {
        return Err(CoreError::OversizedLen {
            claimed,
            max: MAX_DECODE_PAYLOAD as u64,
        });
    }
    let total = WIRE_HEADER_LEN + claimed as usize;
    if buf.len() < total {
        return Err(CoreError::Truncated);
    }
    Ok((header, total))
}

/// Decodes one chunk from the front of `buf`, returning it together with the
/// number of bytes consumed. The payload is **copied** out of the buffer —
/// this is the owned decode the zero-copy path is differentially tested
/// against; hot paths use [`decode_chunk_at`] instead.
pub fn decode_chunk(buf: &[u8]) -> Result<(Chunk, usize), CoreError> {
    let (header, total) = decode_validated(buf)?;
    let payload = Bytes::copy_from_slice(&buf[WIRE_HEADER_LEN..total]);
    Ok((Chunk { header, payload }, total))
}

/// Decodes one chunk from the front of `buf` with a borrowed payload —
/// same accept/reject behaviour as [`decode_chunk`], no copy, no allocation.
pub fn decode_chunk_ref(buf: &[u8]) -> Result<(ChunkRef<'_>, usize), CoreError> {
    let (header, total) = decode_validated(buf)?;
    Ok((
        ChunkRef {
            header,
            payload: &buf[WIRE_HEADER_LEN..total],
        },
        total,
    ))
}

/// Decodes one chunk starting at byte `at` of a packet's [`Bytes`], with the
/// payload as a zero-copy sub-slice sharing the packet's buffer. No payload
/// byte is copied and nothing is allocated; the returned [`Chunk`] keeps the
/// packet buffer alive for as long as it (or any stage it is handed to)
/// holds the slice. Accept/reject behaviour is identical to running
/// [`decode_chunk`] on `&bytes[at..]`.
pub fn decode_chunk_at(bytes: &Bytes, at: usize) -> Result<(Chunk, usize), CoreError> {
    if at > bytes.len() {
        return Err(CoreError::Truncated);
    }
    let (header, total) = decode_validated(&bytes[at..])?;
    let payload = bytes.slice(at + WIRE_HEADER_LEN..at + total);
    Ok((Chunk { header, payload }, total))
}

/// The observability label triple `(C.ID, T.SN, X.SN)` of a header.
pub fn labels_of(h: &ChunkHeader) -> Labels {
    Labels::new(h.conn.id, h.tpdu.sn, h.ext.sn)
}

/// [`decode_chunk`] with accept/reject instrumentation: an accepted chunk
/// records a `core.wire.chunks_decoded` count and a
/// [`Event::ChunkDecoded`] trace event; a refusal records
/// `core.wire.decode_rejects` and [`Event::ChunkRejected`] (with whatever
/// label context a best-effort header decode could recover).
///
/// Callers gate on a cached `sink.enabled()` and use plain [`decode_chunk`]
/// when observability is off, so the hot path never pays the virtual calls.
pub fn decode_chunk_observed(
    buf: &[u8],
    now: u64,
    sink: &dyn ObsSink,
) -> Result<(Chunk, usize), CoreError> {
    match decode_chunk(buf) {
        Ok((chunk, used)) => {
            sink.counter("core.wire.chunks_decoded", 1);
            sink.event(
                now,
                Event::ChunkDecoded {
                    labels: labels_of(&chunk.header),
                    ty: chunk.header.ty.to_u8(),
                    bytes: chunk.payload.len() as u32,
                },
            );
            Ok((chunk, used))
        }
        Err(e) => {
            sink.counter("core.wire.decode_rejects", 1);
            let labels = decode_header(buf)
                .map(|h| labels_of(&h))
                .unwrap_or_default();
            sink.event(
                now,
                Event::ChunkRejected {
                    labels,
                    reason: e.kind(),
                },
            );
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::byte_chunk;
    use crate::label::FramingTuple;

    fn sample() -> Chunk {
        byte_chunk(
            FramingTuple::new(0xAABBCCDD, 36, false),
            FramingTuple::new(0x51, 0, true),
            FramingTuple::new(0xC, 24, false),
            b"0123456",
        )
    }

    #[test]
    fn header_roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        encode_header(&c.header, &mut buf);
        assert_eq!(buf.len(), WIRE_HEADER_LEN);
        assert_eq!(decode_header(&buf).unwrap(), c.header);
    }

    #[test]
    fn chunk_roundtrip() {
        let c = sample();
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf);
        let (d, used) = decode_chunk(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(d, c);
    }

    #[test]
    fn st_flags_encoded_independently() {
        let mut c = sample();
        c.header.conn.st = true;
        c.header.ext.st = true;
        let mut buf = Vec::new();
        encode_header(&c.header, &mut buf);
        assert_eq!(buf[1], FLAG_C_ST | FLAG_T_ST | FLAG_X_ST);
        let d = decode_header(&buf).unwrap();
        assert!(d.conn.st && d.tpdu.st && d.ext.st);
    }

    #[test]
    fn truncated_inputs_rejected() {
        let c = sample();
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf);
        assert_eq!(
            decode_header(&buf[..WIRE_HEADER_LEN - 1]).unwrap_err(),
            CoreError::Truncated
        );
        assert_eq!(
            decode_chunk(&buf[..buf.len() - 1]).unwrap_err(),
            CoreError::Truncated
        );
    }

    #[test]
    fn bad_type_rejected() {
        let c = sample();
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf);
        buf[0] = 0x7F;
        assert_eq!(decode_chunk(&buf).unwrap_err(), CoreError::BadType(0x7F));
    }

    #[test]
    fn oversized_len_rejected_before_allocation() {
        let c = sample();
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf);
        // Claim SIZE = 0xFFFF and LEN = 0xFFFF_FFFF: nearly 2^48 bytes.
        buf[2] = 0xFF;
        buf[3] = 0xFF;
        buf[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_chunk(&buf).unwrap_err(),
            CoreError::OversizedLen { .. }
        ));
    }

    /// Builds a raw wire buffer for a data chunk claiming `size`×`len` with
    /// `payload` actually present after the header.
    fn raw_data_chunk(size: u16, len: u32, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(WIRE_HEADER_LEN + payload.len());
        buf.push(ChunkType::Data.to_u8());
        buf.push(0); // flags
        buf.extend_from_slice(&size.to_be_bytes());
        buf.extend_from_slice(&len.to_be_bytes());
        buf.extend_from_slice(&[0u8; 24]); // C/T/X tuples all zero
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn payload_exactly_at_limit_accepted() {
        // SIZE × LEN lands exactly on MAX_DECODE_PAYLOAD: the bound is
        // inclusive, so the chunk decodes.
        let size = 1u16 << 8;
        let len = (MAX_DECODE_PAYLOAD / size as usize) as u32;
        assert_eq!(size as usize * len as usize, MAX_DECODE_PAYLOAD);
        let payload = vec![0x5Au8; MAX_DECODE_PAYLOAD];
        let buf = raw_data_chunk(size, len, &payload);
        let (chunk, used) = decode_chunk(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(chunk.payload.len(), MAX_DECODE_PAYLOAD);
    }

    #[test]
    fn payload_one_below_limit_accepted() {
        let len = (MAX_DECODE_PAYLOAD - 1) as u32;
        let payload = vec![0xA5u8; MAX_DECODE_PAYLOAD - 1];
        let buf = raw_data_chunk(1, len, &payload);
        let (chunk, used) = decode_chunk(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(chunk.payload.len(), MAX_DECODE_PAYLOAD - 1);
    }

    #[test]
    fn payload_one_above_limit_rejected_before_truncation() {
        // One byte over the bound, with *no* payload present at all: the
        // oversize check must fire before the truncation check, otherwise a
        // hostile header steers the decoder into buffer-length math with an
        // attacker-controlled 2^48-scale claim.
        let len = (MAX_DECODE_PAYLOAD + 1) as u32;
        let buf = raw_data_chunk(1, len, &[]);
        assert_eq!(
            decode_chunk(&buf).unwrap_err(),
            CoreError::OversizedLen {
                claimed: MAX_DECODE_PAYLOAD as u64 + 1,
                max: MAX_DECODE_PAYLOAD as u64,
            }
        );
    }

    #[test]
    fn oversize_claim_is_widened_not_wrapped() {
        // SIZE = 0xFFFF, LEN = 0xFFFF_FFFF multiplies to ~2^48. On a 32-bit
        // usize that product wraps to a small number; the decoder must
        // compute the claim in u64 so the bound check still fires and the
        // reported claim is the real one.
        let buf = raw_data_chunk(0xFFFF, u32::MAX, &[]);
        assert_eq!(
            decode_chunk(&buf).unwrap_err(),
            CoreError::OversizedLen {
                claimed: 0xFFFF_u64 * 0xFFFF_FFFF_u64,
                max: MAX_DECODE_PAYLOAD as u64,
            }
        );
    }

    #[test]
    fn zero_len_data_chunk_rejected_without_allocation() {
        // A data-TYPE header with LEN = 0 is not an end marker (that role is
        // reserved for padding); it must be refused by validation — before
        // any payload arithmetic or allocation — and must not panic even
        // with an extreme SIZE riding along.
        let buf = raw_data_chunk(0xFFFF, 0, &[]);
        assert_eq!(decode_chunk(&buf).unwrap_err(), CoreError::ZeroLen);
        // Same for a zero SIZE with a huge LEN: caught as ZeroSize, and the
        // 0 × LEN product never reaches the allocator as a "fits" claim.
        let buf = raw_data_chunk(0, u32::MAX, &[]);
        assert_eq!(decode_chunk(&buf).unwrap_err(), CoreError::ZeroSize);
    }

    #[test]
    fn zero_header_is_end_marker() {
        let buf = [0u8; WIRE_HEADER_LEN];
        let h = decode_header(&buf).unwrap();
        assert_eq!(h.ty, ChunkType::Padding);
        assert_eq!(h.len, 0);
    }

    #[test]
    fn padding_with_payload_rejected() {
        let mut buf = vec![0u8; WIRE_HEADER_LEN];
        buf[7] = 3; // LEN = 3 with TYPE = padding
        assert!(decode_header(&buf).is_err());
    }
}
