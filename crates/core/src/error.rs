//! Error types for the chunk core.

use std::error::Error;
use std::fmt;

use crate::label::ChunkType;

/// Errors produced when constructing, encoding, decoding, fragmenting or
/// reassembling chunks and packets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// Payload length does not equal `SIZE * LEN`.
    PayloadSizeMismatch {
        /// Expected payload length in bytes.
        expected: usize,
        /// Actual payload length in bytes.
        actual: usize,
    },
    /// A chunk's `SIZE` field is zero.
    ZeroSize,
    /// A valid chunk must carry at least one element (`LEN = 0` is reserved
    /// for the end-of-packet marker).
    ZeroLen,
    /// Control information is indivisible: control chunks carry exactly one
    /// element (§2).
    ControlNotAtomic(ChunkType),
    /// A split point must fall strictly inside the chunk.
    SplitOutOfRange {
        /// Requested leading-fragment length in elements.
        at: u32,
        /// Chunk length in elements.
        len: u32,
    },
    /// The two chunks do not satisfy the Appendix D merge predicate.
    NotAdjacent,
    /// The buffer ended before a complete header or payload.
    Truncated,
    /// A header's claimed payload (`SIZE * LEN`) exceeds the decoder's
    /// sanity bound: a hostile length field that would otherwise demand an
    /// enormous allocation before truncation could even be noticed.
    OversizedLen {
        /// Bytes the header claims (`SIZE * LEN`, widened).
        claimed: u64,
        /// The decoder's bound.
        max: u64,
    },
    /// Unknown `TYPE` byte on the wire.
    BadType(u8),
    /// A single element (`SIZE` bytes plus header) cannot fit in the MTU, so
    /// the chunk cannot be fragmented to fit (the atomic unit would split).
    ElementExceedsMtu {
        /// Element size in bytes.
        size: u16,
        /// Maximum packet payload in bytes.
        mtu: usize,
    },
    /// Non-zero trailing bytes after the last chunk of a packet.
    TrailingGarbage,
    /// A compressed header referenced signalled state (for instance a
    /// per-type `SIZE`) that the decompression context does not hold.
    MissingContext(ChunkType),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::PayloadSizeMismatch { expected, actual } => write!(
                f,
                "payload length {actual} does not match SIZE*LEN = {expected}"
            ),
            CoreError::ZeroSize => write!(f, "chunk SIZE must be nonzero"),
            CoreError::ZeroLen => write!(f, "chunk LEN must be nonzero"),
            CoreError::ControlNotAtomic(t) => {
                write!(
                    f,
                    "control chunk of type {t} must carry exactly one element"
                )
            }
            CoreError::SplitOutOfRange { at, len } => {
                write!(f, "split point {at} outside chunk of {len} elements")
            }
            CoreError::NotAdjacent => write!(
                f,
                "chunks are not adjacent on all three framing levels (Appendix D)"
            ),
            CoreError::Truncated => write!(f, "truncated chunk or packet"),
            CoreError::OversizedLen { claimed, max } => {
                write!(
                    f,
                    "header claims {claimed} payload bytes, decoder bound is {max}"
                )
            }
            CoreError::BadType(b) => write!(f, "unknown chunk TYPE byte {b:#04x}"),
            CoreError::ElementExceedsMtu { size, mtu } => write!(
                f,
                "atomic element of {size} bytes cannot fit packet payload of {mtu} bytes"
            ),
            CoreError::TrailingGarbage => {
                write!(f, "non-zero bytes after last chunk in packet")
            }
            CoreError::MissingContext(t) => {
                write!(f, "no signalled context for chunk type {t}")
            }
        }
    }
}

impl CoreError {
    /// A short stable kebab-case tag for the error, suitable as the
    /// `reason` of a [`chunks_obs::Event::ChunkRejected`] trace event.
    pub fn kind(&self) -> &'static str {
        match self {
            CoreError::PayloadSizeMismatch { .. } => "payload-size-mismatch",
            CoreError::ZeroSize => "zero-size",
            CoreError::ZeroLen => "zero-len",
            CoreError::ControlNotAtomic(_) => "control-not-atomic",
            CoreError::SplitOutOfRange { .. } => "split-out-of-range",
            CoreError::NotAdjacent => "not-adjacent",
            CoreError::Truncated => "truncated",
            CoreError::OversizedLen { .. } => "oversized-len",
            CoreError::BadType(_) => "bad-type",
            CoreError::ElementExceedsMtu { .. } => "element-exceeds-mtu",
            CoreError::TrailingGarbage => "trailing-garbage",
            CoreError::MissingContext(_) => "missing-context",
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::PayloadSizeMismatch {
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("SIZE*LEN"));
        assert!(CoreError::BadType(0xFF).to_string().contains("0xff"));
        assert!(CoreError::ControlNotAtomic(ChunkType::Ack)
            .to_string()
            .contains("ACK"));
    }
}
