//! Packets as envelopes for chunks (§2, Figure 3).
//!
//! "Packets can be considered envelopes that carry integral numbers of
//! chunks." When a chunk is longer than a packet it is split into chunks
//! that fit; when chunks are smaller than a packet, as many as fit are
//! placed in one packet. A chunk with `LEN = 0` marks the end of the valid
//! chunks when a packet is not completely filled. Because chunks allow
//! disordering, *how* chunks are placed in packets is irrelevant.

use bytes::Bytes;
use chunks_obs::ObsSink;

use crate::chunk::Chunk;
use crate::error::CoreError;
use crate::frag::split;
use crate::wire::{
    decode_chunk, decode_chunk_observed, encode_chunk, MAX_DECODE_PAYLOAD, WIRE_HEADER_LEN,
};

/// A packet: the atomic physical unit exchanged between protocol processors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// The on-the-wire bytes: a sequence of encoded chunks, optionally
    /// terminated by an end marker and zero padding.
    pub bytes: Bytes,
}

impl Packet {
    /// The packet length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the packet carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Incrementally fills a packet with chunks up to an MTU.
#[derive(Debug)]
pub struct PacketBuilder {
    mtu: usize,
    buf: Vec<u8>,
}

impl PacketBuilder {
    /// Creates a builder for packets of at most `mtu` bytes.
    pub fn new(mtu: usize) -> Self {
        PacketBuilder {
            mtu,
            buf: Vec::with_capacity(mtu.min(9216)),
        }
    }

    /// Bytes still available in the packet under construction.
    pub fn remaining(&self) -> usize {
        self.mtu - self.buf.len()
    }

    /// True if no chunk has been added yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many data elements of a chunk with element size `size` would
    /// still fit (including the chunk's header).
    pub fn fit_elements(&self, size: u16) -> u32 {
        let rem = self.remaining();
        if rem <= WIRE_HEADER_LEN {
            return 0;
        }
        ((rem - WIRE_HEADER_LEN) / size as usize) as u32
    }

    /// Adds a whole chunk. Returns the chunk back when it does not fit.
    pub fn push(&mut self, chunk: Chunk) -> Result<(), Chunk> {
        if chunk.wire_len() > self.remaining() {
            return Err(chunk);
        }
        encode_chunk(&chunk, &mut self.buf);
        Ok(())
    }

    /// Finishes the packet exactly as filled (no padding). The parser stops
    /// at end-of-bytes.
    pub fn finish(self) -> Packet {
        Packet {
            bytes: self.buf.into(),
        }
    }

    /// Finishes the packet padded with zeros to the full MTU — the fixed
    /// cell case (e.g. ATM). A zero header is the `LEN = 0` end marker, so
    /// the padding doubles as the terminator when at least a header's worth
    /// of space remains.
    pub fn finish_padded(mut self) -> Packet {
        self.buf.resize(self.mtu, 0);
        Packet {
            bytes: self.buf.into(),
        }
    }
}

/// Packs a sequence of chunks into packets of at most `mtu` bytes, splitting
/// chunks that do not fit (Appendix C via [`split`]). Greedy first-fit in
/// the order given; the receiver does not care about placement.
pub fn pack(chunks: Vec<Chunk>, mtu: usize) -> Result<Vec<Packet>, CoreError> {
    let mut packets = Vec::new();
    let mut builder = PacketBuilder::new(mtu);
    for mut chunk in chunks {
        loop {
            // Fast path: the whole chunk fits.
            match builder.push(chunk) {
                Ok(()) => break,
                Err(back) => chunk = back,
            }
            // Split off as many elements as fit in the current packet.
            let fit = builder.fit_elements(chunk.header.size);
            if fit == 0 || chunk.header.ty.is_control() {
                // No room (or control is indivisible): start a new packet.
                if builder.is_empty() {
                    // Even an empty packet cannot take one element.
                    return Err(CoreError::ElementExceedsMtu {
                        size: chunk.header.size,
                        mtu,
                    });
                }
                packets.push(std::mem::replace(&mut builder, PacketBuilder::new(mtu)).finish());
                continue;
            }
            debug_assert!(fit < chunk.header.len);
            let (head, tail) = split(&chunk, fit)?;
            builder
                .push(head)
                .map_err(|_| CoreError::Truncated)
                .expect("head sized to fit");
            packets.push(std::mem::replace(&mut builder, PacketBuilder::new(mtu)).finish());
            chunk = tail;
        }
    }
    if !builder.is_empty() {
        packets.push(builder.finish());
    }
    Ok(packets)
}

/// Extracts the chunks from a packet.
///
/// Parsing stops at a `LEN = 0` end marker or at end-of-bytes; remaining
/// bytes after a marker must be zero padding. Trailing space smaller than a
/// header is accepted only when all zero.
pub fn unpack(packet: &Packet) -> Result<Vec<Chunk>, CoreError> {
    let mut chunks = Vec::new();
    let mut rest: &[u8] = &packet.bytes;
    while !rest.is_empty() {
        if rest.len() < WIRE_HEADER_LEN {
            if rest.iter().all(|&b| b == 0) {
                break;
            }
            return Err(CoreError::Truncated);
        }
        let header = crate::wire::decode_header(rest)?;
        if header.len == 0 {
            // End marker: everything after it must be padding.
            if rest[WIRE_HEADER_LEN..].iter().any(|&b| b != 0) {
                return Err(CoreError::TrailingGarbage);
            }
            break;
        }
        let (chunk, used) = decode_chunk(rest)?;
        chunks.push(chunk);
        rest = &rest[used..];
    }
    Ok(chunks)
}

/// [`unpack`] with per-chunk decode instrumentation (see
/// [`decode_chunk_observed`]): identical accept/reject behaviour, plus one
/// `ChunkDecoded`/`ChunkRejected` event and wire counter per chunk.
pub fn unpack_observed(
    packet: &Packet,
    now: u64,
    sink: &dyn ObsSink,
) -> Result<Vec<Chunk>, CoreError> {
    let mut chunks = Vec::new();
    let mut rest: &[u8] = &packet.bytes;
    while !rest.is_empty() {
        if rest.len() < WIRE_HEADER_LEN {
            if rest.iter().all(|&b| b == 0) {
                break;
            }
            return Err(CoreError::Truncated);
        }
        let header = crate::wire::decode_header(rest)?;
        if header.len == 0 {
            if rest[WIRE_HEADER_LEN..].iter().any(|&b| b != 0) {
                return Err(CoreError::TrailingGarbage);
            }
            break;
        }
        let (chunk, used) = decode_chunk_observed(rest, now, sink)?;
        chunks.push(chunk);
        rest = &rest[used..];
    }
    Ok(chunks)
}

/// Scans a packet's encoded chunks without materialising payloads, returning
/// the byte span `[start, end)` of each chunk in placement order.
///
/// Validation is identical to [`unpack`]: the same end-marker, padding,
/// truncation, oversize and header rules apply, so a packet is either
/// accepted by both functions with the same chunk boundaries or rejected by
/// both. A sharded dispatcher uses this to route cheap [`bytes::Bytes`]
/// sub-slices of the packet to workers without touching a single payload
/// byte on the dispatch stage.
pub fn chunk_spans(packet: &Packet) -> Result<Vec<(usize, usize)>, CoreError> {
    let bytes: &[u8] = &packet.bytes;
    let mut spans = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < WIRE_HEADER_LEN {
            if rest.iter().all(|&b| b == 0) {
                break;
            }
            return Err(CoreError::Truncated);
        }
        let header = crate::wire::decode_header(rest)?;
        if header.len == 0 {
            if rest[WIRE_HEADER_LEN..].iter().any(|&b| b != 0) {
                return Err(CoreError::TrailingGarbage);
            }
            break;
        }
        header.validate()?;
        // Same widened bound check as `decode_chunk` (the claim approaches
        // 2^48 and must not touch usize arithmetic first).
        let claimed = header.size as u64 * header.len as u64;
        if claimed > MAX_DECODE_PAYLOAD as u64 {
            return Err(CoreError::OversizedLen {
                claimed,
                max: MAX_DECODE_PAYLOAD as u64,
            });
        }
        let total = WIRE_HEADER_LEN + claimed as usize;
        if rest.len() < total {
            return Err(CoreError::Truncated);
        }
        spans.push((at, at + total));
        at += total;
    }
    Ok(spans)
}

/// Validates a packet's framing without allocating, returning the number of
/// chunks it carries.
///
/// This is the allocation-free twin of [`chunk_spans`]: the same end-marker,
/// padding, truncation, oversize and header rules apply, so a packet is
/// accepted by `validate` exactly when `chunk_spans`/[`unpack`] accept it,
/// with the same error otherwise. The zero-copy receive path runs this scan
/// first — preserving `unpack`'s whole-packet reject semantics — and then
/// walks the (now known-good) spans with [`spans`], decoding each chunk in
/// place without a `Vec` of spans or a `Vec` of chunks.
pub fn validate(packet: &Packet) -> Result<usize, CoreError> {
    let bytes: &[u8] = &packet.bytes;
    let mut count = 0usize;
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < WIRE_HEADER_LEN {
            if rest.iter().all(|&b| b == 0) {
                break;
            }
            return Err(CoreError::Truncated);
        }
        let header = crate::wire::decode_header(rest)?;
        if header.len == 0 {
            if rest[WIRE_HEADER_LEN..].iter().any(|&b| b != 0) {
                return Err(CoreError::TrailingGarbage);
            }
            break;
        }
        header.validate()?;
        let claimed = header.size as u64 * header.len as u64;
        if claimed > MAX_DECODE_PAYLOAD as u64 {
            return Err(CoreError::OversizedLen {
                claimed,
                max: MAX_DECODE_PAYLOAD as u64,
            });
        }
        let total = WIRE_HEADER_LEN + claimed as usize;
        if rest.len() < total {
            return Err(CoreError::Truncated);
        }
        count += 1;
        at += total;
    }
    Ok(count)
}

/// Iterates the chunk byte spans of an **already-validated** packet without
/// allocating. On a packet [`validate`] accepted, this yields exactly the
/// spans [`chunk_spans`] would collect; on anything else it simply stops at
/// the first inconsistency (it cannot report errors — run [`validate`]
/// first).
pub fn spans(packet: &Packet) -> Spans<'_> {
    Spans {
        bytes: &packet.bytes,
        at: 0,
    }
}

/// Iterator over chunk spans of a validated packet. See [`spans`].
#[derive(Debug)]
pub struct Spans<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Iterator for Spans<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.at >= self.bytes.len() {
            return None;
        }
        let rest = &self.bytes[self.at..];
        if rest.len() < WIRE_HEADER_LEN {
            return None;
        }
        let header = crate::wire::decode_header(rest).ok()?;
        if header.len == 0 {
            return None;
        }
        let claimed = header.size as u64 * header.len as u64;
        if claimed > MAX_DECODE_PAYLOAD as u64 {
            return None;
        }
        let total = WIRE_HEADER_LEN + claimed as usize;
        if rest.len() < total {
            return None;
        }
        let span = (self.at, self.at + total);
        self.at += total;
        Some(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{byte_chunk, Chunk, ChunkHeader};
    use crate::frag::ReassemblyPool;
    use crate::label::{ChunkType, FramingTuple};

    fn data_chunk(len: u32) -> Chunk {
        let payload: Vec<u8> = (0..len as u8).collect();
        byte_chunk(
            FramingTuple::new(1, 0, false),
            FramingTuple::new(2, 0, true),
            FramingTuple::new(3, 0, false),
            &payload,
        )
    }

    fn ed_chunk() -> Chunk {
        Chunk::new(
            ChunkHeader::control(
                ChunkType::ErrorDetection,
                8,
                FramingTuple::new(1, 0, false),
                FramingTuple::new(2, 0, false),
                FramingTuple::new(3, 0, false),
            ),
            Bytes::from_static(&[0xEE; 8]),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_single_packet() {
        let chunks = vec![data_chunk(7), ed_chunk()];
        let packets = pack(chunks.clone(), 1500).unwrap();
        assert_eq!(packets.len(), 1, "both chunks share one envelope (Fig. 3)");
        assert_eq!(unpack(&packets[0]).unwrap(), chunks);
    }

    #[test]
    fn oversized_chunk_is_split_across_packets() {
        let c = data_chunk(100);
        let mtu = WIRE_HEADER_LEN + 40;
        let packets = pack(vec![c.clone()], mtu).unwrap();
        assert_eq!(packets.len(), 3); // 40 + 40 + 20 elements
        let mut pool = ReassemblyPool::new();
        for p in &packets {
            assert!(p.len() <= mtu);
            for chunk in unpack(p).unwrap() {
                pool.insert(chunk);
            }
        }
        assert_eq!(pool.take_complete().unwrap(), c);
    }

    #[test]
    fn control_chunk_never_split() {
        // ED payload (8B) + header does not fit after the data chunk; it
        // must move whole to the next packet.
        let mtu = WIRE_HEADER_LEN + 10;
        let packets = pack(vec![data_chunk(10), ed_chunk()], mtu).unwrap();
        assert_eq!(packets.len(), 2);
        let second = unpack(&packets[1]).unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].header.ty, ChunkType::ErrorDetection);
    }

    #[test]
    fn element_too_large_for_any_packet() {
        let err = pack(vec![ed_chunk()], WIRE_HEADER_LEN + 4).unwrap_err();
        assert!(matches!(err, CoreError::ElementExceedsMtu { size: 8, .. }));
    }

    #[test]
    fn padded_packet_parses_with_end_marker() {
        let mut b = PacketBuilder::new(200);
        b.push(data_chunk(5)).unwrap();
        let p = b.finish_padded();
        assert_eq!(p.len(), 200);
        let chunks = unpack(&p).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].header.len, 5);
    }

    #[test]
    fn padding_smaller_than_header_accepted() {
        let mtu = WIRE_HEADER_LEN + 5 + 10; // 10 bytes of sub-header padding
        let mut b = PacketBuilder::new(mtu);
        b.push(data_chunk(5)).unwrap();
        let p = b.finish_padded();
        assert_eq!(unpack(&p).unwrap().len(), 1);
    }

    #[test]
    fn garbage_after_end_marker_rejected() {
        let mut b = PacketBuilder::new(200);
        b.push(data_chunk(5)).unwrap();
        let p = b.finish_padded();
        let mut raw = p.bytes.to_vec();
        *raw.last_mut().unwrap() = 0xFF;
        let bad = Packet { bytes: raw.into() };
        assert_eq!(unpack(&bad).unwrap_err(), CoreError::TrailingGarbage);
    }

    #[test]
    fn multiple_small_chunks_share_packet() {
        let mut chunks = Vec::new();
        for i in 0..5u32 {
            chunks.push(byte_chunk(
                FramingTuple::new(1, i * 4, false),
                FramingTuple::new(2, i * 4, false),
                FramingTuple::new(3, i * 4, false),
                &[i as u8; 4],
            ));
        }
        let packets = pack(chunks.clone(), 1500).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(unpack(&packets[0]).unwrap(), chunks);
    }

    #[test]
    fn builder_fit_elements_accounts_for_header() {
        let b = PacketBuilder::new(WIRE_HEADER_LEN + 10);
        assert_eq!(b.fit_elements(1), 10);
        assert_eq!(b.fit_elements(4), 2);
        assert_eq!(b.fit_elements(11), 0);
        let tiny = PacketBuilder::new(WIRE_HEADER_LEN);
        assert_eq!(tiny.fit_elements(1), 0);
    }

    #[test]
    fn empty_chunk_list_produces_no_packets() {
        assert!(pack(vec![], 1500).unwrap().is_empty());
    }

    /// `chunk_spans` and `unpack` must agree chunk-for-chunk on accepted
    /// packets and error-for-error on rejected ones — the property a
    /// zero-copy dispatch stage depends on.
    fn assert_spans_agree(p: &Packet) {
        match (chunk_spans(p), unpack(p)) {
            (Ok(spans), Ok(chunks)) => {
                assert_eq!(spans.len(), chunks.len());
                for ((lo, hi), chunk) in spans.iter().zip(&chunks) {
                    let (decoded, used) = decode_chunk(&p.bytes[*lo..*hi]).unwrap();
                    assert_eq!(used, hi - lo);
                    assert_eq!(&decoded, chunk);
                }
                // The allocation-free scan agrees too, span for span.
                assert_eq!(validate(p).unwrap(), spans.len());
                let streamed: Vec<(usize, usize)> = super::spans(p).collect();
                assert_eq!(streamed, spans);
                // And the zero-copy decode sees the same chunks, sharing the
                // packet's buffer instead of copying out of it.
                for ((lo, hi), chunk) in spans.iter().zip(&chunks) {
                    let (zc, used) = crate::wire::decode_chunk_at(&p.bytes, *lo).unwrap();
                    assert_eq!(used, hi - lo);
                    assert_eq!(&zc, chunk);
                    let range = p.bytes.as_ptr_range();
                    if !zc.payload.is_empty() {
                        let pp = zc.payload.as_ptr();
                        assert!(
                            range.contains(&pp),
                            "zero-copy payload must borrow the packet buffer"
                        );
                    }
                }
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b);
                assert_eq!(validate(p).unwrap_err(), a);
            }
            (a, b) => panic!("span scan {a:?} disagrees with unpack {b:?}"),
        }
    }

    #[test]
    fn spans_agree_with_unpack_on_wellformed_packets() {
        let chunks = vec![data_chunk(7), ed_chunk(), data_chunk(30)];
        for p in pack(chunks, 120).unwrap() {
            assert_spans_agree(&p);
        }
        let mut b = PacketBuilder::new(200);
        b.push(data_chunk(5)).unwrap();
        assert_spans_agree(&b.finish_padded());
        assert_spans_agree(&Packet {
            bytes: Bytes::new(),
        });
    }

    #[test]
    fn spans_agree_with_unpack_on_malformed_packets() {
        // Truncated mid-payload.
        let mut raw = Vec::new();
        encode_chunk(&data_chunk(9), &mut raw);
        raw.truncate(raw.len() - 3);
        assert_spans_agree(&Packet { bytes: raw.into() });
        // Garbage after the end marker.
        let mut b = PacketBuilder::new(120);
        b.push(data_chunk(5)).unwrap();
        let mut raw = b.finish_padded().bytes.to_vec();
        *raw.last_mut().unwrap() = 0x42;
        assert_spans_agree(&Packet { bytes: raw.into() });
        // Unknown TYPE byte.
        let mut raw = Vec::new();
        encode_chunk(&data_chunk(4), &mut raw);
        raw[0] = 0x7F;
        assert_spans_agree(&Packet { bytes: raw.into() });
        // Oversized claim.
        let mut raw = Vec::new();
        encode_chunk(&data_chunk(4), &mut raw);
        raw[2] = 0xFF;
        raw[3] = 0xFF;
        raw[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_spans_agree(&Packet { bytes: raw.into() });
        // Sub-header trailing garbage.
        let mut raw = Vec::new();
        encode_chunk(&data_chunk(4), &mut raw);
        raw.extend_from_slice(&[0, 0, 0x99]);
        assert_spans_agree(&Packet { bytes: raw.into() });
    }
}
