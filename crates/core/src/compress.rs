//! Invertible header-compression transforms (Appendix A).
//!
//! "Chunk syntax transformations … are invertible, because they allow
//! recovery of the original chunk syntax." Protocols are defined over the
//! simple fixed-field form; these transforms only reduce header bandwidth,
//! and different parts of a network may use different forms.
//!
//! Three transforms are implemented:
//!
//! 1. **Implicit `T.ID`** (Figure 7): the SN fields of a chunk change in
//!    lock-step, so `C.SN − T.SN` is constant across a TPDU and can replace
//!    the explicit `T.ID`.
//! 2. **`SIZE` elision**: the per-`TYPE` element size is signalled at
//!    connection establishment (like a virtual-circuit parameter) and
//!    removed from every header.
//! 3. **Intra-packet delta encoding**: when the chunk headers within a
//!    packet are related (e.g. the ED chunk that follows the last data chunk
//!    of a TPDU), later headers encode only the fields that differ from a
//!    *continuation prediction* of the previous header.

use std::collections::HashMap;

use bytes::Bytes;

use crate::chunk::{Chunk, ChunkHeader};
use crate::error::CoreError;
use crate::label::{ChunkType, FramingTuple};

/// Derives the implicit TPDU identifier from a chunk's sequence numbers
/// (Appendix A, Figure 7): `T.ID = C.SN − T.SN` (wrapping).
pub fn implicit_tid(c_sn: u32, t_sn: u32) -> u32 {
    c_sn.wrapping_sub(t_sn)
}

/// Per-connection signalled state used by compressed forms.
///
/// With the *specification* or *signalling* approach of Appendix A, the
/// `SIZE` of each chunk `TYPE` is agreed out of band and the header need not
/// carry it.
#[derive(Clone, Debug, Default)]
pub struct SignalledContext {
    sizes: HashMap<ChunkType, u16>,
}

impl SignalledContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals the element size for a chunk type (as a connection-setup
    /// message would).
    pub fn signal_size(&mut self, ty: ChunkType, size: u16) {
        self.sizes.insert(ty, size);
    }

    /// Looks up the signalled size for a type.
    pub fn size_of(&self, ty: ChunkType) -> Option<u16> {
        self.sizes.get(&ty).copied()
    }
}

/// Which header form a link uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HeaderForm {
    /// The 32-byte fixed-field form of [`crate::wire`].
    Full,
    /// `T.ID` elided (28 bytes): recovered as `C.SN − T.SN`.
    ImplicitTid,
    /// `SIZE` elided (30 bytes): recovered from the [`SignalledContext`].
    SizeElided,
    /// Both transforms applied (26 bytes).
    Compact,
}

impl HeaderForm {
    /// Header length in bytes under this form.
    pub const fn header_len(self) -> usize {
        match self {
            HeaderForm::Full => 32,
            HeaderForm::ImplicitTid => 28,
            HeaderForm::SizeElided => 30,
            HeaderForm::Compact => 26,
        }
    }

    const fn has_tid(self) -> bool {
        matches!(self, HeaderForm::Full | HeaderForm::SizeElided)
    }

    const fn has_size(self) -> bool {
        matches!(self, HeaderForm::Full | HeaderForm::ImplicitTid)
    }
}

/// Encodes a header under `form`, appending to `out`.
///
/// Fails when the form elides `SIZE` but the chunk's type has no signalled
/// size, or when the form elides `T.ID` but `T.ID != C.SN − T.SN` (the
/// transform would not be invertible for such a labelling).
pub fn encode_header_form(
    h: &ChunkHeader,
    form: HeaderForm,
    ctx: &SignalledContext,
    out: &mut Vec<u8>,
) -> Result<(), CoreError> {
    if !form.has_tid() && h.tpdu.id != implicit_tid(h.conn.sn, h.tpdu.sn) {
        return Err(CoreError::MissingContext(h.ty));
    }
    if !form.has_size() && ctx.size_of(h.ty) != Some(h.size) {
        return Err(CoreError::MissingContext(h.ty));
    }
    out.push(h.ty.to_u8());
    out.push(flags_of(h));
    if form.has_size() {
        out.extend_from_slice(&h.size.to_be_bytes());
    }
    out.extend_from_slice(&h.len.to_be_bytes());
    out.extend_from_slice(&h.conn.id.to_be_bytes());
    out.extend_from_slice(&h.conn.sn.to_be_bytes());
    if form.has_tid() {
        out.extend_from_slice(&h.tpdu.id.to_be_bytes());
    }
    out.extend_from_slice(&h.tpdu.sn.to_be_bytes());
    out.extend_from_slice(&h.ext.id.to_be_bytes());
    out.extend_from_slice(&h.ext.sn.to_be_bytes());
    Ok(())
}

/// Decodes a header encoded under `form` from the front of `buf`, returning
/// the header and bytes consumed.
pub fn decode_header_form(
    buf: &[u8],
    form: HeaderForm,
    ctx: &SignalledContext,
) -> Result<(ChunkHeader, usize), CoreError> {
    let need = form.header_len();
    if buf.len() < need {
        return Err(CoreError::Truncated);
    }
    let ty = ChunkType::from_u8(buf[0]).ok_or(CoreError::BadType(buf[0]))?;
    let flags = buf[1];
    let mut at = 2usize;
    let take_u16 = |buf: &[u8], at: &mut usize| {
        let v = u16::from_be_bytes([buf[*at], buf[*at + 1]]);
        *at += 2;
        v
    };
    let take_u32 = |buf: &[u8], at: &mut usize| {
        let v = u32::from_be_bytes([buf[*at], buf[*at + 1], buf[*at + 2], buf[*at + 3]]);
        *at += 4;
        v
    };
    let size = if form.has_size() {
        take_u16(buf, &mut at)
    } else {
        ctx.size_of(ty).ok_or(CoreError::MissingContext(ty))?
    };
    let len = take_u32(buf, &mut at);
    let c_id = take_u32(buf, &mut at);
    let c_sn = take_u32(buf, &mut at);
    let t_id = if form.has_tid() {
        take_u32(buf, &mut at)
    } else {
        0 // patched below once T.SN is known
    };
    let t_sn = take_u32(buf, &mut at);
    let t_id = if form.has_tid() {
        t_id
    } else {
        implicit_tid(c_sn, t_sn)
    };
    let x_id = take_u32(buf, &mut at);
    let x_sn = take_u32(buf, &mut at);
    debug_assert_eq!(at, need);
    Ok((
        ChunkHeader {
            ty,
            size,
            len,
            conn: FramingTuple::new(c_id, c_sn, flags & 1 != 0),
            tpdu: FramingTuple::new(t_id, t_sn, flags & 2 != 0),
            ext: FramingTuple::new(x_id, x_sn, flags & 4 != 0),
        },
        need,
    ))
}

fn flags_of(h: &ChunkHeader) -> u8 {
    (h.conn.st as u8) | (h.tpdu.st as u8) << 1 | (h.ext.st as u8) << 2
}

// ---------------------------------------------------------------------------
// Intra-packet delta encoding
// ---------------------------------------------------------------------------

/// Predicts the header of the next chunk in a packet as the *continuation*
/// of the previous one: same type/size/len/IDs, SNs advanced by the previous
/// chunk's length, ST bits clear.
fn predict(prev: &ChunkHeader) -> ChunkHeader {
    ChunkHeader {
        ty: prev.ty,
        size: prev.size,
        len: prev.len,
        conn: prev.conn.tail(prev.len).head(),
        tpdu: prev.tpdu.tail(prev.len).head(),
        ext: prev.ext.tail(prev.len).head(),
    }
}

const D_TY: u16 = 1 << 0;
const D_SIZE: u16 = 1 << 1;
const D_LEN: u16 = 1 << 2;
const D_CID: u16 = 1 << 3;
const D_CSN: u16 = 1 << 4;
const D_TID: u16 = 1 << 5;
const D_TSN: u16 = 1 << 6;
const D_XID: u16 = 1 << 7;
const D_XSN: u16 = 1 << 8;

/// Encodes the chunks of one packet under the intra-packet delta form.
///
/// Layout: `u16` chunk count, then per chunk a `u16` field mask, a flags
/// byte, the fields that differ from prediction, and the payload. The first
/// chunk is predicted from an all-zero header, so it encodes essentially in
/// full.
pub fn encode_packet_delta(chunks: &[Chunk]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(chunks.len() as u16).to_be_bytes());
    let mut prev = zero_header();
    for c in chunks {
        let pred = predict(&prev);
        let h = &c.header;
        let mut mask = 0u16;
        if h.ty != pred.ty {
            mask |= D_TY;
        }
        if h.size != pred.size {
            mask |= D_SIZE;
        }
        if h.len != pred.len {
            mask |= D_LEN;
        }
        if h.conn.id != pred.conn.id {
            mask |= D_CID;
        }
        if h.conn.sn != pred.conn.sn {
            mask |= D_CSN;
        }
        if h.tpdu.id != pred.tpdu.id {
            mask |= D_TID;
        }
        if h.tpdu.sn != pred.tpdu.sn {
            mask |= D_TSN;
        }
        if h.ext.id != pred.ext.id {
            mask |= D_XID;
        }
        if h.ext.sn != pred.ext.sn {
            mask |= D_XSN;
        }
        out.extend_from_slice(&mask.to_be_bytes());
        out.push(flags_of(h));
        if mask & D_TY != 0 {
            out.push(h.ty.to_u8());
        }
        if mask & D_SIZE != 0 {
            out.extend_from_slice(&h.size.to_be_bytes());
        }
        if mask & D_LEN != 0 {
            out.extend_from_slice(&h.len.to_be_bytes());
        }
        for (bit, v) in [
            (D_CID, h.conn.id),
            (D_CSN, h.conn.sn),
            (D_TID, h.tpdu.id),
            (D_TSN, h.tpdu.sn),
            (D_XID, h.ext.id),
            (D_XSN, h.ext.sn),
        ] {
            if mask & bit != 0 {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        // Must own: serialization gathers header fields and payload into
        // one contiguous wire buffer; a borrow cannot be contiguous.
        out.extend_from_slice(&c.payload);
        prev = *h;
    }
    out
}

/// Decodes a delta-encoded packet back into its chunks.
///
/// Payloads are **copied** out of `buf`: a plain `&[u8]` borrow has no
/// refcounted backing a `Bytes` slice could share, so owning is the only
/// sound option here. When the frame already lives in a [`Bytes`], use
/// [`decode_packet_delta_bytes`] — its payloads borrow the frame.
pub fn decode_packet_delta(buf: &[u8]) -> Result<Vec<Chunk>, CoreError> {
    // Must own: the borrow ends when this call returns.
    decode_packet_delta_inner(buf, |b, at, n| Bytes::copy_from_slice(&b[at..at + n]))
}

/// Zero-copy twin of [`decode_packet_delta`]: every chunk payload is an
/// O(1) slice of `frame`'s shared buffer — no payload bytes move.
pub fn decode_packet_delta_bytes(frame: &Bytes) -> Result<Vec<Chunk>, CoreError> {
    decode_packet_delta_inner(frame, |_, at, n| frame.slice(at..at + n))
}

fn decode_packet_delta_inner(
    buf: &[u8],
    payload_at: impl Fn(&[u8], usize, usize) -> Bytes,
) -> Result<Vec<Chunk>, CoreError> {
    if buf.len() < 2 {
        return Err(CoreError::Truncated);
    }
    let count = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    let mut at = 2usize;
    let mut prev = zero_header();
    let mut chunks = Vec::with_capacity(count);
    fn take<'b>(buf: &'b [u8], at: &mut usize, n: usize) -> Result<&'b [u8], CoreError> {
        if buf.len() < *at + n {
            return Err(CoreError::Truncated);
        }
        let s = &buf[*at..*at + n];
        *at += n;
        Ok(s)
    }
    for _ in 0..count {
        let mask = {
            let s = take(buf, &mut at, 2)?;
            u16::from_be_bytes([s[0], s[1]])
        };
        let flags = take(buf, &mut at, 1)?[0];
        let mut h = predict(&prev);
        if mask & D_TY != 0 {
            let b = take(buf, &mut at, 1)?[0];
            h.ty = ChunkType::from_u8(b).ok_or(CoreError::BadType(b))?;
        }
        if mask & D_SIZE != 0 {
            let s = take(buf, &mut at, 2)?;
            h.size = u16::from_be_bytes([s[0], s[1]]);
        }
        if mask & D_LEN != 0 {
            let s = take(buf, &mut at, 4)?;
            h.len = u32::from_be_bytes([s[0], s[1], s[2], s[3]]);
        }
        let read_u32 = |at: &mut usize| -> Result<u32, CoreError> {
            let s = take(buf, at, 4)?;
            Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
        };
        if mask & D_CID != 0 {
            h.conn.id = read_u32(&mut at)?;
        }
        if mask & D_CSN != 0 {
            h.conn.sn = read_u32(&mut at)?;
        }
        if mask & D_TID != 0 {
            h.tpdu.id = read_u32(&mut at)?;
        }
        if mask & D_TSN != 0 {
            h.tpdu.sn = read_u32(&mut at)?;
        }
        if mask & D_XID != 0 {
            h.ext.id = read_u32(&mut at)?;
        }
        if mask & D_XSN != 0 {
            h.ext.sn = read_u32(&mut at)?;
        }
        h.conn.st = flags & 1 != 0;
        h.tpdu.st = flags & 2 != 0;
        h.ext.st = flags & 4 != 0;
        h.validate()?;
        let plen = h.payload_len();
        // Bounds-check through `take`, then let the caller decide whether
        // the payload borrows (Bytes frame) or must own (plain slice).
        take(buf, &mut at, plen)?;
        let payload = payload_at(buf, at - plen, plen);
        prev = h;
        chunks.push(Chunk { header: h, payload });
    }
    Ok(chunks)
}

// ---------------------------------------------------------------------------
// SN regeneration for in-order channels (Appendix A)
// ---------------------------------------------------------------------------

/// Flag bit marking a header that carries explicit sequence numbers
/// (a resynchronization point).
const SN_EXPLICIT: u8 = 1 << 3;

/// Encoder for the Appendix A *SN regeneration* form: "on a network that
/// has low loss and maintains packet order, we need not send SNs in each
/// chunk header" — the receiver regenerates them with a counter that
/// advances one step per data element.
///
/// The transmitter must "send SN information to the receiver occasionally,
/// such as at the beginning of each PDU" so a desynchronized receiver can
/// recover; [`SnRegenEncoder::encode`] emits explicit SNs every
/// `resync_every` chunks and at every TPDU start.
#[derive(Debug)]
pub struct SnRegenEncoder {
    resync_every: u32,
    since_resync: u32,
}

impl SnRegenEncoder {
    /// Creates an encoder that resynchronizes at least every
    /// `resync_every` chunks (and at every TPDU start).
    pub fn new(resync_every: u32) -> Self {
        SnRegenEncoder {
            resync_every: resync_every.max(1),
            since_resync: u32::MAX, // first chunk is always explicit
        }
    }

    /// Encodes `h`, appending to `out`. Returns `true` when the header
    /// carried explicit SNs.
    pub fn encode(&mut self, h: &ChunkHeader, out: &mut Vec<u8>) -> bool {
        let explicit = self.since_resync >= self.resync_every || h.tpdu.sn == 0;
        self.since_resync = if explicit { 1 } else { self.since_resync + 1 };
        out.push(h.ty.to_u8());
        let mut flags = flags_of(h);
        if explicit {
            flags |= SN_EXPLICIT;
        }
        out.push(flags);
        out.extend_from_slice(&h.size.to_be_bytes());
        out.extend_from_slice(&h.len.to_be_bytes());
        out.extend_from_slice(&h.conn.id.to_be_bytes());
        out.extend_from_slice(&h.tpdu.id.to_be_bytes());
        out.extend_from_slice(&h.ext.id.to_be_bytes());
        if explicit {
            out.extend_from_slice(&h.conn.sn.to_be_bytes());
            out.extend_from_slice(&h.tpdu.sn.to_be_bytes());
            out.extend_from_slice(&h.ext.sn.to_be_bytes());
        }
        explicit
    }
}

/// Byte length of an SN-regenerated header: 20 implicit, 32 explicit.
pub const SN_REGEN_IMPLICIT_LEN: usize = 20;
/// Byte length of an explicit (resync) header under the SN-regen form.
pub const SN_REGEN_EXPLICIT_LEN: usize = 32;

/// Decoder counterpart of [`SnRegenEncoder`].
///
/// The counters advance per data element; loss of a chunk desynchronizes
/// them, which the end-to-end error detection then catches — "the error
/// detection system will detect the incorrect sequence numbers and allow
/// any incorrect chunks to be discarded" — until the next explicit header
/// restores synchronization.
#[derive(Debug, Default)]
pub struct SnRegenDecoder {
    next_c_sn: u32,
    next_t_sn: u32,
    next_x_sn: u32,
    last_t_id: Option<u32>,
    last_x_id: Option<u32>,
}

impl SnRegenDecoder {
    /// Creates a decoder with zeroed counters (the first header on a
    /// channel is always explicit, so the initial values never matter).
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes one header from the front of `buf`, returning it and the
    /// bytes consumed.
    pub fn decode(&mut self, buf: &[u8]) -> Result<(ChunkHeader, usize), CoreError> {
        if buf.len() < SN_REGEN_IMPLICIT_LEN {
            return Err(CoreError::Truncated);
        }
        let ty = ChunkType::from_u8(buf[0]).ok_or(CoreError::BadType(buf[0]))?;
        let flags = buf[1];
        let explicit = flags & SN_EXPLICIT != 0;
        let need = if explicit {
            SN_REGEN_EXPLICIT_LEN
        } else {
            SN_REGEN_IMPLICIT_LEN
        };
        if buf.len() < need {
            return Err(CoreError::Truncated);
        }
        let rd = |at: usize| u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        let size = u16::from_be_bytes([buf[2], buf[3]]);
        let len = rd(4);
        let c_id = rd(8);
        let t_id = rd(12);
        let x_id = rd(16);
        let (c_sn, t_sn, x_sn) = if explicit {
            (rd(20), rd(24), rd(28))
        } else {
            // Regenerate. A new TPDU or external PDU restarts its counter.
            let t_sn = if self.last_t_id == Some(t_id) {
                self.next_t_sn
            } else {
                0
            };
            let x_sn = if self.last_x_id == Some(x_id) {
                self.next_x_sn
            } else {
                0
            };
            (self.next_c_sn, t_sn, x_sn)
        };
        // Advance the counters one step per element carried.
        self.next_c_sn = c_sn.wrapping_add(len);
        self.next_t_sn = t_sn.wrapping_add(len);
        self.next_x_sn = x_sn.wrapping_add(len);
        self.last_t_id = Some(t_id);
        self.last_x_id = Some(x_id);
        Ok((
            ChunkHeader {
                ty,
                size,
                len,
                conn: FramingTuple::new(c_id, c_sn, flags & 1 != 0),
                tpdu: FramingTuple::new(t_id, t_sn, flags & 2 != 0),
                ext: FramingTuple::new(x_id, x_sn, flags & 4 != 0),
            },
            need,
        ))
    }
}

fn zero_header() -> ChunkHeader {
    ChunkHeader {
        ty: ChunkType::Padding,
        size: 0,
        len: 0,
        conn: FramingTuple::default(),
        tpdu: FramingTuple::default(),
        ext: FramingTuple::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::byte_chunk;
    use crate::frag::split;

    fn sample() -> Chunk {
        byte_chunk(
            FramingTuple::new(0xA, 36, false),
            // Labelled so that T.ID == C.SN - T.SN: invertible implicit form.
            FramingTuple::new(36, 0, true),
            FramingTuple::new(0xC, 24, false),
            b"0123456",
        )
    }

    #[test]
    fn figure7_implicit_tid_values() {
        // Figure 7: C.SN 35..42, T.SN 5,0,1,2,3,4,5,0 => T.ID 30,36,...,36,42.
        let c_sn = [35u32, 36, 37, 38, 39, 40, 41, 42];
        let t_sn = [5u32, 0, 1, 2, 3, 4, 5, 0];
        let expect = [30u32, 36, 36, 36, 36, 36, 36, 42];
        for i in 0..8 {
            assert_eq!(implicit_tid(c_sn[i], t_sn[i]), expect[i], "i = {i}");
        }
    }

    #[test]
    fn implicit_tid_wraps() {
        assert_eq!(implicit_tid(2, 5), u32::MAX - 2);
    }

    #[test]
    fn all_forms_roundtrip() {
        let c = sample();
        let mut ctx = SignalledContext::new();
        ctx.signal_size(ChunkType::Data, 1);
        for form in [
            HeaderForm::Full,
            HeaderForm::ImplicitTid,
            HeaderForm::SizeElided,
            HeaderForm::Compact,
        ] {
            let mut buf = Vec::new();
            encode_header_form(&c.header, form, &ctx, &mut buf).unwrap();
            assert_eq!(buf.len(), form.header_len(), "{form:?}");
            let (h, used) = decode_header_form(&buf, form, &ctx).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(h, c.header, "{form:?}");
        }
    }

    #[test]
    fn delta_decode_bytes_matches_owned_and_borrows_the_frame() {
        // The zero-copy delta decode agrees with the owned one bit for bit,
        // and its payloads point into the frame's buffer.
        let whole = sample();
        let (a, b) = split(&whole, 3).unwrap();
        let encoded = encode_packet_delta(&[a, b]);
        let owned = decode_packet_delta(&encoded).unwrap();
        let frame = Bytes::from(encoded);
        let borrowed = decode_packet_delta_bytes(&frame).unwrap();
        assert_eq!(borrowed, owned);
        let range = frame.as_ptr_range();
        for c in &borrowed {
            let p = c.payload.as_ptr_range();
            assert!(
                p.start >= range.start && p.end <= range.end,
                "payload must borrow the frame"
            );
        }
    }

    #[test]
    fn implicit_form_requires_conforming_labels() {
        let mut c = sample();
        c.header.tpdu.id = 0x51; // not C.SN - T.SN
        let ctx = SignalledContext::new();
        let mut buf = Vec::new();
        assert!(encode_header_form(&c.header, HeaderForm::ImplicitTid, &ctx, &mut buf).is_err());
    }

    #[test]
    fn size_elision_requires_signalled_context() {
        let c = sample();
        let ctx = SignalledContext::new();
        let mut buf = Vec::new();
        assert_eq!(
            encode_header_form(&c.header, HeaderForm::SizeElided, &ctx, &mut buf).unwrap_err(),
            CoreError::MissingContext(ChunkType::Data)
        );
    }

    #[test]
    fn implicit_form_survives_fragmentation() {
        // The key property: C.SN - T.SN is invariant under Appendix C
        // splitting, so the implicit form stays decodable after any number
        // of fragmentation steps.
        let c = sample();
        let (a, b) = split(&c, 3).unwrap();
        let ctx = SignalledContext::new();
        for piece in [&a, &b] {
            let mut buf = Vec::new();
            encode_header_form(&piece.header, HeaderForm::ImplicitTid, &ctx, &mut buf).unwrap();
            let (h, _) = decode_header_form(&buf, HeaderForm::ImplicitTid, &ctx).unwrap();
            assert_eq!(h, piece.header);
        }
    }

    #[test]
    fn delta_roundtrip_related_chunks() {
        // A fragmented pair plus an unrelated chunk.
        let c = sample();
        let (a, b) = split(&c, 4).unwrap();
        let other = byte_chunk(
            FramingTuple::new(0xF0, 0, false),
            FramingTuple::new(0xF1, 0, false),
            FramingTuple::new(0xF2, 0, true),
            b"zz",
        );
        let chunks = vec![a, b, other];
        let buf = encode_packet_delta(&chunks);
        assert_eq!(decode_packet_delta(&buf).unwrap(), chunks);
    }

    #[test]
    fn delta_saves_bytes_on_continuations() {
        let c = sample();
        let (a, b) = split(&c, 4).unwrap();
        let full: usize = [&a, &b].iter().map(|c| c.wire_len()).sum();
        let delta = encode_packet_delta(&[a, b]).len();
        assert!(
            delta < full,
            "delta {delta} should beat full {full} on a continuation pair"
        );
    }

    #[test]
    fn delta_rejects_truncation() {
        let buf = encode_packet_delta(&[sample()]);
        for cut in [0, 1, 3, buf.len() - 1] {
            assert!(decode_packet_delta(&buf[..cut]).is_err(), "cut = {cut}");
        }
    }
}

#[cfg(test)]
mod sn_regen_tests {
    use super::*;
    use crate::chunk::byte_chunk;
    use crate::label::FramingTuple;

    /// A stream of chunks: two TPDUs of three chunks each, one external
    /// frame spanning everything, contiguous C.SNs.
    fn stream() -> Vec<crate::chunk::Chunk> {
        let mut out = Vec::new();
        let mut c_sn = 100u32;
        let mut x_sn = 0u32;
        for t in 0..2u32 {
            for k in 0..3u32 {
                let len = 4;
                out.push(byte_chunk(
                    FramingTuple::new(0xA, c_sn, false),
                    FramingTuple::new(10 + t, k * len, k == 2),
                    FramingTuple::new(0xE, x_sn, t == 1 && k == 2),
                    &[0x55; 4],
                ));
                c_sn = c_sn.wrapping_add(len);
                x_sn += len;
            }
        }
        out
    }

    #[test]
    fn in_order_roundtrip_with_regeneration() {
        let chunks = stream();
        let mut enc = SnRegenEncoder::new(1000);
        let mut dec = SnRegenDecoder::new();
        let mut explicit_count = 0;
        for c in &chunks {
            let mut buf = Vec::new();
            if enc.encode(&c.header, &mut buf) {
                explicit_count += 1;
            }
            let (h, used) = dec.decode(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(h, c.header, "regenerated header must match");
        }
        // Explicit only at the two TPDU starts.
        assert_eq!(explicit_count, 2);
    }

    #[test]
    fn implicit_headers_save_twelve_bytes() {
        let chunks = stream();
        let mut enc = SnRegenEncoder::new(1000);
        let mut sizes = Vec::new();
        for c in &chunks {
            let mut buf = Vec::new();
            enc.encode(&c.header, &mut buf);
            sizes.push(buf.len());
        }
        assert_eq!(sizes[0], SN_REGEN_EXPLICIT_LEN);
        assert_eq!(sizes[1], SN_REGEN_IMPLICIT_LEN);
        assert_eq!(sizes[2], SN_REGEN_IMPLICIT_LEN);
    }

    #[test]
    fn loss_desynchronizes_until_resync() {
        let chunks = stream();
        let mut enc = SnRegenEncoder::new(1000);
        let encoded: Vec<(Vec<u8>, ChunkHeader)> = chunks
            .iter()
            .map(|c| {
                let mut buf = Vec::new();
                enc.encode(&c.header, &mut buf);
                (buf, c.header)
            })
            .collect();
        // Lose chunk index 1 (implicit). The decoder regenerates wrong SNs
        // for chunk 2 — detectable garbage — then resyncs at chunk 3 (the
        // second TPDU's explicit start).
        let mut dec = SnRegenDecoder::new();
        let (h0, _) = dec.decode(&encoded[0].0).unwrap();
        assert_eq!(h0, encoded[0].1);
        let (h2, _) = dec.decode(&encoded[2].0).unwrap();
        assert_ne!(h2, encoded[2].1, "desynchronized SNs differ");
        assert_eq!(
            h2.conn.sn, encoded[1].1.conn.sn,
            "counter lags by one chunk"
        );
        let (h3, _) = dec.decode(&encoded[3].0).unwrap();
        assert_eq!(h3, encoded[3].1, "explicit header resynchronizes");
    }

    #[test]
    fn periodic_resync_forced() {
        // A long run inside one TPDU: resync_every = 2 forces explicit SNs
        // on every other chunk.
        let mut enc = SnRegenEncoder::new(2);
        let mut explicits = Vec::new();
        for k in 0..6u32 {
            let c = byte_chunk(
                FramingTuple::new(1, 100 + k * 4, false),
                FramingTuple::new(2, 1 + k * 4, false), // never T.SN 0
                FramingTuple::new(3, k * 4, false),
                &[0; 4],
            );
            let mut buf = Vec::new();
            explicits.push(enc.encode(&c.header, &mut buf));
        }
        assert_eq!(explicits, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut dec = SnRegenDecoder::new();
        assert_eq!(dec.decode(&[0u8; 4]).unwrap_err(), CoreError::Truncated);
        // Explicit flag set but buffer only implicit-sized.
        let mut buf = vec![0u8; SN_REGEN_IMPLICIT_LEN];
        buf[0] = ChunkType::Data.to_u8();
        buf[1] = SN_EXPLICIT;
        assert_eq!(dec.decode(&buf).unwrap_err(), CoreError::Truncated);
    }
}
