//! The chunk data-labelling model of Feldmeier, *"A Data Labelling Technique
//! for High-Performance Protocol Processing and Its Consequences"*,
//! SIGCOMM 1993.
//!
//! A **chunk** is a completely self-describing piece of a protocol data unit
//! (PDU): a group of data elements that share identical processing context,
//! labelled by a single header carrying
//!
//! * a [`ChunkType`] — how the payload is processed (`data`, error-detection
//!   control, signalling, …);
//! * `SIZE` — the atomic data-element size in bytes (units that must never be
//!   split by fragmentation, e.g. DES blocks);
//! * `LEN` — the number of elements in the chunk (`LEN = 0` marks the end of
//!   the valid chunks in a packet);
//! * three independent [`FramingTuple`]s `(ID, SN, ST)` — one for the
//!   **connection** (C), one for the **transport PDU** (T) and one for an
//!   **external PDU** (X, e.g. an Application Layer Frame).
//!
//! Because every chunk is self-describing, a receiver can process chunks the
//! moment they arrive — in any order, fragmented any number of times in the
//! network — without reordering or reassembly buffers.
//!
//! The crate provides:
//!
//! * [`chunk`] — the header/payload model;
//! * [`wire`] — the fixed-field wire codec;
//! * [`frag`] — the fragmentation algorithm of Appendix C and the single-step
//!   reassembly algorithm of Appendix D;
//! * [`packet`] — packets as *envelopes* that carry integral numbers of
//!   chunks (§2, Figure 3);
//! * [`compress`] — the invertible header-compression transforms of
//!   Appendix A (implicit `T.ID`, `SIZE` elision, intra-packet deltas).
//!
//! A chunk survives a wire round trip unchanged — the self-description is
//! entirely in the fixed 32-byte header:
//!
//! ```
//! use bytes::Bytes;
//! use chunks_core::chunk::{Chunk, ChunkHeader};
//! use chunks_core::label::FramingTuple;
//! use chunks_core::wire::{decode_chunk, encode_chunk};
//!
//! let chunk = Chunk::new(
//!     ChunkHeader::data(
//!         1,                                  // SIZE: 1-byte elements
//!         4,                                  // LEN: 4 elements
//!         FramingTuple::new(7, 100, false),   // C: connection
//!         FramingTuple::new(7, 0, true),      // T: transport PDU
//!         FramingTuple::new(9, 0, false),     // X: external PDU
//!     ),
//!     Bytes::from_static(b"data"),
//! )
//! .unwrap();
//! let mut wire = Vec::new();
//! encode_chunk(&chunk, &mut wire);
//! let (back, read) = decode_chunk(&wire).unwrap();
//! assert_eq!(read, wire.len());
//! assert_eq!(back, chunk);
//! ```

#![deny(missing_docs)]

pub mod chunk;
pub mod compress;
pub mod error;
pub mod frag;
pub mod label;
pub mod packet;
pub mod wire;

pub use chunk::{Chunk, ChunkHeader};
pub use error::CoreError;
pub use frag::{merge, split, split_to_fit, ReassemblyPool};
pub use label::{ChunkType, FramingTuple, Level};
pub use packet::{pack, spans, unpack, validate, Packet, PacketBuilder};
pub use wire::{decode_chunk_at, decode_chunk_ref, ChunkRef, WIRE_HEADER_LEN};
