//! The chunk itself: a shared header labelling a run of data elements.

use bytes::Bytes;
use std::fmt;

use crate::error::CoreError;
use crate::label::{ChunkType, FramingTuple, Level};

/// The complete self-describing header of a chunk (§2, Figure 2).
///
/// All data elements of a chunk share the `TYPE` and the three `ID`s, so one
/// context retrieval serves the whole chunk and the payload is processed
/// uniformly by every protocol function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChunkHeader {
    /// How the payload is processed.
    pub ty: ChunkType,
    /// Atomic data-element size in bytes. Fragmentation never splits an
    /// element (so e.g. DES 8-byte blocks always travel whole).
    pub size: u16,
    /// Number of elements carried. `0` is reserved for the end-of-packet
    /// marker and never appears in a real chunk.
    pub len: u32,
    /// Connection-level framing (`C.ID`, `C.SN`, `C.ST`).
    pub conn: FramingTuple,
    /// Transport-PDU framing (`T.ID`, `T.SN`, `T.ST`).
    pub tpdu: FramingTuple,
    /// External-PDU framing (`X.ID`, `X.SN`, `X.ST`), e.g. ALF frames.
    pub ext: FramingTuple,
}

impl ChunkHeader {
    /// Builds a data-chunk header.
    pub fn data(
        size: u16,
        len: u32,
        conn: FramingTuple,
        tpdu: FramingTuple,
        ext: FramingTuple,
    ) -> Self {
        ChunkHeader {
            ty: ChunkType::Data,
            size,
            len,
            conn,
            tpdu,
            ext,
        }
    }

    /// Builds a control-chunk header carrying one indivisible element of
    /// `size` bytes.
    pub fn control(
        ty: ChunkType,
        size: u16,
        conn: FramingTuple,
        tpdu: FramingTuple,
        ext: FramingTuple,
    ) -> Self {
        debug_assert!(ty.is_control());
        ChunkHeader {
            ty,
            size,
            len: 1,
            conn,
            tpdu,
            ext,
        }
    }

    /// Total payload bytes described by this header (`SIZE * LEN`).
    pub fn payload_len(&self) -> usize {
        self.size as usize * self.len as usize
    }

    /// The framing tuple for a level.
    pub fn tuple(&self, level: Level) -> FramingTuple {
        match level {
            Level::Connection => self.conn,
            Level::Tpdu => self.tpdu,
            Level::External => self.ext,
        }
    }

    /// Mutable access to the framing tuple for a level.
    pub fn tuple_mut(&mut self, level: Level) -> &mut FramingTuple {
        match level {
            Level::Connection => &mut self.conn,
            Level::Tpdu => &mut self.tpdu,
            Level::External => &mut self.ext,
        }
    }

    /// Sequence number (at `level`) of the chunk's last element.
    pub fn last_sn(&self, level: Level) -> u32 {
        self.tuple(level).sn_at(self.len.wrapping_sub(1))
    }

    /// Sequence number (at `level`) one past the chunk's last element.
    pub fn end_sn(&self, level: Level) -> u32 {
        self.tuple(level).sn_at(self.len)
    }

    /// Checks the structural invariants of a header.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.size == 0 {
            return Err(CoreError::ZeroSize);
        }
        if self.len == 0 {
            return Err(CoreError::ZeroLen);
        }
        if self.ty.is_control() && self.len != 1 {
            return Err(CoreError::ControlNotAtomic(self.ty));
        }
        Ok(())
    }
}

impl fmt::Display for ChunkHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} size={} len={} C{} T{} X{}]",
            self.ty, self.size, self.len, self.conn, self.tpdu, self.ext
        )
    }
}

/// A chunk: a self-describing header plus its payload.
///
/// The payload is a cheaply-cloneable [`Bytes`] so that splitting a chunk
/// (Appendix C) shares the underlying buffer instead of copying — the model
/// analogue of the paper's "manipulation is quite simple" claim.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Chunk {
    /// The self-describing label.
    pub header: ChunkHeader,
    /// `SIZE * LEN` payload bytes.
    pub payload: Bytes,
}

impl Chunk {
    /// Creates a chunk, validating that the payload length matches the
    /// header's `SIZE * LEN`.
    pub fn new(header: ChunkHeader, payload: Bytes) -> Result<Self, CoreError> {
        header.validate()?;
        let expected = header.payload_len();
        if payload.len() != expected {
            return Err(CoreError::PayloadSizeMismatch {
                expected,
                actual: payload.len(),
            });
        }
        Ok(Chunk { header, payload })
    }

    /// The `k`-th data element of the chunk (a `SIZE`-byte slice).
    ///
    /// Returns `None` when `k >= LEN`.
    pub fn element(&self, k: u32) -> Option<&[u8]> {
        if k >= self.header.len {
            return None;
        }
        let s = self.header.size as usize;
        let start = k as usize * s;
        Some(&self.payload[start..start + s])
    }

    /// Iterates over `(connection SN, element bytes)` pairs — the unit a
    /// receiver places directly into the application address space.
    pub fn elements(&self) -> impl Iterator<Item = (u32, &[u8])> + '_ {
        let size = self.header.size as usize;
        let base = self.header.conn.sn;
        self.payload
            .chunks(size)
            .enumerate()
            .map(move |(k, e)| (base.wrapping_add(k as u32), e))
    }

    /// Total bytes this chunk occupies on the wire under the uncompressed
    /// codec (header + payload).
    pub fn wire_len(&self) -> usize {
        crate::wire::WIRE_HEADER_LEN + self.payload.len()
    }
}

impl fmt::Display for Chunk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} + {}B", self.header, self.payload.len())
    }
}

/// Convenience constructor used throughout the tests and examples: a data
/// chunk with `SIZE = 1` whose payload is `bytes`.
pub fn byte_chunk(
    conn: FramingTuple,
    tpdu: FramingTuple,
    ext: FramingTuple,
    bytes: &[u8],
) -> Chunk {
    Chunk::new(
        ChunkHeader::data(1, bytes.len() as u32, conn, tpdu, ext),
        Bytes::copy_from_slice(bytes),
    )
    .expect("byte_chunk: consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(size: u16, len: u32) -> ChunkHeader {
        ChunkHeader::data(
            size,
            len,
            FramingTuple::new(1, 100, false),
            FramingTuple::new(2, 0, true),
            FramingTuple::new(3, 50, false),
        )
    }

    #[test]
    fn payload_must_match_size_times_len() {
        let h = hdr(4, 3);
        assert!(Chunk::new(h, Bytes::from(vec![0u8; 12])).is_ok());
        assert_eq!(
            Chunk::new(h, Bytes::from(vec![0u8; 11])).unwrap_err(),
            CoreError::PayloadSizeMismatch {
                expected: 12,
                actual: 11
            }
        );
    }

    #[test]
    fn zero_size_and_len_rejected() {
        let mut h = hdr(0, 3);
        assert_eq!(h.validate(), Err(CoreError::ZeroSize));
        h.size = 4;
        h.len = 0;
        assert_eq!(h.validate(), Err(CoreError::ZeroLen));
    }

    #[test]
    fn control_must_be_atomic() {
        let mut h = hdr(8, 2);
        h.ty = ChunkType::ErrorDetection;
        assert_eq!(h.validate(), Err(CoreError::ControlNotAtomic(h.ty)));
        h.len = 1;
        assert!(h.validate().is_ok());
    }

    #[test]
    fn element_access() {
        let c = Chunk::new(hdr(2, 3), Bytes::from_static(b"aabbcc")).unwrap();
        assert_eq!(c.element(0).unwrap(), b"aa");
        assert_eq!(c.element(2).unwrap(), b"cc");
        assert!(c.element(3).is_none());
    }

    #[test]
    fn elements_carry_connection_sns() {
        let c = Chunk::new(hdr(2, 3), Bytes::from_static(b"aabbcc")).unwrap();
        let v: Vec<(u32, &[u8])> = c.elements().collect();
        assert_eq!(
            v,
            vec![(100, &b"aa"[..]), (101, &b"bb"[..]), (102, &b"cc"[..])]
        );
    }

    #[test]
    fn sn_helpers() {
        let h = hdr(2, 3); // C.SN 100..102
        assert_eq!(h.last_sn(Level::Connection), 102);
        assert_eq!(h.end_sn(Level::Connection), 103);
        assert_eq!(h.last_sn(Level::Tpdu), 2);
    }

    #[test]
    fn wire_len_counts_header_and_payload() {
        let c = Chunk::new(hdr(1, 5), Bytes::from_static(b"hello")).unwrap();
        assert_eq!(c.wire_len(), crate::wire::WIRE_HEADER_LEN + 5);
    }

    #[test]
    fn display_is_compact() {
        let c = byte_chunk(
            FramingTuple::new(1, 2, false),
            FramingTuple::new(3, 4, true),
            FramingTuple::new(5, 6, false),
            b"xy",
        );
        let s = c.to_string();
        assert!(s.contains("size=1"), "{s}");
        assert!(s.contains("len=2"), "{s}");
    }
}
