//! Adversarial-input tests: every decoder returns an error — never panics,
//! never overruns — on arbitrary bytes. (Network input is attacker
//! controlled; §4 is about corruption *detection*, but the parsers must
//! first survive it.)

use chunks_core::compress::{
    decode_header_form, decode_packet_delta, HeaderForm, SignalledContext, SnRegenDecoder,
};
use chunks_core::label::ChunkType;
use chunks_core::packet::{unpack, Packet};
use chunks_core::wire::{decode_chunk, decode_header};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decode_header_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_header(&bytes);
    }

    #[test]
    fn decode_chunk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_chunk(&bytes);
    }

    #[test]
    fn unpack_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let packet = Packet { bytes: bytes.into() };
        let _ = unpack(&packet);
    }

    #[test]
    fn header_forms_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        form_idx in 0usize..4,
    ) {
        let form = [
            HeaderForm::Full,
            HeaderForm::ImplicitTid,
            HeaderForm::SizeElided,
            HeaderForm::Compact,
        ][form_idx];
        let mut ctx = SignalledContext::new();
        ctx.signal_size(ChunkType::Data, 4);
        let _ = decode_header_form(&bytes, form, &ctx);
    }

    #[test]
    fn delta_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = decode_packet_delta(&bytes);
    }

    #[test]
    fn sn_regen_decode_never_panics(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        // Stateful decoder survives arbitrary byte streams.
        let mut dec = SnRegenDecoder::new();
        for f in &frames {
            let _ = dec.decode(f);
        }
    }

    #[test]
    fn decoded_chunks_are_internally_consistent(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Whatever decodes successfully must satisfy the model invariants.
        if let Ok((chunk, used)) = decode_chunk(&bytes) {
            prop_assert!(used <= bytes.len());
            prop_assert_eq!(
                chunk.payload.len(),
                chunk.header.payload_len()
            );
            prop_assert!(chunk.header.validate().is_ok());
        }
    }
}
