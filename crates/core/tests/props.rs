//! Property-based tests of the chunk invariants: fragmentation closure,
//! merge/split inversion, codec round-trips and packing round-trips.

use bytes::Bytes;
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::compress::{
    decode_header_form, decode_packet_delta, encode_header_form, encode_packet_delta, implicit_tid,
    HeaderForm, SignalledContext,
};
use chunks_core::frag::{merge, split, split_to_fit, ReassemblyPool};
use chunks_core::label::{ChunkType, FramingTuple};
use chunks_core::packet::{pack, unpack};
use chunks_core::wire::{decode_chunk, encode_chunk, WIRE_HEADER_LEN};
use proptest::prelude::*;

fn tuple_strategy() -> impl Strategy<Value = FramingTuple> {
    (any::<u32>(), any::<u32>(), any::<bool>())
        .prop_map(|(id, sn, st)| FramingTuple::new(id, sn, st))
}

/// Arbitrary data chunks with small element sizes and lengths.
fn chunk_strategy() -> impl Strategy<Value = Chunk> {
    (
        1u16..=8,
        1u32..=64,
        tuple_strategy(),
        tuple_strategy(),
        tuple_strategy(),
    )
        .prop_map(|(size, len, conn, tpdu, ext)| {
            let payload: Vec<u8> = (0..(size as usize * len as usize))
                .map(|i| (i * 31 + 7) as u8)
                .collect();
            Chunk::new(
                ChunkHeader::data(size, len, conn, tpdu, ext),
                Bytes::from(payload),
            )
            .unwrap()
        })
}

proptest! {
    #[test]
    fn split_then_merge_is_identity(c in chunk_strategy(), at_frac in 0.01f64..0.99) {
        prop_assume!(c.header.len >= 2);
        let at = ((c.header.len as f64 * at_frac) as u32).clamp(1, c.header.len - 1);
        let (a, b) = split(&c, at).unwrap();
        prop_assert_eq!(merge(&a, &b).unwrap(), c);
    }

    #[test]
    fn split_preserves_element_count_and_bytes(c in chunk_strategy(), at_frac in 0.01f64..0.99) {
        prop_assume!(c.header.len >= 2);
        let at = ((c.header.len as f64 * at_frac) as u32).clamp(1, c.header.len - 1);
        let (a, b) = split(&c, at).unwrap();
        prop_assert_eq!(a.header.len + b.header.len, c.header.len);
        let mut joined = a.payload.to_vec();
        joined.extend_from_slice(&b.payload);
        prop_assert_eq!(Bytes::from(joined), c.payload.clone());
        // ID constancy under fragmentation (Table 1 rows "changed: No").
        prop_assert_eq!(a.header.conn.id, c.header.conn.id);
        prop_assert_eq!(b.header.tpdu.id, c.header.tpdu.id);
        prop_assert_eq!(b.header.ext.id, c.header.ext.id);
        // C.SN - T.SN invariance (basis of the implicit T.ID transform).
        let delta = |h: &ChunkHeader| h.conn.sn.wrapping_sub(h.tpdu.sn);
        prop_assert_eq!(delta(&a.header), delta(&c.header));
        prop_assert_eq!(delta(&b.header), delta(&c.header));
        prop_assert_eq!(
            implicit_tid(b.header.conn.sn, b.header.tpdu.sn),
            implicit_tid(c.header.conn.sn, c.header.tpdu.sn)
        );
    }

    #[test]
    fn wire_roundtrip(c in chunk_strategy()) {
        let mut buf = Vec::new();
        encode_chunk(&c, &mut buf);
        let (d, used) = decode_chunk(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(d, c);
    }

    #[test]
    fn split_to_fit_reassembles(c in chunk_strategy(), extra in 0usize..64) {
        let mtu = WIRE_HEADER_LEN + c.header.size as usize + extra;
        let pieces = split_to_fit(c.clone(), mtu).unwrap();
        for p in &pieces {
            prop_assert!(p.wire_len() <= mtu);
        }
        let mut pool = ReassemblyPool::new();
        // Insert in reverse to exercise out-of-order merging.
        for p in pieces.into_iter().rev() {
            pool.insert(p);
        }
        prop_assert_eq!(pool.segments().len(), 1);
        prop_assert_eq!(pool.segments()[0].clone(), c);
    }

    #[test]
    fn pack_unpack_roundtrip(cs in proptest::collection::vec(chunk_strategy(), 1..8), extra in 0usize..256) {
        let mtu = WIRE_HEADER_LEN + 8 + extra; // always fits one max-size element
        let packets = pack(cs.clone(), mtu).unwrap();
        let mut rx: Vec<Chunk> = Vec::new();
        for p in &packets {
            prop_assert!(p.len() <= mtu);
            rx.extend(unpack(p).unwrap());
        }
        // Received chunks concatenate (in order) back to the originals:
        // merge each original's fragments in sequence.
        let mut it = rx.into_iter();
        for original in cs {
            let mut acc = it.next().unwrap();
            while acc.header.len < original.header.len {
                acc = merge(&acc, &it.next().unwrap()).unwrap();
            }
            prop_assert_eq!(acc, original);
        }
        prop_assert!(it.next().is_none());
    }

    #[test]
    fn header_forms_roundtrip(c in chunk_strategy()) {
        // Relabel so the implicit form applies, as a conforming sender would.
        let mut c = c;
        c.header.tpdu.id = implicit_tid(c.header.conn.sn, c.header.tpdu.sn);
        let mut ctx = SignalledContext::new();
        ctx.signal_size(ChunkType::Data, c.header.size);
        for form in [HeaderForm::Full, HeaderForm::ImplicitTid, HeaderForm::SizeElided, HeaderForm::Compact] {
            let mut buf = Vec::new();
            encode_header_form(&c.header, form, &ctx, &mut buf).unwrap();
            let (h, _) = decode_header_form(&buf, form, &ctx).unwrap();
            prop_assert_eq!(h, c.header);
        }
    }

    #[test]
    fn delta_packet_roundtrip(cs in proptest::collection::vec(chunk_strategy(), 1..6)) {
        let buf = encode_packet_delta(&cs);
        prop_assert_eq!(decode_packet_delta(&buf).unwrap(), cs);
    }
}
