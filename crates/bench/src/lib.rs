//! Shared workload builders for the Criterion benchmark suite.
//!
//! One bench target exists per experiment in DESIGN.md §4:
//! `codes` (B4), `frag_reasm` (F3), `wire_codec` (codec ablations),
//! `invariant` (F5/F6), `receiver_modes` (B1), `frag_systems` (B2),
//! `compress` (B5), `internetwork` (F4).

#![deny(missing_docs)]

use bytes::Bytes;
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::label::FramingTuple;

/// A data chunk of `len` one-byte elements with deterministic payload.
pub fn chunk_of(len: u32) -> Chunk {
    let payload: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    Chunk::new(
        ChunkHeader::data(
            1,
            len,
            FramingTuple::new(0xA, 1000, false),
            FramingTuple::new(0x51, 0, true),
            FramingTuple::new(0xC, 500, false),
        ),
        Bytes::from(payload),
    )
    .unwrap()
}

/// A data chunk of `len` elements of `size` bytes each, deterministic
/// payload. `chunk_of(n)` is the 1-byte-element special case; this builder
/// exists for workloads where SIZE is a whole number of 32-bit symbols, so
/// the invariant's contiguous (un-padded) absorption path is exercised.
pub fn chunk_of_elements(size: u16, len: u32) -> Chunk {
    let payload: Vec<u8> = (0..size as usize * len as usize)
        .map(|i| (i * 31 + 7) as u8)
        .collect();
    Chunk::new(
        ChunkHeader::data(
            size,
            len,
            FramingTuple::new(0xA, 1000, false),
            FramingTuple::new(0x51, 0, true),
            FramingTuple::new(0xC, 500, false),
        ),
        Bytes::from(payload),
    )
    .unwrap()
}

/// Deterministic pseudo-random byte buffer.
pub fn buffer(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 37 + 11) as u8).collect()
}
