#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! B1 bench: receiver throughput in the three §3.3 delivery modes, on
//! in-order and reversed arrivals.

use chunks_transport::{ConnectionParams, DeliveryMode, Framer, Receiver};
use chunks_wsc::InvariantLayout;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_receiver(c: &mut Criterion) {
    let params = ConnectionParams {
        conn_id: 1,
        elem_size: 1,
        initial_csn: 0,
        tpdu_elements: 1024,
    };
    let layout = InvariantLayout::default();
    let data = vec![0x5Au8; 64 * 1024];
    let tpdus = Framer::new(params, layout).frame_simple(&data, 0xF, false);
    let chunks: Vec<_> = tpdus.iter().flat_map(|t| t.all_chunks()).collect();
    let mut reversed = chunks.clone();
    reversed.reverse();

    let mut g = c.benchmark_group("receiver");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for mode in [
        DeliveryMode::Immediate,
        DeliveryMode::Reorder,
        DeliveryMode::Reassemble,
    ] {
        for (order, input) in [("inorder", &chunks), ("reversed", &reversed)] {
            g.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), order),
                input,
                |b, input| {
                    b.iter(|| {
                        let mut rx = Receiver::new(mode, params, layout, 1 << 17);
                        for ch in input {
                            rx.handle_chunk(ch.clone(), 0);
                        }
                        assert_eq!(rx.stats.tpdus_delivered, tpdus.len() as u64);
                        rx.stats.data_touches
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_receiver);
criterion_main!(benches);
