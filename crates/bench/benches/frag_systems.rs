#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! B2 bench: per-packet conversion cost at a router — chunk refragmentation
//! (three-level labels) versus IP fragmentation (one level), and the demux
//! cost of mixed arrivals (B6 micro).

use bytes::Bytes;
use chunks_baseline::ip::{IpPacket, IpRouter};
use chunks_bench::chunk_of;
use chunks_core::packet::pack;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_netsim::{ChunkRouter, PacketTransform, RefragPolicy};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_routers(c: &mut Criterion) {
    let mut g = c.benchmark_group("router");
    // One 4 KiB PDU entering a 576-byte network.
    let chunk_frame = pack(vec![chunk_of(4096)], 9000).unwrap()[0].bytes.to_vec();
    let ip_frame = IpPacket::datagram(9, Bytes::from(vec![0u8; 4096])).encode();
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("chunk_refragment_576", |b| {
        b.iter(|| {
            let mut r = ChunkRouter::new(WIRE_HEADER_LEN + 544, RefragPolicy::Repack);
            let mut out = r.ingest(chunk_frame.clone());
            out.extend(r.flush());
            out.len()
        })
    });
    g.bench_function("ip_fragment_576", |b| {
        b.iter(|| {
            let mut r = IpRouter::new(576);
            r.ingest(ip_frame.clone()).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_routers);
criterion_main!(benches);
