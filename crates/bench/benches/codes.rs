#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! B4 bench: error-detection code throughput — WSC-2 vs CRC-32 vs the
//! Internet checksum, in order and disordered.
//!
//! Every WSC-2 arm exists twice: the table-driven fast path (`Wsc2`,
//! `Wsc2Stream` — what production code runs) and the seed bit-serial
//! reference path (`*_ref` arms), so a plain `cargo bench --bench codes`
//! shows the fast-path speedup alongside the CRC/checksum comparators.

use chunks_bench::buffer;
use chunks_gf::Gf32;
use chunks_wsc::compare::{internet_checksum, Crc32};
use chunks_wsc::{Wsc2, Wsc2Stream};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("codes");
    for size in [1 << 10, 64 << 10, 1 << 20] {
        let data = buffer(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("wsc2_inorder", size), &data, |b, d| {
            b.iter(|| {
                let mut w = Wsc2::new();
                w.add_bytes(0, d);
                w.digest()
            })
        });
        // Seed bit-serial path over the same workload.
        g.bench_with_input(BenchmarkId::new("wsc2_inorder_ref", size), &data, |b, d| {
            b.iter(|| {
                let mut w = Wsc2::new();
                w.add_bytes_ref(0, d);
                w.digest()
            })
        });
        g.bench_with_input(BenchmarkId::new("crc32", size), &data, |b, d| {
            b.iter(|| Crc32::of(d))
        });
        g.bench_with_input(BenchmarkId::new("inet_checksum", size), &data, |b, d| {
            b.iter(|| internet_checksum(d))
        });
        // Disordered arrival: WSC-2 absorbs 1 KiB fragments in a scrambled
        // order — no buffering, same digest.
        g.bench_with_input(BenchmarkId::new("wsc2_disordered", size), &data, |b, d| {
            let frags: Vec<usize> = (0..d.len() / 1024).rev().collect();
            b.iter(|| {
                let mut w = Wsc2::new();
                for &k in &frags {
                    w.add_bytes((k * 256) as u64, &d[k * 1024..(k + 1) * 1024]);
                }
                w.digest()
            })
        });
        g.bench_with_input(
            BenchmarkId::new("wsc2_disordered_ref", size),
            &data,
            |b, d| {
                let frags: Vec<usize> = (0..d.len() / 1024).rev().collect();
                b.iter(|| {
                    let mut w = Wsc2::new();
                    for &k in &frags {
                        w.add_bytes_ref((k * 256) as u64, &d[k * 1024..(k + 1) * 1024]);
                    }
                    w.digest()
                })
            },
        );
        // Streaming encoder fed the same scrambled fragments: the cursor
        // cache only helps contiguous input, so this measures its overhead
        // in the worst (fully disordered) case.
        g.bench_with_input(
            BenchmarkId::new("wsc2_stream_disordered", size),
            &data,
            |b, d| {
                let frags: Vec<usize> = (0..d.len() / 1024).rev().collect();
                b.iter(|| {
                    let mut w = Wsc2Stream::new();
                    for &k in &frags {
                        w.add_bytes((k * 256) as u64, &d[k * 1024..(k + 1) * 1024]);
                    }
                    w.digest()
                })
            },
        );
        // Streaming encoder fed contiguous 64-byte runs — the TPDU
        // invariant's shape, where the cursor cache eliminates every
        // `alpha^start` recomputation.
        g.bench_with_input(
            BenchmarkId::new("wsc2_stream_inorder", size),
            &data,
            |b, d| {
                b.iter(|| {
                    let mut w = Wsc2Stream::new();
                    for (k, run) in d.chunks(64).enumerate() {
                        w.add_bytes((k * 16) as u64, run);
                    }
                    w.digest()
                })
            },
        );
    }
    g.finish();
}

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf32");
    let a = Gf32::new(0xDEAD_BEEF);
    let b2 = Gf32::new(0x0BAD_F00D);
    g.bench_function("mul", |b| {
        b.iter(|| std::hint::black_box(a) * std::hint::black_box(b2))
    });
    g.bench_function("mul_ref", |b| {
        b.iter(|| std::hint::black_box(a).mul_ref(std::hint::black_box(b2)))
    });
    g.bench_function("mul_alpha", |b| {
        b.iter(|| std::hint::black_box(a).mul_alpha())
    });
    g.bench_function("alpha_pow", |b| {
        b.iter(|| Gf32::alpha_pow(std::hint::black_box(123_456_789)))
    });
    g.bench_function("alpha_pow_ref", |b| {
        b.iter(|| Gf32::alpha_pow_ref(std::hint::black_box(123_456_789)))
    });
    g.bench_function("inv", |b| b.iter(|| std::hint::black_box(a).inv()));
    g.finish();
}

criterion_group!(benches, bench_codes, bench_field);
criterion_main!(benches);
