#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! F3 bench: the Appendix C/D algorithms — split, merge, extract, and
//! single-step pool reassembly; plus the paper's §3.2 ablation (three-level
//! chunk label manipulation vs single-level IP fragmentation).

use bytes::Bytes;
use chunks_baseline::ip::{fragment, IpPacket};
use chunks_bench::chunk_of;
use chunks_core::frag::{extract, merge, split, split_to_fit, ReassemblyPool};
use chunks_core::wire::WIRE_HEADER_LEN;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_split_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("frag");
    let big = chunk_of(8192);
    g.throughput(Throughput::Bytes(8192));
    g.bench_function("split", |b| {
        b.iter(|| split(std::hint::black_box(&big), 4096).unwrap())
    });
    let (a, tail) = split(&big, 4096).unwrap();
    g.bench_function("merge", |b| {
        b.iter(|| merge(std::hint::black_box(&a), std::hint::black_box(&tail)).unwrap())
    });
    g.bench_function("extract_mid", |b| {
        b.iter(|| extract(std::hint::black_box(&big), 1000, 2000).unwrap())
    });
    // The §3.2 ablation: manipulating three (ID, SN, ST) tuples (chunks)
    // versus one (IP) per fragmentation operation.
    g.bench_function("split_to_fit/chunk_3level", |b| {
        b.iter(|| split_to_fit(big.clone(), WIRE_HEADER_LEN + 512).unwrap())
    });
    let dg = IpPacket::datagram(7, Bytes::from(vec![0u8; 8192]));
    g.bench_function("split_to_fit/ip_1level", |b| {
        b.iter(|| fragment(std::hint::black_box(&dg), 20 + 512).unwrap())
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("reassembly_pool");
    for pieces in [4u32, 16, 64] {
        let big = chunk_of(4096);
        let per = 4096 / pieces;
        let frags = split_to_fit(big, WIRE_HEADER_LEN + per as usize).unwrap();
        g.throughput(Throughput::Bytes(4096));
        g.bench_with_input(
            BenchmarkId::new("insert_reverse", pieces),
            &frags,
            |b, frags| {
                b.iter(|| {
                    let mut pool = ReassemblyPool::new();
                    for f in frags.iter().rev() {
                        pool.insert(f.clone());
                    }
                    assert!(pool.is_complete());
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_split_merge, bench_pool);
criterion_main!(benches);
