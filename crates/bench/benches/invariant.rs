#![allow(missing_docs)] // bench target: fn main is the harness entry point

//! F5/F6 bench: cost of the fragmentation-invariant error detection —
//! absorbing a TPDU as one chunk versus many fragments (the invariance must
//! not make fragmented arrivals expensive).
//!
//! Each fragment count is measured twice:
//!
//! * `absorb_fragments` — the production path: [`TpduInvariant`] on the
//!   streaming [`Wsc2Stream`] encoder over table-driven GF(2^32);
//! * `absorb_fragments_ref` — a faithful replica of the seed
//!   implementation: one-shot `Wsc2` calls per element through the
//!   bit-serial reference arithmetic (`add_bytes_ref` / `add_symbol_ref`).
//!
//! After measuring, `main` writes the `BENCH_wsc.json` snapshot at the
//! workspace root recording both arms and the speedup ratio (see
//! EXPERIMENTS.md for how to regenerate it).

use std::fmt::Write as _;
use std::path::PathBuf;

use chunks_bench::chunk_of;
use chunks_core::chunk::ChunkHeader;
use chunks_core::frag::split_to_fit;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_wsc::{InvariantLayout, TpduInvariant, Wsc2};
use criterion::{criterion_group, BenchResult, BenchmarkId, Criterion, Throughput};

/// Replica of the seed `TpduInvariant::absorb_chunk`: per-element one-shot
/// `Wsc2` absorption through the bit-serial reference path, recomputing
/// `alpha^position` from scratch for every element.
fn absorb_chunk_ref(
    wsc: &mut Wsc2,
    ids: &mut Option<(u32, u32)>,
    layout: InvariantLayout,
    header: &ChunkHeader,
    payload: &[u8],
) {
    let spe = Wsc2::symbols_for_bytes(header.size as usize);
    let first = header.tpdu.sn as u64;
    if ids.is_none() {
        *ids = Some((header.tpdu.id, header.conn.id));
        wsc.add_symbol_ref(layout.tid_pos(), header.tpdu.id);
        wsc.add_symbol_ref(layout.cid_pos(), header.conn.id);
    }
    for (e, element) in payload.chunks(header.size as usize).enumerate() {
        wsc.add_bytes_ref((first + e as u64) * spe, element);
    }
    if header.conn.st {
        wsc.add_symbol_ref(layout.cst_pos(), 1);
    }
    if header.ext.st || header.tpdu.st {
        let t_sn_last = header.tpdu.sn.wrapping_add(header.len - 1);
        let base = layout.x_pair_pos(t_sn_last);
        wsc.add_symbol_ref(base, header.ext.id);
        wsc.add_symbol_ref(base + 1, header.ext.st as u32);
    }
}

fn bench_invariant(c: &mut Criterion) {
    let mut g = c.benchmark_group("invariant");
    let whole = chunk_of(8192);
    let layout = InvariantLayout::default();
    g.throughput(Throughput::Bytes(8192));
    for pieces in [1u32, 8, 64] {
        let frags = if pieces == 1 {
            vec![whole.clone()]
        } else {
            split_to_fit(whole.clone(), WIRE_HEADER_LEN + (8192 / pieces) as usize).unwrap()
        };

        // The two arms must agree before their timings mean anything.
        let mut fast = TpduInvariant::new(layout).unwrap();
        let mut slow = Wsc2::new();
        let mut ids = None;
        for f in &frags {
            fast.absorb_chunk(&f.header, &f.payload).unwrap();
            absorb_chunk_ref(&mut slow, &mut ids, layout, &f.header, &f.payload);
        }
        assert_eq!(fast.digest(), slow.digest(), "slow/fast digests diverged");

        g.bench_with_input(
            BenchmarkId::new("absorb_fragments", pieces),
            &frags,
            |b, frags| {
                b.iter(|| {
                    let mut inv = TpduInvariant::with_default_layout();
                    for f in frags {
                        inv.absorb_chunk(&f.header, &f.payload).unwrap();
                    }
                    inv.digest()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("absorb_fragments_ref", pieces),
            &frags,
            |b, frags| {
                b.iter(|| {
                    let mut wsc = Wsc2::new();
                    let mut ids = None;
                    for f in frags {
                        absorb_chunk_ref(&mut wsc, &mut ids, layout, &f.header, &f.payload);
                    }
                    wsc.digest()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_invariant);

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes `BENCH_wsc.json` at the workspace root from the measured results.
/// The source revision in the meta block comes from the `CHUNKS_DESCRIBE`
/// environment variable (the justfile passes `git describe`); the bench
/// itself never shells out.
fn write_snapshot(results: &[BenchResult]) -> std::io::Result<PathBuf> {
    let describe = std::env::var("CHUNKS_DESCRIBE").unwrap_or_else(|_| "unknown".into());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"meta\": {{\"bench\": \"wsc-tpdu-invariant\", \"regenerate\": \"cargo bench -p chunks-bench --bench invariant (or: just bench-wsc)\", \"describe\": \"{}\"}},",
        json_escape(&describe)
    );
    out.push_str(
        "  \"workload\": \"8192-byte TPDU of 1-byte elements, absorbed as N fragments\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (k, r) in results.iter().enumerate() {
        let sep = if k + 1 == results.len() { "" } else { "," };
        let rate = r
            .mib_per_s()
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "null".into());
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"mib_per_s\": {}}}{}",
            json_escape(&r.id),
            r.median_ns,
            r.mean_ns,
            rate,
            sep
        );
    }
    out.push_str("  ],\n");

    // Pair fast/slow arms by fragment count and record the speedup.
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    out.push_str("  \"speedup\": [\n");
    let counts = [1u32, 8, 64];
    for (k, pieces) in counts.iter().enumerate() {
        let sep = if k + 1 == counts.len() { "" } else { "," };
        let fast = median(&format!("invariant/absorb_fragments/{pieces}")).unwrap_or(f64::NAN);
        let slow = median(&format!("invariant/absorb_fragments_ref/{pieces}")).unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "    {{\"fragments\": {}, \"seed_ref_ns\": {:.1}, \"streaming_ns\": {:.1}, \"ratio\": {:.2}}}{}",
            pieces,
            slow,
            fast,
            slow / fast,
            sep
        );
    }
    out.push_str("  ]\n}\n");

    // crates/bench -> workspace root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()?
        .join("BENCH_wsc.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    let results = c.take_results();
    match write_snapshot(&results) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_wsc.json: {e}"),
    }
    for pieces in [1u32, 8, 64] {
        let find = |id: String| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
        if let (Some(fast), Some(slow)) = (
            find(format!("invariant/absorb_fragments/{pieces}")),
            find(format!("invariant/absorb_fragments_ref/{pieces}")),
        ) {
            println!(
                "speedup {pieces:>2} fragments: {:.2}x (seed {slow:.0} ns -> streaming {fast:.0} ns)",
                slow / fast
            );
        }
    }
}
