#![allow(missing_docs)] // bench target: fn main is the harness entry point

//! F5/F6 bench: cost of the fragmentation-invariant error detection, swept
//! across GF(2^32) backends and batch widths.
//!
//! Three workload families, every row tagged with the backend and batch
//! width that produced it (pinned by `tests/bench_schema.rs`):
//!
//! * `absorb_fragments/{backend}/{N}` — the paper's worst case: an
//!   8192-byte TPDU of **1-byte elements** (every element zero-padded to
//!   its own symbol), absorbed as `N` fragments through [`TpduInvariant`]
//!   under a forced backend. The padded-element gather path turns this
//!   into batched folds; `absorb_fragments_ref/{N}` replays the seed
//!   implementation (one-shot bit-serial `Wsc2` calls per element) as the
//!   baseline.
//! * `absorb_bulk/{backend}/{N}` — the wire-speed case the ROADMAP's
//!   GiB/s target is about: a 65536-byte TPDU of **1024-byte elements**
//!   (SIZE a whole number of symbols, so payloads absorb as one contiguous
//!   run), again as `N` fragments.
//! * `fold/{backend}/w{W}` — the raw `(Σ dᵢ, Σ αⁱ·dᵢ)` kernel
//!   ([`fold_symbols_with`]) over 16384 symbols at every batch width in
//!   [`BATCH_WIDTHS`], plus `fold/ref/w1`, the seed per-symbol
//!   `alpha_pow_ref`·`mul_ref` accumulation.
//!
//! The backend sweep honours the `CHUNKS_GF_BACKEND` override: when the
//! env var forces `tables` (or the CPU has no carry-less multiply),
//! only the portable path is measured — exactly what a table-only host
//! would produce. `just bench-wsc-all` runs both configurations.
//!
//! After measuring, `main` writes the `BENCH_wsc.json` snapshot at the
//! workspace root (see EXPERIMENTS.md for the schema and how to
//! regenerate it).

use std::fmt::Write as _;
use std::path::PathBuf;

use chunks_bench::{chunk_of, chunk_of_elements};
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::frag::split_to_fit;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_gf::{fold_symbols_with, Backend, Gf32, BATCH_WIDTHS, DEFAULT_CLMUL_WIDTH};
use chunks_wsc::{InvariantLayout, TpduInvariant, Wsc2};
use criterion::{BenchResult, Criterion, Throughput};

/// Replica of the seed `TpduInvariant::absorb_chunk`: per-element one-shot
/// `Wsc2` absorption through the bit-serial reference path, recomputing
/// `alpha^position` from scratch for every element.
fn absorb_chunk_ref(
    wsc: &mut Wsc2,
    ids: &mut Option<(u32, u32)>,
    layout: InvariantLayout,
    header: &ChunkHeader,
    payload: &[u8],
) {
    let spe = Wsc2::symbols_for_bytes(header.size as usize);
    let first = header.tpdu.sn as u64;
    if ids.is_none() {
        *ids = Some((header.tpdu.id, header.conn.id));
        wsc.add_symbol_ref(layout.tid_pos(), header.tpdu.id);
        wsc.add_symbol_ref(layout.cid_pos(), header.conn.id);
    }
    for (e, element) in payload.chunks(header.size as usize).enumerate() {
        wsc.add_bytes_ref((first + e as u64) * spe, element);
    }
    if header.conn.st {
        wsc.add_symbol_ref(layout.cst_pos(), 1);
    }
    if header.ext.st || header.tpdu.st {
        let t_sn_last = header.tpdu.sn.wrapping_add(header.len - 1);
        let base = layout.x_pair_pos(t_sn_last);
        wsc.add_symbol_ref(base, header.ext.id);
        wsc.add_symbol_ref(base + 1, header.ext.st as u32);
    }
}

/// Which backend produced a row and at what batch width — recorded beside
/// each measurement so `BENCH_wsc.json` rows are comparable across hosts.
struct RowTag {
    id: String,
    backend: &'static str,
    batch: usize,
}

/// The backends this run sweeps. The `CHUNKS_GF_BACKEND` override is
/// honoured through `Backend::active()`: forced to `tables` (or on a CPU
/// without carry-less multiply) only the portable path is measured.
fn sweep_backends() -> Vec<Backend> {
    match Backend::active() {
        Backend::Tables => vec![Backend::Tables],
        _ => Backend::supported(),
    }
}

/// The batch width `fold_symbols` uses on `backend` (what the absorb rows
/// ride): serial Horner on tables, the wide default on clmul.
fn default_width(backend: Backend) -> usize {
    match backend {
        Backend::Clmul => DEFAULT_CLMUL_WIDTH,
        Backend::Tables => 1,
    }
}

/// `absorb_fragments` / `absorb_bulk`: one TPDU absorbed as `pieces`
/// fragments through `TpduInvariant`, measured once per swept backend.
/// The seed bit-serial replica runs as the `ref` arm on the fragments
/// workload only — its per-symbol cost is already characterized there and
/// by `fold/ref/w1`, so re-timing it on the 8× larger bulk payload adds
/// minutes of bench time without information.
fn bench_absorb(
    c: &mut Criterion,
    tags: &mut Vec<RowTag>,
    function: &str,
    whole: &Chunk,
    with_ref: bool,
    piece_counts: &[u32],
) {
    let layout = InvariantLayout::default();
    let bytes = whole.payload.len() as u64;
    let mut g = c.benchmark_group("invariant");
    g.throughput(Throughput::Bytes(bytes));
    for &pieces in piece_counts {
        let frags = if pieces == 1 {
            vec![whole.clone()]
        } else {
            split_to_fit(
                whole.clone(),
                WIRE_HEADER_LEN + (bytes / pieces as u64) as usize,
            )
            .unwrap()
        };

        // Every arm must agree on the digest before timings mean anything.
        let mut slow = Wsc2::new();
        let mut ids = None;
        for f in &frags {
            absorb_chunk_ref(&mut slow, &mut ids, layout, &f.header, &f.payload);
        }
        let oracle = slow.digest();
        for backend in sweep_backends() {
            Backend::force(Some(backend));
            let mut fast = TpduInvariant::new(layout).unwrap();
            for f in &frags {
                fast.absorb_chunk(&f.header, &f.payload).unwrap();
            }
            assert_eq!(
                fast.digest(),
                oracle,
                "{backend:?} digest diverged from the seed oracle"
            );
            tags.push(RowTag {
                id: format!("invariant/{function}/{}/{pieces}", backend.name()),
                backend: backend.name(),
                batch: default_width(backend),
            });
            g.bench_with_input(
                format!("{function}/{}/{pieces}", backend.name()),
                &frags,
                |b, frags| {
                    b.iter(|| {
                        let mut inv = TpduInvariant::with_default_layout();
                        for f in frags {
                            inv.absorb_chunk(&f.header, &f.payload).unwrap();
                        }
                        inv.digest()
                    })
                },
            );
            Backend::force(None);
        }
        if with_ref {
            tags.push(RowTag {
                id: format!("invariant/{function}_ref/{pieces}"),
                backend: "ref",
                batch: 1,
            });
            g.bench_with_input(format!("{function}_ref/{pieces}"), &frags, |b, frags| {
                b.iter(|| {
                    let mut wsc = Wsc2::new();
                    let mut ids = None;
                    for f in frags {
                        absorb_chunk_ref(&mut wsc, &mut ids, layout, &f.header, &f.payload);
                    }
                    wsc.digest()
                })
            });
        }
    }
    g.finish();
}

/// `fold`: the raw batched-Horner kernel over 16384 symbols, swept across
/// every backend × batch width, plus the seed per-symbol accumulation.
fn bench_fold(c: &mut Criterion, tags: &mut Vec<RowTag>) {
    const SYMS: usize = 16384;
    let data: Vec<u32> = (0..SYMS as u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9) ^ 0xA5A5_5A5A)
        .collect();

    // Reference value all arms must reproduce.
    let mut ref_p0 = Gf32::ZERO;
    let mut ref_h = Gf32::ZERO;
    for (i, &d) in data.iter().enumerate() {
        let d = Gf32::new(d);
        ref_p0 += d;
        ref_h += Gf32::alpha_pow_ref(i as u64).mul_ref(d);
    }

    let mut g = c.benchmark_group("fold");
    g.throughput(Throughput::Bytes((SYMS * 4) as u64));
    for backend in sweep_backends() {
        for &width in &BATCH_WIDTHS {
            assert_eq!(
                fold_symbols_with(backend, width, &data),
                (ref_p0, ref_h),
                "{backend:?} w{width} diverged from the seed oracle"
            );
            tags.push(RowTag {
                id: format!("fold/{}/w{width}", backend.name()),
                backend: backend.name(),
                batch: width,
            });
            g.bench_with_input(format!("{}/w{width}", backend.name()), &data, |b, data| {
                b.iter(|| fold_symbols_with(backend, width, data))
            });
        }
    }
    tags.push(RowTag {
        id: "fold/ref/w1".into(),
        backend: "ref",
        batch: 1,
    });
    g.bench_with_input("ref/w1", &data, |b, data| {
        b.iter(|| {
            let mut p0 = Gf32::ZERO;
            let mut h = Gf32::ZERO;
            for (i, &d) in data.iter().enumerate() {
                let d = Gf32::new(d);
                p0 += d;
                h += Gf32::alpha_pow_ref(i as u64).mul_ref(d);
            }
            (p0, h)
        })
    });
    g.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `{:.1}` for a present median, `null` when the arm was not measured
/// (e.g. clmul rows on a table-only run).
fn num_or_null(v: Option<f64>) -> String {
    v.map(|v| format!("{v:.1}"))
        .unwrap_or_else(|| "null".into())
}

/// `{:.2}` ratio when both arms were measured, else `null`.
fn ratio_or_null(num: Option<f64>, den: Option<f64>) -> String {
    match (num, den) {
        (Some(n), Some(d)) => format!("{:.2}", n / d),
        _ => "null".into(),
    }
}

/// Writes `BENCH_wsc.json` at the workspace root from the measured
/// results. Every row carries `backend` and `batch` beside the timings
/// (schema pinned by `tests/bench_schema.rs`); the `summary` section pairs
/// the arms per workload. The source revision in the meta block comes from
/// the `CHUNKS_DESCRIBE` environment variable (the justfile passes
/// `git describe`); the bench itself never shells out.
fn write_snapshot(results: &[BenchResult], tags: &[RowTag]) -> std::io::Result<PathBuf> {
    let describe = std::env::var("CHUNKS_DESCRIBE").unwrap_or_else(|_| "unknown".into());
    let tag_of = |id: &str| tags.iter().find(|t| t.id == id);
    let median = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"meta\": {{\"bench\": \"wsc-tpdu-invariant\", \"regenerate\": \"just bench-wsc (both backend configurations: just bench-wsc-all)\", \"describe\": \"{}\"}},",
        json_escape(&describe)
    );
    out.push_str(
        "  \"workload\": \"absorb_fragments: 8192-byte TPDU of 1-byte elements as N fragments; absorb_bulk: 65536-byte TPDU of 1024-byte elements as N fragments; fold: 16384-symbol (Σ d_i, Σ α^i·d_i) kernel\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (k, r) in results.iter().enumerate() {
        let sep = if k + 1 == results.len() { "" } else { "," };
        let (backend, batch) = tag_of(&r.id)
            .map(|t| (t.backend, t.batch))
            .unwrap_or(("ref", 1));
        let _ = writeln!(
            out,
            "    {{\"id\": \"{}\", \"backend\": \"{}\", \"batch\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"mib_per_s\": {}}}{}",
            json_escape(&r.id),
            backend,
            batch,
            r.median_ns,
            r.mean_ns,
            num_or_null(r.mib_per_s()),
            sep
        );
    }
    out.push_str("  ],\n");

    // Pair the arms per workload: seed bit-serial baseline, portable table
    // path, hardware clmul path, plus the payload rate of the clmul arm.
    out.push_str("  \"summary\": [\n");
    let workloads: Vec<(String, u64, Option<String>)> = [1u32, 8, 64]
        .iter()
        .map(|n| {
            (
                format!("absorb_fragments/{n}"),
                8192,
                Some(format!("invariant/absorb_fragments_ref/{n}")),
            )
        })
        .chain(
            [1u32, 16]
                .iter()
                .map(|n| (format!("absorb_bulk/{n}"), 65536, None)),
        )
        .collect();
    for (k, (w, bytes, ref_id)) in workloads.iter().enumerate() {
        let sep = if k + 1 == workloads.len() { "" } else { "," };
        let arm = |backend: &str| {
            let (f, n) = w.split_once('/').unwrap();
            median(&format!("invariant/{f}/{backend}/{n}"))
        };
        let (tables, clmul) = (arm("tables"), arm("clmul"));
        let seed = ref_id.as_deref().and_then(median);
        let gib = clmul.map(|ns| *bytes as f64 / (1u64 << 30) as f64 / (ns / 1e9));
        let _ = writeln!(
            out,
            "    {{\"workload\": \"{}\", \"seed_ref_ns\": {}, \"tables_ns\": {}, \"clmul_ns\": {}, \"clmul_vs_ref\": {}, \"clmul_vs_tables\": {}, \"clmul_gib_per_s\": {}}}{}",
            w,
            num_or_null(seed),
            num_or_null(tables),
            num_or_null(clmul),
            ratio_or_null(seed, clmul),
            ratio_or_null(tables, clmul),
            gib.map(|g| format!("{g:.2}")).unwrap_or_else(|| "null".into()),
            sep
        );
    }
    out.push_str("  ]\n}\n");

    // crates/bench -> workspace root.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()?
        .join("BENCH_wsc.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

fn main() {
    let mut c = Criterion::default();
    let mut tags = Vec::new();
    bench_absorb(
        &mut c,
        &mut tags,
        "absorb_fragments",
        &chunk_of(8192),
        true,
        &[1, 8, 64],
    );
    bench_absorb(
        &mut c,
        &mut tags,
        "absorb_bulk",
        &chunk_of_elements(1024, 64),
        false,
        &[1, 16],
    );
    bench_fold(&mut c, &mut tags);
    let results = c.take_results();
    match write_snapshot(&results, &tags) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_wsc.json: {e}"),
    }
}
