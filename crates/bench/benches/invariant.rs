#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! F5/F6 bench: cost of the fragmentation-invariant error detection —
//! absorbing a TPDU as one chunk versus many fragments (the invariance must
//! not make fragmented arrivals expensive).

use chunks_bench::chunk_of;
use chunks_core::frag::split_to_fit;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_wsc::TpduInvariant;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_invariant(c: &mut Criterion) {
    let mut g = c.benchmark_group("invariant");
    let whole = chunk_of(8192);
    g.throughput(Throughput::Bytes(8192));
    for pieces in [1u32, 8, 64] {
        let frags = if pieces == 1 {
            vec![whole.clone()]
        } else {
            split_to_fit(whole.clone(), WIRE_HEADER_LEN + (8192 / pieces) as usize).unwrap()
        };
        g.bench_with_input(
            BenchmarkId::new("absorb_fragments", pieces),
            &frags,
            |b, frags| {
                b.iter(|| {
                    let mut inv = TpduInvariant::with_default_layout();
                    for f in frags {
                        inv.absorb_chunk(&f.header, &f.payload).unwrap();
                    }
                    inv.digest()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_invariant);
criterion_main!(benches);
