#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! Codec bench: fixed-field encode/decode and packet pack/unpack, including
//! the LEN=0 end-marker ablation (padded vs exact packets).

use chunks_bench::chunk_of;
use chunks_core::packet::{pack, unpack, PacketBuilder};
use chunks_core::wire::{decode_chunk, encode_chunk, WIRE_HEADER_LEN};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let chunk = chunk_of(1024);
    let mut buf = Vec::new();
    encode_chunk(&chunk, &mut buf);
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("encode_chunk", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(1100);
            encode_chunk(std::hint::black_box(&chunk), &mut out);
            out
        })
    });
    g.bench_function("decode_chunk", |b| {
        b.iter(|| decode_chunk(std::hint::black_box(&buf)).unwrap())
    });
    g.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut g = c.benchmark_group("packets");
    let chunks: Vec<_> = (0..16).map(|_| chunk_of(256)).collect();
    let total: u64 = chunks.iter().map(|c| c.wire_len() as u64).sum();
    g.throughput(Throughput::Bytes(total));
    g.bench_function("pack_1500", |b| {
        b.iter(|| pack(chunks.clone(), 1500).unwrap())
    });
    let packets = pack(chunks.clone(), 1500).unwrap();
    g.bench_function("unpack", |b| {
        b.iter(|| {
            packets
                .iter()
                .map(|p| unpack(p).unwrap().len())
                .sum::<usize>()
        })
    });
    // End-marker ablation: parsing exact-length packets vs padded cells.
    let mut builder = PacketBuilder::new(2048);
    builder.push(chunk_of(256)).unwrap();
    let padded = builder.finish_padded();
    let mut builder = PacketBuilder::new(256 + WIRE_HEADER_LEN);
    builder.push(chunk_of(256)).unwrap();
    let exact = builder.finish();
    g.bench_function("unpack_exact", |b| b.iter(|| unpack(&exact).unwrap()));
    g.bench_function("unpack_padded_endmarker", |b| {
        b.iter(|| unpack(&padded).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_wire, bench_packets);
criterion_main!(benches);
