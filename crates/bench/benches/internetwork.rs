#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! F4 bench: the three Figure 4 methods for moving chunks from small
//! packets into large packets, end to end.

use chunks_bench::chunk_of;
use chunks_core::packet::pack;
use chunks_core::wire::WIRE_HEADER_LEN;
use chunks_netsim::{ChunkRouter, PacketTransform, RefragPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_methods(c: &mut Criterion) {
    // 4 KiB TPDU arriving as 64-byte-payload packets.
    let small = WIRE_HEADER_LEN + 64;
    let big = 8 * small;
    let frames: Vec<Vec<u8>> = pack(
        chunks_core::frag::split_to_fit(chunk_of(4096), small).unwrap(),
        small,
    )
    .unwrap()
    .into_iter()
    .map(|p| p.bytes.to_vec())
    .collect();

    let mut g = c.benchmark_group("figure4");
    g.throughput(Throughput::Bytes(4096));
    for (name, policy) in [
        ("method1_one_per_packet", RefragPolicy::OnePerPacket),
        ("method2_repack", RefragPolicy::Repack),
        (
            "method3_reassemble",
            RefragPolicy::Reassemble { window: 16 },
        ),
    ] {
        g.bench_with_input(
            BenchmarkId::new(name, frames.len()),
            &frames,
            |b, frames| {
                b.iter(|| {
                    let mut r = ChunkRouter::new(big, policy);
                    let mut out: Vec<Vec<u8>> =
                        frames.iter().flat_map(|f| r.ingest(f.clone())).collect();
                    out.extend(r.flush());
                    out.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
