#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! Cipher bench: position-keyed encryption throughput, in order and
//! disordered — the FELD 92 "CBC-equivalent on disordered data" claim.

use chunks_bench::buffer;
use chunks_cipher::PositionCipher;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_cipher(c: &mut Criterion) {
    let cipher = PositionCipher::new([0x1234_5678_9ABC_DEF0, 0x0FED_CBA9_8765_4321]);
    let mut g = c.benchmark_group("position_cipher");
    for size in [4 << 10, 256 << 10] {
        let data = buffer(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("encrypt_inorder", size), &data, |b, d| {
            b.iter(|| {
                let mut buf = d.clone();
                cipher.encrypt_buffer(0, &mut buf);
                buf
            })
        });
        // Disordered: decrypt 512-byte fragments in reverse order — same
        // total work, no buffering, the anti-CBC property.
        let mut enc = data.clone();
        cipher.encrypt_buffer(0, &mut enc);
        g.bench_with_input(BenchmarkId::new("decrypt_reversed", size), &enc, |b, e| {
            b.iter(|| {
                let mut out = vec![0u8; e.len()];
                for frag in (0..e.len() / 512).rev() {
                    let mut piece = e[frag * 512..(frag + 1) * 512].to_vec();
                    cipher.decrypt_buffer((frag * 64) as u64, &mut piece);
                    out[frag * 512..(frag + 1) * 512].copy_from_slice(&piece);
                }
                out
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cipher);
criterion_main!(benches);
