#![allow(missing_docs)] // criterion_main! generates an undocumented fn main

//! B5 bench: header codec cost under each Appendix A form.

use chunks_bench::chunk_of;
use chunks_core::compress::{
    decode_header_form, decode_packet_delta, encode_header_form, encode_packet_delta, implicit_tid,
    HeaderForm, SignalledContext,
};
use chunks_core::frag::split;
use chunks_core::label::ChunkType;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_forms(c: &mut Criterion) {
    let mut chunk = chunk_of(64);
    chunk.header.tpdu.id = implicit_tid(chunk.header.conn.sn, chunk.header.tpdu.sn);
    let mut ctx = SignalledContext::new();
    ctx.signal_size(ChunkType::Data, 1);

    let mut g = c.benchmark_group("header_forms");
    for form in [
        HeaderForm::Full,
        HeaderForm::ImplicitTid,
        HeaderForm::SizeElided,
        HeaderForm::Compact,
    ] {
        let mut encoded = Vec::new();
        encode_header_form(&chunk.header, form, &ctx, &mut encoded).unwrap();
        g.bench_with_input(
            BenchmarkId::new("encode", format!("{form:?}")),
            &form,
            |b, &form| {
                b.iter(|| {
                    let mut out = Vec::with_capacity(32);
                    encode_header_form(&chunk.header, form, &ctx, &mut out).unwrap();
                    out
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("decode", format!("{form:?}")),
            &encoded,
            |b, encoded| b.iter(|| decode_header_form(encoded, form, &ctx).unwrap()),
        );
    }
    // Delta codec on a fragmented (continuing) pair.
    let (a, b2) = split(&chunk, 32).unwrap();
    let pair = vec![a, b2];
    let buf = encode_packet_delta(&pair);
    g.bench_function("delta_encode_pair", |b| {
        b.iter(|| encode_packet_delta(&pair))
    });
    g.bench_function("delta_decode_pair", |b| {
        b.iter(|| decode_packet_delta(&buf).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_forms);
criterion_main!(benches);
