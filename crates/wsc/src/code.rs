//! The WSC-2 weighted sum code (McAuley; paper §4).
//!
//! A WSC-2 encoder takes 32-bit data symbols `d_i` and produces two parity
//! symbols over GF(2^32):
//!
//! ```text
//! P0 = Σ d_i            P1 = Σ alpha^i · d_i
//! ```
//!
//! Unused positions are equivalent to encoding a zero symbol, so the code is
//! defined over a sparse space of `2^29 - 2` positions and "will work
//! correctly as long as the error detection protocol specifies which unique
//! value of `i` should be used for each symbol" — the flexibility the TPDU
//! invariant exploits.
//!
//! Properties relied on by the rest of the system (and tested here):
//!
//! * **order independence** — absorbing symbols in any order yields the same
//!   parities;
//! * **incrementality** — parities update one symbol at a time;
//! * **removability** — in characteristic 2, absorbing the same symbol again
//!   removes it, so duplicate data is *detected* rather than silently
//!   tolerated (the receiver must reject duplicates before absorbing, §3.3);
//! * **CRC-equivalent single-burst power** — any change to a single symbol,
//!   and any swap of two distinct symbols, changes `(P0, P1)`.

use chunks_gf::Gf32;

/// Number of addressable symbol positions: `0 <= i < 2^29 - 2` (§4).
pub const MAX_SYMBOLS: u64 = (1 << 29) - 2;

/// Incremental, order-independent WSC-2 accumulator.
///
/// ```
/// use chunks_wsc::Wsc2;
/// let mut in_order = Wsc2::new();
/// in_order.add_bytes(0, b"abcdefgh");
/// // The same data absorbed as disordered fragments:
/// let mut disordered = Wsc2::new();
/// disordered.add_bytes(1, b"efgh"); // symbols 1..3 first
/// disordered.add_bytes(0, b"abcd");
/// assert_eq!(in_order.digest(), disordered.digest());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Wsc2 {
    pub(crate) p0: Gf32,
    pub(crate) p1: Gf32,
}

impl Wsc2 {
    /// A fresh accumulator (the code of the empty message).
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs (or, equivalently, removes) a symbol at position `i`.
    ///
    /// # Panics
    /// Panics in debug builds when `i` exceeds [`MAX_SYMBOLS`].
    #[inline]
    pub fn add_symbol(&mut self, i: u64, d: u32) {
        debug_assert!(i < MAX_SYMBOLS, "symbol position {i} outside code space");
        let d = Gf32::new(d);
        self.p0 += d;
        self.p1 += Gf32::alpha_pow(i) * d;
    }

    /// Absorbs a run of symbols at consecutive positions starting at
    /// `start`.
    ///
    /// Fast path: `Σ α^(start+k)·d_k = α^start · H` where the inner sum `H`
    /// is a batched Horner fold on the active GF(2^32) backend
    /// ([`chunks_gf::fold_symbols`] — wide carry-less-multiply lanes where
    /// the CPU has them, a serial shift-and-fold sweep otherwise), plus a
    /// single full multiplication by `α^start` at the end.
    pub fn add_symbols(&mut self, start: u64, data: &[u32]) {
        debug_assert!(start + data.len() as u64 <= MAX_SYMBOLS);
        let (p0, horner) = chunks_gf::fold_symbols(data);
        self.p0 += p0;
        self.p1 += Gf32::alpha_pow(start) * horner;
    }

    /// Absorbs raw bytes as big-endian 32-bit symbols at consecutive
    /// positions starting at `start`; a trailing partial symbol is
    /// zero-padded on the right. Same batched fold as
    /// [`Self::add_symbols`], via [`chunks_gf::fold_be_bytes`].
    pub fn add_bytes(&mut self, start: u64, bytes: &[u8]) {
        let (p0, horner) = chunks_gf::fold_be_bytes(bytes);
        self.p0 += p0;
        self.p1 += Gf32::alpha_pow(start) * horner;
    }

    /// Reference-path [`Self::add_symbol`]: identical result via the seed
    /// bit-serial field arithmetic ([`Gf32::alpha_pow_ref`] /
    /// [`Gf32::mul_ref`]).
    ///
    /// Kept as the honest "slow path" arm for the `codes` and `invariant`
    /// benchmarks and for cross-checking the table-driven path. Use
    /// [`Self::add_symbol`] in real code.
    pub fn add_symbol_ref(&mut self, i: u64, d: u32) {
        debug_assert!(i < MAX_SYMBOLS, "symbol position {i} outside code space");
        let d = Gf32::new(d);
        self.p0 += d;
        self.p1 += Gf32::alpha_pow_ref(i).mul_ref(d);
    }

    /// Reference-path [`Self::add_bytes`]: identical result via the seed
    /// bit-serial field arithmetic. See [`Self::add_symbol_ref`].
    pub fn add_bytes_ref(&mut self, start: u64, bytes: &[u8]) {
        let mut p0 = Gf32::ZERO;
        let mut horner = Gf32::ZERO;
        let mut iter = bytes.chunks_exact(4);
        let rem = iter.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 4];
            word[..rem.len()].copy_from_slice(rem);
            let d = Gf32::new(u32::from_be_bytes(word));
            horner = d;
            p0 += d;
        }
        for group in iter.by_ref().rev() {
            let d = Gf32::new(u32::from_be_bytes([group[0], group[1], group[2], group[3]]));
            horner = horner.mul_alpha() + d;
            p0 += d;
        }
        self.p0 += p0;
        self.p1 += Gf32::alpha_pow_ref(start).mul_ref(horner);
    }

    /// Number of symbols `n` bytes occupy.
    pub fn symbols_for_bytes(n: usize) -> u64 {
        n.div_ceil(4) as u64
    }

    /// Merges another accumulator computed over a *disjoint* set of
    /// positions (parities are sums, so combination is addition).
    pub fn combine(&mut self, other: &Wsc2) {
        self.p0 += other.p0;
        self.p1 += other.p1;
    }

    /// The two parity symbols `(P0, P1)`.
    pub fn parities(&self) -> (u32, u32) {
        (self.p0.value(), self.p1.value())
    }

    /// Wire form of the code value: `P0 || P1`, big-endian.
    pub fn digest(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.p0.value().to_be_bytes());
        out[4..].copy_from_slice(&self.p1.value().to_be_bytes());
        out
    }

    /// Parses a wire digest back into an accumulator value.
    pub fn from_digest(d: [u8; 8]) -> Self {
        Wsc2 {
            p0: Gf32::new(u32::from_be_bytes([d[0], d[1], d[2], d[3]])),
            p1: Gf32::new(u32::from_be_bytes([d[4], d[5], d[6], d[7]])),
        }
    }

    /// True when both parities are zero — used to check a received message
    /// against its received code by absorbing the code's *syndrome*.
    pub fn is_zero(&self) -> bool {
        self.p0.is_zero() && self.p1.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_code_is_zero() {
        assert!(Wsc2::new().is_zero());
        assert_eq!(Wsc2::new().parities(), (0, 0));
    }

    #[test]
    fn order_independence() {
        let data = [(0u64, 0x11u32), (5, 0x22), (3, 0x33), (100, 0x44)];
        let mut a = Wsc2::new();
        for &(i, d) in &data {
            a.add_symbol(i, d);
        }
        let mut b = Wsc2::new();
        for &(i, d) in data.iter().rev() {
            b.add_symbol(i, d);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_matches_individual() {
        let data = [0xDEAD_BEEFu32, 0x0123_4567, 0x89AB_CDEF, 0xFFFF_0000];
        let mut seq = Wsc2::new();
        seq.add_symbols(7, &data);
        let mut ind = Wsc2::new();
        for (k, &d) in data.iter().enumerate() {
            ind.add_symbol(7 + k as u64, d);
        }
        assert_eq!(seq, ind);
    }

    #[test]
    fn bytes_match_symbols() {
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67];
        let mut by = Wsc2::new();
        by.add_bytes(3, &bytes);
        let mut sy = Wsc2::new();
        sy.add_symbols(3, &[0xDEAD_BEEF, 0x0123_4567]);
        assert_eq!(by, sy);
    }

    #[test]
    fn trailing_bytes_zero_padded() {
        let mut a = Wsc2::new();
        a.add_bytes(0, &[0xAB, 0xCD]);
        let mut b = Wsc2::new();
        b.add_symbol(0, 0xABCD_0000);
        assert_eq!(a, b);
    }

    #[test]
    fn double_absorption_cancels() {
        // Re-processing a duplicate corrupts the code — exactly why the
        // receiver must reject duplicates (§3.3).
        let mut w = Wsc2::new();
        w.add_symbol(9, 0x5555_5555);
        w.add_symbol(9, 0x5555_5555);
        assert!(w.is_zero());
    }

    #[test]
    fn single_symbol_error_detected() {
        let mut good = Wsc2::new();
        good.add_symbols(0, &[1, 2, 3, 4]);
        let mut bad = good;
        bad.add_symbol(2, 3 ^ 7); // change symbol 2 from 3 to 7
        assert_ne!(good, bad);
    }

    #[test]
    fn swapped_symbols_detected() {
        // P0 is order-blind but P1 weights positions, so swapping two
        // distinct symbols is caught — strictly stronger than the Internet
        // checksum (§4 footnote 11).
        let mut good = Wsc2::new();
        good.add_symbols(0, &[0xAA, 0xBB]);
        let mut swapped = Wsc2::new();
        swapped.add_symbols(0, &[0xBB, 0xAA]);
        assert_eq!(good.parities().0, swapped.parities().0);
        assert_ne!(good.parities().1, swapped.parities().1);
    }

    #[test]
    fn combine_is_disjoint_union() {
        let mut whole = Wsc2::new();
        whole.add_symbols(0, &[1, 2, 3, 4, 5, 6]);
        let mut left = Wsc2::new();
        left.add_symbols(0, &[1, 2, 3]);
        let mut right = Wsc2::new();
        right.add_symbols(3, &[4, 5, 6]);
        left.combine(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn digest_roundtrip() {
        let mut w = Wsc2::new();
        w.add_symbols(11, &[0x1111, 0x2222]);
        assert_eq!(Wsc2::from_digest(w.digest()), w);
    }

    #[test]
    fn syndrome_check() {
        let mut tx = Wsc2::new();
        tx.add_symbols(0, &[10, 20, 30]);
        // Receiver recomputes then adds the transmitted value: zero syndrome.
        let mut rx = Wsc2::new();
        rx.add_symbols(0, &[10, 20, 30]);
        rx.combine(&tx);
        assert!(rx.is_zero());
    }

    #[test]
    fn reference_paths_agree_with_fast_paths() {
        let bytes: Vec<u8> = (0u8..23).map(|x| x.wrapping_mul(37)).collect();
        let mut fast = Wsc2::new();
        fast.add_bytes(12_345, &bytes);
        fast.add_symbol(1 << 20, 0xFEED_FACE);
        let mut slow = Wsc2::new();
        slow.add_bytes_ref(12_345, &bytes);
        slow.add_symbol_ref(1 << 20, 0xFEED_FACE);
        assert_eq!(fast, slow);
    }

    #[test]
    fn symbols_for_bytes_rounds_up() {
        assert_eq!(Wsc2::symbols_for_bytes(0), 0);
        assert_eq!(Wsc2::symbols_for_bytes(1), 1);
        assert_eq!(Wsc2::symbols_for_bytes(4), 1);
        assert_eq!(Wsc2::symbols_for_bytes(5), 2);
    }
}
