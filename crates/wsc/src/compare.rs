//! Comparator error-detection codes for the evaluation (experiment B4).
//!
//! * [`Crc32`] — IEEE CRC-32. Strong, but "a CRC cannot be computed on
//!   disordered data" (§4, citing FELD 92): each byte's contribution depends
//!   on everything processed after it, so the API only offers in-order
//!   streaming.
//! * [`internet_checksum`] — the 16-bit one's-complement sum of RFC 1071.
//!   Computable on disordered data (addition commutes) "but has less
//!   powerful error detection properties than both CRC and WSC-2": it misses
//!   reordered 16-bit words entirely.

/// Streaming IEEE CRC-32 (reflected, polynomial `0xEDB88320`).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

/// 256-entry lookup table for the reflected IEEE polynomial.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

impl Crc32 {
    /// Starts a new CRC computation.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds the *next in-order* bytes of the message. There is deliberately
    /// no positional variant: CRC state depends on suffix length, so
    /// out-of-order computation is impossible without buffering.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finishes and returns the CRC value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot convenience.
    pub fn of(bytes: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(bytes);
        c.finish()
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-16/X.25 (reflected polynomial `0x8408`, init and xor-out `0xFFFF`)
/// — the FCS HDLC-family link layers append to each frame (Appendix B).
pub fn crc16_x25(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= b as u16;
        for _ in 0..8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0x8408
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// RFC 1071 Internet checksum over `bytes` (one's-complement sum of 16-bit
/// big-endian words; odd trailing byte padded with zero).
pub fn internet_checksum(bytes: &[u8]) -> u16 {
    !ones_complement_sum(bytes)
}

/// The raw one's-complement 16-bit sum — the commutative core that lets the
/// Internet checksum be computed on disordered data (word-aligned pieces
/// simply add).
pub fn ones_complement_sum(bytes: &[u8]) -> u16 {
    // A u64 accumulator cannot overflow below 2^48 words, so arbitrarily
    // large buffers sum correctly before the end-around-carry fold.
    let mut sum: u64 = 0;
    let mut iter = bytes.chunks_exact(2);
    for w in &mut iter {
        sum += u16::from_be_bytes([w[0], w[1]]) as u64;
    }
    if let [last] = iter.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u64;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

/// Adds two one's-complement partial sums (for disordered, word-aligned
/// pieces).
pub fn ones_complement_add(a: u16, b: u16) -> u16 {
    let mut s = a as u32 + b as u32;
    while s >> 16 != 0 {
        s = (s & 0xFFFF) + (s >> 16);
    }
    s as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(Crc32::of(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::of(b""), 0);
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), Crc32::of(data));
    }

    #[test]
    fn crc32_is_order_dependent() {
        // Swapping two halves changes the CRC — the property that forces
        // reassembly-before-checksum in CRC-based protocols.
        let a = Crc32::of(b"AAAABBBB");
        let b = Crc32::of(b"BBBBAAAA");
        assert_ne!(a, b);
    }

    #[test]
    fn crc16_x25_known_vector() {
        // The canonical CRC-16/X.25 check value.
        assert_eq!(crc16_x25(b"123456789"), 0x906E);
        assert_ne!(crc16_x25(b"12345678"), crc16_x25(b"123456789"));
    }

    #[test]
    fn internet_checksum_rfc1071_example() {
        // RFC 1071 §3 example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
        // (before complement).
        let data = [0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7];
        assert_eq!(ones_complement_sum(&data), 0xDDF2);
        assert_eq!(internet_checksum(&data), !0xDDF2);
    }

    #[test]
    fn internet_checksum_odd_length() {
        assert_eq!(ones_complement_sum(&[0xAB]), 0xAB00);
    }

    #[test]
    fn internet_checksum_is_order_blind_across_words() {
        // Word-swapped data has the same checksum: weak against
        // misordering, exactly the weakness footnote 11 points at.
        let a = ones_complement_sum(&[0x12, 0x34, 0x56, 0x78]);
        let b = ones_complement_sum(&[0x56, 0x78, 0x12, 0x34]);
        assert_eq!(a, b);
    }

    #[test]
    fn internet_checksum_combines_disordered_pieces() {
        let whole = ones_complement_sum(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let left = ones_complement_sum(&[1, 2, 3, 4]);
        let right = ones_complement_sum(&[5, 6, 7, 8]);
        assert_eq!(ones_complement_add(right, left), whole);
    }

    #[test]
    fn checksum_catches_single_bit_flip() {
        let good = internet_checksum(&[0x10, 0x20, 0x30, 0x40]);
        let bad = internet_checksum(&[0x10, 0x20, 0x30, 0x41]);
        assert_ne!(good, bad);
    }
}
