//! Streaming WSC-2 encoder for disordered runs of symbols.
//!
//! [`Wsc2`]'s one-shot entry points pay one `alpha^start` exponentiation per
//! call. That is the right shape for whole messages, but the TPDU invariant
//! feeds the code *element by element* — thousands of tiny runs whose
//! positions are usually consecutive. [`Wsc2Stream`] keeps a **cursor** (the
//! position one past the last symbol absorbed) and a **cached weight**
//! `alpha^cursor`, so a run that starts exactly at the cursor — the common
//! case for in-order chunk payloads — costs one batched Horner fold on the
//! active GF(2^32) backend ([`chunks_gf::fold_symbols`]: wide carry-less
//! multiply lanes where the CPU has them, a serial shift-and-fold sweep
//! otherwise) plus a single full multiply, with *no* exponentiation at all.
//! Disordered arrivals just reseat the cursor with one table-driven
//! [`Gf32::alpha_pow`] and continue.
//!
//! Because the parities are sums, independently accumulated streams over
//! disjoint position sets can be [`fold`](Wsc2Stream::fold)ed into one; the
//! result is identical to a single in-order pass.

use chunks_gf::Gf32;

use crate::code::{Wsc2, MAX_SYMBOLS};

/// Incremental WSC-2 encoder over `(position, symbols)` runs arriving in any
/// order.
///
/// Produces bit-identical parities to [`Wsc2`]; the difference is purely
/// cost: contiguous runs reuse the cached cursor weight instead of
/// recomputing `alpha^start` from scratch.
///
/// ```
/// use chunks_wsc::{Wsc2, Wsc2Stream};
///
/// // One-shot reference over the whole message.
/// let mut one_shot = Wsc2::new();
/// one_shot.add_bytes(0, b"abcdefgh");
///
/// // The same message as disordered fragments through the stream.
/// let mut stream = Wsc2Stream::new();
/// stream.add_bytes(1, b"efgh"); // symbols 1..3 arrive first
/// stream.add_bytes(0, b"abcd");
/// assert_eq!(stream.digest(), one_shot.digest());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Wsc2Stream {
    acc: Wsc2,
    /// The position one past the last absorbed symbol.
    cursor: u64,
    /// Cached `alpha^cursor`.
    weight: Gf32,
    /// Non-empty runs absorbed so far (observability; not part of the code).
    runs: u64,
    /// Streams or raw codes folded in so far (observability).
    folds: u64,
}

impl Default for Wsc2Stream {
    fn default() -> Self {
        Self::new()
    }
}

impl Wsc2Stream {
    /// Short cursor moves step the cached weight with per-symbol
    /// `mul_alpha` shifts; anything longer pays one table exponentiation.
    const STEP_LIMIT: u64 = 16;

    /// A fresh stream positioned at symbol 0.
    pub fn new() -> Self {
        Wsc2Stream {
            acc: Wsc2::new(),
            cursor: 0,
            weight: Gf32::ONE,
            runs: 0,
            folds: 0,
        }
    }

    /// Moves the cursor to `pos` and returns `alpha^pos`.
    ///
    /// Contiguous input (`pos == cursor`) is free; a short forward hop is a
    /// few shifts; everything else is one table `alpha_pow`.
    #[inline]
    fn seek(&mut self, pos: u64) -> Gf32 {
        if pos != self.cursor {
            if pos > self.cursor && pos - self.cursor <= Self::STEP_LIMIT {
                for _ in 0..pos - self.cursor {
                    self.weight = self.weight.mul_alpha();
                }
            } else {
                self.weight = Gf32::alpha_pow(pos);
            }
            self.cursor = pos;
        }
        self.weight
    }

    /// Advances the cursor past `n` just-absorbed symbols, keeping the
    /// cached weight in sync.
    #[inline]
    fn advance(&mut self, n: u64) {
        self.cursor += n;
        if n <= Self::STEP_LIMIT {
            for _ in 0..n {
                self.weight = self.weight.mul_alpha();
            }
        } else {
            self.weight = Gf32::alpha_pow(self.cursor);
        }
    }

    /// Absorbs (or removes — characteristic 2) one symbol at position `i`.
    ///
    /// # Panics
    /// Panics in debug builds when `i` exceeds [`MAX_SYMBOLS`].
    #[inline]
    pub fn add_symbol(&mut self, i: u64, d: u32) {
        debug_assert!(i < MAX_SYMBOLS, "symbol position {i} outside code space");
        self.runs += 1;
        let w = self.seek(i);
        let d = Gf32::new(d);
        self.acc.p0 += d;
        self.acc.p1 += w * d;
        self.advance(1);
    }

    /// Seeks to `start`, adds the folded run `(p0, horner)` of `n` symbols,
    /// and advances the cursor. The value-update core shared by every
    /// absorption entry point.
    #[inline]
    fn absorb_fold(&mut self, start: u64, p0: Gf32, horner: Gf32, n: u64) {
        let w = self.seek(start);
        self.acc.p0 += p0;
        self.acc.p1 += w * horner;
        self.advance(n);
    }

    /// Absorbs a run of symbols at consecutive positions starting at
    /// `start`. Batched Horner fold on the active GF(2^32) backend
    /// ([`chunks_gf::fold_symbols`]), then one multiply by the cursor
    /// weight.
    pub fn add_symbols(&mut self, start: u64, data: &[u32]) {
        if data.is_empty() {
            return;
        }
        self.runs += 1;
        debug_assert!(start + data.len() as u64 <= MAX_SYMBOLS);
        let (p0, horner) = chunks_gf::fold_symbols(data);
        self.absorb_fold(start, p0, horner, data.len() as u64);
    }

    /// Continues the run the cursor is in the middle of: absorbs `data` at
    /// the current cursor position **without** counting a new run.
    ///
    /// This lets `TpduInvariant` gather one logical run (a chunk's padded
    /// elements) into stack-sized symbol blocks and absorb them block by
    /// block while the `runs` disorder tally still counts a single run, as
    /// the wire input had.
    pub(crate) fn extend_symbols(&mut self, data: &[u32]) {
        if data.is_empty() {
            return;
        }
        debug_assert!(self.cursor + data.len() as u64 <= MAX_SYMBOLS);
        let (p0, horner) = chunks_gf::fold_symbols(data);
        self.absorb_fold(self.cursor, p0, horner, data.len() as u64);
    }

    /// Absorbs raw bytes as big-endian 32-bit symbols at consecutive
    /// positions starting at `start`; a trailing partial symbol is
    /// zero-padded on the right, exactly like [`Wsc2::add_bytes`]. Batched
    /// fold via [`chunks_gf::fold_be_bytes`].
    pub fn add_bytes(&mut self, start: u64, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.runs += 1;
        let n = Wsc2::symbols_for_bytes(bytes.len());
        debug_assert!(start + n <= MAX_SYMBOLS);
        let (p0, horner) = chunks_gf::fold_be_bytes(bytes);
        self.absorb_fold(start, p0, horner, n);
    }

    /// Folds in a stream accumulated over a *disjoint* set of positions
    /// (parities are sums). This stream's cursor is kept, so contiguous
    /// input can continue where it left off.
    ///
    /// ```
    /// use chunks_wsc::{Wsc2, Wsc2Stream};
    /// let mut whole = Wsc2::new();
    /// whole.add_bytes(0, b"spliced from two halves");
    ///
    /// let mut left = Wsc2Stream::new();
    /// left.add_bytes(0, b"spliced from");
    /// let mut right = Wsc2Stream::new();
    /// right.add_bytes(3, b" two halves"); // 12 bytes = 3 symbols in `left`
    /// left.fold(&right);
    /// assert_eq!(left.digest(), whole.digest());
    /// ```
    pub fn fold(&mut self, other: &Wsc2Stream) {
        self.acc.combine(&other.acc);
        self.runs += other.runs;
        self.folds += 1 + other.folds;
    }

    /// Folds in a raw code value accumulated elsewhere over a disjoint set
    /// of positions — the same sum as [`fold`](Self::fold) when only the
    /// final [`Wsc2`] of the other accumulator is at hand (e.g. a verified
    /// TPDU's code being folded into a per-worker delivery transcript).
    pub fn fold_code(&mut self, code: &Wsc2) {
        self.acc.combine(code);
        self.folds += 1;
    }

    /// The position one past the last absorbed symbol — where contiguous
    /// input would continue for free.
    pub fn position(&self) -> u64 {
        self.cursor
    }

    /// Non-empty runs absorbed so far, including runs carried in by
    /// [`fold`](Self::fold) — an observability tally of how disordered the
    /// input was, with no effect on the code value.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Streams or raw codes folded in so far (transitively), the merge-work
    /// tally a parallel receiver reports as `transport.parallel.merge_folds`.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// The accumulated code value.
    pub fn code(&self) -> Wsc2 {
        self.acc
    }

    /// Consumes the stream, returning the accumulated code value.
    pub fn finish(self) -> Wsc2 {
        self.acc
    }

    /// Wire digest of the accumulated value (`P0 || P1`, big-endian).
    pub fn digest(&self) -> [u8; 8] {
        self.acc.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_one_shot_in_order() {
        let bytes: Vec<u8> = (0u16..257).map(|x| (x * 7) as u8).collect();
        let mut reference = Wsc2::new();
        reference.add_bytes(0, &bytes);
        let mut stream = Wsc2Stream::new();
        for piece in bytes.chunks(4) {
            let pos = stream.position();
            stream.add_bytes(pos, piece);
        }
        assert_eq!(stream.code(), reference);
    }

    #[test]
    fn matches_one_shot_disordered() {
        let bytes: Vec<u8> = (0u8..96).collect();
        let mut reference = Wsc2::new();
        reference.add_bytes(5, &bytes);
        // Feed 8-byte (2-symbol) runs back to front.
        let mut stream = Wsc2Stream::new();
        for (k, piece) in bytes.chunks(8).enumerate().rev() {
            stream.add_bytes(5 + 2 * k as u64, piece);
        }
        assert_eq!(stream.code(), reference);
    }

    #[test]
    fn symbol_paths_agree() {
        let data = [0xDEAD_BEEFu32, 0x0123_4567, 0x89AB_CDEF];
        let mut a = Wsc2Stream::new();
        a.add_symbols(1000, &data);
        let mut b = Wsc2Stream::new();
        for (k, &d) in data.iter().enumerate() {
            b.add_symbol(1000 + k as u64, d);
        }
        let mut c = Wsc2::new();
        c.add_symbols(1000, &data);
        assert_eq!(a.code(), c);
        assert_eq!(b.code(), c);
    }

    #[test]
    fn long_jump_reseats_cursor() {
        let mut stream = Wsc2Stream::new();
        stream.add_symbol(0, 7);
        stream.add_symbol(1_000_000, 9); // far beyond STEP_LIMIT
        stream.add_symbol(3, 11); // backwards
        let mut reference = Wsc2::new();
        reference.add_symbol(0, 7);
        reference.add_symbol(1_000_000, 9);
        reference.add_symbol(3, 11);
        assert_eq!(stream.code(), reference);
    }

    #[test]
    fn fold_of_disjoint_partials() {
        let bytes: Vec<u8> = (0u8..64).collect();
        let mut whole = Wsc2::new();
        whole.add_bytes(0, &bytes);

        let mut parts: Vec<Wsc2Stream> = Vec::new();
        for (k, piece) in bytes.chunks(16).enumerate() {
            let mut s = Wsc2Stream::new();
            s.add_bytes(4 * k as u64, piece);
            parts.push(s);
        }
        // Fold in an arbitrary order.
        parts.swap(0, 3);
        let mut acc = Wsc2Stream::new();
        for p in &parts {
            acc.fold(p);
        }
        assert_eq!(acc.finish(), whole);
    }

    #[test]
    fn empty_runs_are_noops() {
        let mut stream = Wsc2Stream::new();
        stream.add_bytes(10, &[]);
        stream.add_symbols(10, &[]);
        assert!(stream.code().is_zero());
        assert_eq!(stream.position(), 0);
        assert_eq!(stream.runs(), 0);
    }

    #[test]
    fn run_and_fold_tallies_count_work_not_value() {
        let mut a = Wsc2Stream::new();
        a.add_bytes(0, b"abcd");
        a.add_symbol(9, 7);
        assert_eq!(a.runs(), 2);
        assert_eq!(a.folds(), 0);

        let mut b = Wsc2Stream::new();
        b.add_bytes(20, b"efgh");
        a.fold(&b);
        a.fold_code(&Wsc2::new());
        assert_eq!(a.runs(), 3, "fold carries the other stream's runs");
        assert_eq!(a.folds(), 2);
    }
}
