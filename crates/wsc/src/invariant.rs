//! The fragmentation-invariant TPDU error-detection layout (Figures 5 & 6).
//!
//! End-to-end error detection over chunks must produce "an error detection
//! code value that is unaffected by the fragmentation procedure" (§4). The
//! invariant maps everything that needs protection to fixed positions in the
//! WSC-2 code space:
//!
//! ```text
//! position                      contents
//! e·spe .. e·spe+spe-1          data element with T.SN = e  (spe = ⌈SIZE/4⌉)
//! D                             T.ID          (D = data-symbol capacity)
//! D + 1                         C.ID
//! D + 2                         C.ST value (only when set; 0 ≡ unused)
//! 2·T.SN + D + 3, +4            (X.ID, X.ST) pair, encoded for the element
//!                               whose X.ST or T.ST bit is set (Figure 6)
//! ```
//!
//! Fields whose corruption surfaces as a *virtual reassembly error* (`TYPE`,
//! `LEN`, `SIZE`, `T.SN`, `T.ST`) are deliberately not in the code space;
//! `C.SN` and `X.SN` are protected by the consistency checks of Table 1
//! (`C.SN − T.SN` and `C.SN − X.SN` constant), which live in the transport.

use chunks_core::chunk::ChunkHeader;
use chunks_core::label::ChunkType;
use std::error::Error;
use std::fmt;

use crate::code::{Wsc2, MAX_SYMBOLS};
use crate::stream::Wsc2Stream;

/// Geometry of the invariant's code space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvariantLayout {
    /// Number of symbol positions reserved for TPDU data. The paper assumes
    /// TPDU data limited to 16,384 32-bit symbols.
    pub data_symbols: u64,
}

impl Default for InvariantLayout {
    fn default() -> Self {
        InvariantLayout {
            data_symbols: 16_384,
        }
    }
}

impl InvariantLayout {
    /// Creates a layout with a custom data capacity.
    pub fn with_data_symbols(data_symbols: u64) -> Self {
        InvariantLayout { data_symbols }
    }

    /// Position of the `T.ID` symbol.
    pub fn tid_pos(&self) -> u64 {
        self.data_symbols
    }

    /// Position of the `C.ID` symbol.
    pub fn cid_pos(&self) -> u64 {
        self.data_symbols + 1
    }

    /// Position of the `C.ST` symbol.
    pub fn cst_pos(&self) -> u64 {
        self.data_symbols + 2
    }

    /// Start position of the `(X.ID, X.ST)` pair triggered by the element
    /// with TPDU sequence number `t_sn` (Figure 6: `2·T.SN + D + 3`).
    pub fn x_pair_pos(&self, t_sn: u32) -> u64 {
        2 * t_sn as u64 + self.data_symbols + 3
    }

    /// Highest position the layout can emit; must stay inside the WSC-2
    /// code space.
    pub fn max_pos(&self) -> u64 {
        self.x_pair_pos(u32::try_from(self.data_symbols - 1).unwrap_or(u32::MAX)) + 1
    }
}

/// Errors raised while absorbing chunks into the invariant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvariantError {
    /// Only data chunks participate in the invariant.
    NotData(ChunkType),
    /// A data element landed past the layout's data capacity.
    DataOutOfRange {
        /// The offending element's TPDU sequence number.
        t_sn: u32,
        /// The layout's capacity in elements.
        capacity: u64,
    },
    /// Two chunks of the same TPDU disagreed on `T.ID` or `C.ID` — a header
    /// corruption surfaced before code comparison.
    IdMismatch,
    /// The layout itself would exceed the WSC-2 code space.
    LayoutTooLarge,
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::NotData(t) => write!(f, "chunk type {t} not part of the invariant"),
            InvariantError::DataOutOfRange { t_sn, capacity } => {
                write!(f, "element T.SN {t_sn} outside data capacity {capacity}")
            }
            InvariantError::IdMismatch => write!(f, "chunks disagree on T.ID/C.ID"),
            InvariantError::LayoutTooLarge => write!(f, "layout exceeds WSC-2 code space"),
        }
    }
}

impl Error for InvariantError {}

/// Incrementally accumulates the invariant of one TPDU from its chunks,
/// arriving in any order and fragmented arbitrarily.
///
/// Built on [`Wsc2Stream`]: a chunk's elements occupy consecutive symbol
/// positions, so a chunk's data is absorbed as one contiguous run — padded
/// elements are gathered into stack blocks of ready-made symbols first —
/// and each run rides the backend's batched Horner fold plus the stream's
/// cached cursor weight. When chunks themselves arrive in order, the
/// contiguity extends across chunk boundaries too.
#[derive(Clone, Debug)]
pub struct TpduInvariant {
    layout: InvariantLayout,
    wsc: Wsc2Stream,
    ids: Option<(u32, u32)>, // (T.ID, C.ID), encoded exactly once
}

impl TpduInvariant {
    /// Creates an accumulator over `layout`.
    pub fn new(layout: InvariantLayout) -> Result<Self, InvariantError> {
        if layout.max_pos() >= MAX_SYMBOLS {
            return Err(InvariantError::LayoutTooLarge);
        }
        Ok(TpduInvariant {
            layout,
            wsc: Wsc2Stream::new(),
            ids: None,
        })
    }

    /// Creates an accumulator with the default 16,384-symbol layout.
    pub fn with_default_layout() -> Self {
        Self::new(InvariantLayout::default()).expect("default layout fits")
    }

    /// The layout in use.
    pub fn layout(&self) -> InvariantLayout {
        self.layout
    }

    /// Re-arms the accumulator for a new TPDU under the same layout.
    /// [`Wsc2Stream`] is plain `Copy` state, so a pooled receiver group can
    /// reset its invariant without touching the heap.
    pub fn reset(&mut self) {
        self.wsc = Wsc2Stream::new();
        self.ids = None;
    }

    /// Absorbs one data chunk of the TPDU.
    ///
    /// The caller (the transport's virtual reassembly) is responsible for
    /// rejecting duplicates first; absorbing a chunk twice cancels its
    /// contribution and the final comparison fails — by design (§3.3).
    pub fn absorb_chunk(
        &mut self,
        header: &ChunkHeader,
        payload: &[u8],
    ) -> Result<(), InvariantError> {
        if header.ty != ChunkType::Data {
            return Err(InvariantError::NotData(header.ty));
        }
        let spe = Wsc2::symbols_for_bytes(header.size as usize);
        let first = header.tpdu.sn as u64;
        let last = first + header.len as u64 - 1;
        if (last + 1) * spe > self.layout.data_symbols {
            return Err(InvariantError::DataOutOfRange {
                t_sn: header.tpdu.sn.wrapping_add(header.len - 1),
                capacity: self.layout.data_symbols / spe.max(1),
            });
        }

        // T.ID and C.ID: constant across the TPDU, encoded exactly once.
        match self.ids {
            None => {
                self.ids = Some((header.tpdu.id, header.conn.id));
                self.wsc.add_symbol(self.layout.tid_pos(), header.tpdu.id);
                self.wsc.add_symbol(self.layout.cid_pos(), header.conn.id);
            }
            Some(ids) => {
                if ids != (header.tpdu.id, header.conn.id) {
                    return Err(InvariantError::IdMismatch);
                }
            }
        }

        // C.ST: set at most once per TPDU, encoded as symbol value 1.
        if header.conn.st {
            self.wsc.add_symbol(self.layout.cst_pos(), 1);
        }

        // (X.ID, X.ST) pair: triggered by the chunk's last element when it
        // ends an external PDU or the TPDU (Figure 6). ST bits always ride
        // the last element, whose T.SN survives fragmentation.
        if header.ext.st || header.tpdu.st {
            let t_sn_last = header.tpdu.sn.wrapping_add(header.len - 1);
            let base = self.layout.x_pair_pos(t_sn_last);
            self.wsc.add_symbol(base, header.ext.id);
            self.wsc.add_symbol(base + 1, header.ext.st as u32);
        }

        // Data symbols at element-determined positions: order-independent
        // and unchanged by any Appendix C split. Each SIZE-byte element maps
        // to its own `spe` symbol positions (zero-padded), so the position of
        // a byte depends only on its element's T.SN — never on which chunk
        // carried it. Absorbed last so the stream cursor ends at the chunk's
        // final data symbol: the next in-order chunk continues contiguously.
        if header.size as u64 == spe * 4 {
            // SIZE is a whole number of symbols: the chunk's payload is one
            // contiguous run with no per-element padding.
            self.wsc.add_bytes(first * spe, payload);
        } else {
            self.absorb_padded_elements(header.size as usize, payload, first, spe);
        }
        Ok(())
    }

    /// Replaces already-absorbed data: substitutes `new` for `old` at the
    /// element positions starting at T.SN `first` (both slices cover the
    /// same elements of `size` bytes each).
    ///
    /// GF(2^32) has characteristic 2, so absorbing `old ⊕ new` at the same
    /// symbol positions cancels `old`'s contribution and adds `new`'s —
    /// the invariant ends exactly as if `new` had been absorbed in the
    /// first place. This is how a `LastWins` overlap policy keeps WSC-2 as
    /// the integrity authority: the invariant always describes the bytes
    /// actually held, and only the sender's ED value can bless them.
    pub fn patch_elements(&mut self, size: u16, first: u64, old: &[u8], new: &[u8]) {
        debug_assert_eq!(old.len(), new.len(), "patch must cover equal spans");
        let spe = Wsc2::symbols_for_bytes(size as usize);
        let delta: Vec<u8> = old.iter().zip(new).map(|(a, b)| a ^ b).collect();
        if size as u64 == spe * 4 {
            self.wsc.add_bytes(first * spe, &delta);
        } else {
            self.absorb_padded_elements(size as usize, &delta, first, spe);
        }
    }

    /// Absorbs a chunk whose `SIZE` is not a whole number of symbols: each
    /// element occupies `spe` symbol positions, zero-padded on the right.
    ///
    /// Elements are *gathered* into a stack block of ready-made symbols and
    /// absorbed block by block, so a chunk costs a handful of batched folds
    /// instead of one stream run (one full multiply plus cursor bookkeeping)
    /// per element — the difference between ~35 MiB/s and >1 GiB/s on the
    /// SIZE = 1 benchmark workload. The whole chunk stays one *logical* run:
    /// only the first block seeks the cursor and counts in the disorder
    /// tally; later blocks continue at the cursor.
    fn absorb_padded_elements(&mut self, size: usize, payload: &[u8], first: u64, spe: u64) {
        /// Symbols gathered per stack block (1 KiB).
        const BLOCK: usize = 256;
        let spe_us = spe as usize;
        if spe_us > BLOCK {
            // An element outgrows the gather block (SIZE > 1 KiB): absorb one
            // run per element; `add_bytes` batches internally.
            for (e, element) in payload.chunks(size).enumerate() {
                self.wsc.add_bytes((first + e as u64) * spe, element);
            }
            return;
        }
        let mut buf = [0u32; BLOCK];
        let mut started = false;
        let mut emit = |wsc: &mut Wsc2Stream, block: &[u32]| {
            if started {
                wsc.extend_symbols(block);
            } else {
                wsc.add_symbols(first * spe, block);
                started = true;
            }
        };
        if size == 1 {
            // The hot one-byte-element shape: each byte is its own
            // left-aligned symbol. Tight, vectorizable gather loop.
            for bytes in payload.chunks(BLOCK) {
                for (slot, &b) in buf.iter_mut().zip(bytes) {
                    *slot = (b as u32) << 24;
                }
                emit(&mut self.wsc, &buf[..bytes.len()]);
            }
        } else {
            let mut fill = 0usize;
            for element in payload.chunks(size) {
                if fill + spe_us > BLOCK {
                    emit(&mut self.wsc, &buf[..fill]);
                    fill = 0;
                }
                for (k, slot) in buf[fill..fill + spe_us].iter_mut().enumerate() {
                    let mut be = [0u8; 4];
                    let lo = 4 * k;
                    if lo < element.len() {
                        let hi = element.len().min(lo + 4);
                        be[..hi - lo].copy_from_slice(&element[lo..hi]);
                    }
                    *slot = u32::from_be_bytes(be);
                }
                fill += spe_us;
            }
            if fill > 0 {
                emit(&mut self.wsc, &buf[..fill]);
            }
        }
    }

    /// Folds another partial invariant of the **same TPDU**, accumulated
    /// over a disjoint set of chunks, into this one — the merge step that
    /// makes the invariant computable by independent workers.
    ///
    /// WSC-2 parities are sums, so data, `C.ST` and `(X.ID, X.ST)` symbols
    /// at disjoint positions add up exactly as a single accumulator would
    /// have produced. The one wrinkle is `T.ID`/`C.ID`: every partial that
    /// absorbed at least one chunk encoded them once, so folding two such
    /// partials cancels the pair (characteristic 2); this method re-adds one
    /// copy to restore the single encoding the one-shot pass produces.
    ///
    /// Partials that saw chunks disagreeing on `T.ID`/`C.ID` surface as
    /// [`InvariantError::IdMismatch`], exactly as a serial accumulator would
    /// have caught on the second chunk. Both partials must share the same
    /// layout.
    pub fn fold(&mut self, other: &TpduInvariant) -> Result<(), InvariantError> {
        debug_assert_eq!(
            self.layout, other.layout,
            "folded partials must share a layout"
        );
        match (self.ids, other.ids) {
            (Some(a), Some(b)) => {
                if a != b {
                    return Err(InvariantError::IdMismatch);
                }
                self.wsc.fold(&other.wsc);
                // Both partials contributed the (T.ID, C.ID) pair; the two
                // copies cancelled, so add a third to leave exactly one.
                self.wsc.add_symbol(self.layout.tid_pos(), a.0);
                self.wsc.add_symbol(self.layout.cid_pos(), a.1);
            }
            (None, Some(b)) => {
                self.wsc.fold(&other.wsc);
                self.ids = Some(b);
            }
            // `other` absorbed nothing: folding an empty accumulator.
            (_, None) => self.wsc.fold(&other.wsc),
        }
        Ok(())
    }

    /// Non-empty WSC-2 runs absorbed so far (see [`Wsc2Stream::runs`]) —
    /// the disorder tally a receiver reports as the `wsc.runs_per_tpdu`
    /// histogram when a group completes.
    pub fn absorbed_runs(&self) -> u64 {
        self.wsc.runs()
    }

    /// The accumulated WSC-2 value.
    pub fn code(&self) -> Wsc2 {
        self.wsc.code()
    }

    /// Wire digest of the accumulated value (the ED chunk payload).
    pub fn digest(&self) -> [u8; 8] {
        self.wsc.digest()
    }

    /// Compares against a received digest.
    pub fn matches(&self, digest: [u8; 8]) -> bool {
        self.wsc.digest() == digest
    }
}

/// Computes the invariant digest of a whole, unfragmented TPDU given as
/// chunks — the sender-side path.
pub fn tpdu_digest<'a, I>(layout: InvariantLayout, chunks: I) -> Result<[u8; 8], InvariantError>
where
    I: IntoIterator<Item = (&'a ChunkHeader, &'a [u8])>,
{
    let mut inv = TpduInvariant::new(layout)?;
    for (h, p) in chunks {
        inv.absorb_chunk(h, p)?;
    }
    Ok(inv.digest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chunks_core::chunk::{byte_chunk, Chunk};
    use chunks_core::frag::split;
    use chunks_core::label::FramingTuple;

    fn tpdu_chunk(t_st: bool, x_st: bool) -> Chunk {
        byte_chunk(
            FramingTuple::new(0xA, 36, false),
            FramingTuple::new(0x51, 0, t_st),
            FramingTuple::new(0xC, 24, x_st),
            b"0123456",
        )
    }

    fn digest_of(chunks: &[Chunk]) -> [u8; 8] {
        let mut inv = TpduInvariant::with_default_layout();
        for c in chunks {
            inv.absorb_chunk(&c.header, &c.payload).unwrap();
        }
        inv.digest()
    }

    #[test]
    fn invariant_under_single_split() {
        let whole = tpdu_chunk(true, false);
        let base = digest_of(std::slice::from_ref(&whole));
        for at in 1..whole.header.len {
            let (a, b) = split(&whole, at).unwrap();
            assert_eq!(digest_of(&[a, b]), base, "split at {at}");
        }
    }

    #[test]
    fn invariant_under_split_any_order() {
        let whole = tpdu_chunk(true, true);
        let base = digest_of(std::slice::from_ref(&whole));
        let (a, rest) = split(&whole, 2).unwrap();
        let (b, c) = split(&rest, 3).unwrap();
        assert_eq!(digest_of(&[c.clone(), a.clone(), b.clone()]), base);
        assert_eq!(digest_of(&[b.clone(), c.clone(), a.clone()]), base);
        assert_eq!(digest_of(&[a, b, c]), base);
    }

    #[test]
    fn invariant_under_recursive_fragmentation() {
        let whole = tpdu_chunk(true, false);
        let base = digest_of(std::slice::from_ref(&whole));
        // Split into single elements.
        let mut pieces = vec![whole];
        loop {
            let mut next = Vec::new();
            let mut any = false;
            for p in pieces {
                if p.header.len > 1 {
                    let (a, b) = split(&p, 1).unwrap();
                    next.push(a);
                    next.push(b);
                    any = true;
                } else {
                    next.push(p);
                }
            }
            pieces = next;
            if !any {
                break;
            }
        }
        assert_eq!(pieces.len(), 7);
        assert_eq!(digest_of(&pieces), base);
    }

    #[test]
    fn payload_corruption_changes_digest() {
        let whole = tpdu_chunk(true, false);
        let mut bad = whole.clone();
        let mut raw = bad.payload.to_vec();
        raw[3] ^= 0x40;
        bad.payload = raw.into();
        assert_ne!(digest_of(&[whole]), digest_of(&[bad]));
    }

    #[test]
    fn id_corruption_changes_digest() {
        let whole = tpdu_chunk(true, false);
        for field in ["t_id", "c_id", "x_id"] {
            let mut bad = whole.clone();
            match field {
                "t_id" => bad.header.tpdu.id ^= 1,
                "c_id" => bad.header.conn.id ^= 1,
                _ => bad.header.ext.id ^= 1,
            }
            assert_ne!(
                digest_of(std::slice::from_ref(&whole)),
                digest_of(&[bad]),
                "{field} corruption must change the code"
            );
        }
    }

    #[test]
    fn cst_and_xst_corruption_change_digest() {
        let whole = tpdu_chunk(true, false);
        let mut c_st = whole.clone();
        c_st.header.conn.st = true;
        assert_ne!(digest_of(std::slice::from_ref(&whole)), digest_of(&[c_st]));

        // X.ST flipped while T.ST is set: detected via the encoded pair
        // (the case Figure 6 is careful about).
        let mut x_st = whole.clone();
        x_st.header.ext.st = true;
        assert_ne!(digest_of(&[whole]), digest_of(&[x_st]));
    }

    #[test]
    fn multiple_external_pdus_encode_each_xid_once() {
        // Figure 6: a TPDU containing pieces of three external PDUs A, B, C.
        // A and B end inside the TPDU (X.ST set); C is cut by the TPDU end
        // (T.ST set). Each X.ID must be encoded exactly once, so comparing
        // against a manual encoding of that expectation must match.
        let a = byte_chunk(
            FramingTuple::new(1, 0, false),
            FramingTuple::new(9, 0, false),
            FramingTuple::new(0xAA, 5, true), // external PDU A ends
            b"aa",
        );
        let b = byte_chunk(
            FramingTuple::new(1, 2, false),
            FramingTuple::new(9, 2, false),
            FramingTuple::new(0xBB, 0, true), // external PDU B ends
            b"bbb",
        );
        let c = byte_chunk(
            FramingTuple::new(1, 5, false),
            FramingTuple::new(9, 5, true), // TPDU ends inside external C
            FramingTuple::new(0xCC, 0, false),
            b"cc",
        );
        let layout = InvariantLayout::default();
        let dig = digest_of(&[a, b, c]);

        let mut manual = Wsc2::new();
        manual.add_symbol(layout.tid_pos(), 9);
        manual.add_symbol(layout.cid_pos(), 1);
        // SIZE = 1: element with T.SN = e is one byte, left-aligned in its
        // own symbol at position e.
        for (e, byte) in [
            (0u64, b'a'),
            (1, b'a'),
            (2, b'b'),
            (3, b'b'),
            (4, b'b'),
            (5, b'c'),
            (6, b'c'),
        ] {
            manual.add_symbol(e, (byte as u32) << 24);
        }
        // A's pair at element T.SN=1, B's at T.SN=4, C's at T.SN=6.
        manual.add_symbol(layout.x_pair_pos(1), 0xAA);
        manual.add_symbol(layout.x_pair_pos(1) + 1, 1);
        manual.add_symbol(layout.x_pair_pos(4), 0xBB);
        manual.add_symbol(layout.x_pair_pos(4) + 1, 1);
        manual.add_symbol(layout.x_pair_pos(6), 0xCC);
        manual.add_symbol(layout.x_pair_pos(6) + 1, 0);
        assert_eq!(dig, manual.digest());
    }

    #[test]
    fn rejects_control_chunks_and_overflow() {
        let mut inv = TpduInvariant::with_default_layout();
        let mut c = tpdu_chunk(false, false);
        c.header.ty = ChunkType::ErrorDetection;
        c.header.len = 1;
        assert!(matches!(
            inv.absorb_chunk(&c.header, &c.payload[..1]),
            Err(InvariantError::NotData(_))
        ));

        let mut small = TpduInvariant::new(InvariantLayout::with_data_symbols(4)).unwrap();
        let d = tpdu_chunk(false, false); // 7 elements > 4 capacity
        assert!(matches!(
            small.absorb_chunk(&d.header, &d.payload),
            Err(InvariantError::DataOutOfRange { .. })
        ));
    }

    #[test]
    fn id_mismatch_between_chunks_detected() {
        let whole = tpdu_chunk(true, false);
        let (a, mut b) = split(&whole, 3).unwrap();
        b.header.tpdu.id ^= 0xFF;
        let mut inv = TpduInvariant::with_default_layout();
        inv.absorb_chunk(&a.header, &a.payload).unwrap();
        assert_eq!(
            inv.absorb_chunk(&b.header, &b.payload),
            Err(InvariantError::IdMismatch)
        );
    }

    #[test]
    fn layout_too_large_rejected() {
        assert!(matches!(
            TpduInvariant::new(InvariantLayout::with_data_symbols(1 << 30)),
            Err(InvariantError::LayoutTooLarge)
        ));
    }

    #[test]
    fn multi_byte_elements_use_scaled_positions() {
        // SIZE = 8 elements occupy two symbols each.
        let payload: Vec<u8> = (0..16).collect();
        let c = Chunk::new(
            chunks_core::chunk::ChunkHeader::data(
                8,
                2,
                FramingTuple::new(1, 0, false),
                FramingTuple::new(2, 0, true),
                FramingTuple::new(3, 0, false),
            ),
            payload.clone().into(),
        )
        .unwrap();
        let layout = InvariantLayout::default();
        let dig = digest_of(&[c]);
        let mut manual = Wsc2::new();
        manual.add_symbol(layout.tid_pos(), 2);
        manual.add_symbol(layout.cid_pos(), 1);
        manual.add_bytes(0, &payload);
        manual.add_symbol(layout.x_pair_pos(1), 3);
        manual.add_symbol(layout.x_pair_pos(1) + 1, 0);
        assert_eq!(dig, manual.digest());
    }

    #[test]
    fn fold_of_partials_matches_one_shot() {
        let whole = tpdu_chunk(true, true);
        let base = digest_of(std::slice::from_ref(&whole));
        let (a, rest) = split(&whole, 2).unwrap();
        let (b, c) = split(&rest, 3).unwrap();
        // Three independent accumulators, one chunk each, folded in every
        // order — the shape a sharded receive pipeline produces.
        let parts: Vec<TpduInvariant> = [&a, &b, &c]
            .iter()
            .map(|ch| {
                let mut inv = TpduInvariant::with_default_layout();
                inv.absorb_chunk(&ch.header, &ch.payload).unwrap();
                inv
            })
            .collect();
        for order in [[0, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]] {
            let mut acc = TpduInvariant::with_default_layout();
            for &i in &order {
                acc.fold(&parts[i]).unwrap();
            }
            assert_eq!(acc.digest(), base, "fold order {order:?}");
            assert!(acc.matches(base));
        }
    }

    #[test]
    fn fold_with_empty_partial_is_identity() {
        let whole = tpdu_chunk(true, false);
        let mut inv = TpduInvariant::with_default_layout();
        inv.absorb_chunk(&whole.header, &whole.payload).unwrap();
        let before = inv.digest();
        inv.fold(&TpduInvariant::with_default_layout()).unwrap();
        assert_eq!(inv.digest(), before);
        let mut empty = TpduInvariant::with_default_layout();
        empty.fold(&inv).unwrap();
        assert_eq!(empty.digest(), before);
    }

    #[test]
    fn fold_detects_id_disagreement() {
        let whole = tpdu_chunk(true, false);
        let (a, mut b) = split(&whole, 3).unwrap();
        b.header.conn.id ^= 0xF0;
        let mut pa = TpduInvariant::with_default_layout();
        pa.absorb_chunk(&a.header, &a.payload).unwrap();
        let mut pb = TpduInvariant::with_default_layout();
        pb.absorb_chunk(&b.header, &b.payload).unwrap();
        assert_eq!(pa.fold(&pb), Err(InvariantError::IdMismatch));
    }

    #[test]
    fn patch_elements_substitutes_data_in_place() {
        // Absorb a chunk, then patch elements [2, 5) to new bytes: the
        // digest must equal absorbing the patched payload directly — the
        // LastWins overlap-policy mechanism.
        let whole = tpdu_chunk(true, false);
        let mut inv = TpduInvariant::with_default_layout();
        inv.absorb_chunk(&whole.header, &whole.payload).unwrap();
        let old = &whole.payload[2..5];
        let new = b"XYZ";
        inv.patch_elements(whole.header.size, whole.header.tpdu.sn as u64 + 2, old, new);

        let mut patched = whole.clone();
        let mut raw = patched.payload.to_vec();
        raw[2..5].copy_from_slice(new);
        patched.payload = raw.into();
        assert_eq!(inv.digest(), digest_of(&[patched]));

        // Patching back restores the original digest (involution).
        inv.patch_elements(whole.header.size, whole.header.tpdu.sn as u64 + 2, new, old);
        assert_eq!(inv.digest(), digest_of(&[whole]));
    }

    #[test]
    fn patch_elements_handles_multi_symbol_elements() {
        let payload: Vec<u8> = (0..16).collect();
        let c = Chunk::new(
            chunks_core::chunk::ChunkHeader::data(
                8,
                2,
                FramingTuple::new(1, 0, false),
                FramingTuple::new(2, 0, true),
                FramingTuple::new(3, 0, false),
            ),
            payload.clone().into(),
        )
        .unwrap();
        let mut inv = TpduInvariant::with_default_layout();
        inv.absorb_chunk(&c.header, &c.payload).unwrap();
        let new = [0xEEu8; 8];
        inv.patch_elements(8, 1, &payload[8..16], &new);
        let mut raw = payload.clone();
        raw[8..16].copy_from_slice(&new);
        let patched = Chunk::new(c.header, raw.into()).unwrap();
        assert_eq!(inv.digest(), digest_of(&[patched]));
    }

    #[test]
    fn sender_helper_matches_incremental() {
        let whole = tpdu_chunk(true, false);
        let d1 = tpdu_digest(
            InvariantLayout::default(),
            [(&whole.header, &whole.payload[..])],
        )
        .unwrap();
        assert_eq!(d1, digest_of(&[whole]));
    }
}
