//! End-to-end error detection for chunks (§4 of the paper).
//!
//! Chunks are fragmented in the network, and chunk headers carry higher-layer
//! framing information, so a conventional CRC over the TPDU bytes would
//! change under fragmentation. The paper's solution has two parts:
//!
//! 1. **WSC-2** ([`Wsc2`], module [`code`]): a weighted sum code over
//!    GF(2^32) producing two 32-bit parities. Unlike a CRC it can be
//!    computed over **disordered** data, because both parities are sums —
//!    each symbol's contribution depends only on its own *position*, not on
//!    the order of processing.
//! 2. **The TPDU invariant** ([`TpduInvariant`], module [`invariant`],
//!    Figures 5 and 6): a canonical assignment of TPDU data and the
//!    fragmentation-*variant* header fields to positions in the error
//!    detection code space, chosen so the resulting code value is identical
//!    no matter how the TPDU was cut into chunks.
//!
//! Module [`compare`] provides CRC-32 and the Internet checksum as
//! comparators for the evaluation (experiment B4): the Internet checksum is
//! order-independent but weak; CRC-32 is strong but order-dependent.
//!
//! # Fast path vs. reference path
//!
//! The hot verification path is [`Wsc2Stream`] (module [`stream`]): it feeds
//! disordered `(position, symbols)` runs through the table-driven GF(2^32)
//! arithmetic of `chunks_gf`, caching the weight of the cursor position so
//! contiguous runs never recompute `alpha^position`. [`TpduInvariant`] is
//! built on it. The one-shot [`Wsc2`] API stays as the simple entry point,
//! and its `*_ref` methods ([`Wsc2::add_bytes_ref`], [`Wsc2::add_symbol_ref`])
//! preserve the seed bit-serial path as the oracle the property tests and
//! the `codes`/`invariant` benchmarks compare against.

#![deny(missing_docs)]

pub mod code;
pub mod compare;
pub mod invariant;
pub mod stream;

pub use code::{Wsc2, MAX_SYMBOLS};
pub use invariant::{InvariantError, InvariantLayout, TpduInvariant};
pub use stream::Wsc2Stream;
