//! Property test of the paper's central §4 claim: the end-to-end error
//! detection value is *invariant under chunk fragmentation*, for arbitrary
//! TPDUs cut at arbitrary points, absorbed in arbitrary order.

use bytes::Bytes;
use chunks_core::chunk::{Chunk, ChunkHeader};
use chunks_core::frag::split;
use chunks_core::label::FramingTuple;
use chunks_gf::Backend;
use chunks_wsc::{InvariantLayout, TpduInvariant, Wsc2, Wsc2Stream};
use proptest::prelude::*;

/// A whole TPDU as a single chunk with randomized labels and ST bits.
fn whole_tpdu() -> impl Strategy<Value = Chunk> {
    (
        1u16..=8,      // SIZE
        2u32..=48,     // LEN
        any::<u32>(),  // C.ID
        any::<u32>(),  // C.SN base
        any::<u32>(),  // T.ID
        any::<u32>(),  // X.ID
        any::<u32>(),  // X.SN base
        any::<bool>(), // C.ST
        any::<bool>(), // X.ST
        proptest::collection::vec(any::<u8>(), 8 * 48),
    )
        .prop_map(
            |(size, len, c_id, c_sn, t_id, x_id, x_sn, c_st, x_st, raw)| {
                let bytes = size as usize * len as usize;
                Chunk::new(
                    ChunkHeader::data(
                        size,
                        len,
                        FramingTuple::new(c_id, c_sn, c_st),
                        FramingTuple::new(t_id, 0, true),
                        FramingTuple::new(x_id, x_sn, x_st),
                    ),
                    Bytes::from(raw[..bytes].to_vec()),
                )
                .unwrap()
            },
        )
}

/// Recursively fragments a chunk at pseudo-random points driven by `cuts`.
fn fragment(chunk: Chunk, cuts: &[u8]) -> Vec<Chunk> {
    let mut pieces = vec![chunk];
    for &cut in cuts {
        // Pick the currently largest piece and split it.
        let (idx, len) = pieces
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.header.len))
            .max_by_key(|&(_, l)| l)
            .unwrap();
        if len < 2 {
            break;
        }
        let at = 1 + (cut as u32 % (len - 1));
        let target = pieces.remove(idx);
        let (a, b) = split(&target, at).unwrap();
        pieces.push(a);
        pieces.push(b);
    }
    pieces
}

fn digest_of(chunks: &[Chunk]) -> [u8; 8] {
    let mut inv = TpduInvariant::with_default_layout();
    for c in chunks {
        inv.absorb_chunk(&c.header, &c.payload).unwrap();
    }
    inv.digest()
}

proptest! {
    #[test]
    fn digest_invariant_under_fragmentation(
        whole in whole_tpdu(),
        cuts in proptest::collection::vec(any::<u8>(), 0..12),
        shuffle_seed in any::<u64>(),
    ) {
        let base = digest_of(std::slice::from_ref(&whole));
        let mut pieces = fragment(whole, &cuts);
        // Deterministic pseudo-shuffle.
        let n = pieces.len();
        for i in 0..n {
            let j = (shuffle_seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)
                % n as u64) as usize;
            pieces.swap(i, j);
        }
        prop_assert_eq!(digest_of(&pieces), base);
    }

    #[test]
    fn corrupted_fragment_changes_digest(
        whole in whole_tpdu(),
        cuts in proptest::collection::vec(any::<u8>(), 1..8),
        victim in any::<usize>(),
        bit in 0usize..8,
    ) {
        let base = digest_of(std::slice::from_ref(&whole));
        let mut pieces = fragment(whole, &cuts);
        let v = victim % pieces.len();
        let mut raw = pieces[v].payload.to_vec();
        let byte = raw.len() / 2;
        raw[byte] ^= 1 << bit;
        pieces[v].payload = raw.into();
        prop_assert_ne!(digest_of(&pieces), base);
    }

    #[test]
    fn wsc_order_independence(
        symbols in proptest::collection::vec((0u64..100_000, any::<u32>()), 1..64),
        seed in any::<u64>(),
    ) {
        // Deduplicate positions (duplicates model duplicated data, which
        // the receiver rejects before absorbing).
        let mut seen = std::collections::HashSet::new();
        let symbols: Vec<(u64, u32)> = symbols
            .into_iter()
            .filter(|(i, _)| seen.insert(*i))
            .collect();
        let mut fwd = Wsc2::new();
        for &(i, d) in &symbols {
            fwd.add_symbol(i, d);
        }
        let mut perm = symbols.clone();
        let n = perm.len();
        for i in 0..n {
            let j = (seed.wrapping_add((i as u64) * 2654435761) % n as u64) as usize;
            perm.swap(i, j);
        }
        let mut rev = Wsc2::new();
        for &(i, d) in perm.iter().rev() {
            rev.add_symbol(i, d);
        }
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn split_accumulators_combine(
        data in proptest::collection::vec(any::<u32>(), 2..128),
        cut_frac in 0.01f64..0.99,
    ) {
        let cut = ((data.len() as f64 * cut_frac) as usize).clamp(1, data.len() - 1);
        let mut whole = Wsc2::new();
        whole.add_symbols(0, &data);
        let mut left = Wsc2::new();
        left.add_symbols(0, &data[..cut]);
        let mut right = Wsc2::new();
        right.add_symbols(cut as u64, &data[cut..]);
        left.combine(&right);
        prop_assert_eq!(left, whole);
    }

    #[test]
    fn stream_folded_in_any_order_matches_one_shot(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        cuts in proptest::collection::vec(0.01f64..0.99, 0..6),
        seed in any::<u64>(),
    ) {
        // One-shot reference over the whole byte run.
        let mut one_shot = Wsc2::new();
        one_shot.add_bytes(0, &data);

        // Cut the run at symbol boundaries into disjoint pieces.
        let n_sym = Wsc2::symbols_for_bytes(data.len()) as usize;
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|f| ((n_sym as f64 * f) as usize).min(n_sym))
            .collect();
        bounds.push(0);
        bounds.push(n_sym);
        bounds.sort_unstable();
        bounds.dedup();

        // Accumulate each piece in its own stream, then fold the partial
        // states together in a seed-driven pseudo-random order.
        let mut parts: Vec<Wsc2Stream> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0] * 4, (w[1] * 4).min(data.len()));
                let mut s = Wsc2Stream::new();
                s.add_bytes(w[0] as u64, &data[lo..hi]);
                s
            })
            .collect();
        let n = parts.len();
        for i in 0..n {
            let j = (seed.wrapping_add((i as u64) * 2654435761) % n as u64) as usize;
            parts.swap(i, j);
        }
        let mut acc = Wsc2Stream::new();
        for p in &parts {
            acc.fold(p);
        }
        prop_assert_eq!(acc.finish(), one_shot);
    }

    #[test]
    fn stream_matches_wsc2_on_disordered_runs(
        runs in proptest::collection::vec(
            (0u64..10_000, proptest::collection::vec(any::<u8>(), 1..32)),
            1..24,
        ),
    ) {
        // Place each run on its own 8-symbol-aligned stride so runs never
        // overlap (duplicated positions model duplicated data, which the
        // receiver rejects before absorbing).
        let placed: Vec<(u64, &[u8])> = runs
            .iter()
            .enumerate()
            .map(|(k, (jitter, bytes))| {
                let slack = 8 - Wsc2::symbols_for_bytes(bytes.len()).min(7);
                ((k as u64) * 8 + jitter % slack, bytes.as_slice())
            })
            .collect();
        let mut one_shot = Wsc2::new();
        for &(start, bytes) in &placed {
            one_shot.add_bytes(start, bytes);
        }
        // The stream sees the same runs back to front: every run arrives at
        // a position *before* the cursor, exercising the reseat path.
        let mut stream = Wsc2Stream::new();
        for &(start, bytes) in placed.iter().rev() {
            stream.add_bytes(start, bytes);
        }
        prop_assert_eq!(stream.code(), one_shot);
    }

    #[test]
    fn fragmented_digest_identical_on_every_backend(
        whole in whole_tpdu(),
        cuts in proptest::collection::vec(any::<u8>(), 0..10),
    ) {
        // The invariant digest of a fragmented TPDU must not depend on
        // which GF(2^32) backend absorbed it: force each backend the CPU
        // supports in turn, absorb the same fragments, and require the
        // digest to match the whole-TPDU digest byte for byte.
        let base = digest_of(std::slice::from_ref(&whole));
        let pieces = fragment(whole, &cuts);
        let mut digests = Vec::new();
        for backend in Backend::supported() {
            Backend::force(Some(backend));
            digests.push((backend, digest_of(&pieces)));
        }
        Backend::force(None);
        for (backend, d) in digests {
            prop_assert_eq!(d, base, "backend {:?} diverged", backend);
        }
    }

    #[test]
    fn stream_fold_equals_batched_horner_on_every_backend(
        data in proptest::collection::vec(any::<u8>(), 1..600),
        cuts in proptest::collection::vec(0.01f64..0.99, 0..6),
        seed in any::<u64>(),
    ) {
        // `Wsc2Stream::fold` over random fragment splits — including the
        // disordered-runs path — equals one batched Horner pass over the
        // whole run, under every forced backend. The reference value comes
        // from the seed bit-serial arithmetic, so a backend that is wrong
        // *and* self-consistent still fails.
        let mut oracle = Wsc2::new();
        oracle.add_bytes_ref(0, &data);

        let n_sym = Wsc2::symbols_for_bytes(data.len()) as usize;
        let mut bounds: Vec<usize> = cuts
            .iter()
            .map(|f| ((n_sym as f64 * f) as usize).min(n_sym))
            .collect();
        bounds.push(0);
        bounds.push(n_sym);
        bounds.sort_unstable();
        bounds.dedup();

        let mut outcomes = Vec::new();
        for backend in Backend::supported() {
            Backend::force(Some(backend));
            // One-shot batched Horner over the whole run.
            let mut batched = Wsc2::new();
            batched.add_bytes(0, &data);
            // Streaming: disjoint pieces absorbed in a shuffled (usually
            // disordered) order into independent streams, then folded.
            let mut parts: Vec<Wsc2Stream> = bounds
                .windows(2)
                .map(|w| {
                    let (lo, hi) = (w[0] * 4, (w[1] * 4).min(data.len()));
                    let mut s = Wsc2Stream::new();
                    s.add_bytes(w[0] as u64, &data[lo..hi]);
                    s
                })
                .collect();
            let n = parts.len();
            for i in 0..n {
                let j = (seed.wrapping_add((i as u64) * 2654435761) % n as u64) as usize;
                parts.swap(i, j);
            }
            let mut acc = Wsc2Stream::new();
            for p in &parts {
                acc.fold(p);
            }
            outcomes.push((backend, batched, acc.finish()));
        }
        Backend::force(None);
        for (backend, batched, folded) in outcomes {
            prop_assert_eq!(batched, oracle, "batched vs oracle, backend {:?}", backend);
            prop_assert_eq!(folded, oracle, "stream fold vs oracle, backend {:?}", backend);
        }
    }
}

#[test]
fn custom_layout_invariance() {
    // Smaller layouts (cheaper in tests elsewhere) keep the property.
    let layout = InvariantLayout::with_data_symbols(256);
    let whole = Chunk::new(
        ChunkHeader::data(
            4,
            32,
            FramingTuple::new(7, 1000, false),
            FramingTuple::new(8, 0, true),
            FramingTuple::new(9, 500, true),
        ),
        Bytes::from((0u8..128).collect::<Vec<u8>>()),
    )
    .unwrap();
    let digest = |chunks: &[Chunk]| {
        let mut inv = TpduInvariant::new(layout).unwrap();
        for c in chunks {
            inv.absorb_chunk(&c.header, &c.payload).unwrap();
        }
        inv.digest()
    };
    let base = digest(std::slice::from_ref(&whole));
    let (a, b) = split(&whole, 13).unwrap();
    assert_eq!(digest(&[b, a]), base);
}
