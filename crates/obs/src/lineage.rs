//! Per-chunk lifecycle timelines ("lineage") assembled from recorded spans.
//!
//! A [`Lineage`] regroups a [`SpanStore`]'s flat record list by the paper's
//! `(C.ID, T.SN, X.SN)` label tuple: one [`ChunkLineage`] per chunk, its
//! stage entries in open order, plus the children a router split it into
//! (the Appendix C/D closure, as recorded parent→child links). On top of
//! the timeline it computes the **delay budget**: total virtual time spent
//! in each duration-bearing stage — the latency-attribution breakdown
//! `experiments lineage` exports to `BENCH_lineage.json`.
//!
//! Both exports are byte-stable: chunks sort by label tuple, entries keep
//! open order, and every number is an integer nanosecond count.

use std::fmt::Write;

use crate::event::Labels;
use crate::span::{SpanStore, Stage};

/// One stage entry on a chunk's timeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StageEntry {
    /// The lifecycle stage.
    pub stage: Stage,
    /// Virtual-clock open time.
    pub open_ns: u64,
    /// Virtual-clock close time; `None` for a span that never closed
    /// (e.g. a chunk dropped mid-hop).
    pub close_ns: Option<u64>,
}

/// The full recorded lifecycle of one chunk.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChunkLineage {
    /// The chunk's label tuple — the lineage key.
    pub labels: Labels,
    /// Stage entries, in span-open order.
    pub entries: Vec<StageEntry>,
    /// Labels of the chunks a router split this one into, in link order.
    pub children: Vec<Labels>,
}

/// Per-chunk timelines for a whole run, sorted by label tuple.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Lineage {
    /// One entry per distinct label tuple that opened at least one span.
    pub chunks: Vec<ChunkLineage>,
}

fn label_key(l: &Labels) -> (u32, u32, u32) {
    (l.conn_id, l.t_sn, l.x_sn)
}

impl Lineage {
    /// Assembles the lineage view from a span store.
    pub fn from_store(store: &SpanStore) -> Self {
        let mut chunks: Vec<ChunkLineage> = Vec::new();
        let mut at = std::collections::HashMap::new();
        for r in store.records() {
            let k = label_key(&r.id.labels);
            let idx = *at.entry(k).or_insert_with(|| {
                chunks.push(ChunkLineage {
                    labels: r.id.labels,
                    entries: Vec::new(),
                    children: Vec::new(),
                });
                chunks.len() - 1
            });
            chunks[idx].entries.push(StageEntry {
                stage: r.id.stage,
                open_ns: r.open_ns,
                close_ns: r.close_ns,
            });
        }
        for l in store.links() {
            let k = label_key(&l.parent);
            let idx = *at.entry(k).or_insert_with(|| {
                chunks.push(ChunkLineage {
                    labels: l.parent,
                    entries: Vec::new(),
                    children: Vec::new(),
                });
                chunks.len() - 1
            });
            chunks[idx].children.push(l.child);
        }
        chunks.sort_by_key(|c| label_key(&c.labels));
        Lineage { chunks }
    }

    /// Total closed-span virtual time per duration-bearing stage, as
    /// `(delay metric name, total ns, closed span count)` triples in
    /// lifecycle order. This is the run's delay budget.
    pub fn delay_budget(&self) -> Vec<(&'static str, u64, u64)> {
        let mut out = Vec::new();
        for stage in Stage::ALL {
            let Some(metric) = stage.delay_metric() else {
                continue;
            };
            let (mut total, mut count) = (0u64, 0u64);
            for c in &self.chunks {
                for e in &c.entries {
                    if e.stage == stage {
                        if let Some(close) = e.close_ns {
                            total += close.saturating_sub(e.open_ns);
                            count += 1;
                        }
                    }
                }
            }
            out.push((metric, total, count));
        }
        out
    }

    /// Exports the lineage as one JSON object, keys in fixed order, no
    /// floats — byte-stable across replays of a deterministic run.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"chunks\": [\n");
        for (i, c) in self.chunks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"cid\": {}, \"tsn\": {}, \"xsn\": {}, \"stages\": [",
                c.labels.conn_id, c.labels.t_sn, c.labels.x_sn
            );
            for (j, e) in c.entries.iter().enumerate() {
                let _ = write!(
                    out,
                    "{{\"stage\": \"{}\", \"open\": {}, \"close\": ",
                    e.stage.name(),
                    e.open_ns
                );
                match e.close_ns {
                    Some(cl) => {
                        let _ = write!(out, "{cl}");
                    }
                    None => out.push_str("null"),
                }
                out.push('}');
                if j + 1 < c.entries.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("], \"children\": [");
            for (j, ch) in c.children.iter().enumerate() {
                let _ = write!(out, "[{}, {}, {}]", ch.conn_id, ch.t_sn, ch.x_sn);
                if j + 1 < c.children.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("]}");
            if i + 1 < self.chunks.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"budget\": {");
        for (i, (metric, total, count)) in self.delay_budget().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{metric}\": {{\"total_ns\": {total}, \"spans\": {count}}}"
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders the lineage as a human-readable span tree: one block per
    /// chunk, stage lines in open order with millisecond timestamps and
    /// durations, split children indented beneath their parent.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for c in &self.chunks {
            let _ = writeln!(
                out,
                "chunk C.ID {} T.SN {} X.SN {}",
                c.labels.conn_id, c.labels.t_sn, c.labels.x_sn
            );
            for e in &c.entries {
                match e.close_ns {
                    Some(cl) => {
                        let _ = writeln!(
                            out,
                            "  {:>10.3} ms  {:<12} ({} ns)",
                            e.open_ns as f64 / 1e6,
                            e.stage.name(),
                            cl.saturating_sub(e.open_ns)
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  {:>10.3} ms  {:<12} (unclosed: dropped in flight)",
                            e.open_ns as f64 / 1e6,
                            e.stage.name()
                        );
                    }
                }
            }
            for ch in &c.children {
                let _ = writeln!(
                    out,
                    "    -> split child C.ID {} T.SN {} X.SN {}",
                    ch.conn_id, ch.t_sn, ch.x_sn
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn store() -> SpanStore {
        let mut s = SpanStore::new();
        let a = Labels::new(1, 0, 0);
        let b = Labels::new(1, 0, 4);
        s.open(0, SpanId::new(a, Stage::Emit));
        s.close(0, SpanId::new(a, Stage::Emit));
        s.open(10, SpanId::new(a, Stage::Hop));
        s.close(60, SpanId::new(a, Stage::Hop));
        s.link(60, a, b);
        s.open(60, SpanId::new(b, Stage::Hop));
        s.close(110, SpanId::new(b, Stage::Hop));
        s.open(110, SpanId::new(b, Stage::Hold));
        s
    }

    #[test]
    fn chunks_sort_by_label_tuple_and_keep_entry_order() {
        let l = Lineage::from_store(&store());
        assert_eq!(l.chunks.len(), 2);
        assert_eq!(l.chunks[0].labels, Labels::new(1, 0, 0));
        assert_eq!(l.chunks[0].entries[0].stage, Stage::Emit);
        assert_eq!(l.chunks[0].entries[1].stage, Stage::Hop);
        assert_eq!(l.chunks[0].children, vec![Labels::new(1, 0, 4)]);
    }

    #[test]
    fn delay_budget_sums_closed_duration_spans_only() {
        let l = Lineage::from_store(&store());
        let budget = l.delay_budget();
        let network = budget
            .iter()
            .find(|(m, _, _)| *m == "span.delay.network_ns")
            .unwrap();
        assert_eq!((network.1, network.2), (100, 2));
        let holding = budget
            .iter()
            .find(|(m, _, _)| *m == "span.delay.holding_ns")
            .unwrap();
        // The hold span never closed, so it attributes nothing.
        assert_eq!((holding.1, holding.2), (0, 0));
    }

    #[test]
    fn exports_are_byte_stable() {
        let (a, b) = (Lineage::from_store(&store()), Lineage::from_store(&store()));
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.render_text(), b.render_text());
        assert!(a.to_json().contains("\"close\": null"));
        assert!(a.render_text().contains("dropped in flight"));
        assert!(a.render_text().contains("split child"));
    }
}
