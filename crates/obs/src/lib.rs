//! Zero-dependency observability for the chunk receive path: monotonic
//! counters, fixed-bucket histograms, and a structured event trace — all
//! deterministic under a virtual clock.
//!
//! The crate is the substrate the rest of the workspace reports through.
//! Three properties shape the design:
//!
//! * **Zero dependencies, no I/O, no clocks.** Timestamps come from the
//!   caller's virtual clock, storage is flat arrays sized from a static
//!   catalogue, and export is plain `String`s. Two runs of the same seeded
//!   scenario therefore export byte-identical traces, which turns the
//!   observability layer itself into a determinism test.
//! * **One branch when disabled.** Instrumented layers hold an
//!   [`Arc<dyn ObsSink>`](ObsSink) and cache [`ObsSink::enabled`] once; with
//!   the default [`NullSink`] every instrumentation site reduces to a
//!   single `if` on a local bool, so byte-identical differential tests of
//!   the uninstrumented pipeline stay green.
//! * **A closed metric surface.** Every counter and histogram is declared
//!   in [`catalogue::CATALOGUE`] with its unit and incrementing code path;
//!   `docs/OBSERVABILITY.md` documents exactly that list and a test keeps
//!   the two in sync.
//!
//! # Example
//!
//! ```
//! use chunks_obs::{Event, Labels, ObsSink, RecordingSink};
//!
//! let sink = RecordingSink::shared();
//! // A layer records against the trait object...
//! sink.counter("transport.rx.chunks_accepted", 1);
//! sink.observe("vreasm.tracker.fragments", 3);
//! sink.event(1_000, Event::GroupDelivered { conn_id: 7, start: 0, bytes: 512 });
//!
//! // ...and the harness reads everything back.
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("transport.rx.chunks_accepted"), 1);
//! assert_eq!(
//!     sink.trace_json_lines(),
//!     "{\"t\": 1000, \"ev\": \"GroupDelivered\", \"cid\": 7, \"start\": 0, \"bytes\": 512}\n"
//! );
//! ```

#![deny(missing_docs)]

pub mod catalogue;
pub mod event;
pub mod flight;
pub mod health;
pub mod lineage;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod trace;

pub use catalogue::{Kind, Spec, CATALOGUE};
pub use event::{Event, Labels};
pub use flight::{FlightDump, FlightRing, DEFAULT_FLIGHT_CAPACITY};
pub use health::{HealthEvent, HealthReport, Watchdog, WatchdogConfig};
pub use lineage::{ChunkLineage, Lineage, StageEntry};
pub use metrics::{
    AtomicMetrics, HistogramSnapshot, HotCounter, LocalMetrics, Metrics, ShardMetrics, Snapshot,
};
pub use sink::{null, AlwaysOnSink, NullSink, ObsSink, RecordingSink, ShardSink};
pub use span::{SpanId, SpanLink, SpanRecord, SpanStore, Stage};
pub use trace::{TimedEvent, TraceRing, DEFAULT_TRACE_CAPACITY};
