//! Health snapshots and the watchdog: a periodic, virtual-clock-driven
//! aggregation of transport state with threshold rules that emit typed
//! [`HealthEvent`]s.
//!
//! The report is plain data filled in by whoever owns the state (`Session`,
//! `ParallelReceiver`, or an experiment driving a `ConnTable` directly); the
//! obs crate defines the shape and the rules so every surface degrades the
//! same way. Everything rides the virtual clock — two runs of the same
//! seeded scenario produce identical reports and identical events.

use std::fmt;

use crate::sink::ObsSink;

/// A point-in-time aggregation of transport health, on the virtual clock.
///
/// Fields default to zero/false; a producer fills in what it can see
/// (a serial `Session` knows its RTO state, a `ParallelReceiver` its queue
/// depths, a demux its table stats).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HealthReport {
    /// Virtual-clock time of the report.
    pub at_ns: u64,
    /// Live connections (1 for a single-connection session).
    pub live_conns: u64,
    /// Cumulative connection-table admissions.
    pub admissions: u64,
    /// Cumulative connection/group evictions.
    pub evictions: u64,
    /// Cumulative connection-table refusals.
    pub refusals: u64,
    /// True when the occupancy crossed the back-pressure threshold.
    pub under_pressure: bool,
    /// Bytes currently held/staged against the receive budget.
    pub held_bytes: u64,
    /// Cumulative bytes shed on budget exhaustion.
    pub shed_bytes: u64,
    /// Cumulative retransmission-timer fires.
    pub timer_fires: u64,
    /// Cumulative timer-driven retransmissions.
    pub timer_retransmits: u64,
    /// Current smoothed base RTO in nanoseconds.
    pub rto_base_ns: u64,
    /// Packets/work items currently queued (backlog or shard queues).
    pub queue_depth: u64,
    /// Cumulative TPDUs delivered verified.
    pub tpdus_delivered: u64,
    /// Cumulative TPDUs failed (ED mismatch, inconsistency, bad chunk).
    pub tpdus_failed: u64,
}

impl HealthReport {
    /// Renders the report as one byte-stable JSON object (integers and
    /// booleans only — no floats, no wall clock).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t\": {}, \"live_conns\": {}, \"admissions\": {}, \"evictions\": {}, \
             \"refusals\": {}, \"under_pressure\": {}, \"held_bytes\": {}, \"shed_bytes\": {}, \
             \"timer_fires\": {}, \"timer_retransmits\": {}, \"rto_base_ns\": {}, \
             \"queue_depth\": {}, \"tpdus_delivered\": {}, \"tpdus_failed\": {}}}",
            self.at_ns,
            self.live_conns,
            self.admissions,
            self.evictions,
            self.refusals,
            self.under_pressure,
            self.held_bytes,
            self.shed_bytes,
            self.timer_fires,
            self.timer_retransmits,
            self.rto_base_ns,
            self.queue_depth,
            self.tpdus_delivered,
            self.tpdus_failed,
        )
    }
}

/// A typed verdict from one watchdog threshold rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HealthEvent {
    /// Timers kept firing across a whole watchdog window with nothing
    /// delivered — the livelock signature the RTO layer exists to prevent.
    LivelockSuspected {
        /// Timer fires inside the window.
        fires: u64,
        /// TPDUs delivered inside the window (zero, by construction).
        deliveries: u64,
    },
    /// Evictions inside one watchdog window crossed the storm threshold.
    EvictionStorm {
        /// Evictions inside the window.
        evictions: u64,
        /// The window length in virtual nanoseconds.
        window_ns: u64,
    },
    /// The table reported `under_pressure` for N consecutive reports — the
    /// pressure never cleared.
    PressureStuck {
        /// Consecutive pressured reports.
        reports: u32,
    },
}

impl HealthEvent {
    /// The event's stable name, as used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            HealthEvent::LivelockSuspected { .. } => "LivelockSuspected",
            HealthEvent::EvictionStorm { .. } => "EvictionStorm",
            HealthEvent::PressureStuck { .. } => "PressureStuck",
        }
    }

    /// Renders the event as one byte-stable JSON object.
    pub fn to_json(&self) -> String {
        match self {
            HealthEvent::LivelockSuspected { fires, deliveries } => format!(
                "{{\"health\": \"LivelockSuspected\", \"fires\": {fires}, \"deliveries\": {deliveries}}}"
            ),
            HealthEvent::EvictionStorm {
                evictions,
                window_ns,
            } => format!(
                "{{\"health\": \"EvictionStorm\", \"evictions\": {evictions}, \"window_ns\": {window_ns}}}"
            ),
            HealthEvent::PressureStuck { reports } => {
                format!("{{\"health\": \"PressureStuck\", \"reports\": {reports}}}")
            }
        }
    }
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEvent::LivelockSuspected { fires, deliveries } => write!(
                f,
                "livelock suspected: {fires} timer fires, {deliveries} deliveries in window"
            ),
            HealthEvent::EvictionStorm {
                evictions,
                window_ns,
            } => write!(f, "eviction storm: {evictions} evictions in {window_ns} ns"),
            HealthEvent::PressureStuck { reports } => {
                write!(f, "pressure stuck: under_pressure for {reports} reports")
            }
        }
    }
}

/// Watchdog thresholds and cadence.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Virtual nanoseconds between reports.
    pub interval_ns: u64,
    /// Timer fires (with zero deliveries) in one window that mean livelock.
    pub livelock_fires: u64,
    /// Evictions in one window that mean a storm.
    pub storm_evictions: u64,
    /// Consecutive pressured reports that mean the pressure is stuck.
    pub stuck_reports: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval_ns: 10_000_000, // 10 virtual ms
            livelock_fires: 3,
            storm_evictions: 8,
            stuck_reports: 3,
        }
    }
}

/// The watchdog: owns the previous report and the threshold rules. Call
/// [`Watchdog::due`] cheaply on the hot path; build a report and call
/// [`Watchdog::tick`] only when it says so.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    last_tick_ns: Option<u64>,
    prev: Option<HealthReport>,
    pressure_streak: u32,
    /// Reports aggregated so far.
    reports: u64,
}

impl Watchdog {
    /// Creates a watchdog with `cfg` thresholds.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            last_tick_ns: None,
            prev: None,
            pressure_streak: 0,
            reports: 0,
        }
    }

    /// The configured cadence and thresholds.
    pub fn config(&self) -> WatchdogConfig {
        self.cfg
    }

    /// Reports aggregated so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// True when `now` is at least one interval past the previous tick
    /// (always true before the first tick).
    pub fn due(&self, now: u64) -> bool {
        match self.last_tick_ns {
            None => true,
            Some(last) => now.saturating_sub(last) >= self.cfg.interval_ns,
        }
    }

    /// Consumes one report: applies every threshold rule against the
    /// previous report's window and returns the events that fired. Counts
    /// `transport.health.reports`/`transport.health.events` on `sink` and
    /// raises the `"eviction-storm"` degradation trigger on a storm.
    pub fn tick(&mut self, report: &HealthReport, sink: &dyn ObsSink) -> Vec<HealthEvent> {
        self.last_tick_ns = Some(report.at_ns);
        self.reports += 1;
        sink.counter("transport.health.reports", 1);
        let mut events = Vec::new();
        if let Some(prev) = self.prev {
            let window_ns = report.at_ns.saturating_sub(prev.at_ns);
            let fires = report.timer_fires.saturating_sub(prev.timer_fires);
            let deliveries = report.tpdus_delivered.saturating_sub(prev.tpdus_delivered);
            if fires >= self.cfg.livelock_fires && deliveries == 0 {
                events.push(HealthEvent::LivelockSuspected { fires, deliveries });
            }
            let evictions = report.evictions.saturating_sub(prev.evictions);
            if evictions >= self.cfg.storm_evictions {
                events.push(HealthEvent::EvictionStorm {
                    evictions,
                    window_ns,
                });
                sink.degraded(report.at_ns, "eviction-storm", 0);
            }
        }
        if report.under_pressure {
            self.pressure_streak += 1;
            if self.pressure_streak == self.cfg.stuck_reports {
                events.push(HealthEvent::PressureStuck {
                    reports: self.pressure_streak,
                });
            }
        } else {
            self.pressure_streak = 0;
        }
        if !events.is_empty() {
            sink.counter("transport.health.events", events.len() as u64);
        }
        self.prev = Some(*report);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    fn report(at_ns: u64) -> HealthReport {
        HealthReport {
            at_ns,
            live_conns: 1,
            ..HealthReport::default()
        }
    }

    #[test]
    fn due_follows_the_interval() {
        let w = Watchdog::new(WatchdogConfig {
            interval_ns: 100,
            ..WatchdogConfig::default()
        });
        assert!(w.due(0));
        let mut w = w;
        let sink = RecordingSink::shared();
        w.tick(&report(0), &*sink);
        assert!(!w.due(50));
        assert!(w.due(100));
    }

    #[test]
    fn livelock_rule_needs_fires_without_deliveries() {
        let mut w = Watchdog::new(WatchdogConfig {
            interval_ns: 10,
            livelock_fires: 3,
            ..WatchdogConfig::default()
        });
        let sink = RecordingSink::shared();
        w.tick(&report(0), &*sink);
        // Fires with deliveries: healthy retransmission, no event.
        let mut r = report(10);
        r.timer_fires = 5;
        r.tpdus_delivered = 2;
        assert!(w.tick(&r, &*sink).is_empty());
        // More fires, nothing new delivered: livelock suspicion.
        let mut r2 = report(20);
        r2.timer_fires = 9;
        r2.tpdus_delivered = 2;
        let evs = w.tick(&r2, &*sink);
        assert_eq!(
            evs,
            vec![HealthEvent::LivelockSuspected {
                fires: 4,
                deliveries: 0
            }]
        );
        assert_eq!(sink.snapshot().counter("transport.health.reports"), 3);
        assert_eq!(sink.snapshot().counter("transport.health.events"), 1);
    }

    #[test]
    fn storm_rule_fires_the_degradation_trigger() {
        let mut w = Watchdog::new(WatchdogConfig {
            interval_ns: 10,
            storm_evictions: 4,
            ..WatchdogConfig::default()
        });
        let sink = RecordingSink::shared();
        w.tick(&report(0), &*sink);
        let mut r = report(10);
        r.evictions = 6;
        let evs = w.tick(&r, &*sink);
        assert_eq!(
            evs,
            vec![HealthEvent::EvictionStorm {
                evictions: 6,
                window_ns: 10
            }]
        );
        assert_eq!(sink.snapshot().counter("obs.flight.triggers"), 1);
    }

    #[test]
    fn pressure_stuck_fires_once_per_streak() {
        let mut w = Watchdog::new(WatchdogConfig {
            interval_ns: 10,
            stuck_reports: 2,
            ..WatchdogConfig::default()
        });
        let sink = RecordingSink::shared();
        let mut pressured = report(0);
        pressured.under_pressure = true;
        assert!(w.tick(&pressured, &*sink).is_empty());
        pressured.at_ns = 10;
        assert_eq!(
            w.tick(&pressured, &*sink),
            vec![HealthEvent::PressureStuck { reports: 2 }]
        );
        // The streak continues but the event does not repeat.
        pressured.at_ns = 20;
        assert!(w.tick(&pressured, &*sink).is_empty());
        // Clearing and re-crossing re-arms the rule.
        let mut clear = report(30);
        clear.under_pressure = false;
        w.tick(&clear, &*sink);
        pressured.at_ns = 40;
        assert!(w.tick(&pressured, &*sink).is_empty());
        pressured.at_ns = 50;
        assert_eq!(
            w.tick(&pressured, &*sink),
            vec![HealthEvent::PressureStuck { reports: 2 }]
        );
    }

    #[test]
    fn report_and_event_json_are_stable() {
        let mut r = report(42);
        r.timer_fires = 3;
        assert!(r.to_json().starts_with("{\"t\": 42, \"live_conns\": 1,"));
        assert_eq!(
            HealthEvent::PressureStuck { reports: 3 }.to_json(),
            "{\"health\": \"PressureStuck\", \"reports\": 3}"
        );
        assert_eq!(
            HealthEvent::EvictionStorm {
                evictions: 9,
                window_ns: 10
            }
            .name(),
            "EvictionStorm"
        );
    }
}
