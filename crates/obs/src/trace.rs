//! Bounded event-trace ring buffer with JSON-lines export and a compact
//! text renderer.
//!
//! Timestamps are whatever virtual clock the caller passes in — the ring
//! never reads a wall clock, which is what makes two runs of the same seeded
//! scenario export byte-identical traces.

use std::collections::VecDeque;

use crate::event::Event;

/// Default event capacity of a [`TraceRing`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// An event stamped with the caller's virtual-clock time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimedEvent {
    /// Virtual-clock nanoseconds at which the event was recorded.
    pub at_ns: u64,
    /// The event itself.
    pub event: Event,
}

/// A bounded ring of [`TimedEvent`]s: pushing past capacity drops the oldest
/// event and counts the loss, so a long run keeps its tail (where verdicts
/// live) and reports exactly how much head it shed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceRing {
    cap: usize,
    events: VecDeque<TimedEvent>,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            // Pre-allocate at most the default capacity; larger rings grow
            // on demand rather than reserving their full bound up front.
            events: VecDeque::with_capacity(cap.clamp(1, DEFAULT_TRACE_CAPACITY)),
            dropped: 0,
        }
    }

    /// Records `event` at virtual time `at_ns`.
    pub fn push(&mut self, at_ns: u64, event: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TimedEvent { at_ns, event });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event has been recorded (and none dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    /// Events evicted to make room (0 until the ring wraps).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Copies the held events out, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.events.iter().copied().collect()
    }

    /// Exports the trace as JSON lines: one `{"t": ns, "ev": ..., ...}`
    /// object per line, oldest first. Deterministic workloads export
    /// byte-identical strings across runs.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for te in &self.events {
            out.push_str(&format!("{{\"t\": {}, ", te.at_ns));
            te.event.json_fields(&mut out);
            out.push_str("}\n");
        }
        out
    }

    /// Renders the trace as aligned human-readable lines, one event each,
    /// with millisecond virtual timestamps.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "  ... {} earlier events dropped (ring capacity {})\n",
                self.dropped, self.cap
            ));
        }
        for te in &self.events {
            out.push_str(&format!(
                "  {:>10.3} ms  {}\n",
                te.at_ns as f64 / 1e6,
                te.event.render_text()
            ));
        }
        out
    }
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Labels;

    fn ev(n: u32) -> Event {
        Event::GroupDelivered {
            conn_id: 1,
            start: n,
            bytes: 8,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = TraceRing::new(2);
        r.push(10, ev(0));
        r.push(20, ev(1));
        r.push(30, ev(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let held: Vec<u64> = r.iter().map(|t| t.at_ns).collect();
        assert_eq!(held, vec![20, 30]);
        assert!(r.render_text().contains("1 earlier events dropped"));
    }

    #[test]
    fn json_lines_are_one_object_per_event() {
        let mut r = TraceRing::default();
        r.push(5, ev(0));
        r.push(
            7,
            Event::ChunkRejected {
                labels: Labels::new(3, 0, 9),
                reason: "truncated",
            },
        );
        let exported = r.to_json_lines();
        let lines: Vec<&str> = exported.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\": 5, \"ev\": \"GroupDelivered\", \"cid\": 1, \"start\": 0, \"bytes\": 8}"
        );
        assert!(lines[1].contains("\"reason\": \"truncated\""));
    }

    #[test]
    fn identical_pushes_export_identically() {
        let mut a = TraceRing::default();
        let mut b = TraceRing::default();
        for t in 0..100u64 {
            a.push(t, ev(t as u32));
            b.push(t, ev(t as u32));
        }
        assert_eq!(a.to_json_lines(), b.to_json_lines());
        assert_eq!(a, b);
    }
}
