//! The metrics registry: counters and fixed-bucket histograms over a flat
//! cell array, with an atomic backend for cross-thread recording and a
//! `Cell`-based backend for single-threaded use.
//!
//! Layout is fixed at construction from the [`crate::catalogue::CATALOGUE`]:
//! a counter owns one cell; a histogram owns [`BUCKETS`] bucket cells plus a
//! count cell and a sum cell. All updates are relaxed atomic adds (or plain
//! adds on the local backend) — there is no locking, no allocation after
//! construction, and no clock access, so a registry driven by a
//! deterministic workload snapshots identically on every run.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::catalogue::{self, Kind, Spec, CATALOGUE};

/// Bucket count of every histogram: value `v` falls into bucket
/// `min(63 - leading_zeros(max(v, 1)), BUCKETS - 1)`, i.e. power-of-two
/// buckets `[2^i, 2^(i+1))` with the final bucket absorbing the tail.
pub const BUCKETS: usize = 32;

/// Storage backend for a [`Metrics`] registry: a fixed array of u64 cells.
pub trait Cells {
    /// Allocates `len` zeroed cells.
    fn alloc(len: usize) -> Self;
    /// Adds `delta` to cell `slot`.
    fn add(&self, slot: usize, delta: u64);
    /// Reads cell `slot`.
    fn get(&self, slot: usize) -> u64;
    /// Reads cell `slot` and resets it to zero (the drain primitive).
    fn take(&self, slot: usize) -> u64;
    /// Visits every nonzero cell in `0..len`, zeroing as it goes. The
    /// default walks each cell; backends that track occupancy override it
    /// to skip untouched cells wholesale (the barrier-drain fast path).
    fn drain_each(&self, len: usize, f: &mut dyn FnMut(usize, u64)) {
        for slot in 0..len {
            let v = self.take(slot);
            if v != 0 {
                f(slot, v);
            }
        }
    }
}

/// Lock-free backend: relaxed atomic adds, shareable across threads.
#[derive(Debug)]
pub struct AtomicCells(Box<[AtomicU64]>);

impl Cells for AtomicCells {
    fn alloc(len: usize) -> Self {
        AtomicCells((0..len).map(|_| AtomicU64::new(0)).collect())
    }

    fn add(&self, slot: usize, delta: u64) {
        self.0[slot].fetch_add(delta, Ordering::Relaxed);
    }

    fn get(&self, slot: usize) -> u64 {
        self.0[slot].load(Ordering::Relaxed)
    }

    fn take(&self, slot: usize) -> u64 {
        self.0[slot].swap(0, Ordering::Relaxed)
    }
}

/// Single-threaded backend: plain `Cell` adds, `!Sync` by construction.
#[derive(Debug)]
pub struct LocalCells(Box<[Cell<u64>]>);

impl Cells for LocalCells {
    fn alloc(len: usize) -> Self {
        LocalCells((0..len).map(|_| Cell::new(0)).collect())
    }

    fn add(&self, slot: usize, delta: u64) {
        let c = &self.0[slot];
        c.set(c.get().wrapping_add(delta));
    }

    fn get(&self, slot: usize) -> u64 {
        self.0[slot].get()
    }

    fn take(&self, slot: usize) -> u64 {
        self.0[slot].replace(0)
    }
}

/// Sharded hot-path backend: `AtomicU64` storage for `Sync`/`Send`, but
/// **owner-writes** updates — `add` is a plain load + store (no lock-prefix
/// read-modify-write), so a single writer pays scalar-add cost while any
/// thread may read. Exactly one thread may call `add` at a time (the shard's
/// owner); `take`/`drain_each` are only safe at barriers where the owner is
/// quiescent, which is when [`crate::ObsSink::flush`] runs.
///
/// Alongside the cells the shard keeps a dirty-word bitmap (one bit per
/// cell, owner-written like the cells themselves). A hot path touches a
/// handful of the catalogue's ~1300 cells between barriers; the bitmap lets
/// the barrier drain skip the untouched rest at one load per 64 cells
/// instead of one load per cell.
#[derive(Debug)]
pub struct ShardCells {
    cells: Box<[AtomicU64]>,
    dirty: Box<[AtomicU64]>,
}

impl Cells for ShardCells {
    fn alloc(len: usize) -> Self {
        ShardCells {
            cells: (0..len).map(|_| AtomicU64::new(0)).collect(),
            dirty: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn add(&self, slot: usize, delta: u64) {
        let c = &self.cells[slot];
        c.store(
            c.load(Ordering::Relaxed).wrapping_add(delta),
            Ordering::Relaxed,
        );
        let w = &self.dirty[slot >> 6];
        w.store(
            w.load(Ordering::Relaxed) | 1 << (slot & 63),
            Ordering::Relaxed,
        );
    }

    fn get(&self, slot: usize) -> u64 {
        self.cells[slot].load(Ordering::Relaxed)
    }

    fn take(&self, slot: usize) -> u64 {
        let v = self.cells[slot].load(Ordering::Relaxed);
        // Almost every cell is zero almost every time — skipping the store
        // keeps a cold take at one load. The dirty bit stays set until the
        // next drain_each, which clears whole words; a stale bit costs that
        // drain one extra cell load, never correctness.
        if v != 0 {
            self.cells[slot].store(0, Ordering::Relaxed);
        }
        v
    }

    fn drain_each(&self, len: usize, f: &mut dyn FnMut(usize, u64)) {
        for (wi, word) in self.dirty.iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            if bits == 0 {
                continue;
            }
            word.store(0, Ordering::Relaxed);
            while bits != 0 {
                let slot = (wi << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if slot >= len {
                    break;
                }
                let v = self.cells[slot].swap(0, Ordering::Relaxed);
                if v != 0 {
                    f(slot, v);
                }
            }
        }
    }
}

/// A registry of every catalogued metric over backend `C`.
#[derive(Debug)]
pub struct Metrics<C: Cells> {
    specs: &'static [Spec],
    /// Cell offset of each spec, parallel to `specs`.
    base: Vec<usize>,
    /// Total number of cells (the layout length), fixed at construction.
    total_cells: usize,
    cells: C,
}

/// The cross-thread registry used by the recording sink.
pub type AtomicMetrics = Metrics<AtomicCells>;

/// The single-threaded registry.
pub type LocalMetrics = Metrics<LocalCells>;

/// A per-worker/per-receiver counter block: owner-writes cells over the
/// full catalogue, drained into a root registry at pipeline barriers.
pub type ShardMetrics = Metrics<ShardCells>;

fn bucket_of(value: u64) -> usize {
    let b = 63 - value.max(1).leading_zeros() as usize;
    b.min(BUCKETS - 1)
}

impl<C: Cells> Metrics<C> {
    /// Creates a registry over the full [`CATALOGUE`].
    pub fn new() -> Self {
        Self::with_specs(CATALOGUE)
    }

    /// Creates a registry over an explicit (sorted) spec list.
    pub fn with_specs(specs: &'static [Spec]) -> Self {
        let mut base = Vec::with_capacity(specs.len());
        let mut at = 0;
        for s in specs {
            base.push(at);
            at += match s.kind {
                Kind::Counter => 1,
                Kind::Histogram => BUCKETS + 2, // buckets, count, sum
            };
        }
        Metrics {
            specs,
            base,
            total_cells: at,
            cells: C::alloc(at),
        }
    }

    /// Moves every cell of this registry into `dst` (same spec list
    /// required), zeroing this one. Allocation-free. Only safe when no other
    /// thread is concurrently writing this registry — the caller provides
    /// the barrier (the sharded backend's `add` is not atomic against a
    /// concurrent `take`).
    pub fn drain_into<D: Cells>(&self, dst: &Metrics<D>) {
        assert!(
            std::ptr::eq(self.specs, dst.specs),
            "drain_into requires registries over the same spec list"
        );
        self.cells
            .drain_each(self.total_cells, &mut |slot, v| dst.cells.add(slot, v));
    }

    /// Adds every cell of this registry into `dst` without zeroing (the
    /// live-read fold used by snapshots).
    pub fn fold_into<D: Cells>(&self, dst: &Metrics<D>) {
        assert!(
            std::ptr::eq(self.specs, dst.specs),
            "fold_into requires registries over the same spec list"
        );
        for slot in 0..self.total_cells {
            let v = self.cells.get(slot);
            if v != 0 {
                dst.cells.add(slot, v);
            }
        }
    }

    fn slot(&self, name: &str) -> Option<usize> {
        if std::ptr::eq(self.specs, CATALOGUE) {
            catalogue::lookup(name)
        } else {
            self.specs.binary_search_by(|s| s.name.cmp(name)).ok()
        }
    }

    /// The cell index of counter `name`, for pre-resolved hot handles.
    pub(crate) fn counter_base(&self, name: &str) -> Option<usize> {
        let i = self.slot(name)?;
        (self.specs[i].kind == Kind::Counter).then(|| self.base[i])
    }

    /// Adds `delta` straight to an already-resolved cell (see
    /// [`HotCounter`]) — no name lookup, no kind check.
    pub(crate) fn add_cell(&self, cell: usize, delta: u64) {
        self.cells.add(cell, delta);
    }

    /// Adds `delta` to the counter `name`. Unknown names are ignored (the
    /// catalogue is the contract; a typo shows up in the doc-sync test, not
    /// as a panic on the hot path).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(i) = self.slot(name) {
            if self.specs[i].kind == Kind::Counter {
                self.cells.add(self.base[i], delta);
            }
        }
    }

    /// Records `value` into the histogram `name`. Unknown names are ignored.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(i) = self.slot(name) {
            if self.specs[i].kind == Kind::Histogram {
                let b = self.base[i];
                self.cells.add(b + bucket_of(value), 1);
                self.cells.add(b + BUCKETS, 1); // count
                self.cells.add(b + BUCKETS + 1, value); // sum
            }
        }
    }

    /// Reads a counter's current value (0 for unknown or histogram names).
    pub fn counter(&self, name: &str) -> u64 {
        match self.slot(name) {
            Some(i) if self.specs[i].kind == Kind::Counter => self.cells.get(self.base[i]),
            _ => 0,
        }
    }

    /// Snapshots every metric. The snapshot is plain data: comparable,
    /// renderable, and detached from the live cells.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = Vec::new();
        let mut histograms = Vec::new();
        for (i, s) in self.specs.iter().enumerate() {
            let b = self.base[i];
            match s.kind {
                Kind::Counter => counters.push((s.name.to_string(), self.cells.get(b))),
                Kind::Histogram => {
                    let buckets: Vec<u64> = (0..BUCKETS).map(|k| self.cells.get(b + k)).collect();
                    histograms.push(HistogramSnapshot {
                        name: s.name.to_string(),
                        count: self.cells.get(b + BUCKETS),
                        sum: self.cells.get(b + BUCKETS + 1),
                        buckets,
                    });
                }
            }
        }
        Snapshot {
            counters,
            histograms,
        }
    }
}

impl<C: Cells> Default for Metrics<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Catalogue name.
    pub name: String,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts; bucket `i` covers `[2^i, 2^(i+1))`
    /// (bucket 0 also holds zero, the last bucket absorbs the tail).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as the **inclusive upper bound of the
    /// bucket** holding the rank-`ceil(q·count)` observation — an integer,
    /// so quantile reports are byte-stable. Bucket `i` reports `2^(i+1)-1`;
    /// the tail bucket reports `u64::MAX`. 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-indexed: ceil(q * count).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The final bucket absorbs the tail and has no finite bound.
                return if i + 1 >= self.buckets.len() || i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        // count > 0 guarantees some bucket is nonzero; unreachable in
        // practice, but a truncated bucket vector lands here.
        u64::MAX
    }

    /// Median upper bound (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound (see [`Self::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound (see [`Self::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` for every catalogued counter, in catalogue order.
    pub counters: Vec<(String, u64)>,
    /// Every catalogued histogram, in catalogue order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The counters that actually fired, preserving catalogue order.
    pub fn nonzero_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter(|(_, v)| *v != 0)
            .cloned()
            .collect()
    }

    /// Looks up one counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up one histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Renders the nonzero part of the snapshot as a compact JSON object:
    /// counters as `"name": n`, histograms as
    /// `"name": {"count": c, "sum": s, "mean": m}`.
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        for (n, v) in self.nonzero_counters() {
            parts.push(format!("\"{n}\": {v}"));
        }
        for h in self.histograms.iter().filter(|h| h.count != 0) {
            parts.push(format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}}}",
                h.name,
                h.count,
                h.sum,
                h.mean()
            ));
        }
        format!("{{{}}}", parts.join(", "))
    }

    /// Renders the nonzero part of the snapshot as aligned text lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (n, v) in self.nonzero_counters() {
            out.push_str(&format!("  {n:<40} {v}\n"));
        }
        for h in self.histograms.iter().filter(|h| h.count != 0) {
            out.push_str(&format!(
                "  {:<40} count {} sum {} mean {:.1}\n",
                h.name,
                h.count,
                h.sum,
                h.mean()
            ));
        }
        out
    }
}

/// A counter whose label→cell resolution happened **once**, at
/// [`crate::ObsSink::hot_counter`] time. This is the paper's data-labelling
/// discipline applied to the registry itself: the hot path must not re-derive
/// where a label's data lives on every update, so a resolved handle adds
/// straight to the owner's shard cell (two plain stores), while an
/// unresolved one falls back to the name-based [`crate::ObsSink::counter`]
/// call — identical semantics either way.
#[derive(Debug, Clone)]
pub struct HotCounter {
    name: &'static str,
    cell: Option<(Arc<ShardMetrics>, usize)>,
}

impl HotCounter {
    /// A handle that resolves nothing and always falls back to the
    /// name-based sink call. What [`crate::ObsSink::hot_counter`]'s default
    /// returns, and the right initial value before a sink is installed.
    pub fn unresolved(name: &'static str) -> Self {
        HotCounter { name, cell: None }
    }

    /// A handle bound to `cell` of `block` (the resolver's side).
    pub(crate) fn resolved(name: &'static str, block: Arc<ShardMetrics>, cell: usize) -> Self {
        HotCounter {
            name,
            cell: Some((block, cell)),
        }
    }

    /// The catalogued name this handle stands for.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// True when `add` hits a pre-resolved shard cell rather than the
    /// name-based fallback.
    pub fn is_resolved(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds `delta`: straight to the resolved shard cell, or through
    /// `sink.counter(name, delta)` when unresolved.
    #[inline]
    pub fn add(&self, sink: &dyn crate::ObsSink, delta: u64) {
        match &self.cell {
            Some((block, cell)) => block.add_cell(*cell, delta),
            None => sink.counter(self.name, delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let m = LocalMetrics::new();
        // 100 observations: 50 land in bucket 6 ([64,128)), 40 in bucket 9
        // ([512,1024)), 10 in bucket 13 ([8192,16384)).
        for _ in 0..50 {
            m.observe("span.delay.network_ns", 100);
        }
        for _ in 0..40 {
            m.observe("span.delay.network_ns", 600);
        }
        for _ in 0..10 {
            m.observe("span.delay.network_ns", 9000);
        }
        let s = m.snapshot();
        let h = s.histogram("span.delay.network_ns").unwrap();
        assert_eq!(h.count, 100);
        // rank 50 is the last observation of bucket 6 -> bound 127.
        assert_eq!(h.p50(), 127);
        // rank 90 is the last observation of bucket 9 -> bound 1023.
        assert_eq!(h.p90(), 1023);
        // rank 99 lands in bucket 13 -> bound 16383.
        assert_eq!(h.p99(), 16383);
        assert_eq!(h.quantile(1.0), 16383);
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramSnapshot {
            name: "x".into(),
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKETS],
        };
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);

        // A single observation answers every quantile.
        let m = LocalMetrics::new();
        m.observe("span.delay.verify_ns", 5);
        let s = m.snapshot();
        let h = s.histogram("span.delay.verify_ns").unwrap();
        assert_eq!((h.p50(), h.p90(), h.p99()), (7, 7, 7)); // bucket 2 = [4,8)

        // Bucket-boundary values: 1 is bucket 0 (bound 1), 2 is bucket 1
        // (bound 3).
        let m = LocalMetrics::new();
        m.observe("span.delay.holding_ns", 1);
        m.observe("span.delay.holding_ns", 2);
        let s = m.snapshot();
        let h = s.histogram("span.delay.holding_ns").unwrap();
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 3);

        // The tail bucket is unbounded.
        let m = LocalMetrics::new();
        m.observe("span.delay.repair_ns", u64::MAX);
        let s = m.snapshot();
        assert_eq!(s.histogram("span.delay.repair_ns").unwrap().p50(), u64::MAX);
    }

    #[test]
    fn atomic_and_local_backends_agree() {
        let a = AtomicMetrics::new();
        let l = LocalMetrics::new();
        for (name, v) in [
            ("transport.rx.chunks_accepted", 3),
            ("transport.rx.data_touches", 4096),
            ("wsc.verify_pass", 1),
        ] {
            a.add(name, v);
            l.add(name, v);
        }
        for (name, v) in [("vreasm.tracker.fragments", 5), ("wsc.runs_per_tpdu", 130)] {
            a.observe(name, v);
            l.observe(name, v);
        }
        assert_eq!(a.snapshot(), l.snapshot());
        assert_eq!(a.counter("transport.rx.chunks_accepted"), 3);
    }

    #[test]
    fn shard_backend_agrees_and_drains_cleanly() {
        let shard = ShardMetrics::new();
        let root = AtomicMetrics::new();
        shard.add("transport.rx.chunks_accepted", 5);
        shard.observe("wsc.runs_per_tpdu", 64);
        shard.observe("wsc.runs_per_tpdu", 200);

        // fold_into reads without zeroing.
        let fold = AtomicMetrics::new();
        shard.fold_into(&fold);
        assert_eq!(fold.counter("transport.rx.chunks_accepted"), 5);
        assert_eq!(shard.counter("transport.rx.chunks_accepted"), 5);

        // drain_into moves and zeroes; a second drain is a no-op.
        shard.drain_into(&root);
        assert_eq!(root.counter("transport.rx.chunks_accepted"), 5);
        assert_eq!(shard.counter("transport.rx.chunks_accepted"), 0);
        shard.drain_into(&root);
        assert_eq!(root.counter("transport.rx.chunks_accepted"), 5);
        let h = root.snapshot();
        let h = h.histogram("wsc.runs_per_tpdu").unwrap();
        assert_eq!((h.count, h.sum), (2, 264));
        assert_eq!(
            shard
                .snapshot()
                .histogram("wsc.runs_per_tpdu")
                .unwrap()
                .count,
            0
        );
    }

    #[test]
    fn unknown_and_miskinded_names_are_ignored() {
        let m = LocalMetrics::new();
        m.add("no.such.metric", 7);
        m.add("wsc.runs_per_tpdu", 7); // histogram via counter API
        m.observe("wsc.verify_pass", 7); // counter via histogram API
        let s = m.snapshot();
        assert!(s.nonzero_counters().is_empty());
        assert!(s.histograms.iter().all(|h| h.count == 0));
    }

    #[test]
    fn snapshot_json_and_text_render_nonzero_only() {
        let m = LocalMetrics::new();
        m.add("core.wire.chunks_decoded", 2);
        m.observe("transport.rx.buffered_bytes", 100);
        m.observe("transport.rx.buffered_bytes", 300);
        let s = m.snapshot();
        let json = s.to_json();
        assert_eq!(
            json,
            "{\"core.wire.chunks_decoded\": 2, \
             \"transport.rx.buffered_bytes\": {\"count\": 2, \"sum\": 400, \"mean\": 200.0}}"
        );
        let text = s.render_text();
        assert!(text.contains("core.wire.chunks_decoded"));
        assert!(!text.contains("wsc.verify_pass"));
        assert_eq!(s.histogram("transport.rx.buffered_bytes").unwrap().count, 2);
    }
}
