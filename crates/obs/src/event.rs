//! Structured trace events with chunk label context.
//!
//! Every event that refers to a specific chunk carries its framing labels
//! `(C.ID, T.SN, X.SN)` — connection identity, TPDU-relative position, and
//! the transmission sequence number — which is exactly the tuple a reader
//! needs to follow one chunk from wire arrival through verification. Events
//! are plain data with `'static` strings only, so a trace is cheap to record
//! and renders identically on every run of a deterministic workload.

/// Label context of the chunk an event refers to: `(C.ID, T.SN, X.SN)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Labels {
    /// Connection identifier `C.ID`.
    pub conn_id: u32,
    /// TPDU sequence number `T.SN` (byte offset within the connection).
    pub t_sn: u32,
    /// Transmission sequence number `X.SN`.
    pub x_sn: u32,
}

impl Labels {
    /// Builds a label triple.
    pub fn new(conn_id: u32, t_sn: u32, x_sn: u32) -> Self {
        Labels {
            conn_id,
            t_sn,
            x_sn,
        }
    }
}

/// One structured trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Event {
    /// The wire codec accepted a chunk.
    ChunkDecoded {
        /// Labels of the decoded chunk.
        labels: Labels,
        /// `TYPE` byte of the chunk.
        ty: u8,
        /// Payload length in bytes.
        bytes: u32,
    },
    /// The wire codec or receiver refused a chunk (or a whole group).
    ChunkRejected {
        /// Labels of the offending chunk (zeroed when the header itself was
        /// unreadable).
        labels: Labels,
        /// Static reason string, e.g. `"truncated"` or `"ed-mismatch"`.
        reason: &'static str,
    },
    /// A receiver delivered a complete, verified TPDU group.
    GroupDelivered {
        /// Connection the group belongs to.
        conn_id: u32,
        /// `T.SN` of the group's first byte.
        start: u32,
        /// Delivered length in bytes.
        bytes: u32,
    },
    /// A retransmission timer expired and the sender repaired the TPDU.
    RetransmitFired {
        /// Connection being repaired.
        conn_id: u32,
        /// `T.SN` of the repaired TPDU.
        start: u32,
        /// How many timer retransmissions this TPDU has now consumed.
        retries: u32,
    },
    /// Exponential backoff re-armed a timer entry after a fire.
    BackoffApplied {
        /// Connection whose timer backed off.
        conn_id: u32,
        /// `T.SN` of the timer entry.
        start: u32,
        /// The new (backed-off) RTO in nanoseconds.
        rto_ns: u64,
    },
    /// The parallel dispatcher routed a chunk to a worker shard.
    ShardDispatched {
        /// Labels of the routed chunk.
        labels: Labels,
        /// Destination worker index.
        worker: u32,
    },
    /// The merge stage folded one worker's WSC-2 transcript.
    MergeFolded {
        /// Worker whose transcript was folded.
        worker: u32,
        /// Chunks that worker had processed.
        chunks: u64,
    },
    /// A Byzantine router mutated a chunk's labels on the wire.
    ChunkMutated {
        /// Labels of the chunk *before* the mutation — the identity the
        /// sender gave it.
        labels: Labels,
        /// Which field was flipped: `"tsn"`, `"cid"` or `"len"`.
        field: &'static str,
    },
    /// A multipath link striped a frame onto one of its parallel paths.
    PathChosen {
        /// Labels of the frame's first chunk.
        labels: Labels,
        /// Index of the chosen path.
        path: u32,
    },
    /// A fragment overlapped already-held positions and the bytes differ —
    /// the attacker-visible ambiguity an overlap policy resolves.
    OverlapConflict {
        /// Labels of the *arriving* chunk (the challenger).
        labels: Labels,
        /// Stable name of the policy that resolved the conflict
        /// (`"reject"`, `"first-wins"`, `"last-wins"`).
        policy: &'static str,
        /// First conflicting byte (connection-space offset).
        start: u32,
        /// Conflicting bytes.
        bytes: u32,
        /// `T.SN` start of the group currently owning the bytes (equals the
        /// challenger's group for a within-group overlap).
        owner: u32,
    },
    /// Budget pressure evicted an idle, incomplete TPDU group.
    GroupEvicted {
        /// Connection the evicted group belonged to.
        conn_id: u32,
        /// `T.SN` of the evicted group's first byte.
        start: u32,
        /// Held bytes released by the eviction.
        bytes: u32,
        /// What ran out: `"groups"`, `"bytes"` or `"fragments"`.
        cause: &'static str,
    },
    /// The connection table admitted a connection (fresh or pooled shell).
    ConnAdmitted {
        /// The admitted `C.ID`.
        conn_id: u32,
        /// Live connections after the admission.
        occupancy: u32,
    },
    /// The connection table evicted a connection (capacity pressure, idle
    /// sweep, or explicit retirement).
    ConnEvicted {
        /// The evicted `C.ID`.
        conn_id: u32,
        /// Virtual-clock nanoseconds since the connection's last touch.
        idle: u64,
        /// Why it went: `"capacity"`, `"idle"` or `"retire"`.
        cause: &'static str,
    },
    /// A session reached a terminal reliability verdict for a TPDU.
    VerdictReached {
        /// Connection the verdict applies to.
        conn_id: u32,
        /// `"shed"` or `"peer-unreachable"`.
        verdict: &'static str,
        /// `T.SN` of the TPDU that exhausted its budget.
        start: u32,
    },
    /// A degradation trigger fired: the flight recorder marks the moment
    /// (and, on the first trigger, captures its postmortem dump).
    Degraded {
        /// Connection the trigger concerns (0 when not connection-scoped).
        conn_id: u32,
        /// Stable trigger name: `"peer-unreachable"`, `"budget-exhausted"`,
        /// `"verify-failure"`, `"pressure-crossing"` or `"eviction-storm"`.
        trigger: &'static str,
    },
}

impl Event {
    /// The event's stable name, as used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            Event::ChunkDecoded { .. } => "ChunkDecoded",
            Event::ChunkRejected { .. } => "ChunkRejected",
            Event::GroupDelivered { .. } => "GroupDelivered",
            Event::RetransmitFired { .. } => "RetransmitFired",
            Event::BackoffApplied { .. } => "BackoffApplied",
            Event::ShardDispatched { .. } => "ShardDispatched",
            Event::MergeFolded { .. } => "MergeFolded",
            Event::ChunkMutated { .. } => "ChunkMutated",
            Event::PathChosen { .. } => "PathChosen",
            Event::OverlapConflict { .. } => "OverlapConflict",
            Event::GroupEvicted { .. } => "GroupEvicted",
            Event::ConnAdmitted { .. } => "ConnAdmitted",
            Event::ConnEvicted { .. } => "ConnEvicted",
            Event::VerdictReached { .. } => "VerdictReached",
            Event::Degraded { .. } => "Degraded",
        }
    }

    /// Appends the event's JSON fields (no braces, no timestamp) to `out`.
    pub(crate) fn json_fields(&self, out: &mut String) {
        use std::fmt::Write;
        let labels = |out: &mut String, l: &Labels| {
            let _ = write!(
                out,
                "\"cid\": {}, \"tsn\": {}, \"xsn\": {}",
                l.conn_id, l.t_sn, l.x_sn
            );
        };
        let _ = write!(out, "\"ev\": \"{}\", ", self.name());
        match self {
            Event::ChunkDecoded {
                labels: l,
                ty,
                bytes,
            } => {
                labels(out, l);
                let _ = write!(out, ", \"ty\": {ty}, \"bytes\": {bytes}");
            }
            Event::ChunkRejected { labels: l, reason } => {
                labels(out, l);
                let _ = write!(out, ", \"reason\": \"{reason}\"");
            }
            Event::GroupDelivered {
                conn_id,
                start,
                bytes,
            } => {
                let _ = write!(
                    out,
                    "\"cid\": {conn_id}, \"start\": {start}, \"bytes\": {bytes}"
                );
            }
            Event::RetransmitFired {
                conn_id,
                start,
                retries,
            } => {
                let _ = write!(
                    out,
                    "\"cid\": {conn_id}, \"start\": {start}, \"retries\": {retries}"
                );
            }
            Event::BackoffApplied {
                conn_id,
                start,
                rto_ns,
            } => {
                let _ = write!(
                    out,
                    "\"cid\": {conn_id}, \"start\": {start}, \"rto_ns\": {rto_ns}"
                );
            }
            Event::ShardDispatched { labels: l, worker } => {
                labels(out, l);
                let _ = write!(out, ", \"worker\": {worker}");
            }
            Event::MergeFolded { worker, chunks } => {
                let _ = write!(out, "\"worker\": {worker}, \"chunks\": {chunks}");
            }
            Event::ChunkMutated { labels: l, field } => {
                labels(out, l);
                let _ = write!(out, ", \"field\": \"{field}\"");
            }
            Event::PathChosen { labels: l, path } => {
                labels(out, l);
                let _ = write!(out, ", \"path\": {path}");
            }
            Event::OverlapConflict {
                labels: l,
                policy,
                start,
                bytes,
                owner,
            } => {
                labels(out, l);
                let _ = write!(
                    out,
                    ", \"policy\": \"{policy}\", \"start\": {start}, \"bytes\": {bytes}, \"owner\": {owner}"
                );
            }
            Event::GroupEvicted {
                conn_id,
                start,
                bytes,
                cause,
            } => {
                let _ = write!(
                    out,
                    "\"cid\": {conn_id}, \"start\": {start}, \"bytes\": {bytes}, \"cause\": \"{cause}\""
                );
            }
            Event::ConnAdmitted { conn_id, occupancy } => {
                let _ = write!(out, "\"cid\": {conn_id}, \"occupancy\": {occupancy}");
            }
            Event::ConnEvicted {
                conn_id,
                idle,
                cause,
            } => {
                let _ = write!(
                    out,
                    "\"cid\": {conn_id}, \"idle\": {idle}, \"cause\": \"{cause}\""
                );
            }
            Event::VerdictReached {
                conn_id,
                verdict,
                start,
            } => {
                let _ = write!(
                    out,
                    "\"cid\": {conn_id}, \"verdict\": \"{verdict}\", \"start\": {start}"
                );
            }
            Event::Degraded { conn_id, trigger } => {
                let _ = write!(out, "\"cid\": {conn_id}, \"trigger\": \"{trigger}\"");
            }
        }
    }

    /// Renders the event as one compact human-readable line (no timestamp).
    pub fn render_text(&self) -> String {
        match self {
            Event::ChunkDecoded { labels, ty, bytes } => format!(
                "decode  ok   C.ID {} T.SN {} X.SN {} ty {} ({} B)",
                labels.conn_id, labels.t_sn, labels.x_sn, ty, bytes
            ),
            Event::ChunkRejected { labels, reason } => format!(
                "reject       C.ID {} T.SN {} X.SN {} ({})",
                labels.conn_id, labels.t_sn, labels.x_sn, reason
            ),
            Event::GroupDelivered {
                conn_id,
                start,
                bytes,
            } => format!("deliver      C.ID {conn_id} T.SN {start} ({bytes} B, verified)"),
            Event::RetransmitFired {
                conn_id,
                start,
                retries,
            } => format!("rto fire     C.ID {conn_id} T.SN {start} (retry #{retries})"),
            Event::BackoffApplied {
                conn_id,
                start,
                rto_ns,
            } => format!("rto backoff  C.ID {conn_id} T.SN {start} (rto {rto_ns} ns)"),
            Event::ShardDispatched { labels, worker } => format!(
                "dispatch     C.ID {} T.SN {} X.SN {} -> worker {}",
                labels.conn_id, labels.t_sn, labels.x_sn, worker
            ),
            Event::MergeFolded { worker, chunks } => {
                format!("merge fold   worker {worker} ({chunks} chunks)")
            }
            Event::ChunkMutated { labels, field } => format!(
                "mutate       C.ID {} T.SN {} X.SN {} (flip {})",
                labels.conn_id, labels.t_sn, labels.x_sn, field
            ),
            Event::PathChosen { labels, path } => format!(
                "path pick    C.ID {} T.SN {} X.SN {} -> path {}",
                labels.conn_id, labels.t_sn, labels.x_sn, path
            ),
            Event::OverlapConflict {
                labels,
                policy,
                start,
                bytes,
                owner,
            } => format!(
                "overlap      C.ID {} T.SN {} X.SN {} [{}, {}) vs owner {} ({})",
                labels.conn_id,
                labels.t_sn,
                labels.x_sn,
                start,
                start + bytes,
                owner,
                policy
            ),
            Event::GroupEvicted {
                conn_id,
                start,
                bytes,
                cause,
            } => format!("evict        C.ID {conn_id} T.SN {start} ({bytes} B, budget {cause})"),
            Event::ConnAdmitted { conn_id, occupancy } => {
                format!("conn admit   C.ID {conn_id} ({occupancy} live)")
            }
            Event::ConnEvicted {
                conn_id,
                idle,
                cause,
            } => format!("conn evict   C.ID {conn_id} (idle {idle} ns, {cause})"),
            Event::VerdictReached {
                conn_id,
                verdict,
                start,
            } => format!("verdict      C.ID {conn_id} T.SN {start}: {verdict}"),
            Event::Degraded { conn_id, trigger } => {
                format!("degraded     C.ID {conn_id} ({trigger})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let e = Event::GroupDelivered {
            conn_id: 1,
            start: 0,
            bytes: 512,
        };
        assert_eq!(e.name(), "GroupDelivered");
        assert!(e.render_text().contains("512 B"));
    }

    #[test]
    fn json_fields_carry_label_context() {
        let e = Event::ChunkDecoded {
            labels: Labels::new(7, 1024, 3),
            ty: 1,
            bytes: 256,
        };
        let mut s = String::new();
        e.json_fields(&mut s);
        assert_eq!(
            s,
            "\"ev\": \"ChunkDecoded\", \"cid\": 7, \"tsn\": 1024, \"xsn\": 3, \"ty\": 1, \"bytes\": 256"
        );
    }
}
