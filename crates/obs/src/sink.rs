//! The `ObsSink` trait the instrumented layers talk to, its no-op default,
//! and the recording implementation.
//!
//! Layers hold an `Arc<dyn ObsSink>` and cache `enabled()` once at
//! construction, so the disabled hot path is a single branch on a local
//! bool — no virtual call, no atomic, no allocation. The [`NullSink`]
//! default keeps every existing byte-identical differential test green; a
//! [`RecordingSink`] swaps in a full [`AtomicMetrics`] registry plus a
//! mutex-guarded [`TraceRing`] without the instrumented code changing.

use std::sync::{Arc, Mutex};

use crate::event::{Event, Labels};
use crate::lineage::Lineage;
use crate::metrics::{AtomicMetrics, Snapshot};
use crate::span::{SpanId, SpanLink, SpanRecord, SpanStore};
use crate::trace::{TimedEvent, TraceRing, DEFAULT_TRACE_CAPACITY};

/// Where instrumented layers send counters, histogram observations and
/// trace events. All methods take `&self`; implementations must be
/// shareable across threads (the parallel receiver clones one sink into
/// every worker shard).
pub trait ObsSink: Send + Sync + std::fmt::Debug {
    /// True when this sink actually records. Callers cache the answer and
    /// skip instrumentation entirely when false.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the catalogued counter `name`.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records `value` into the catalogued histogram `name`.
    fn observe(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records a structured event at virtual time `at_ns`.
    fn event(&self, at_ns: u64, event: Event) {
        let _ = (at_ns, event);
    }

    /// Opens a label-keyed lifecycle span at virtual time `at_ns`.
    fn span_open(&self, at_ns: u64, id: SpanId) {
        let _ = (at_ns, id);
    }

    /// Closes the newest open span with `id`'s identity at `at_ns`. A
    /// recording implementation also feeds the closed duration into the
    /// stage's `span.delay.*` histogram (see
    /// [`Stage::delay_metric`](crate::span::Stage::delay_metric)).
    fn span_close(&self, at_ns: u64, id: SpanId) {
        let _ = (at_ns, id);
    }

    /// Records a parent→child fragmentation link at virtual time `at_ns`
    /// (a router split `parent` and `child` is one resulting piece).
    fn span_link(&self, at_ns: u64, parent: Labels, child: Labels) {
        let _ = (at_ns, parent, child);
    }
}

/// The default sink: records nothing, reports `enabled() == false`.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// A shared handle to the default no-op sink.
pub fn null() -> Arc<dyn ObsSink> {
    Arc::new(NullSink)
}

/// A sink that records everything: counters and histograms in a lock-free
/// [`AtomicMetrics`] registry, events in a mutex-guarded [`TraceRing`].
///
/// Hold the concrete `Arc<RecordingSink>` to read the data back after the
/// run; hand clones (coerced to `Arc<dyn ObsSink>`) to the layers.
#[derive(Debug)]
pub struct RecordingSink {
    metrics: AtomicMetrics,
    trace: Mutex<TraceRing>,
    spans: Mutex<SpanStore>,
}

impl RecordingSink {
    /// Creates a shared recording sink with the default trace capacity.
    pub fn shared() -> Arc<Self> {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a shared recording sink holding at most `cap` trace events.
    pub fn with_capacity(cap: usize) -> Arc<Self> {
        Arc::new(RecordingSink {
            metrics: AtomicMetrics::new(),
            trace: Mutex::new(TraceRing::new(cap)),
            spans: Mutex::new(SpanStore::new()),
        })
    }

    /// Snapshots the metrics registry.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Copies the recorded events out, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.trace.lock().expect("trace lock").events()
    }

    /// Exports the recorded trace as JSON lines (see
    /// [`TraceRing::to_json_lines`]).
    pub fn trace_json_lines(&self) -> String {
        self.trace.lock().expect("trace lock").to_json_lines()
    }

    /// Renders the recorded trace as human-readable lines.
    pub fn trace_text(&self) -> String {
        self.trace.lock().expect("trace lock").render_text()
    }

    /// Events evicted from the ring so far.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.lock().expect("trace lock").dropped()
    }

    /// Copies the recorded spans out, in open order.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span lock").records().to_vec()
    }

    /// Copies the recorded parent→child fragmentation links out.
    pub fn span_links(&self) -> Vec<SpanLink> {
        self.spans.lock().expect("span lock").links().to_vec()
    }

    /// Span closes that matched no open span.
    pub fn span_orphan_closes(&self) -> u64 {
        self.spans.lock().expect("span lock").orphan_closes()
    }

    /// Exports the span store as JSON lines (see
    /// [`SpanStore::to_json_lines`]).
    pub fn span_json_lines(&self) -> String {
        self.spans.lock().expect("span lock").to_json_lines()
    }

    /// Assembles the per-chunk lineage view from the recorded spans.
    pub fn lineage(&self) -> Lineage {
        Lineage::from_store(&self.spans.lock().expect("span lock"))
    }
}

impl ObsSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.metrics.add(name, delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.metrics.observe(name, value);
    }

    fn event(&self, at_ns: u64, event: Event) {
        self.trace.lock().expect("trace lock").push(at_ns, event);
    }

    fn span_open(&self, at_ns: u64, id: SpanId) {
        self.metrics.add("obs.span.opened", 1);
        self.spans.lock().expect("span lock").open(at_ns, id);
    }

    fn span_close(&self, at_ns: u64, id: SpanId) {
        let closed = self.spans.lock().expect("span lock").close(at_ns, id);
        match closed {
            Some(duration) => {
                if let Some(metric) = id.stage.delay_metric() {
                    self.metrics.observe(metric, duration);
                }
            }
            None => self.metrics.add("obs.span.orphan_closes", 1),
        }
    }

    fn span_link(&self, at_ns: u64, parent: Labels, child: Labels) {
        self.metrics.add("obs.span.links", 1);
        self.spans
            .lock()
            .expect("span lock")
            .link(at_ns, parent, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Labels;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let s = null();
        assert!(!s.enabled());
        s.counter("transport.rx.chunks_accepted", 1);
        s.event(
            0,
            Event::ChunkRejected {
                labels: Labels::default(),
                reason: "x",
            },
        );
    }

    #[test]
    fn recording_sink_round_trips() {
        let s = RecordingSink::with_capacity(8);
        assert!(s.enabled());
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        dyn_sink.counter("wsc.verify_pass", 2);
        dyn_sink.observe("wsc.runs_per_tpdu", 4);
        dyn_sink.event(
            77,
            Event::MergeFolded {
                worker: 1,
                chunks: 10,
            },
        );
        let snap = s.snapshot();
        assert_eq!(snap.counter("wsc.verify_pass"), 2);
        assert_eq!(snap.histogram("wsc.runs_per_tpdu").unwrap().sum, 4);
        assert_eq!(s.events().len(), 1);
        assert!(s.trace_json_lines().starts_with("{\"t\": 77, "));
        assert_eq!(s.trace_dropped(), 0);
    }

    #[test]
    fn recording_sink_records_spans_and_attributes_delay() {
        use crate::span::{SpanId, Stage};
        let s = RecordingSink::with_capacity(8);
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        let id = SpanId::new(Labels::new(1, 0, 0), Stage::Hop);
        dyn_sink.span_open(100, id);
        dyn_sink.span_close(160, id);
        dyn_sink.span_link(160, Labels::new(1, 0, 0), Labels::new(1, 0, 4));
        dyn_sink.span_close(200, id); // no open span left: orphan
        let snap = s.snapshot();
        assert_eq!(snap.counter("obs.span.opened"), 1);
        assert_eq!(snap.counter("obs.span.links"), 1);
        assert_eq!(snap.counter("obs.span.orphan_closes"), 1);
        let h = snap.histogram("span.delay.network_ns").unwrap();
        assert_eq!((h.count, h.sum), (1, 60));
        assert_eq!(s.span_records().len(), 1);
        assert_eq!(s.span_links().len(), 1);
        assert_eq!(s.span_orphan_closes(), 1);
        assert_eq!(s.lineage().chunks.len(), 1);
        assert!(s.span_json_lines().contains("\"span\": \"hop\""));
    }
}
