//! The `ObsSink` trait the instrumented layers talk to, its no-op default,
//! and the recording implementation.
//!
//! Layers hold an `Arc<dyn ObsSink>` and cache `enabled()` once at
//! construction, so the disabled hot path is a single branch on a local
//! bool — no virtual call, no atomic, no allocation. The [`NullSink`]
//! default keeps every existing byte-identical differential test green; a
//! [`RecordingSink`] swaps in a full [`AtomicMetrics`] registry plus a
//! mutex-guarded [`TraceRing`] without the instrumented code changing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, Labels};
use crate::flight::{FlightDump, FlightRing, DEFAULT_FLIGHT_CAPACITY};
use crate::lineage::Lineage;
use crate::metrics::{AtomicMetrics, HotCounter, ShardMetrics, Snapshot};
use crate::span::{SpanId, SpanLink, SpanRecord, SpanStore};
use crate::trace::{TimedEvent, TraceRing, DEFAULT_TRACE_CAPACITY};

/// Where instrumented layers send counters, histogram observations and
/// trace events. All methods take `&self`; implementations must be
/// shareable across threads (the parallel receiver clones one sink into
/// every worker shard).
pub trait ObsSink: Send + Sync + std::fmt::Debug {
    /// True when this sink actually records. Callers cache the answer and
    /// skip instrumentation entirely when false.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to the catalogued counter `name`.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records `value` into the catalogued histogram `name`.
    fn observe(&self, name: &'static str, value: u64) {
        let _ = (name, value);
    }

    /// Records a structured event at virtual time `at_ns`.
    fn event(&self, at_ns: u64, event: Event) {
        let _ = (at_ns, event);
    }

    /// Opens a label-keyed lifecycle span at virtual time `at_ns`.
    fn span_open(&self, at_ns: u64, id: SpanId) {
        let _ = (at_ns, id);
    }

    /// Closes the newest open span with `id`'s identity at `at_ns`. A
    /// recording implementation also feeds the closed duration into the
    /// stage's `span.delay.*` histogram (see
    /// [`Stage::delay_metric`](crate::span::Stage::delay_metric)).
    fn span_close(&self, at_ns: u64, id: SpanId) {
        let _ = (at_ns, id);
    }

    /// Records a parent→child fragmentation link at virtual time `at_ns`
    /// (a router split `parent` and `child` is one resulting piece).
    fn span_link(&self, at_ns: u64, parent: Labels, child: Labels) {
        let _ = (at_ns, parent, child);
    }

    /// True when the sink wants the *expensive* instrumentation too:
    /// observed decode (which materialises payload copies), per-chunk
    /// dispatch events and per-chunk lifecycle spans. A debugging
    /// [`RecordingSink`] says yes; the production [`AlwaysOnSink`] says no,
    /// keeping the obs-on hot path allocation-free. Callers cache
    /// `enabled() && verbose()` next to their cached `enabled()`.
    fn verbose(&self) -> bool {
        true
    }

    /// Hands out a fresh per-worker/per-receiver counter block, registered
    /// with the sink so [`ObsSink::flush`] can drain it and snapshots can
    /// fold it. `None` (the default) means the sink does not shard: callers
    /// keep routing counters through the sink itself.
    fn worker_shard(&self) -> Option<Arc<ShardMetrics>> {
        None
    }

    /// Resolves `name` to a pre-bound [`HotCounter`] once, so a per-chunk
    /// site pays two plain stores per update instead of a label lookup.
    /// Only a sharding facade ([`ShardSink`]) can bind a cell; the default
    /// hands back an unresolved handle whose `add` falls through to
    /// [`ObsSink::counter`] by name — identical behaviour, just slower.
    fn hot_counter(&self, name: &'static str) -> HotCounter {
        HotCounter::unresolved(name)
    }

    /// Drains every registered worker shard into the root registry. Only
    /// sound at barriers where no shard owner is concurrently writing
    /// (`drain()`/`sync()`/`finish()` of the parallel pipeline) — the
    /// sharded backend's owner-writes `add` is not atomic against a
    /// concurrent drain.
    fn flush(&self) {}

    /// A degradation trigger fired (`"peer-unreachable"`,
    /// `"budget-exhausted"`, `"verify-failure"`, `"pressure-crossing"`,
    /// `"eviction-storm"`). The always-on sink marks the flight ring and
    /// captures its postmortem dump on the first trigger; the recording
    /// sink traces it.
    fn degraded(&self, at_ns: u64, trigger: &'static str, conn_id: u32) {
        let _ = (at_ns, trigger, conn_id);
    }

    /// Advances the sink's monotonic virtual clock to at least `at_ns`.
    /// Layers that stamp events *after* their own clock stops moving (the
    /// parallel merge path) read it back via [`ObsSink::clock`], so merge
    /// events can never carry an earlier timestamp than the worker events
    /// they fold.
    fn clock_advance(&self, at_ns: u64) {
        let _ = at_ns;
    }

    /// The sink's monotonic virtual clock (0 when the sink keeps none).
    fn clock(&self) -> u64 {
        0
    }
}

/// The default sink: records nothing, reports `enabled() == false`.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl ObsSink for NullSink {}

/// A shared handle to the default no-op sink.
pub fn null() -> Arc<dyn ObsSink> {
    Arc::new(NullSink)
}

/// A sink that records everything: counters and histograms in a lock-free
/// [`AtomicMetrics`] registry, events in a mutex-guarded [`TraceRing`].
///
/// Hold the concrete `Arc<RecordingSink>` to read the data back after the
/// run; hand clones (coerced to `Arc<dyn ObsSink>`) to the layers.
#[derive(Debug)]
pub struct RecordingSink {
    metrics: AtomicMetrics,
    trace: Mutex<TraceRing>,
    spans: Mutex<SpanStore>,
    clock: AtomicU64,
}

impl RecordingSink {
    /// Creates a shared recording sink with the default trace capacity.
    pub fn shared() -> Arc<Self> {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a shared recording sink holding at most `cap` trace events.
    pub fn with_capacity(cap: usize) -> Arc<Self> {
        Arc::new(RecordingSink {
            metrics: AtomicMetrics::new(),
            trace: Mutex::new(TraceRing::new(cap)),
            spans: Mutex::new(SpanStore::new()),
            clock: AtomicU64::new(0),
        })
    }

    /// Snapshots the metrics registry.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Copies the recorded events out, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.trace.lock().expect("trace lock").events()
    }

    /// Exports the recorded trace as JSON lines (see
    /// [`TraceRing::to_json_lines`]).
    pub fn trace_json_lines(&self) -> String {
        self.trace.lock().expect("trace lock").to_json_lines()
    }

    /// Renders the recorded trace as human-readable lines.
    pub fn trace_text(&self) -> String {
        self.trace.lock().expect("trace lock").render_text()
    }

    /// Events evicted from the ring so far.
    pub fn trace_dropped(&self) -> u64 {
        self.trace.lock().expect("trace lock").dropped()
    }

    /// Copies the recorded spans out, in open order.
    pub fn span_records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span lock").records().to_vec()
    }

    /// Copies the recorded parent→child fragmentation links out.
    pub fn span_links(&self) -> Vec<SpanLink> {
        self.spans.lock().expect("span lock").links().to_vec()
    }

    /// Span closes that matched no open span.
    pub fn span_orphan_closes(&self) -> u64 {
        self.spans.lock().expect("span lock").orphan_closes()
    }

    /// Exports the span store as JSON lines (see
    /// [`SpanStore::to_json_lines`]).
    pub fn span_json_lines(&self) -> String {
        self.spans.lock().expect("span lock").to_json_lines()
    }

    /// Assembles the per-chunk lineage view from the recorded spans.
    pub fn lineage(&self) -> Lineage {
        Lineage::from_store(&self.spans.lock().expect("span lock"))
    }
}

impl ObsSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.metrics.add(name, delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.metrics.observe(name, value);
    }

    fn event(&self, at_ns: u64, event: Event) {
        self.trace.lock().expect("trace lock").push(at_ns, event);
    }

    fn span_open(&self, at_ns: u64, id: SpanId) {
        self.metrics.add("obs.span.opened", 1);
        self.spans.lock().expect("span lock").open(at_ns, id);
    }

    fn span_close(&self, at_ns: u64, id: SpanId) {
        let closed = self.spans.lock().expect("span lock").close(at_ns, id);
        match closed {
            Some(duration) => {
                if let Some(metric) = id.stage.delay_metric() {
                    self.metrics.observe(metric, duration);
                }
            }
            None => self.metrics.add("obs.span.orphan_closes", 1),
        }
    }

    fn span_link(&self, at_ns: u64, parent: Labels, child: Labels) {
        self.metrics.add("obs.span.links", 1);
        self.spans
            .lock()
            .expect("span lock")
            .link(at_ns, parent, child);
    }

    fn degraded(&self, at_ns: u64, trigger: &'static str, conn_id: u32) {
        self.metrics.add("obs.flight.triggers", 1);
        self.trace
            .lock()
            .expect("trace lock")
            .push(at_ns, Event::Degraded { conn_id, trigger });
    }

    fn clock_advance(&self, at_ns: u64) {
        self.clock.fetch_max(at_ns, Ordering::Relaxed);
    }

    fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }
}

/// The production sink: always on, never verbose.
///
/// Counters and histograms land either in the lock-free root registry or in
/// per-worker [`ShardMetrics`] blocks handed out by
/// [`ObsSink::worker_shard`] (owner-writes cells, drained into the root at
/// pipeline barriers via [`ObsSink::flush`], folded live by
/// [`AlwaysOnSink::snapshot`]). Rare events land in a fixed flight ring;
/// the first degradation trigger captures a byte-stable postmortem
/// [`FlightDump`]. Per-chunk verbose instrumentation (observed decode,
/// dispatch events, lifecycle spans) is refused via `verbose() == false`,
/// which is what keeps the obs-on hot path allocation-free.
#[derive(Debug)]
pub struct AlwaysOnSink {
    root: AtomicMetrics,
    shards: Mutex<Vec<Arc<ShardMetrics>>>,
    flight: Mutex<FlightRing>,
    dump: Mutex<Option<FlightDump>>,
    clock: AtomicU64,
}

impl AlwaysOnSink {
    /// Creates a shared always-on sink with the default flight capacity.
    pub fn shared() -> Arc<Self> {
        Self::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Creates a shared always-on sink whose flight ring holds `cap` events.
    pub fn with_flight_capacity(cap: usize) -> Arc<Self> {
        Arc::new(AlwaysOnSink {
            root: AtomicMetrics::new(),
            shards: Mutex::new(Vec::new()),
            flight: Mutex::new(FlightRing::new(cap)),
            dump: Mutex::new(None),
            clock: AtomicU64::new(0),
        })
    }

    /// Snapshots the folded registry: root plus every live worker shard
    /// (read without zeroing, so a mid-run snapshot is safe at any time
    /// and `flush` remains the only mutation point).
    pub fn snapshot(&self) -> Snapshot {
        let agg = AtomicMetrics::new();
        self.root.fold_into(&agg);
        for shard in self.shards.lock().expect("shard lock").iter() {
            shard.fold_into(&agg);
        }
        agg.snapshot()
    }

    /// Worker shard blocks handed out so far.
    pub fn shard_count(&self) -> usize {
        self.shards.lock().expect("shard lock").len()
    }

    /// The flight ring's current contents, oldest first.
    pub fn flight_events(&self) -> Vec<TimedEvent> {
        self.flight.lock().expect("flight lock").events()
    }

    /// The postmortem captured by the first degradation trigger, if any.
    pub fn flight_dump(&self) -> Option<FlightDump> {
        self.dump.lock().expect("dump lock").clone()
    }

    /// The captured postmortem as JSON lines (None before any trigger).
    pub fn dump_json_lines(&self) -> Option<String> {
        self.flight_dump().map(|d| d.to_json_lines())
    }
}

impl ObsSink for AlwaysOnSink {
    fn enabled(&self) -> bool {
        true
    }

    fn verbose(&self) -> bool {
        false
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.root.add(name, delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.root.observe(name, value);
    }

    fn event(&self, at_ns: u64, event: Event) {
        self.flight.lock().expect("flight lock").push(at_ns, event);
    }

    fn worker_shard(&self) -> Option<Arc<ShardMetrics>> {
        let block = Arc::new(ShardMetrics::new());
        self.shards
            .lock()
            .expect("shard lock")
            .push(Arc::clone(&block));
        Some(block)
    }

    fn flush(&self) {
        for shard in self.shards.lock().expect("shard lock").iter() {
            shard.drain_into(&self.root);
        }
    }

    fn degraded(&self, at_ns: u64, trigger: &'static str, conn_id: u32) {
        self.root.add("obs.flight.triggers", 1);
        let mut ring = self.flight.lock().expect("flight lock");
        ring.push(at_ns, Event::Degraded { conn_id, trigger });
        let mut dump = self.dump.lock().expect("dump lock");
        if dump.is_none() {
            *dump = Some(FlightDump::capture(trigger, conn_id, at_ns, &ring));
            self.root.add("obs.flight.dumps", 1);
        }
    }

    fn clock_advance(&self, at_ns: u64) {
        self.clock.fetch_max(at_ns, Ordering::Relaxed);
    }

    fn clock(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }
}

/// A per-owner facade over a sharding parent sink: counters and histogram
/// observations go to the owner's plain [`ShardMetrics`] block (owner-writes
/// cells, no shared-line contention); everything else — events, spans,
/// degradation triggers, the clock — forwards to the parent.
#[derive(Debug)]
pub struct ShardSink {
    local: Arc<ShardMetrics>,
    parent: Arc<dyn ObsSink>,
    parent_verbose: bool,
}

impl ShardSink {
    /// Builds the facade over an already-registered shard block.
    pub fn new(local: Arc<ShardMetrics>, parent: Arc<dyn ObsSink>) -> Self {
        let parent_verbose = parent.verbose();
        ShardSink {
            local,
            parent,
            parent_verbose,
        }
    }

    /// Wraps `parent` in a fresh per-owner shard facade when the parent
    /// shards ([`ObsSink::worker_shard`] returns a block); hands `parent`
    /// back unchanged otherwise. The single registration point every
    /// shard owner (parallel worker, demux, serial bench leg) goes through.
    pub fn wrap(parent: Arc<dyn ObsSink>) -> Arc<dyn ObsSink> {
        match parent.worker_shard() {
            Some(local) => Arc::new(ShardSink::new(local, parent)),
            None => parent,
        }
    }
}

impl ObsSink for ShardSink {
    fn enabled(&self) -> bool {
        true
    }

    fn verbose(&self) -> bool {
        self.parent_verbose
    }

    fn counter(&self, name: &'static str, delta: u64) {
        self.local.add(name, delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.local.observe(name, value);
    }

    fn event(&self, at_ns: u64, event: Event) {
        self.parent.event(at_ns, event);
    }

    fn span_open(&self, at_ns: u64, id: SpanId) {
        self.parent.span_open(at_ns, id);
    }

    fn span_close(&self, at_ns: u64, id: SpanId) {
        self.parent.span_close(at_ns, id);
    }

    fn span_link(&self, at_ns: u64, parent: Labels, child: Labels) {
        self.parent.span_link(at_ns, parent, child);
    }

    fn worker_shard(&self) -> Option<Arc<ShardMetrics>> {
        self.parent.worker_shard()
    }

    fn hot_counter(&self, name: &'static str) -> HotCounter {
        match self.local.counter_base(name) {
            Some(cell) => HotCounter::resolved(name, Arc::clone(&self.local), cell),
            None => HotCounter::unresolved(name),
        }
    }

    fn flush(&self) {
        self.parent.flush();
    }

    fn degraded(&self, at_ns: u64, trigger: &'static str, conn_id: u32) {
        self.parent.degraded(at_ns, trigger, conn_id);
    }

    fn clock_advance(&self, at_ns: u64) {
        self.parent.clock_advance(at_ns);
    }

    fn clock(&self) -> u64 {
        self.parent.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Labels;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let s = null();
        assert!(!s.enabled());
        s.counter("transport.rx.chunks_accepted", 1);
        s.event(
            0,
            Event::ChunkRejected {
                labels: Labels::default(),
                reason: "x",
            },
        );
    }

    #[test]
    fn recording_sink_round_trips() {
        let s = RecordingSink::with_capacity(8);
        assert!(s.enabled());
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        dyn_sink.counter("wsc.verify_pass", 2);
        dyn_sink.observe("wsc.runs_per_tpdu", 4);
        dyn_sink.event(
            77,
            Event::MergeFolded {
                worker: 1,
                chunks: 10,
            },
        );
        let snap = s.snapshot();
        assert_eq!(snap.counter("wsc.verify_pass"), 2);
        assert_eq!(snap.histogram("wsc.runs_per_tpdu").unwrap().sum, 4);
        assert_eq!(s.events().len(), 1);
        assert!(s.trace_json_lines().starts_with("{\"t\": 77, "));
        assert_eq!(s.trace_dropped(), 0);
    }

    #[test]
    fn always_on_sink_shards_flushes_and_folds() {
        let s = AlwaysOnSink::shared();
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        assert!(dyn_sink.enabled());
        assert!(!dyn_sink.verbose());

        dyn_sink.counter("transport.parallel.packets", 2);
        let worker = ShardSink::wrap(dyn_sink.clone());
        worker.counter("transport.rx.chunks_accepted", 5);
        worker.observe("wsc.runs_per_tpdu", 3);
        assert_eq!(s.shard_count(), 1);

        // Snapshot folds live shards without draining them.
        let snap = s.snapshot();
        assert_eq!(snap.counter("transport.parallel.packets"), 2);
        assert_eq!(snap.counter("transport.rx.chunks_accepted"), 5);

        // Flush drains the shard into the root; totals are unchanged.
        dyn_sink.flush();
        let snap = s.snapshot();
        assert_eq!(snap.counter("transport.rx.chunks_accepted"), 5);
        assert_eq!(snap.histogram("wsc.runs_per_tpdu").unwrap().count, 1);
    }

    #[test]
    fn always_on_sink_captures_the_first_dump_only() {
        let s = AlwaysOnSink::with_flight_capacity(16);
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        dyn_sink.event(
            5,
            Event::GroupDelivered {
                conn_id: 1,
                start: 0,
                bytes: 64,
            },
        );
        assert!(s.flight_dump().is_none());
        dyn_sink.degraded(9, "budget-exhausted", 1);
        dyn_sink.degraded(12, "peer-unreachable", 1);
        let dump = s.flight_dump().expect("first trigger captured");
        assert_eq!(dump.trigger, "budget-exhausted");
        assert_eq!(dump.at_ns, 9);
        assert_eq!(dump.events.len(), 2); // delivery + the Degraded marker
        let snap = s.snapshot();
        assert_eq!(snap.counter("obs.flight.triggers"), 2);
        assert_eq!(snap.counter("obs.flight.dumps"), 1);
        assert!(s
            .dump_json_lines()
            .unwrap()
            .starts_with("{\"dump\": \"flight\", \"trigger\": \"budget-exhausted\""));
        // Both triggers are in the ring even though only one dumped.
        assert_eq!(s.flight_events().len(), 3);
    }

    #[test]
    fn sink_clock_is_monotonic_and_shared_through_the_shard_facade() {
        let s = RecordingSink::shared();
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        let worker = ShardSink::wrap(dyn_sink.clone());
        dyn_sink.clock_advance(50);
        worker.clock_advance(30); // stale worker time cannot move it back
        assert_eq!(worker.clock(), 50);
        worker.clock_advance(80);
        assert_eq!(dyn_sink.clock(), 80);
        // RecordingSink does not shard: wrap() hands the parent back, so
        // counters keep landing in the shared registry.
        worker.counter("wsc.verify_pass", 1);
        assert_eq!(s.snapshot().counter("wsc.verify_pass"), 1);
    }

    #[test]
    fn recording_sink_traces_degradation_triggers() {
        let s = RecordingSink::shared();
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        dyn_sink.degraded(42, "verify-failure", 7);
        assert_eq!(s.snapshot().counter("obs.flight.triggers"), 1);
        let events = s.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].event.name(), "Degraded");
    }

    #[test]
    fn recording_sink_records_spans_and_attributes_delay() {
        use crate::span::{SpanId, Stage};
        let s = RecordingSink::with_capacity(8);
        let dyn_sink: Arc<dyn ObsSink> = s.clone();
        let id = SpanId::new(Labels::new(1, 0, 0), Stage::Hop);
        dyn_sink.span_open(100, id);
        dyn_sink.span_close(160, id);
        dyn_sink.span_link(160, Labels::new(1, 0, 0), Labels::new(1, 0, 4));
        dyn_sink.span_close(200, id); // no open span left: orphan
        let snap = s.snapshot();
        assert_eq!(snap.counter("obs.span.opened"), 1);
        assert_eq!(snap.counter("obs.span.links"), 1);
        assert_eq!(snap.counter("obs.span.orphan_closes"), 1);
        let h = snap.histogram("span.delay.network_ns").unwrap();
        assert_eq!((h.count, h.sum), (1, 60));
        assert_eq!(s.span_records().len(), 1);
        assert_eq!(s.span_links().len(), 1);
        assert_eq!(s.span_orphan_closes(), 1);
        assert_eq!(s.lineage().chunks.len(), 1);
        assert!(s.span_json_lines().contains("\"span\": \"hop\""));
    }
}
