//! The flight recorder: a fixed-size, allocation-free ring of recent
//! labelled events, always armed, that yields a byte-stable JSON-lines
//! postmortem when a degradation trigger fires.
//!
//! The ring reuses the [`crate::trace::TimedEvent`] vocabulary — the same
//! `(C.ID, T.SN, X.SN)` labels, the same per-line `{"t": N, "ev": ...}`
//! JSON shape — so a postmortem dump and an `experiments trace --json`
//! export read identically. Storage is reserved once at construction;
//! steady-state pushes overwrite the oldest slot and never touch the heap.

use crate::event::Event;
use crate::trace::TimedEvent;

/// Default flight-ring capacity: enough recent context to diagnose a
/// degradation without unbounded memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Fixed-capacity overwrite-oldest event ring. All storage is reserved at
/// construction; `push` never allocates.
#[derive(Debug)]
pub struct FlightRing {
    buf: Vec<TimedEvent>,
    cap: usize,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    /// Events overwritten since construction.
    overwritten: u64,
}

impl FlightRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            overwritten: 0,
        }
    }

    /// Records one event, overwriting the oldest when full. Allocation-free
    /// after construction.
    pub fn push(&mut self, at_ns: u64, event: Event) {
        let te = TimedEvent { at_ns, event };
        if self.buf.len() < self.cap {
            self.buf.push(te);
        } else {
            self.buf[self.head] = te;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten (lost) since construction.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// A captured postmortem: the trigger that fired and the ring contents at
/// that moment. Plain data — comparable, cloneable, byte-stable to export.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlightDump {
    /// The degradation trigger that fired, e.g. `"peer-unreachable"`.
    pub trigger: &'static str,
    /// Connection the trigger concerned (0 when not connection-scoped).
    pub conn_id: u32,
    /// Virtual-clock time of the trigger.
    pub at_ns: u64,
    /// Events the ring had overwritten before the capture (context lost).
    pub overwritten: u64,
    /// The ring contents at capture time, oldest first.
    pub events: Vec<TimedEvent>,
}

impl FlightDump {
    /// Captures a dump from `ring` at trigger time.
    pub fn capture(trigger: &'static str, conn_id: u32, at_ns: u64, ring: &FlightRing) -> Self {
        FlightDump {
            trigger,
            conn_id,
            at_ns,
            overwritten: ring.overwritten(),
            events: ring.events(),
        }
    }

    /// Renders the dump as JSON lines: one header object, then one event
    /// object per line in the exact shape [`crate::trace::TraceRing`]
    /// exports, so dumps and traces share one format. Byte-stable: every
    /// field rides the virtual clock.
    pub fn to_json_lines(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"dump\": \"flight\", \"trigger\": \"{}\", \"cid\": {}, \"t\": {}, \"events\": {}, \"overwritten\": {}}}",
            self.trigger,
            self.conn_id,
            self.at_ns,
            self.events.len(),
            self.overwritten,
        );
        for te in &self.events {
            let _ = write!(out, "{{\"t\": {}, ", te.at_ns);
            te.event.json_fields(&mut out);
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Labels;

    fn ev(x: u32) -> Event {
        Event::GroupDelivered {
            conn_id: 1,
            start: x,
            bytes: 64,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_in_order() {
        let mut r = FlightRing::new(3);
        for i in 0..5u32 {
            r.push(i as u64 * 10, ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let times: Vec<u64> = r.events().iter().map(|t| t.at_ns).collect();
        assert_eq!(times, vec![20, 30, 40]);
    }

    #[test]
    fn ring_push_is_allocation_free_once_full() {
        // Indirect check: capacity never grows past the constructor reserve.
        let mut r = FlightRing::new(4);
        let cap = r.buf.capacity();
        for i in 0..64u32 {
            r.push(i as u64, ev(i));
        }
        assert_eq!(r.buf.capacity(), cap);
    }

    #[test]
    fn dump_shares_the_trace_line_shape() {
        let mut r = FlightRing::new(8);
        r.push(
            7,
            Event::ChunkRejected {
                labels: Labels::new(3, 0, 9),
                reason: "truncated",
            },
        );
        r.push(
            9,
            Event::Degraded {
                conn_id: 3,
                trigger: "verify-failure",
            },
        );
        let d = FlightDump::capture("verify-failure", 3, 9, &r);
        let json = d.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"dump\": \"flight\", \"trigger\": \"verify-failure\""));
        assert_eq!(
            lines[1],
            "{\"t\": 7, \"ev\": \"ChunkRejected\", \"cid\": 3, \"tsn\": 0, \"xsn\": 9, \"reason\": \"truncated\"}"
        );
        assert_eq!(
            lines[2],
            "{\"t\": 9, \"ev\": \"Degraded\", \"cid\": 3, \"trigger\": \"verify-failure\"}"
        );
        // Capture is a value: replaying the same ring gives identical bytes.
        assert_eq!(d, FlightDump::capture("verify-failure", 3, 9, &r));
    }
}
