//! Label-keyed lifecycle spans: causal chunk lineage from the paper's own
//! labels.
//!
//! The paper's `(ID, SN, ST)` labels make every chunk self-describing
//! through arbitrary in-network fragmentation and repacking (§2, Appendix
//! C/D) — which means the label tuple is also a ready-made *trace key*. A
//! [`SpanId`] is exactly that tuple plus the lifecycle [`Stage`] it covers;
//! no side-channel correlation state is ever needed to follow one chunk
//! from sender emit, across every simulated router hop, to single-step
//! delivery. When a router splits a chunk, the children keep `C.ID`/`T.SN`
//! and take new `X.SN` offsets inside the parent's extent, so the
//! parent→child [`SpanLink`]s recorded here mirror the closure argument of
//! Appendix C/D: lineage survives fragmentation because the labels do.
//!
//! Spans are opened and closed against the caller's virtual clock, so two
//! runs of the same seeded scenario export byte-identical span trees —
//! `tests/obs_determinism.rs` pins this per netsim profile. Closed spans
//! with a duration-bearing stage feed the latency-attribution histograms
//! (`span.delay.*` in the catalogue): per-chunk delay decomposed into
//! network / holding / verify / merge-queue / repair components.

use std::collections::HashMap;
use std::fmt::Write;

use crate::event::Labels;

/// Lifecycle stage a span covers. Marker stages (zero duration — the open
/// and close share a timestamp) record *that* something happened to the
/// chunk; duration stages decompose *where its latency went* and feed the
/// `span.delay.*` histogram named by [`Stage::delay_metric`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// Marker: the sender put the chunk on the wire.
    Emit,
    /// Duration: one simulated link traversal (serialization + latency +
    /// jitter). An unclosed hop span is a chunk the link dropped.
    Hop,
    /// Marker: a Byzantine router mutated the chunk on the wire.
    Mutate,
    /// Marker: a multipath link striped the chunk onto one of its paths.
    PathChoice,
    /// Marker: an in-network router re-fragmented the chunk; the children
    /// are recorded as [`SpanLink`]s from the parent label.
    Fragment,
    /// Duration: time the receiver held the chunk staged (reorder queue or
    /// reassembly group) before releasing it in order.
    Hold,
    /// Duration: time a chunk waited between parallel-pipeline dispatch and
    /// the merge fold that absorbed its worker's transcript.
    MergeQueue,
    /// Duration: from a group's first arrival to its WSC-2 verdict.
    Verify,
    /// Duration: from a retransmission-timer fire to the acknowledgment
    /// that repaired the TPDU.
    Repair,
    /// Marker: the verified bytes reached the application address space.
    Deliver,
}

impl Stage {
    /// Every stage, in lifecycle order.
    pub const ALL: [Stage; 10] = [
        Stage::Emit,
        Stage::Hop,
        Stage::Mutate,
        Stage::PathChoice,
        Stage::Fragment,
        Stage::Hold,
        Stage::MergeQueue,
        Stage::Verify,
        Stage::Repair,
        Stage::Deliver,
    ];

    /// The stage's stable lowercase name, as used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Emit => "emit",
            Stage::Hop => "hop",
            Stage::Mutate => "mutate",
            Stage::PathChoice => "path_choice",
            Stage::Fragment => "fragment",
            Stage::Hold => "hold",
            Stage::MergeQueue => "merge_queue",
            Stage::Verify => "verify",
            Stage::Repair => "repair",
            Stage::Deliver => "deliver",
        }
    }

    /// The catalogued `span.delay.*` histogram a closed span of this stage
    /// feeds, or `None` for marker stages.
    pub fn delay_metric(self) -> Option<&'static str> {
        match self {
            Stage::Hop => Some("span.delay.network_ns"),
            Stage::Hold => Some("span.delay.holding_ns"),
            Stage::MergeQueue => Some("span.delay.merge_queue_ns"),
            Stage::Verify => Some("span.delay.verify_ns"),
            Stage::Repair => Some("span.delay.repair_ns"),
            _ => None,
        }
    }
}

/// A span's identity: the paper's label tuple plus the lifecycle stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanId {
    /// The chunk's `(C.ID, T.SN, X.SN)` labels — the trace key.
    pub labels: Labels,
    /// Which lifecycle stage this span covers.
    pub stage: Stage,
}

impl SpanId {
    /// Builds a span identity.
    pub fn new(labels: Labels, stage: Stage) -> Self {
        SpanId { labels, stage }
    }
}

/// One recorded span: identity, open time, and (once closed) close time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// The span's identity.
    pub id: SpanId,
    /// Virtual-clock nanoseconds at open.
    pub open_ns: u64,
    /// Virtual-clock nanoseconds at close; `None` while open (an unclosed
    /// `Hop` span is a dropped chunk).
    pub close_ns: Option<u64>,
}

impl SpanRecord {
    /// Duration of a closed span, `None` while open.
    pub fn duration_ns(&self) -> Option<u64> {
        self.close_ns.map(|c| c.saturating_sub(self.open_ns))
    }
}

/// A causal parent→child edge recorded when a router splits a chunk: the
/// child keeps the parent's `C.ID`/`T.SN` and takes a new `X.SN` offset
/// inside the parent's extent (Appendix C/D closure).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanLink {
    /// Virtual-clock nanoseconds at which the split happened.
    pub at_ns: u64,
    /// Labels of the chunk that was split.
    pub parent: Labels,
    /// Labels of one resulting child chunk.
    pub child: Labels,
}

fn key(id: &SpanId) -> (u32, u32, u32, Stage) {
    (id.labels.conn_id, id.labels.t_sn, id.labels.x_sn, id.stage)
}

/// Append-only store of span records and links.
///
/// Records keep their open order (a `Vec`, never a hash-ordered walk), so a
/// deterministic workload exports a byte-identical store. Closing matches
/// the *newest still-open* record with the same `(labels, stage)` — nested
/// re-opens (a retransmitted chunk crossing the same link twice) close in
/// LIFO order. A close with no matching open is counted, never dropped
/// silently.
#[derive(Debug, Default)]
pub struct SpanStore {
    records: Vec<SpanRecord>,
    links: Vec<SpanLink>,
    /// Stack of open record indices per span identity.
    open: HashMap<(u32, u32, u32, Stage), Vec<usize>>,
    orphan_closes: u64,
}

impl SpanStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span at virtual time `at_ns`.
    pub fn open(&mut self, at_ns: u64, id: SpanId) {
        let idx = self.records.len();
        self.records.push(SpanRecord {
            id,
            open_ns: at_ns,
            close_ns: None,
        });
        self.open.entry(key(&id)).or_default().push(idx);
    }

    /// Closes the newest open span with `id`'s identity at `at_ns`.
    /// Returns the closed record's duration, or `None` (and counts an
    /// orphan) when no matching span is open.
    pub fn close(&mut self, at_ns: u64, id: SpanId) -> Option<u64> {
        match self.open.get_mut(&key(&id)).and_then(|stack| stack.pop()) {
            Some(idx) => {
                self.records[idx].close_ns = Some(at_ns);
                self.records[idx].duration_ns()
            }
            None => {
                self.orphan_closes += 1;
                None
            }
        }
    }

    /// Records a parent→child fragmentation link at `at_ns`.
    pub fn link(&mut self, at_ns: u64, parent: Labels, child: Labels) {
        self.links.push(SpanLink {
            at_ns,
            parent,
            child,
        });
    }

    /// The recorded spans, in open order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// The recorded parent→child links, in record order.
    pub fn links(&self) -> &[SpanLink] {
        &self.links
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.links.is_empty()
    }

    /// Closes that matched no open span.
    pub fn orphan_closes(&self) -> u64 {
        self.orphan_closes
    }

    /// Spans still open (e.g. chunks a lossy link dropped mid-hop).
    pub fn open_spans(&self) -> usize {
        self.records.iter().filter(|r| r.close_ns.is_none()).count()
    }

    /// Exports the store as JSON lines, one object per span (open order)
    /// followed by one per link — keys in fixed order, no floats, so a
    /// deterministic workload exports byte-identical strings.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let _ = write!(
                out,
                "{{\"span\": \"{}\", \"cid\": {}, \"tsn\": {}, \"xsn\": {}, \"open\": {}, \"close\": ",
                r.id.stage.name(),
                r.id.labels.conn_id,
                r.id.labels.t_sn,
                r.id.labels.x_sn,
                r.open_ns,
            );
            match r.close_ns {
                Some(c) => {
                    let _ = write!(out, "{c}");
                }
                None => out.push_str("null"),
            }
            out.push_str("}\n");
        }
        for l in &self.links {
            let _ = writeln!(
                out,
                "{{\"link\": {}, \"parent\": [{}, {}, {}], \"child\": [{}, {}, {}]}}",
                l.at_ns,
                l.parent.conn_id,
                l.parent.t_sn,
                l.parent.x_sn,
                l.child.conn_id,
                l.child.t_sn,
                l.child.x_sn,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(xsn: u32, stage: Stage) -> SpanId {
        SpanId::new(Labels::new(1, 0, xsn), stage)
    }

    #[test]
    fn stage_names_and_delay_metrics_are_consistent() {
        for stage in Stage::ALL {
            assert!(!stage.name().is_empty());
            if let Some(metric) = stage.delay_metric() {
                assert!(metric.starts_with("span.delay."), "{metric}");
                assert!(crate::catalogue::lookup(metric).is_some(), "{metric}");
            }
        }
    }

    #[test]
    fn close_matches_newest_open_lifo() {
        let mut s = SpanStore::new();
        s.open(10, id(0, Stage::Hop));
        s.open(20, id(0, Stage::Hop));
        assert_eq!(s.close(25, id(0, Stage::Hop)), Some(5));
        assert_eq!(s.close(40, id(0, Stage::Hop)), Some(30));
        assert_eq!(s.orphan_closes(), 0);
        assert_eq!(s.close(50, id(0, Stage::Hop)), None);
        assert_eq!(s.orphan_closes(), 1);
    }

    #[test]
    fn open_spans_are_visible_drops() {
        let mut s = SpanStore::new();
        s.open(5, id(1, Stage::Hop));
        s.open(6, id(2, Stage::Hop));
        s.close(9, id(2, Stage::Hop));
        assert_eq!(s.open_spans(), 1);
        assert!(s.to_json_lines().contains("\"close\": null"));
    }

    #[test]
    fn json_lines_are_byte_stable_and_ordered() {
        let build = || {
            let mut s = SpanStore::new();
            s.open(1, id(0, Stage::Emit));
            s.close(1, id(0, Stage::Emit));
            s.open(2, id(0, Stage::Hop));
            s.close(52, id(0, Stage::Hop));
            s.link(30, Labels::new(1, 0, 0), Labels::new(1, 0, 4));
            s
        };
        let (a, b) = (build(), build());
        assert_eq!(a.to_json_lines(), b.to_json_lines());
        let exported = a.to_json_lines();
        let lines: Vec<&str> = exported.lines().collect();
        assert_eq!(
            lines[0],
            "{\"span\": \"emit\", \"cid\": 1, \"tsn\": 0, \"xsn\": 0, \"open\": 1, \"close\": 1}"
        );
        assert_eq!(
            lines[2],
            "{\"link\": 30, \"parent\": [1, 0, 0], \"child\": [1, 0, 4]}"
        );
    }
}
