//! The static metrics catalogue: every counter and histogram the pipeline
//! exports, with its unit and the code path that increments it.
//!
//! The catalogue is the single source of truth three ways at once: it sizes
//! and names the slots of a [`crate::metrics::Metrics`] registry, it is the
//! list `docs/OBSERVABILITY.md` documents (a test asserts the document names
//! every entry), and it bounds the instrumentation surface — a layer cannot
//! invent a metric name at runtime, it can only increment one declared here.

/// Whether a metric is a monotonic counter or a fixed-bucket histogram.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Monotonically increasing sum of deltas.
    Counter,
    /// Power-of-two-bucket distribution plus total count and sum.
    Histogram,
}

/// One catalogue entry: a metric's name, kind, unit and provenance.
#[derive(Clone, Copy, Debug)]
pub struct Spec {
    /// Dot-separated metric name, `layer.component.what`.
    pub name: &'static str,
    /// Counter or histogram.
    pub kind: Kind,
    /// Unit of the increment (counters) or observed value (histograms).
    pub unit: &'static str,
    /// Which code path increments or observes it.
    pub help: &'static str,
}

const fn counter(name: &'static str, unit: &'static str, help: &'static str) -> Spec {
    Spec {
        name,
        kind: Kind::Counter,
        unit,
        help,
    }
}

const fn histogram(name: &'static str, unit: &'static str, help: &'static str) -> Spec {
    Spec {
        name,
        kind: Kind::Histogram,
        unit,
        help,
    }
}

/// Every metric the receive path exports, sorted by name.
///
/// Sortedness is load-bearing (slot lookup binary-searches the catalogue)
/// and enforced by a unit test.
pub const CATALOGUE: &[Spec] = &[
    counter(
        "core.wire.chunks_decoded",
        "chunks",
        "core::wire::decode_chunk_observed accepted a chunk off the wire",
    ),
    counter(
        "core.wire.decode_rejects",
        "chunks",
        "core::wire::decode_chunk_observed refused a malformed chunk",
    ),
    counter(
        "netsim.byzantine.mutations",
        "chunks",
        "ByzantineRouter flipped a label field (T.SN, C.ID or LEN) on the wire",
    ),
    counter(
        "netsim.multipath.path_choices",
        "frames",
        "MultipathLink striped a frame onto one of its parallel paths",
    ),
    counter(
        "netsim.router.repacks",
        "chunks",
        "ChunkRouter merged chunks while repacking for its egress MTU",
    ),
    counter(
        "netsim.router.splits",
        "chunks",
        "ChunkRouter split a chunk to fit its egress MTU (extra pieces made)",
    ),
    counter(
        "obs.flight.dumps",
        "dumps",
        "AlwaysOnSink captured a flight-recorder postmortem (first trigger only)",
    ),
    counter(
        "obs.flight.triggers",
        "triggers",
        "a degradation trigger fired against an always-on or recording sink",
    ),
    counter(
        "obs.span.links",
        "links",
        "a router recorded one parent-to-child fragmentation span link",
    ),
    counter(
        "obs.span.opened",
        "spans",
        "a lifecycle span was opened against the recording sink",
    ),
    counter(
        "obs.span.orphan_closes",
        "closes",
        "a span close matched no open span (double close or unopened stage)",
    ),
    histogram(
        "span.delay.holding_ns",
        "ns",
        "closed hold spans: virtual time a chunk sat staged at the receiver",
    ),
    histogram(
        "span.delay.merge_queue_ns",
        "ns",
        "closed merge-queue spans: dispatch-to-merge wait in the parallel pipeline",
    ),
    histogram(
        "span.delay.network_ns",
        "ns",
        "closed hop spans: per-link virtual transit time of a chunk",
    ),
    histogram(
        "span.delay.repair_ns",
        "ns",
        "closed repair spans: RTO fire to the acknowledgment that repaired the TPDU",
    ),
    histogram(
        "span.delay.verify_ns",
        "ns",
        "closed verify spans: group first-arrival to its WSC-2 verdict",
    ),
    counter(
        "transport.budget.evictions",
        "groups",
        "Receiver evicted an idle incomplete group (LRU by virtual clock) under budget pressure",
    ),
    histogram(
        "transport.budget.held_bytes",
        "bytes",
        "budget occupancy: held + staged bytes after each arrival while a budget is set",
    ),
    counter(
        "transport.budget.shed_bytes",
        "bytes",
        "payload bytes the receiver shed because the resource budget was exhausted",
    ),
    counter(
        "transport.health.events",
        "events",
        "a Watchdog threshold rule emitted a typed HealthEvent",
    ),
    counter(
        "transport.health.reports",
        "reports",
        "a Watchdog tick aggregated a HealthReport on the virtual clock",
    ),
    counter(
        "transport.parallel.bad_packets",
        "packets",
        "ParallelReceiver::ingest refused a packet the span scan rejected",
    ),
    counter(
        "transport.parallel.chunks_dispatched",
        "chunks",
        "ParallelReceiver::ingest routed a chunk span to a worker shard",
    ),
    counter(
        "transport.parallel.merge_folds",
        "folds",
        "ParallelReceiver::finish folded one worker WSC-2 transcript into the merged stream",
    ),
    counter(
        "transport.parallel.packets",
        "packets",
        "ParallelReceiver::ingest accepted a packet for dispatch",
    ),
    histogram(
        "transport.parallel.queue_depth",
        "work items",
        "virtual-engine shard queue length after each dispatched chunk",
    ),
    counter(
        "transport.parallel.unknown_connection",
        "chunks",
        "ParallelReceiver::ingest dropped a chunk whose C.ID no shard owns",
    ),
    histogram(
        "transport.parallel.worker_chunks",
        "chunks",
        "per-worker chunk totals at merge time (dispatch imbalance)",
    ),
    histogram(
        "transport.rto.backoff_rto_ns",
        "ns",
        "backed-off RTO re-armed for an entry after its timer fired",
    ),
    histogram(
        "transport.rto.base_rto_ns",
        "ns",
        "smoothed base RTO observed at each Session::pump",
    ),
    counter(
        "transport.rto.rtt_samples",
        "samples",
        "Session::handle_packet took a Karn-admissible RTT sample from an ack",
    ),
    counter(
        "transport.rto.shed_tpdus",
        "tpdus",
        "Session::emit abandoned a TPDU after retry exhaustion under DegradePolicy::Shed",
    ),
    counter(
        "transport.rto.timer_fires",
        "fires",
        "RetransmitTimer::poll found an expired entry (retransmit or exhausted)",
    ),
    counter(
        "transport.rto.timer_retransmits",
        "tpdus",
        "Session::emit repaired a TPDU because its retransmission timer fired",
    ),
    counter(
        "transport.rx.bad_packets",
        "packets",
        "Receiver::handle_packet refused a packet the wire parser rejected",
    ),
    histogram(
        "transport.rx.buffered_bytes",
        "bytes",
        "bytes staged in the reorder queue after each arrival that buffered",
    ),
    counter(
        "transport.rx.chunks_accepted",
        "chunks",
        "Receiver::handle_chunk admitted a fresh data chunk into its group",
    ),
    counter(
        "transport.rx.data_touches",
        "bytes",
        "payload bytes the receiver touched (placement plus any buffering)",
    ),
    counter(
        "transport.rx.duplicate_chunks",
        "chunks",
        "Receiver::handle_chunk discarded an already-covered data chunk",
    ),
    counter(
        "transport.rx.holding_delay_ns",
        "ns",
        "virtual time chunks spent staged before in-order release (reorder mode)",
    ),
    counter(
        "transport.rx.overlap_conflicts",
        "conflicts",
        "Receiver saw a fragment overlap already-held positions with differing bytes",
    ),
    counter(
        "transport.rx.tpdus_delivered",
        "tpdus",
        "Receiver::try_complete delivered a TPDU whose WSC-2 invariant verified",
    ),
    counter(
        "transport.rx.tpdus_failed",
        "tpdus",
        "Receiver::group_failure condemned a TPDU (ED mismatch, inconsistency, bad chunk)",
    ),
    counter(
        "transport.session.burst_deferrals",
        "tpdus",
        "Session::emit deferred a repair TPDU to respect the per-pump burst cap",
    ),
    counter(
        "transport.session.dead_verdicts",
        "verdicts",
        "Session::emit reached the sticky PeerUnreachable verdict under DegradePolicy::Abort",
    ),
    counter(
        "transport.session.packets_emitted",
        "packets",
        "packets Session::emit handed to the network this pump",
    ),
    counter(
        "transport.session.pressure_deferrals",
        "deferrals",
        "Session::emit deferred a repair pass or due timer on peer budget back-pressure",
    ),
    counter(
        "transport.session.pumps",
        "calls",
        "Session::pump invocations (one per virtual-clock tick)",
    ),
    counter(
        "transport.table.admissions",
        "connections",
        "ConnTable admitted a connection (fresh receiver or re-armed pooled shell)",
    ),
    counter(
        "transport.table.evictions",
        "connections",
        "ConnTable evicted a connection (capacity LRU, idle sweep, or explicit retire)",
    ),
    histogram(
        "transport.table.occupancy",
        "connections",
        "live connections in ConnTable, observed at each admission",
    ),
    counter(
        "transport.table.pressure_crossings",
        "crossings",
        "ConnTable::under_pressure crossed from false to true (a degradation trigger)",
    ),
    histogram(
        "transport.table.probe_len",
        "slots",
        "robin-hood probe-sequence length walked by each ConnTable index insert",
    ),
    counter(
        "transport.table.refusals",
        "connections",
        "ConnTable refused an admission: table full and nothing evictable",
    ),
    counter(
        "vreasm.tracker.accepts",
        "fragments",
        "PduTracker::offer admitted a consistent, novel fragment",
    ),
    histogram(
        "vreasm.tracker.fragments",
        "runs",
        "disjoint runs in the interval tracker after each accepted fragment (occupancy)",
    ),
    histogram(
        "wsc.runs_per_tpdu",
        "runs",
        "disordered WSC-2 runs absorbed per delivered TPDU",
    ),
    counter(
        "wsc.verify_fail",
        "tpdus",
        "a completed group's WSC-2 digest did not match its ED chunk",
    ),
    counter(
        "wsc.verify_pass",
        "tpdus",
        "a completed group's WSC-2 digest matched its ED chunk",
    ),
];

/// Direct-mapped label acceleration table size (power of two). The paper's
/// thesis applied to the registry itself: resolving a metric *label* to its
/// cell must cost a hash and one verifying compare, not a binary search
/// through names that share a `transport.` prefix — the search was the
/// measurable part of the always-on hot-path overhead.
const FAST_SLOTS: usize = 2048;

/// Mixes a name's length, a window from its middle, and its last eight
/// bytes into a table index under `seed`. The suffix alone is not enough:
/// pairs like `transport.budget.shed_bytes` / `transport.rx.buffered_bytes`
/// agree on length and final eight bytes, so the middle window is what
/// separates them (the shared `transport.` prefix never would).
#[inline]
fn fast_idx(name: &str, seed: u64) -> usize {
    let b = name.as_bytes();
    let mut h = seed ^ b.len() as u64;
    let mid = b.len() / 2;
    for &c in &b[mid..(mid + 8).min(b.len())] {
        h = h.wrapping_mul(0x100000001B3) ^ c as u64;
    }
    for &c in &b[b.len().saturating_sub(8)..] {
        h = h.wrapping_mul(0x100000001B3) ^ c as u64;
    }
    (h ^ (h >> 29)) as usize & (FAST_SLOTS - 1)
}

/// The chosen hash seed plus `slot + 1` per table cell (0 = empty, fall
/// back to binary search).
static FAST: std::sync::OnceLock<(u64, [u16; FAST_SLOTS])> = std::sync::OnceLock::new();

/// Builds the table under the first seed (tried in a fixed order, so the
/// result is deterministic) that places every catalogued name without
/// collision. The search is a handful of iterations for any plausible
/// catalogue size; if 64 seeds all collide, the last table stands and the
/// displaced names resolve through the binary-search fallback.
fn fast_table() -> &'static (u64, [u16; FAST_SLOTS]) {
    FAST.get_or_init(|| {
        let mut last = (0, [0u16; FAST_SLOTS]);
        for seed in 0..64u64 {
            let mut t = [0u16; FAST_SLOTS];
            let mut clean = true;
            for (i, s) in CATALOGUE.iter().enumerate() {
                let idx = fast_idx(s.name, seed);
                clean &= t[idx] == 0;
                if t[idx] == 0 {
                    t[idx] = i as u16 + 1;
                }
            }
            last = (seed, t);
            if clean {
                break;
            }
        }
        last
    })
}

/// True when every catalogued name resolves on the direct-mapped fast path
/// (no entry was displaced to the binary-search fallback).
pub fn fast_path_complete() -> bool {
    let (_, t) = fast_table();
    let placed = t.iter().filter(|&&v| v != 0).count();
    placed == CATALOGUE.len()
}

/// Returns the catalogue slot index of `name`, if declared.
#[inline]
pub fn lookup(name: &str) -> Option<usize> {
    if name.is_empty() {
        return None;
    }
    let (seed, table) = fast_table();
    let hit = table[fast_idx(name, *seed)];
    if hit != 0 {
        let cand = (hit - 1) as usize;
        if CATALOGUE[cand].name == name {
            return Some(cand);
        }
    }
    CATALOGUE.binary_search_by(|s| s.name.cmp(name)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_sorted_and_unique() {
        for w in CATALOGUE.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "catalogue out of order at {} / {}",
                w[0].name,
                w[1].name
            );
        }
    }

    #[test]
    fn lookup_finds_every_entry() {
        for (i, s) in CATALOGUE.iter().enumerate() {
            assert_eq!(lookup(s.name), Some(i));
        }
        assert_eq!(lookup("no.such.metric"), None);
        assert_eq!(lookup(""), None);
    }

    #[test]
    fn fast_table_covers_the_whole_catalogue_without_collisions() {
        // Every committed name must resolve on the direct-mapped fast path;
        // a collision silently demotes a hot-path label back to the binary
        // search, which is exactly the cost the table exists to remove. The
        // seed search must therefore have found a collision-free placement.
        assert!(fast_path_complete(), "no collision-free hash seed found");
    }

    #[test]
    fn names_are_lowercase_dotted() {
        for s in CATALOGUE {
            assert!(s.name.contains('.'), "{} has no layer prefix", s.name);
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{} is not lowercase dotted",
                s.name
            );
            assert!(!s.unit.is_empty() && !s.help.is_empty());
        }
    }
}
